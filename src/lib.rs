//! # selsync-repro
//!
//! Facade crate for the SelSync reproduction workspace. It re-exports every workspace
//! crate under one roof so examples, integration tests and downstream users can depend
//! on a single package:
//!
//! * [`core`] (`selsync`) — the paper's contribution: the `Δ(g_i)` tracker, the δ
//!   policy, and the BSP / FedAvg / SSP / local-SGD / SelSync training drivers.
//! * [`tensor`], [`nn`], [`data`], [`comm`] — the substrates (dense math, neural
//!   networks, datasets/partitioning, parameter server + collectives + network model).
//! * [`compress`], [`hessian`], [`metrics`] — gradient-compression baselines,
//!   second-order diagnostics, and metrics/reporting.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory and
//! substitutions, and `EXPERIMENTS.md` for the paper-vs-measured record.

/// The paper's contribution: selective synchronization (re-export of the `selsync` crate).
pub use selsync as core;

/// Dense tensor substrate.
pub use selsync_tensor as tensor;

/// Neural-network substrate (layers, models, losses, optimizers, schedules).
pub use selsync_nn as nn;

/// Data substrate (synthetic datasets, DefDP/SelDP partitioning, non-IID splits,
/// data-injection).
pub use selsync_data as data;

/// Communication substrate (parameter server, collectives, network cost model).
pub use selsync_comm as comm;

/// Deterministic run-trace layer (typed event stream, line codec, trace diff).
pub use selsync_tracelog as tracelog;

/// Gradient-compression baselines (Top-k, Random-k, signSGD, TernGrad, error feedback).
pub use selsync_compress as compress;

/// Second-order diagnostics (Hessian-vector products, power iteration, gradient variance).
pub use selsync_hessian as hessian;

/// Metrics and reporting (EWMA, KDE, LSSR, throughput, tables).
pub use selsync_metrics as metrics;

/// Declarative, deterministic scenario & fault-injection subsystem (TOML scenario
/// files, built-in scenario library, fault injector, comparison runner).
pub use selsync_scenario as scenario;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // Touch one item from each re-export to ensure the facade compiles against them.
        let _ = crate::core::SyncPolicy::bsp();
        let _ = crate::tensor::Tensor::zeros(1, 1);
        let _ = crate::nn::model::ModelKind::all();
        let _ = crate::data::partition::PartitionScheme::SelDp;
        let _ = crate::comm::NetworkModel::paper_5gbps();
        let _ = crate::tracelog::TraceSink::disabled();
        let _ = crate::compress::SignSgd::new();
        let _ = crate::hessian::variance::gradient_variance(&[1.0]);
        let _ = crate::metrics::Ewma::new(0.5, 5);
        let _ = crate::scenario::library::builtin("steady");
    }
}

//! Non-IID training with randomized data-injection (§III-E / Fig. 12 of the paper).
//!
//! Ten workers each hold samples of a *single* class (the paper's 1-label-per-worker
//! CIFAR10 split). Plain FedAvg struggles in this regime; SelSync with data-injection
//! `(α, β, δ)` recovers most of the lost accuracy. This example runs FedAvg and three
//! injection configurations and prints their final accuracies.
//!
//! Run with:
//! ```text
//! cargo run --release --example noniid_injection
//! ```

use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, TrainConfig};
use selsync_repro::nn::model::ModelKind;

fn main() {
    let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 10);
    cfg.iterations = 400;
    cfg.eval_every = 100;
    cfg.train_samples = 4000;
    cfg.test_samples = 500;
    cfg.non_iid_labels_per_worker = Some(1); // each worker sees exactly one CIFAR10-like label

    let configs: Vec<(String, AlgorithmSpec)> = vec![
        (
            "FedAvg(1,0.25)".into(),
            AlgorithmSpec::FedAvg { c: 1.0, e: 0.25 },
        ),
        (
            "SelSync(0.5,0.5,0.05)".into(),
            AlgorithmSpec::selsync_injected(0.5, 0.5, 0.05),
        ),
        (
            "SelSync(0.5,0.5,0.3)".into(),
            AlgorithmSpec::selsync_injected(0.5, 0.5, 0.3),
        ),
        (
            "SelSync(0.75,0.75,0.3)".into(),
            AlgorithmSpec::selsync_injected(0.75, 0.75, 0.3),
        ),
    ];

    println!("Non-IID CIFAR10-like task, 10 workers, 1 label per worker\n");
    for (label, algo) in configs {
        let mut c = cfg.clone();
        c.algorithm = algo;
        let report = algorithms::run(&c);
        println!(
            "{label:<24} final accuracy = {:>6.2}%   best = {:>6.2}%   LSSR = {:.3}   injected+sync data = {:.2} GB",
            report.final_metric,
            report.best_metric,
            report.lssr,
            report.bytes_communicated as f64 / 1e9,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 12): accuracy improves as (α, β) grow, and every \
         injection configuration beats plain FedAvg on this label-sharded split."
    );
}

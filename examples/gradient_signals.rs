//! Inspect the statistical signals SelSync is built on (paper §II-E, Fig. 3–5):
//! the per-step gradient distribution, the relative gradient change `Δ(g_i)`, and the
//! top Hessian eigenvalue compared with the (cheap) gradient variance.
//!
//! Run with:
//! ```text
//! cargo run --release --example gradient_signals
//! ```

use selsync_repro::core::tracker::{GradStatistic, GradientTracker};
use selsync_repro::data::synthetic::{gaussian_mixture, MixtureSpec};
use selsync_repro::hessian::hvp::ModelBatchOracle;
use selsync_repro::hessian::power::top_eigenvalue;
use selsync_repro::hessian::variance::gradient_variance;
use selsync_repro::metrics::kde::gaussian_kde;
use selsync_repro::nn::model::{ModelKind, PaperModel};
use selsync_repro::nn::optim::{Optimizer, Sgd};

fn main() {
    let mut model = PaperModel::build(ModelKind::ResNetLike, 7);
    let data = gaussian_mixture(&MixtureSpec::cifar10_like(2048), 7);
    let mut opt = Sgd::new(0.9, 4e-4);
    let mut tracker = GradientTracker::new(GradStatistic::SqNorm, 0.16, 25);

    let mut early_grads: Vec<f32> = Vec::new();
    let mut late_grads: Vec<f32> = Vec::new();
    let steps = 300;
    let batch = 32;

    println!("step,loss,delta_g,grad_variance,hessian_top_eig");
    for step in 0..steps {
        let indices: Vec<usize> = (0..batch)
            .map(|i| (step * batch + i) % data.len())
            .collect();
        let (x, y) = data.batch(&indices);
        let stats = model.forward_backward(&x, &y);
        let grads = model.grads_flat();
        let delta = tracker.update(&grads);
        let var = gradient_variance(&grads);

        if step < 10 {
            early_grads.extend_from_slice(&grads);
        }
        if step >= steps - 10 {
            late_grads.extend_from_slice(&grads);
        }

        // The Hessian eigenvalue is expensive (several extra gradient evaluations), so we
        // only sample it every 50 steps — exactly the cost asymmetry the paper points out.
        let eig = if step % 50 == 0 {
            let params = model.params_flat();
            let mut oracle = ModelBatchOracle::new(&mut model, &x, &y);
            top_eigenvalue(&mut oracle, &params, 5, 1e-2, 11).eigenvalue
        } else {
            f32::NAN
        };

        let mut params = model.params_flat();
        opt.step(&mut params, &grads, 0.05);
        model.set_params_flat(&params);

        if step % 10 == 0 || step % 50 == 0 {
            println!("{step},{:.4},{delta:.5},{var:.6},{eig:.3}", stats.loss);
        }
    }

    // Fig. 3: gradients concentrate near zero late in training.
    let early_kde = gaussian_kde(&subsample(&early_grads, 5000), 100, None);
    let late_kde = gaussian_kde(&subsample(&late_grads, 5000), 100, None);
    println!("\nGradient distribution width (90% mass):");
    println!("  early epochs: {:.5}", early_kde.mass_width(0.9));
    println!("  late  epochs: {:.5}", late_kde.mass_width(0.9));
    println!("Expected shape (paper Fig. 3): the late-epoch distribution is much narrower.");
}

fn subsample(values: &[f32], max: usize) -> Vec<f32> {
    if values.len() <= max {
        return values.to_vec();
    }
    let stride = values.len() / max;
    values.iter().step_by(stride.max(1)).cloned().collect()
}

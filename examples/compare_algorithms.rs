//! A miniature version of the paper's Table I: run BSP, FedAvg, SSP and SelSync on the
//! same workload and print iterations, LSSR, final metric, convergence difference and
//! speedup versus BSP.
//!
//! Run with:
//! ```text
//! cargo run --release --example compare_algorithms
//! ```

use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, TrainConfig};
use selsync_repro::metrics::table::{fmt_f, Table};
use selsync_repro::nn::model::ModelKind;

fn main() {
    let mut cfg = TrainConfig::small(ModelKind::VggLike, 8);
    cfg.iterations = 500;
    cfg.eval_every = 100;
    cfg.train_samples = 4096;
    cfg.test_samples = 512;

    let algorithms_to_run = vec![
        AlgorithmSpec::Bsp,
        AlgorithmSpec::FedAvg { c: 1.0, e: 0.25 },
        AlgorithmSpec::FedAvg { c: 0.5, e: 0.25 },
        AlgorithmSpec::Ssp { staleness: 100 },
        AlgorithmSpec::selsync(0.3),
        AlgorithmSpec::selsync(0.5),
    ];

    let mut reports = Vec::new();
    for algo in algorithms_to_run {
        let mut c = cfg.clone();
        c.algorithm = algo;
        eprintln!("running {} ...", algo.name());
        reports.push(algorithms::run(&c));
    }
    let bsp = reports[0].clone();

    let mut table = Table::new(vec![
        "Method",
        "Iterations",
        "LSSR",
        "Acc. (%)",
        "Conv. Diff.",
        "Outperforms BSP?",
        "Speedup (same iters)",
    ]);
    for r in &reports {
        let lssr = if r.algorithm.starts_with("SSP") {
            "-".to_string()
        } else {
            fmt_f(r.lssr, 3)
        };
        table.push_row(vec![
            r.algorithm.clone(),
            r.iterations.to_string(),
            lssr,
            fmt_f(r.final_metric as f64, 2),
            format!("{:+.2}", r.convergence_diff(&bsp)),
            if r.algorithm == "BSP" {
                "N/A".into()
            } else {
                r.outperforms(&bsp).to_string()
            },
            format!("{:.2}x", r.raw_time_speedup(&bsp)),
        ]);
    }
    println!("{}", table.to_markdown());
    println!("(VGG11 analogue on the CIFAR100-like synthetic task, 8 simulated workers)");
}

//! Programmatic scenario construction: a heterogeneous fleet that additionally suffers
//! a transient straggler and a latency spike, compared across every algorithm arm.
//!
//! ```sh
//! cargo run --release --example scenario_stragglers
//! ```
//!
//! The printed report is deterministic: run it twice and diff the output. The same
//! scenario can be exported as TOML (printed at the end) and replayed with
//! `cargo run --release -p selsync-bench --bin scenario_run -- <file>.toml`.

use selsync_repro::scenario::{runner, FaultSpec, Scenario};

fn main() {
    // Start from the base shape and describe the cluster declaratively.
    let mut scenario = Scenario::base("stragglers-example", 6, 240);
    scenario.description =
        "Mixed fleet; worker 5 slows 3x mid-run while latency spikes cluster-wide.".into();
    scenario.train_samples = 1024;
    scenario.test_samples = 256;
    scenario.eval_samples = 256;
    scenario.eval_every = 20;
    scenario.heterogeneity = vec![1.0, 1.0, 1.1, 1.1, 1.2, 1.2];
    scenario.faults = vec![
        FaultSpec::Slowdown {
            worker: 5,
            start: 60,
            duration: 80,
            factor: 3.0,
        },
        FaultSpec::Latency {
            start: 60,
            duration: 80,
            extra_ms: 8.0,
        },
    ];

    // Run BSP / SSP / FedAvg / local SGD / SelSync with identical accounting.
    let report = runner::run_scenario(&scenario).expect("valid scenario");
    print!("{}", report.render());

    println!("\n## this scenario as TOML\n");
    print!("{}", scenario.to_toml_string());
}

//! Quickstart: train the ResNet101 analogue with SelSync on a simulated 8-worker
//! cluster and compare it against BSP.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, TrainConfig};
use selsync_repro::nn::model::ModelKind;

fn main() {
    // A modest configuration so the example finishes in a few seconds.
    let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 8);
    cfg.iterations = 600;
    cfg.eval_every = 100;
    cfg.train_samples = 4096;
    cfg.test_samples = 512;

    println!("== BSP baseline ==");
    cfg.algorithm = AlgorithmSpec::Bsp;
    let bsp = algorithms::run(&cfg);
    print_report(&bsp);

    println!("\n== SelSync (delta = 0.3, parameter aggregation, SelDP) ==");
    cfg.algorithm = AlgorithmSpec::selsync(0.3);
    let sel = algorithms::run(&cfg);
    print_report(&sel);

    println!("\n== Summary ==");
    println!(
        "SelSync LSSR = {:.3} (communication reduced {:.1}x), accuracy diff vs BSP = {:+.2}%, \
         simulated-time speedup for the same iterations = {:.2}x",
        sel.lssr,
        sel.communication_reduction(),
        sel.convergence_diff(&bsp),
        sel.raw_time_speedup(&bsp),
    );
    if let Some(speedup) = sel.speedup_to_baseline_target(&bsp) {
        println!("Speedup to reach BSP's final accuracy: {speedup:.2}x");
    } else {
        println!("SelSync did not reach BSP's final accuracy within this (short) run.");
    }
}

fn print_report(report: &selsync_repro::core::report::RunReport) {
    println!(
        "algorithm={} iterations={} lssr={:.3} final_metric={:.2} sim_time={:.1}s \
         (compute {:.1}s + comm {:.1}s), data moved = {:.1} GB",
        report.algorithm,
        report.iterations,
        report.lssr,
        report.final_metric,
        report.sim_time_s,
        report.compute_time_s,
        report.comm_time_s,
        report.bytes_communicated as f64 / 1e9,
    );
    for p in &report.history {
        println!(
            "  iter {:>5}  t={:>8.1}s  loss={:.3}  metric={:.2}  delta_g={:.4}  lr={:.4}",
            p.iteration, p.sim_time_s, p.test_loss, p.test_metric, p.delta_g, p.lr
        );
    }
}

//! Adaptive-δ policy demo: the Sync-Switch-style policy against fixed-δ arms on the
//! `elastic-churn` built-in scenario (rolling worker churn — the time-varying regime
//! the policy targets).
//!
//! ```sh
//! cargo run --release --example adaptive_delta
//! ```
//!
//! The adaptive policy synchronizes every round through the initial descent, relaxes
//! to δ = 0.5 once the loss EWMA settles, and re-enters the eager regime whenever a
//! round's `Δ(g)` spikes above 2.5× its running level (each rejoining worker restarts
//! its tracker, producing exactly such a spike). The printed sweep report is
//! deterministic: run it twice and diff the output.

use selsync_repro::core::algorithms;
use selsync_repro::core::config::AlgorithmSpec;
use selsync_repro::core::policy::PolicySpec;
use selsync_repro::scenario::{builtin, sweep};

/// Compress a sync schedule into contiguous ranges for printing.
fn ranges(rounds: &[usize]) -> String {
    let mut parts = Vec::new();
    let mut i = 0;
    while i < rounds.len() {
        let start = rounds[i];
        let mut end = start;
        while i + 1 < rounds.len() && rounds[i + 1] == end + 1 {
            i += 1;
            end = rounds[i];
        }
        parts.push(if start == end {
            format!("{start}")
        } else {
            format!("{start}..{end}")
        });
        i += 1;
    }
    format!("[{}]", parts.join(", "))
}

fn main() {
    let scenario = builtin("elastic-churn").expect("built-in scenario");

    // One adaptive run: where did it choose to synchronize?
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(scenario.delta));
    cfg.delta_policy = Some(PolicySpec::adaptive_default());
    let report = algorithms::run(&cfg);
    println!("# one adaptive-δ run on {}", scenario.name);
    println!("arm:         {}", report.algorithm);
    println!(
        "sync steps:  {} of {} (LSSR {:.3})",
        report.sync_steps, report.iterations, report.lssr
    );
    println!("sync rounds: {}", ranges(&report.sync_rounds));
    println!(
        "final {}: {:.3}\n",
        if report.higher_is_better {
            "accuracy"
        } else {
            "perplexity"
        },
        report.final_metric
    );

    // The full sweep: δ grid × seeds × the adaptive arm, aggregated mean ± spread.
    let sweep_report = sweep::run_sweep(&scenario).expect("valid sweep");
    print!("{}", sweep_report.render());
}

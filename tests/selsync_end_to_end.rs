//! Cross-crate integration tests: full SelSync runs through the public API, checking the
//! headline claims of the paper at small scale (δ endpoints, communication reduction,
//! accuracy parity, speedup accounting).

use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, TrainConfig};
use selsync_repro::nn::model::ModelKind;

fn base_cfg(model: ModelKind, workers: usize) -> TrainConfig {
    let mut cfg = TrainConfig::small(model, workers);
    cfg.iterations = 150;
    cfg.eval_every = 30;
    cfg.train_samples = 1024;
    cfg.test_samples = 256;
    cfg.eval_samples = 256;
    cfg.batch_size = 16;
    cfg
}

#[test]
fn selsync_delta_zero_matches_bsp_communication_profile() {
    let mut cfg = base_cfg(ModelKind::ResNetLike, 4);
    cfg.algorithm = AlgorithmSpec::Bsp;
    let bsp = algorithms::run(&cfg);
    cfg.algorithm = AlgorithmSpec::selsync(0.0);
    let sel0 = algorithms::run(&cfg);

    // δ = 0 degenerates to BSP: every step synchronizes.
    assert_eq!(sel0.lssr, 0.0);
    assert_eq!(sel0.sync_steps, bsp.sync_steps);
    // The only extra cost is the 1-bit all-gather, so times are close (within 5%).
    let ratio = sel0.sim_time_s / bsp.sim_time_s;
    assert!(
        ratio < 1.05,
        "delta=0 SelSync should cost about the same as BSP (ratio {ratio})"
    );
}

#[test]
#[ignore = "slow behavioral convergence test; run with --ignored"]
fn selsync_reduces_communication_and_keeps_accuracy_close_to_bsp() {
    let mut cfg = base_cfg(ModelKind::ResNetLike, 4);
    cfg.iterations = 300;
    cfg.algorithm = AlgorithmSpec::Bsp;
    let bsp = algorithms::run(&cfg);

    cfg.algorithm = AlgorithmSpec::selsync(0.3);
    let sel = algorithms::run(&cfg);

    // The headline claim: most steps stay local, so simulated time drops substantially …
    assert!(sel.lssr > 0.5, "lssr {}", sel.lssr);
    assert!(
        sel.sim_time_s < bsp.sim_time_s * 0.6,
        "{} vs {}",
        sel.sim_time_s,
        bsp.sim_time_s
    );
    assert!(sel.bytes_communicated < bsp.bytes_communicated / 2);
    // … while the final accuracy stays in BSP's neighbourhood (generous margin at this
    // tiny scale; the paper reports parity or better at full scale).
    assert!(
        sel.final_metric > bsp.final_metric - 15.0,
        "SelSync {} vs BSP {}",
        sel.final_metric,
        bsp.final_metric
    );
}

#[test]
#[ignore = "slow behavioral convergence test; run with --ignored"]
fn both_models_train_to_better_than_chance_with_selsync() {
    // ResNet-like: 10 classes => chance is 10%. Transformer-like is checked via loss drop.
    let mut cfg = base_cfg(ModelKind::ResNetLike, 4);
    cfg.iterations = 300;
    cfg.algorithm = AlgorithmSpec::selsync(0.3);
    let report = algorithms::run(&cfg);
    assert!(
        report.best_metric > 30.0,
        "accuracy {} should beat 10% chance",
        report.best_metric
    );

    let mut lm = base_cfg(ModelKind::TransformerLike, 4);
    lm.iterations = 200;
    // The Markov transition structure is only statistically identifiable when each
    // token is observed in the predictive (final) context position several times, so
    // the LM needs a larger sample budget than the classification runs.
    lm.train_samples = 4096;
    lm.algorithm = AlgorithmSpec::selsync(0.3);
    let lm_report = algorithms::run(&lm);
    let first = lm_report.history.first().unwrap().test_metric;
    let best = lm_report.best_metric;
    assert!(
        best < first,
        "perplexity should fall: first {first}, best {best}"
    );
    // Vocabulary of 1000 => uniform perplexity 1000; the Markov chain has branching 4.
    assert!(best < 600.0, "perplexity {best}");
}

#[test]
fn lssr_accounting_is_consistent_with_history() {
    let mut cfg = base_cfg(ModelKind::VggLike, 4);
    cfg.algorithm = AlgorithmSpec::selsync(0.2);
    let report = algorithms::run(&cfg);
    assert_eq!(
        report.local_steps + report.sync_steps,
        report.iterations as u64
    );
    let lssr = report.local_steps as f64 / report.iterations as f64;
    assert!((report.lssr - lssr).abs() < 1e-9);
    // Evaluation history must be ordered and within the run.
    let mut last_iter = 0;
    for p in &report.history {
        assert!(p.iteration >= last_iter);
        assert!(p.iteration < report.iterations);
        assert!(p.sim_time_s <= report.sim_time_s + 1e-9);
        last_iter = p.iteration;
    }
}

#[test]
#[ignore = "slow behavioral convergence test; run with --ignored"]
fn fedavg_and_ssp_trade_accuracy_for_speed() {
    let mut cfg = base_cfg(ModelKind::VggLike, 4);
    cfg.iterations = 200;
    cfg.algorithm = AlgorithmSpec::Bsp;
    let bsp = algorithms::run(&cfg);

    cfg.algorithm = AlgorithmSpec::FedAvg { c: 1.0, e: 0.25 };
    let fed = algorithms::run(&cfg);
    cfg.algorithm = AlgorithmSpec::Ssp { staleness: 100 };
    let ssp = algorithms::run(&cfg);

    // Both semi-synchronous baselines must be faster than BSP for the same iterations …
    assert!(fed.sim_time_s < bsp.sim_time_s);
    assert!(ssp.sim_time_s < bsp.sim_time_s);
    // … and FedAvg must be communicating far less than BSP.
    assert!(fed.bytes_communicated < bsp.bytes_communicated / 2);
}

#[test]
fn reports_are_deterministic_for_a_fixed_seed_and_differ_across_seeds() {
    let mut cfg = base_cfg(ModelKind::ResNetLike, 3);
    cfg.iterations = 60;
    cfg.algorithm = AlgorithmSpec::selsync(0.25);
    let a = algorithms::run(&cfg);
    let b = algorithms::run(&cfg);
    assert_eq!(a.final_metric, b.final_metric);
    assert_eq!(a.lssr, b.lssr);
    assert_eq!(a.bytes_communicated, b.bytes_communicated);

    cfg.seed = 43;
    let c = algorithms::run(&cfg);
    assert!(
        a.final_metric != c.final_metric || a.lssr != c.lssr,
        "different seeds should not produce identical runs"
    );
}

//! Parameter-server outage parity + durable-recovery acceptance suite
//! (see `docs/RECOVERY.md`).
//!
//! Three contracts, each byte-for-byte:
//!
//! 1. **Outage parity** — under a `[ps_faults]` schedule (scheduled dark windows +
//!    seeded per-round brownouts) both SelSync backends emit the *same* canonical
//!    event stream — `ps_down` / `degraded_round` / `ps_up` / `catchup_sync`
//!    included — for every policy arm and every `SELSYNC_THREADS` setting.
//! 2. **Outage-free neutrality** — a `[ps_faults]` block that never takes the
//!    server down changes nothing: trace and report equal the no-block baseline.
//! 3. **Kill/resume identity** — kill a run at any checkpointed round, resume from
//!    the persisted image, and the full trace *and* report are byte-identical to
//!    the uninterrupted run, in both backends (property-tested over random kill
//!    rounds).

use proptest::prelude::*;
use selsync_repro::comm::faults::PsFaultSpec;
use selsync_repro::core::algorithms;
use selsync_repro::core::checkpoint::Checkpoint;
use selsync_repro::core::config::{AlgorithmSpec, CheckpointSpec, TrainConfig};
use selsync_repro::core::policy::PolicySpec;
use selsync_repro::core::threaded::{run_threaded_selsync, run_threaded_selsync_resumed};
use selsync_repro::scenario::{builtin, sweep, Scenario};
use selsync_repro::tensor::par;
use selsync_repro::tracelog::{explain, first_divergence, EventLog, TraceGranularity, TraceSink};

/// Same CI-sized rescale the trace-parity suite uses, applied to `ps-brownout`:
/// 30 iterations with the outage windows rescaled to fit ((80,30) → (10,4) and
/// (170,15) → (21,2)), small sample counts, no sweep block.
fn scaled() -> Scenario {
    let mut s = builtin("ps-brownout").expect("built-in scenario");
    sweep::rescale_fault_windows(&mut s, 30);
    s.eval_every = 10;
    s.train_samples = 512;
    s.test_samples = 128;
    s.eval_samples = 128;
    s.batch_size = 8;
    s.sweep = None;
    s
}

/// The policy arms of the acceptance matrix: fixed δ plus both stateful policies.
fn arms() -> Vec<(&'static str, Option<PolicySpec>)> {
    vec![
        ("fixed", None),
        ("adaptive", Some(PolicySpec::adaptive_default())),
        ("variance", Some(PolicySpec::variance_default())),
    ]
}

/// Run the simulator with a fresh full-granularity sink; return (log, report debug).
fn sim_run(cfg: &TrainConfig) -> (String, String) {
    let mut cfg = cfg.clone();
    cfg.trace = TraceSink::capture(TraceGranularity::Full);
    let report = algorithms::run(&cfg);
    (cfg.trace.take_log().encode(), format!("{report:?}"))
}

/// Run the threaded cluster with a fresh full-granularity sink; return (log, reports debug).
fn threaded_run(cfg: &TrainConfig) -> (String, String) {
    let mut cfg = cfg.clone();
    cfg.trace = TraceSink::capture(TraceGranularity::Full);
    let reports = run_threaded_selsync(&cfg);
    (cfg.trace.take_log().encode(), format!("{reports:?}"))
}

/// Decode both logs and panic with the trace-diff explanation when they differ.
fn assert_logs_equal(left: &str, right: &str, left_label: &str, right_label: &str, ctx: &str) {
    if left == right {
        return;
    }
    let a = EventLog::decode(left).expect("left log decodes");
    let b = EventLog::decode(right).expect("right log decodes");
    match first_divergence(&a, &b) {
        Some(div) => panic!(
            "{ctx}: event logs diverged\n{}",
            explain(&div, left_label, right_label)
        ),
        None => panic!("{ctx}: logs differ as text but not as events — codec drift?"),
    }
}

/// A unique, self-cleaning checkpoint directory for one test case.
struct CkptDir(std::path::PathBuf);

impl CkptDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "selsync-ps-fault-parity-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        CkptDir(dir)
    }

    fn spec(&self, every: usize, halt_after: Option<usize>) -> CheckpointSpec {
        CheckpointSpec {
            every,
            dir: self.0.to_str().expect("utf8 temp path").to_string(),
            halt_after,
            keep: None,
        }
    }
}

impl Drop for CkptDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn ps_outage_trace_is_byte_identical_across_backends_and_thread_counts() {
    let scenario = scaled();
    assert!(
        scenario
            .ps_faults
            .as_ref()
            .is_some_and(|s| !s.windows.is_empty()),
        "the scaled scenario must keep its outage windows"
    );
    for (arm, policy) in arms() {
        let mut cfg = scenario.train_config(AlgorithmSpec::selsync(scenario.delta));
        cfg.delta_policy = policy;
        let label = format!("ps-brownout/{arm}");
        let (sim_ref, thr_ref) = par::with_threads(1, || (sim_run(&cfg).0, threaded_run(&cfg).0));
        assert!(
            sim_ref.contains("degraded_round") && sim_ref.contains("catchup_sync"),
            "{label}: the outage windows must surface in the log"
        );
        assert_logs_equal(&sim_ref, &thr_ref, "simulator", "threaded", &label);
        for threads in [2usize, 4] {
            let (sim, thr) = par::with_threads(threads, || (sim_run(&cfg).0, threaded_run(&cfg).0));
            assert_eq!(sim, sim_ref, "{label}: simulator log at {threads} threads");
            assert_eq!(thr, thr_ref, "{label}: threaded log at {threads} threads");
        }
    }
}

#[test]
fn outage_free_ps_fault_schedule_equals_the_baseline_in_both_backends() {
    let mut scenario = scaled();
    scenario.ps_faults = None;
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(scenario.delta));
    cfg.delta_policy = Some(PolicySpec::adaptive_default());
    let mut reliable_cfg = cfg.clone();
    reliable_cfg.ps_faults = Some(PsFaultSpec::reliable(scenario.seed));

    let (base_log, base_report) = sim_run(&cfg);
    let (rel_log, rel_report) = sim_run(&reliable_cfg);
    assert_logs_equal(&base_log, &rel_log, "no-block", "reliable-block", "sim");
    assert_eq!(base_report, rel_report, "sim report must be unchanged");

    let (base_log, base_report) = threaded_run(&cfg);
    let (rel_log, rel_report) = threaded_run(&reliable_cfg);
    assert_logs_equal(
        &base_log,
        &rel_log,
        "no-block",
        "reliable-block",
        "threaded",
    );
    assert_eq!(
        base_report, rel_report,
        "threaded reports must be unchanged"
    );
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_run_in_both_backends() {
    let scenario = scaled();
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(scenario.delta));
    cfg.delta_policy = Some(PolicySpec::adaptive_default());
    // Halt inside the first outage window ((10,4) after rescale): the checkpoint
    // must capture mid-degradation state, the hardest case for the recovery image.
    let halt = 12usize;

    let (full_log, full_report) = sim_run(&cfg);
    let dir = CkptDir::new("sim");
    let mut halted = cfg.clone();
    halted.checkpoint = Some(dir.spec(6, Some(halt)));
    sim_run(&halted);
    let ckpt = Checkpoint::read_file(dir.0.join(format!("ckpt-{halt}"))).expect("sim image");
    assert_eq!(ckpt.round, halt);
    let mut resumed_cfg = halted.clone();
    resumed_cfg.trace = TraceSink::capture(TraceGranularity::Full);
    let report = selsync_repro::core::algorithms::selsync::run_resumed(&resumed_cfg, &ckpt);
    assert_logs_equal(
        &full_log,
        &resumed_cfg.trace.take_log().encode(),
        "uninterrupted",
        "resumed",
        "sim kill/resume",
    );
    assert_eq!(format!("{report:?}"), full_report, "sim report must match");

    let (full_log, full_report) = threaded_run(&cfg);
    let dir = CkptDir::new("threaded");
    let mut halted = cfg.clone();
    halted.checkpoint = Some(dir.spec(6, Some(halt)));
    threaded_run(&halted);
    let ckpt = Checkpoint::read_file(dir.0.join(format!("ckpt-{halt}"))).expect("threaded image");
    assert_eq!(ckpt.round, halt);
    let mut resumed_cfg = halted.clone();
    resumed_cfg.trace = TraceSink::capture(TraceGranularity::Full);
    let reports = run_threaded_selsync_resumed(&resumed_cfg, &ckpt);
    assert_logs_equal(
        &full_log,
        &resumed_cfg.trace.take_log().encode(),
        "uninterrupted",
        "resumed",
        "threaded kill/resume",
    );
    assert_eq!(
        format!("{reports:?}"),
        full_report,
        "threaded reports must match"
    );
}

/// Cross-backend recovery: an image written by one backend resumes on the
/// *other* backend (via `core::resume`'s translators) and reproduces the
/// uninterrupted run's event log byte for byte. Report-level pins are
/// schedule-scoped where the backends measure different things: a
/// threaded→sim resume restarts the simulator's cost-model aggregates
/// (sim seconds, bytes) and eval history from zero (docs/RECOVERY.md), so
/// those fields are not compared.
#[test]
fn checkpoints_resume_across_backends_with_identical_traces() {
    let scenario = scaled();
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(scenario.delta));
    cfg.delta_policy = Some(PolicySpec::adaptive_default());
    // Same mid-outage halt round the single-backend kill/resume test uses.
    let halt = 12usize;

    // sim image → threaded resume: every report field is schedule-derived, so
    // the resumed cluster's full reports match the uninterrupted run's.
    let (thr_full_log, thr_full_report) = threaded_run(&cfg);
    let dir = CkptDir::new("sim-to-threaded");
    let mut halted = cfg.clone();
    halted.checkpoint = Some(dir.spec(6, Some(halt)));
    sim_run(&halted);
    let ckpt = Checkpoint::read_file(dir.0.join(format!("ckpt-{halt}"))).expect("sim image");
    assert_eq!(ckpt.backend, "sim");
    let mut resumed_cfg = halted.clone();
    resumed_cfg.trace = TraceSink::capture(TraceGranularity::Full);
    let reports = run_threaded_selsync_resumed(&resumed_cfg, &ckpt);
    assert_logs_equal(
        &thr_full_log,
        &resumed_cfg.trace.take_log().encode(),
        "uninterrupted threaded",
        "sim-image resume",
        "sim→threaded",
    );
    assert_eq!(
        format!("{reports:?}"),
        thr_full_report,
        "threaded reports after a sim-image resume must match the uninterrupted run"
    );

    // threaded image → sim resume: the trace and every schedule-level report
    // fact must match; cost aggregates and history are sim-only and excluded.
    let (sim_full_log, _) = sim_run(&cfg);
    let full = {
        let mut c = cfg.clone();
        c.trace = TraceSink::capture(TraceGranularity::Full);
        algorithms::run(&c)
    };
    let dir = CkptDir::new("threaded-to-sim");
    let mut halted = cfg.clone();
    halted.checkpoint = Some(dir.spec(6, Some(halt)));
    threaded_run(&halted);
    let ckpt = Checkpoint::read_file(dir.0.join(format!("ckpt-{halt}"))).expect("threaded image");
    assert_eq!(ckpt.backend, "threaded");
    let mut resumed_cfg = halted.clone();
    resumed_cfg.trace = TraceSink::capture(TraceGranularity::Full);
    let resumed = selsync_repro::core::algorithms::selsync::run_resumed(&resumed_cfg, &ckpt);
    assert_logs_equal(
        &sim_full_log,
        &resumed_cfg.trace.take_log().encode(),
        "uninterrupted sim",
        "threaded-image resume",
        "threaded→sim",
    );
    assert_eq!(resumed.sync_rounds, full.sync_rounds, "sync schedule");
    assert_eq!(resumed.sync_steps, full.sync_steps, "sync steps");
    assert_eq!(resumed.local_steps, full.local_steps, "local steps");
    assert_eq!(
        resumed.final_loss.to_bits(),
        full.final_loss.to_bits(),
        "final loss"
    );
    assert_eq!(
        resumed.final_metric.to_bits(),
        full.final_metric.to_bits(),
        "final metric"
    );
    assert_eq!(
        resumed.max_delta.to_bits(),
        full.max_delta.to_bits(),
        "max Δ(g_i)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill at a *random* checkpointed round — inside an outage window, at its
    /// edges, or in steady state — and resume: trace and report must equal the
    /// uninterrupted run's byte for byte.
    #[test]
    fn kill_at_any_checkpointed_round_resumes_byte_identically(
        halt in 0usize..29,
        adaptive in 0u8..2,
    ) {
        let scenario = scaled();
        let mut cfg = scenario.train_config(AlgorithmSpec::selsync(scenario.delta));
        cfg.delta_policy = (adaptive == 1).then(PolicySpec::adaptive_default);
        let (full_log, full_report) = sim_run(&cfg);

        let dir = CkptDir::new(&format!("prop-{halt}-{adaptive}"));
        let mut halted = cfg.clone();
        halted.checkpoint = Some(dir.spec(7, Some(halt)));
        sim_run(&halted);
        let ckpt = Checkpoint::read_file(dir.0.join(format!("ckpt-{halt}")))
            .expect("halt round writes an image");
        let mut resumed_cfg = halted.clone();
        resumed_cfg.trace = TraceSink::capture(TraceGranularity::Full);
        let report = selsync_repro::core::algorithms::selsync::run_resumed(&resumed_cfg, &ckpt);
        let resumed_log = resumed_cfg.trace.take_log().encode();
        prop_assert_eq!(&resumed_log, &full_log, "trace must match at halt {}", halt);
        prop_assert_eq!(format!("{report:?}"), full_report, "report must match at halt {}", halt);
    }
}

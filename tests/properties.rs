//! Property-based tests (proptest) over the core data structures and invariants that the
//! paper's mechanism depends on: partitioning, the δ policy, aggregation, compression,
//! EWMA smoothing and the flat parameter round-trip.

use proptest::prelude::*;
use selsync_repro::compress::{
    decompress_dense, Compressor, ErrorFeedback, SignSgd, TernGrad, TopK,
};
use selsync_repro::core::aggregation::{average, replica_divergence};
use selsync_repro::core::policy::{SyncDecision, SyncPolicy};
use selsync_repro::core::tracker::{GradStatistic, GradientTracker};
use selsync_repro::data::injection::DataInjection;
use selsync_repro::data::partition::{build_all, chunk_boundaries, PartitionScheme};
use selsync_repro::metrics::Ewma;
use selsync_repro::nn::layer::Linear;
use selsync_repro::nn::model::Sequential;
use selsync_repro::tensor::rng::seeded;
use selsync_repro::tensor::{ops, par, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----- partitioning -----------------------------------------------------------

    #[test]
    fn defdp_is_a_partition_of_all_samples(samples in 1usize..2000, workers in 1usize..20) {
        let parts = build_all(PartitionScheme::DefDp, samples, workers);
        let mut all: Vec<usize> = parts.iter().flat_map(|p| p.order().to_vec()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..samples).collect::<Vec<_>>());
    }

    #[test]
    fn seldp_gives_every_worker_a_permutation(samples in 1usize..2000, workers in 1usize..20) {
        let parts = build_all(PartitionScheme::SelDp, samples, workers);
        for p in &parts {
            let mut sorted = p.order().to_vec();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..samples).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_boundaries_are_contiguous_and_cover(samples in 0usize..5000, workers in 1usize..32) {
        let b = chunk_boundaries(samples, workers);
        prop_assert_eq!(b.len(), workers);
        prop_assert_eq!(b[0].0, 0);
        prop_assert_eq!(b[workers - 1].1, samples);
        for w in 1..workers {
            prop_assert_eq!(b[w].0, b[w - 1].1);
        }
        // Chunk sizes differ by at most one sample.
        let sizes: Vec<usize> = b.iter().map(|(s, e)| e - s).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    // ----- data-injection (Eqn. 3) ------------------------------------------------

    #[test]
    fn adjusted_batch_is_positive_and_never_larger_than_original(
        batch in 1usize..512,
        workers in 1usize..64,
        alpha in 0.0f32..1.0,
        beta in 0.0f32..1.0,
    ) {
        let inj = DataInjection::new(alpha, beta);
        let b = inj.adjusted_batch_size(batch, workers);
        prop_assert!(b >= 1);
        prop_assert!(b <= batch.max(1));
    }

    // ----- the δ policy -----------------------------------------------------------

    #[test]
    fn policy_is_monotone_in_delta(deltas in proptest::collection::vec(0.0f32..2.0, 1..16)) {
        // If a lower threshold says "Local", any higher threshold must also say "Local".
        let thresholds = [0.0f32, 0.1, 0.25, 0.5, 1.0, 2.5];
        let mut prev_sync = true;
        for &t in &thresholds {
            let sync = SyncPolicy::new(t).decide_from_deltas(&deltas) == SyncDecision::Synchronize;
            prop_assert!(!sync || prev_sync, "decision must be monotone in delta");
            prev_sync = sync;
        }
        // δ=0 always synchronizes (Δ(g_i) ≥ 0 by construction).
        prop_assert_eq!(SyncPolicy::new(0.0).decide_from_deltas(&deltas), SyncDecision::Synchronize);
    }

    #[test]
    fn tracker_deltas_are_finite_and_nonnegative(
        stats in proptest::collection::vec(0.0f32..1000.0, 2..200),
    ) {
        let mut tracker = GradientTracker::new(GradStatistic::SqNorm, 0.2, 25);
        for &s in &stats {
            let d = tracker.update_with_statistic(s);
            prop_assert!(d.is_finite());
            prop_assert!(d >= 0.0);
        }
        prop_assert!(tracker.max_delta() >= tracker.last_delta() || tracker.last_delta() == tracker.max_delta());
    }

    // ----- aggregation ------------------------------------------------------------

    #[test]
    fn average_is_permutation_invariant_and_bounded(
        vecs in proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 8), 1..8),
    ) {
        let avg = average(&vecs);
        let mut reversed = vecs.clone();
        reversed.reverse();
        let avg_rev = average(&reversed);
        for (a, b) in avg.iter().zip(avg_rev.iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        // Each coordinate of the mean lies within the coordinate-wise min/max.
        for i in 0..8 {
            let lo = vecs.iter().map(|v| v[i]).fold(f32::INFINITY, f32::min);
            let hi = vecs.iter().map(|v| v[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[i] >= lo - 1e-4 && avg[i] <= hi + 1e-4);
        }
    }

    #[test]
    fn parameter_aggregation_never_increases_divergence(
        vecs in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 6), 2..6),
    ) {
        let before = replica_divergence(&vecs);
        let avg = average(&vecs);
        let after: Vec<Vec<f32>> = vecs.iter().map(|_| avg.clone()).collect();
        prop_assert!(replica_divergence(&after) <= before + 1e-6);
    }

    // ----- compression ------------------------------------------------------------

    #[test]
    fn topk_keeps_the_true_largest_magnitudes(grad in proptest::collection::vec(-100.0f32..100.0, 1..256)) {
        let mut c = TopK::new(0.25);
        let payload = c.compress(&grad);
        let dense = decompress_dense(&payload);
        // Every transmitted coordinate's magnitude is >= every dropped coordinate's magnitude.
        let kept_min = dense
            .iter()
            .zip(grad.iter())
            .filter(|(d, _)| **d != 0.0)
            .map(|(_, g)| g.abs())
            .fold(f32::INFINITY, f32::min);
        let dropped_max = dense
            .iter()
            .zip(grad.iter())
            .filter(|(d, g)| **d == 0.0 && **g != 0.0)
            .map(|(_, g)| g.abs())
            .fold(0.0f32, f32::max);
        prop_assert!(kept_min + 1e-6 >= dropped_max, "kept_min {kept_min} dropped_max {dropped_max}");
    }

    #[test]
    fn error_feedback_conserves_compensated_mass(grad in proptest::collection::vec(-10.0f32..10.0, 4..64)) {
        let mut ef = ErrorFeedback::new(TopK::new(0.25));
        let payload = ef.compress(&grad);
        let sent = decompress_dense(&payload);
        for i in 0..grad.len() {
            // grad (+ zero initial residual) == sent + residual, coordinate-wise.
            prop_assert!((grad[i] - (sent[i] + ef.residual()[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn sign_and_ternary_compression_preserve_dimensions(grad in proptest::collection::vec(-1.0f32..1.0, 1..128)) {
        let mut s = SignSgd::new();
        let mut t = TernGrad::new(1);
        prop_assert_eq!(decompress_dense(&s.compress(&grad)).len(), grad.len());
        prop_assert_eq!(decompress_dense(&t.compress(&grad)).len(), grad.len());
    }

    // ----- thread-count determinism of the compute backend --------------------------

    #[test]
    fn matmul_kernels_are_bit_identical_for_1_vs_4_threads(
        m in 24usize..72,
        k in 24usize..72,
        n in 24usize..72,
        seed in 0u64..10_000,
    ) {
        // Shapes straddle the parallel threshold, so both the serial and the
        // multi-threaded tiled paths are exercised.
        let mut r = seeded(seed);
        let mut a = Tensor::zeros(m, k);
        let mut b = Tensor::zeros(k, n);
        selsync_repro::tensor::rng::fill_uniform(&mut r, a.data_mut(), -2.0, 2.0);
        selsync_repro::tensor::rng::fill_uniform(&mut r, b.data_mut(), -2.0, 2.0);
        let one = par::with_threads(1, || ops::matmul(&a, &b).unwrap());
        let four = par::with_threads(4, || ops::matmul(&a, &b).unwrap());
        prop_assert_eq!(one.data(), four.data());

        let mut bt = Tensor::zeros(n, k);
        selsync_repro::tensor::rng::fill_uniform(&mut r, bt.data_mut(), -2.0, 2.0);
        let one_bt = par::with_threads(1, || ops::matmul_bt(&a, &bt).unwrap());
        let four_bt = par::with_threads(4, || ops::matmul_bt(&a, &bt).unwrap());
        prop_assert_eq!(one_bt.data(), four_bt.data());

        let mut at = Tensor::zeros(m, n);
        selsync_repro::tensor::rng::fill_uniform(&mut r, at.data_mut(), -2.0, 2.0);
        let one_at = par::with_threads(1, || ops::matmul_at(&a, &at).unwrap());
        let four_at = par::with_threads(4, || ops::matmul_at(&a, &at).unwrap());
        prop_assert_eq!(one_at.data(), four_at.data());
    }

    #[test]
    fn aggregation_is_bit_identical_for_1_vs_4_threads(
        replicas in 2usize..6,
        dim in 1usize..40_000,
        seed in 0u64..10_000,
    ) {
        // `dim` crosses the fixed ELEM_CHUNK boundary, so both the single-chunk and
        // the multi-chunk parallel paths are exercised.
        let mut r = seeded(seed ^ 0xA66);
        let vecs: Vec<Vec<f32>> = (0..replicas)
            .map(|_| {
                let mut v = vec![0.0f32; dim];
                selsync_repro::tensor::rng::fill_uniform(&mut r, &mut v, -5.0, 5.0);
                v
            })
            .collect();
        let one = par::with_threads(1, || average(&vecs));
        let four = par::with_threads(4, || average(&vecs));
        prop_assert_eq!(one, four);
    }

    // ----- EWMA ---------------------------------------------------------------------

    #[test]
    fn ewma_stays_within_observed_range(
        xs in proptest::collection::vec(0.0f32..100.0, 1..100),
        factor in 0.01f32..1.0,
    ) {
        let mut e = Ewma::new(factor, 25);
        let lo = xs.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for &x in &xs {
            let s = e.update(x);
            prop_assert!(s >= lo - 1e-4 && s <= hi + 1e-4);
        }
    }

    // ----- flat parameter round-trip -------------------------------------------------

    #[test]
    fn params_flat_roundtrip_is_identity(seed in 0u64..1000, scale in 0.1f32..3.0) {
        let mut r = seeded(seed);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(&mut r, 6, 9)));
        net.push(Box::new(Linear::new(&mut r, 9, 4)));
        let original = net.params_flat();
        let scaled: Vec<f32> = original.iter().map(|x| x * scale).collect();
        net.set_params_flat(&scaled);
        prop_assert_eq!(net.params_flat(), scaled);
        net.set_params_flat(&original);
        prop_assert_eq!(net.params_flat(), original);
    }
}

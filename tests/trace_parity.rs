//! Event-log parity: both SelSync backends — the deterministic simulator and the
//! thread-per-worker cluster over the real PS and collectives — must emit the *same*
//! canonical event stream, byte for byte, for the same config.
//!
//! This is the observability layer's determinism contract (see `docs/EVENT_LOG.md`):
//! the encoded log has no timestamps and no backend tag, the sink canonically orders
//! events by `(round, kind, worker)`, and every recorded value is a pure function of
//! the config and schedule — membership and fault edges from the deterministic
//! `ClusterConditions`, round decisions from the worker-order-merged signal stream,
//! rejoin pulls from the round-keyed snapshot ring. So `encode()` output must be
//! identical across backends *and* across `SELSYNC_THREADS` settings, on crash/rejoin
//! and elastic-churn schedules, for fixed, scheduled and adaptive δ policies alike.

use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, RejoinPull, TrainConfig};
use selsync_repro::core::policy::PolicySpec;
use selsync_repro::core::threaded::run_threaded_selsync;
use selsync_repro::scenario::{builtin, sweep, Scenario};
use selsync_repro::tensor::par;
use selsync_repro::tracelog::{
    explain, first_divergence, Event, EventLog, TraceGranularity, TraceSink,
};

/// Same scaled-down scenario copies the schedule-parity suite uses.
fn scaled(name: &str) -> Scenario {
    let mut s = builtin(name).expect("built-in scenario");
    sweep::rescale_fault_windows(&mut s, 30);
    s.eval_every = 10;
    s.train_samples = 512;
    s.test_samples = 128;
    s.eval_samples = 128;
    s.batch_size = 8;
    s.sweep = None;
    s
}

/// Mixed-schedule δ shared with the schedule-parity suite.
const MIXED_DELTA: f32 = 0.055;

/// The three policy arms of the acceptance matrix.
fn arms() -> Vec<(&'static str, Option<PolicySpec>)> {
    vec![
        ("fixed", None),
        (
            "scheduled",
            Some(PolicySpec::Schedule {
                starts: vec![0, 10],
                deltas: vec![0.0, MIXED_DELTA],
            }),
        ),
        ("adaptive", Some(PolicySpec::adaptive_default())),
    ]
}

/// Run the simulator with a fresh full-granularity sink and return the encoded log.
fn sim_trace(cfg: &TrainConfig) -> String {
    let mut cfg = cfg.clone();
    cfg.trace = TraceSink::capture(TraceGranularity::Full);
    algorithms::run(&cfg);
    cfg.trace.take_log().encode()
}

/// Run the threaded cluster with a fresh full-granularity sink and return the encoded log.
fn threaded_trace(cfg: &TrainConfig) -> String {
    let mut cfg = cfg.clone();
    cfg.trace = TraceSink::capture(TraceGranularity::Full);
    run_threaded_selsync(&cfg);
    cfg.trace.take_log().encode()
}

/// Decode both logs and panic with the trace-diff explanation when they differ.
fn assert_logs_equal(left: &str, right: &str, left_label: &str, right_label: &str, ctx: &str) {
    if left == right {
        return;
    }
    let a = EventLog::decode(left).expect("left log decodes");
    let b = EventLog::decode(right).expect("right log decodes");
    match first_divergence(&a, &b) {
        Some(div) => panic!(
            "{ctx}: event logs diverged\n{}",
            explain(&div, left_label, right_label)
        ),
        None => panic!("{ctx}: logs differ as text but not as events — codec drift?"),
    }
}

fn trace_matrix(scenario_name: &str) {
    let scenario = scaled(scenario_name);
    for (arm, policy) in arms() {
        let mut cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
        cfg.delta_policy = policy;
        assert_eq!(
            cfg.rejoin_pull,
            RejoinPull::Scheduled,
            "{scenario_name}: crash built-ins ship scheduled pulls, which is what \
             makes the rejoin-pull events deterministic"
        );
        let label = format!("{scenario_name}/{arm}");
        let (sim_ref, thr_ref) = par::with_threads(1, || (sim_trace(&cfg), threaded_trace(&cfg)));
        assert!(
            sim_ref.lines().count() > 1,
            "{label}: the run must log more than a header"
        );
        assert_logs_equal(&sim_ref, &thr_ref, "simulator", "threaded", &label);
        for threads in [2usize, 4] {
            let (sim, thr) = par::with_threads(threads, || (sim_trace(&cfg), threaded_trace(&cfg)));
            assert_eq!(sim, sim_ref, "{label}: simulator log at {threads} threads");
            assert_eq!(thr, thr_ref, "{label}: threaded log at {threads} threads");
        }
    }
}

#[test]
fn crash_rejoin_trace_is_byte_identical_across_backends_and_thread_counts() {
    trace_matrix("crash-rejoin");
}

#[test]
fn elastic_churn_trace_is_byte_identical_across_backends_and_thread_counts() {
    trace_matrix("elastic-churn");
}

/// The committed elastic-churn adaptive trace (recorded with
/// `scenario_replay --record`) must be reproduced byte-for-byte by a live run —
/// the recorded-log regression the replay tool automates.
#[test]
fn committed_elastic_churn_adaptive_trace_replays_clean() {
    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/elastic_churn_adaptive.trace.jsonl"
    ))
    .expect("committed trace file");
    let scenario = scaled("elastic-churn");
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    cfg.delta_policy = Some(PolicySpec::adaptive_default());
    let live = sim_trace(&cfg);
    assert_logs_equal(
        &committed,
        &live,
        "committed",
        "live",
        "elastic-churn/adaptive",
    );
}

/// Mutating a single event must be pinned to its round and field by the diff engine.
#[test]
fn single_event_mutation_is_pinned_to_round_and_field() {
    let scenario = scaled("crash-rejoin");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    let mut cfg = cfg;
    cfg.trace = TraceSink::capture(TraceGranularity::Full);
    algorithms::run(&cfg);
    let reference = cfg.trace.take_log();
    let mut mutated = reference.clone();
    let (idx, round) = mutated
        .events
        .iter()
        .enumerate()
        .find_map(|(i, e)| match e {
            Event::Round { round, .. } => Some((i, *round)),
            _ => None,
        })
        .expect("the run logs round events");
    if let Event::Round { synced, .. } = &mut mutated.events[idx] {
        *synced = !*synced;
    }
    let div = first_divergence(&reference, &mutated).expect("mutation must be detected");
    assert_eq!(div.round, Some(round));
    assert!(
        div.fields.iter().any(|f| f.field == "synced"),
        "the flipped field must be named: {:?}",
        div.fields
    );
    let text = explain(&div, "reference", "mutated");
    assert!(text.contains(&format!("round {round}")), "{text}");
    assert!(text.contains("`synced`"), "{text}");
}

//! Multi-process cluster parity acceptance suite (see `docs/TRANSPORT.md`).
//!
//! The `scenario_cluster` contract, pinned over *real OS processes*: one
//! process per worker plus a parameter-server hub process, talking over a Unix
//! domain socket through [`selsync_repro::comm::socket::SocketTransport`], must
//! produce — after merging the per-process trace shards — the byte-identical
//! event log of the sequential simulator, and every worker's synchronization
//! schedule must equal the simulator's restricted to that worker's present
//! rounds. Covered across worker counts {2, 4} on both a crash/rejoin schedule
//! and `[comm_faults]` link weather.
//!
//! Process harness: integration tests cannot reach the bench crate's binaries,
//! so the suite re-executes *its own* test binary. The hidden
//! [`process_child_entry`] test is a no-op under a normal run; when the
//! `SELSYNC_PROCESS_ROLE` environment variable is set it becomes a cluster
//! role (hub or worker), runs the shared per-case configuration against the
//! hub socket, and writes its shard to `SELSYNC_PROCESS_OUT`.

use selsync_repro::comm::faults::{CommFaultSpec, PsFaultSpec};
use selsync_repro::comm::socket::SocketAddrSpec;
use selsync_repro::core::algorithms;
use selsync_repro::core::checkpoint::Checkpoint;
use selsync_repro::core::conditions::{ClusterConditions, FaultEvent};
use selsync_repro::core::config::{AlgorithmSpec, CheckpointSpec, RejoinPull, TrainConfig};
use selsync_repro::core::policy::PolicySpec;
use selsync_repro::core::process::{
    decode_worker_report, run_process_hub_with, run_process_worker_with, WorkerOptions,
};
use selsync_repro::core::threaded::ThreadedWorkerReport;
use selsync_repro::nn::model::ModelKind;
use selsync_repro::tracelog::{EventLog, TraceGranularity, TraceSink};
use std::path::{Path, PathBuf};
use std::process::Command;

/// The shared per-case configuration — the single source of truth the parent
/// (for the simulator reference) and every child role derive independently.
/// Case tags are `<schedule>-w<workers>`.
fn test_cfg(case: &str) -> TrainConfig {
    let (schedule, workers) = case
        .rsplit_once("-w")
        .expect("case tag like crash-rejoin-w4");
    let workers: usize = workers.parse().expect("worker count suffix");
    let mut c = TrainConfig::small(ModelKind::ResNetLike, workers);
    c.iterations = 36;
    c.batch_size = 8;
    c.train_samples = 512;
    c.test_samples = 128;
    c.trace = TraceSink::capture(TraceGranularity::Full);
    c.algorithm = AlgorithmSpec::selsync(0.05);
    match schedule {
        "crash-rejoin" => {
            // Deterministic rejoin pulls are what makes a crash schedule
            // simulator-comparable; the last worker crashes mid-run and
            // rejoins, and the 4-worker case adds a permanent late crash.
            c.rejoin_pull = RejoinPull::Scheduled;
            c.conditions = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
                worker: workers - 1,
                start: 8,
                rejoin: Some(20),
            });
            if workers >= 4 {
                c.delta_policy = Some(PolicySpec::adaptive_default());
                c.conditions = c.conditions.with_fault(FaultEvent::Crash {
                    worker: 2,
                    start: 28,
                    rejoin: None,
                });
            }
        }
        "flaky-links" => {
            // The flaky-links built-in's link weather: every fault fate rides
            // the socket transport through the FaultyTransport decorator.
            c.comm_faults = Some(CommFaultSpec {
                seed: 42,
                drop: 0.08,
                duplicate: 0.04,
                corrupt: 0.02,
                delay: 0.06,
                delay_rounds: 0,
                retry_budget: 5,
                timeout_s: 5e-3,
            });
        }
        "noniid" => {
            // Label-sharded (non-IID) worker data; the CIFAR10-like set has 10
            // classes, so labels × workers must cover them.
            c.non_iid_labels_per_worker = Some(if workers >= 4 { 3 } else { 5 });
        }
        "kill" => {
            // A fault-free schedule; the only membership change is the runtime
            // worker death the test injects via SELSYNC_PROCESS_KILL. The
            // 4-worker case runs the adaptive policy across the death.
            if workers >= 4 {
                c.delta_policy = Some(PolicySpec::adaptive_default());
            }
        }
        "ckpt" => {
            // A PS outage window straddles the halt round and the adaptive
            // policy carries cross-round state through it — the checkpoint
            // image must capture both.
            c.ps_faults = Some(PsFaultSpec {
                seed: 11,
                windows: vec![(9, 3)],
                flaky: 0.0,
            });
            c.delta_policy = Some(PolicySpec::adaptive_default());
        }
        other => panic!("unknown case schedule {other:?}"),
    }
    c
}

/// Hidden child entry. A no-op test under a normal run; a cluster role when
/// the parent re-executed this binary with the `SELSYNC_PROCESS_*` variables.
#[test]
fn process_child_entry() {
    let Ok(role) = std::env::var("SELSYNC_PROCESS_ROLE") else {
        return;
    };
    let case = std::env::var("SELSYNC_PROCESS_CASE").expect("case env");
    let out = std::env::var("SELSYNC_PROCESS_OUT").expect("out env");
    let socket = std::env::var("SELSYNC_PROCESS_SOCKET").expect("socket env");
    let addr = SocketAddrSpec::parse(&socket);
    let mut cfg = test_cfg(&case);
    // Runtime knobs beyond the shared case config: a checkpoint policy, an
    // image to resume from, and a scheduled abrupt death.
    if let Ok(dir) = std::env::var("SELSYNC_PROCESS_CKPT_DIR") {
        cfg.checkpoint = Some(CheckpointSpec {
            every: std::env::var("SELSYNC_PROCESS_CKPT_EVERY")
                .expect("ckpt dir implies a cadence")
                .parse()
                .expect("cadence parses"),
            dir,
            halt_after: std::env::var("SELSYNC_PROCESS_HALT")
                .ok()
                .map(|v| v.parse().expect("halt round parses")),
            keep: None,
        });
    }
    let resume = std::env::var("SELSYNC_PROCESS_RESUME")
        .ok()
        .map(|path| Checkpoint::read_file(Path::new(&path)).expect("resume image reads back"));
    let kill: Option<(usize, usize)> = std::env::var("SELSYNC_PROCESS_KILL").ok().map(|v| {
        let (w, r) = v.split_once(':').expect("kill spec like 1:12");
        (
            w.parse().expect("kill worker"),
            r.parse().expect("kill round"),
        )
    });
    let output = match role.as_str() {
        "hub" => run_process_hub_with(&cfg, &addr, resume.as_ref()),
        "worker" => {
            let index: usize = std::env::var("SELSYNC_PROCESS_INDEX")
                .expect("index env")
                .parse()
                .expect("index parses");
            let opts = WorkerOptions {
                resume: resume.as_ref(),
                kill_at: kill.and_then(|(w, r)| (w == index).then_some(r)),
            };
            let (report, shard) = run_process_worker_with(&cfg, index, &addr, opts);
            format!(
                "{}\n{shard}",
                selsync_repro::core::process::encode_worker_report(&report)
            )
        }
        other => panic!("unknown role {other:?}"),
    };
    std::fs::write(&out, output).expect("child writes its output file");
}

fn spawn_role(
    case: &str,
    role: &str,
    index: usize,
    socket: &Path,
    dir: &Path,
    extra_env: &[(&str, String)],
) -> (std::process::Child, PathBuf) {
    let out = dir.join(format!("{role}{index}.out"));
    let exe = std::env::current_exe().expect("current test binary");
    let mut command = Command::new(exe);
    command
        .arg("process_child_entry")
        .arg("--exact")
        .env("SELSYNC_PROCESS_ROLE", role)
        .env("SELSYNC_PROCESS_CASE", case)
        .env("SELSYNC_PROCESS_INDEX", index.to_string())
        .env("SELSYNC_PROCESS_SOCKET", socket)
        .env("SELSYNC_PROCESS_OUT", &out);
    for (key, value) in extra_env {
        command.env(key, value);
    }
    let child = command
        .spawn()
        .unwrap_or_else(|e| panic!("failed to spawn {role} {index}: {e}"));
    (child, out)
}

/// Spawn the hub + worker processes for one case with the given runtime knobs,
/// wait for them all, and return the sorted reports plus the merged shard log.
fn run_cluster(
    case: &str,
    workers: usize,
    tag: &str,
    extra_env: &[(&str, String)],
) -> (Vec<ThreadedWorkerReport>, String) {
    let dir = std::env::temp_dir().join(format!(
        "selsync-process-parity-{}-{case}-{tag}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create case dir");
    let socket = dir.join("hub.sock");

    let mut children = vec![spawn_role(case, "hub", 0, &socket, &dir, extra_env)];
    for w in 0..workers {
        children.push(spawn_role(case, "worker", w, &socket, &dir, extra_env));
    }
    let mut outputs = Vec::new();
    for (mut child, out) in children {
        let status = child.wait().expect("wait for child process");
        assert!(
            status.success(),
            "{case}: {} failed ({status})",
            out.display()
        );
        outputs.push(std::fs::read_to_string(&out).expect("read child output"));
    }

    let mut shards = vec![EventLog::decode(&outputs[0]).expect("hub shard decodes")];
    let mut reports = Vec::new();
    for text in &outputs[1..] {
        let (line, shard) = text
            .split_once('\n')
            .expect("worker output has a report line");
        reports.push(decode_worker_report(line).expect("worker report decodes"));
        shards.push(EventLog::decode(shard).expect("worker shard decodes"));
    }
    reports.sort_by_key(|r| r.worker);
    let merged = EventLog::merge(shards).encode();
    let _ = std::fs::remove_dir_all(&dir);
    (reports, merged)
}

/// Pin one cluster run against the in-process simulator on `cfg`: byte-equal
/// merged logs, and per-worker schedules equal to the simulator's restricted
/// to each worker's present rounds.
fn assert_cluster_matches_sim(
    case: &str,
    cfg: &TrainConfig,
    reports: &[ThreadedWorkerReport],
    merged: &str,
) {
    let sim_report = algorithms::run(cfg);
    let sim_trace = cfg.trace.take_log().encode();
    assert_eq!(
        merged, sim_trace,
        "{case}: merged process shards diverged from the simulator's event log"
    );
    let effective = cfg.effective_conditions();
    for r in reports {
        let expected: Vec<usize> = sim_report
            .sync_rounds
            .iter()
            .copied()
            .filter(|&round| effective.is_present(r.worker, round))
            .collect();
        assert_eq!(
            r.sync_rounds, expected,
            "{case}: worker {} schedule diverged from the simulator's",
            r.worker
        );
    }
}

/// Spawn the hub + worker processes for one case, merge their shards and pin
/// them against the in-process simulator.
fn run_cluster_case(case: &str) {
    let cfg = test_cfg(case);
    let (reports, merged) = run_cluster(case, cfg.workers, "base", &[]);
    assert_cluster_matches_sim(case, &cfg, &reports, &merged);
}

/// Kill one worker's process abruptly mid-run; the surviving cluster must be
/// byte-identical to the simulator running the equivalent scheduled no-rejoin
/// crash.
fn run_kill_case(case: &str, kill: (usize, usize)) {
    let mut cfg = test_cfg(case);
    cfg.conditions = cfg.conditions.clone().with_fault(FaultEvent::Crash {
        worker: kill.0,
        start: kill.1,
        rejoin: None,
    });
    let env = [("SELSYNC_PROCESS_KILL", format!("{}:{}", kill.0, kill.1))];
    let (reports, merged) = run_cluster(case, cfg.workers, "kill", &env);
    assert_cluster_matches_sim(case, &cfg, &reports, &merged);
}

#[test]
fn crash_rejoin_cluster_of_2_processes_matches_the_simulator() {
    run_cluster_case("crash-rejoin-w2");
}

#[test]
fn crash_rejoin_cluster_of_4_processes_matches_the_simulator() {
    run_cluster_case("crash-rejoin-w4");
}

#[test]
fn flaky_links_cluster_of_2_processes_matches_the_simulator() {
    run_cluster_case("flaky-links-w2");
}

#[test]
fn flaky_links_cluster_of_4_processes_matches_the_simulator() {
    run_cluster_case("flaky-links-w4");
}

#[test]
fn non_iid_cluster_of_2_processes_matches_the_simulator() {
    run_cluster_case("noniid-w2");
}

#[test]
fn non_iid_cluster_of_4_processes_matches_the_simulator() {
    run_cluster_case("noniid-w4");
}

#[test]
fn killed_worker_process_evicts_like_a_scheduled_crash_at_2_workers() {
    run_kill_case("kill-w2", (1, 17));
}

#[test]
fn killed_worker_process_evicts_like_a_scheduled_crash_at_4_workers() {
    run_kill_case("kill-w4", (2, 12));
}

/// Halt a checkpointed cluster run mid-training, then resume a fresh set of
/// processes from the halt image: the merged trace and every worker's schedule
/// must be indistinguishable from a run that never stopped.
#[test]
fn cluster_checkpoint_resume_reproduces_the_uninterrupted_run() {
    let case = "ckpt-w2";
    let cfg = test_cfg(case);
    let ckpt_dir = std::env::temp_dir().join(format!(
        "selsync-process-parity-{}-ckpt-images",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");
    let dir_str = ckpt_dir.to_str().expect("utf-8 temp dir").to_string();

    // Phase 1: checkpoint every 5 rounds and halt after round 10.
    let halt_env = [
        ("SELSYNC_PROCESS_CKPT_DIR", dir_str),
        ("SELSYNC_PROCESS_CKPT_EVERY", "5".to_string()),
        ("SELSYNC_PROCESS_HALT", "10".to_string()),
    ];
    let _ = run_cluster(case, cfg.workers, "halt", &halt_env);
    assert!(
        ckpt_dir.join("ckpt-4").exists(),
        "cadence image from round 4 missing"
    );
    let image = ckpt_dir.join("ckpt-10");
    let ckpt = Checkpoint::read_file(&image).expect("halt image reads back");
    assert_eq!(ckpt.backend, "process");
    assert_eq!(ckpt.round, 10);

    // Phase 2: resume from the halt image and run to completion.
    let resume_env = [(
        "SELSYNC_PROCESS_RESUME",
        image.to_str().expect("utf-8 path").to_string(),
    )];
    let (reports, merged) = run_cluster(case, cfg.workers, "resume", &resume_env);
    assert_cluster_matches_sim(case, &cfg, &reports, &merged);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

//! Property tests for the worker-report wire codec
//! (`selsync_repro::core::process::{encode,decode}_worker_report`): round-trip
//! identity for arbitrary reports — empty and large `sync_rounds`, floats as
//! raw bit patterns including NaNs and infinities — plus rejection of
//! truncated and field-reordered report lines.

use proptest::prelude::*;
use selsync_repro::core::process::{decode_worker_report, encode_worker_report};
use selsync_repro::core::threaded::ThreadedWorkerReport;

fn build_report(
    worker: usize,
    sync_steps: u64,
    local_steps: u64,
    sync_rounds: Vec<usize>,
    loss_bits: u32,
    distance_bits: u32,
) -> ThreadedWorkerReport {
    ThreadedWorkerReport {
        worker,
        sync_steps,
        local_steps,
        sync_rounds,
        final_loss: f32::from_bits(loss_bits),
        distance_to_global: f32::from_bits(distance_bits),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn report_round_trip_is_identity(
        worker in 0usize..4096,
        sync_steps in 0u64..u64::MAX,
        local_steps in 0u64..u64::MAX,
        sync_rounds in proptest::collection::vec(0usize..1_000_000, 0..512),
        loss_bits in 0u32..u32::MAX,
        distance_bits in 0u32..u32::MAX,
    ) {
        let report = build_report(
            worker, sync_steps, local_steps, sync_rounds, loss_bits, distance_bits,
        );
        let line = encode_worker_report(&report);
        let parsed = decode_worker_report(&line)
            .unwrap_or_else(|e| panic!("round-trip decode failed: {e}\n---\n{line}"));
        prop_assert_eq!(parsed.worker, report.worker);
        prop_assert_eq!(parsed.sync_steps, report.sync_steps);
        prop_assert_eq!(parsed.local_steps, report.local_steps);
        prop_assert_eq!(&parsed.sync_rounds, &report.sync_rounds);
        // Bit-exact float comparison: the codec ships `to_bits` hex words, so
        // NaN payloads, infinities and signed zeros must all survive.
        prop_assert_eq!(parsed.final_loss.to_bits(), loss_bits);
        prop_assert_eq!(parsed.distance_to_global.to_bits(), distance_bits);
        // Canonical encoding is a fixed point.
        prop_assert_eq!(line, encode_worker_report(&parsed));
    }

    #[test]
    fn truncated_report_lines_are_rejected(
        worker in 0usize..64,
        sync_rounds in proptest::collection::vec(0usize..1000, 0..8),
        loss_bits in 0u32..u32::MAX,
        cut in 0usize..12,
    ) {
        let report = build_report(worker, 9, 27, sync_rounds, loss_bits, loss_bits);
        let line = encode_worker_report(&report);
        let tokens: Vec<&str> = line.split_whitespace().collect();
        prop_assert_eq!(tokens.len(), 12, "report line is six key/value pairs");
        let truncated = tokens[..cut].join(" ");
        prop_assert!(
            decode_worker_report(&truncated).is_err(),
            "prefix of {} tokens must not decode: {:?}",
            cut,
            truncated
        );
    }

    #[test]
    fn reordered_report_fields_are_rejected(
        worker in 0usize..64,
        sync_rounds in proptest::collection::vec(0usize..1000, 0..8),
        loss_bits in 0u32..u32::MAX,
        a in 0usize..6,
        b in 0usize..6,
    ) {
        let report = build_report(worker, 9, 27, sync_rounds, loss_bits, loss_bits);
        let line = encode_worker_report(&report);
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let mut pairs: Vec<&[&str]> = tokens.chunks(2).collect();
        // Swap two distinct key/value pairs; every key is position-checked, so
        // any reordering must fail to decode.
        let b = if a == b { (b + 1) % 6 } else { b };
        pairs.swap(a, b);
        let reordered = pairs.concat().join(" ");
        prop_assert!(
            decode_worker_report(&reordered).is_err(),
            "swapping pairs {} and {} must not decode: {:?}",
            a,
            b,
            reordered
        );
    }
}

/// The non-finite corner cases, pinned explicitly (the property test draws bit
/// patterns uniformly and may miss the named specials in a short run).
#[test]
fn non_finite_floats_round_trip_bit_exactly() {
    let specials = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        -0.0,
        f32::MIN_POSITIVE,
        f32::from_bits(0x7fc0_1234), // payload-carrying NaN
    ];
    for (i, &value) in specials.iter().enumerate() {
        let report = build_report(i, 1, 2, vec![0, 3], value.to_bits(), value.to_bits());
        let parsed = decode_worker_report(&encode_worker_report(&report)).expect("decodes");
        assert_eq!(
            parsed.final_loss.to_bits(),
            value.to_bits(),
            "{value} must survive bit-exactly"
        );
        assert_eq!(parsed.distance_to_global.to_bits(), value.to_bits());
    }
}

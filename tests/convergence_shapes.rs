//! Slower integration tests asserting the qualitative *shapes* the paper reports.
//! Every test here is `#[ignore]`d (slow suite): run with `cargo test -- --ignored`,
//! as CI's `slow-tests` job does.
//!
//! Shapes asserted:
//! SelDP beats DefDP under semi-synchronous training (Fig. 9), parameter aggregation
//! bounds replica divergence where gradient aggregation does not (Fig. 10/11), and
//! non-IID data hurts FedAvg while data-injection recovers accuracy (Fig. 1b / 12).

use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, TrainConfig};
use selsync_repro::data::partition::PartitionScheme;
use selsync_repro::nn::model::ModelKind;

fn shape_cfg(model: ModelKind, workers: usize) -> TrainConfig {
    let mut cfg = TrainConfig::small(model, workers);
    cfg.iterations = 250;
    cfg.eval_every = 50;
    cfg.train_samples = 1536;
    cfg.test_samples = 384;
    cfg.eval_samples = 384;
    cfg.batch_size = 16;
    cfg
}

#[test]
#[ignore = "slow behavioral convergence test; run with --ignored"]
fn seldp_outperforms_defdp_under_mostly_local_training() {
    // With a very high δ (pure local training), DefDP confines each worker to a
    // label-skewed slice of the on-disk sample order; the averaged model generalises far
    // worse than with SelDP, where every worker cycles through all chunks (paper Fig. 9).
    let mut cfg = shape_cfg(ModelKind::ResNetLike, 4);
    cfg.algorithm = AlgorithmSpec::selsync(100.0);

    cfg.partition = PartitionScheme::DefDp;
    let defdp = algorithms::run(&cfg);
    cfg.partition = PartitionScheme::SelDp;
    let seldp = algorithms::run(&cfg);

    assert!(
        seldp.best_metric > defdp.best_metric + 5.0,
        "SelDP ({}) should clearly beat DefDP ({}) under mostly-local training",
        seldp.best_metric,
        defdp.best_metric
    );
}

#[test]
#[ignore = "slow behavioral convergence test; run with --ignored"]
fn parameter_aggregation_matches_or_beats_gradient_aggregation() {
    // Fig. 10: for the models with a learning-rate decay schedule PA converges at least
    // as well as GA for the same number of epochs.
    let mut cfg = shape_cfg(ModelKind::ResNetLike, 4);
    cfg.algorithm = AlgorithmSpec::selsync_ga(0.25);
    let ga = algorithms::run(&cfg);
    cfg.algorithm = AlgorithmSpec::selsync(0.25);
    let pa = algorithms::run(&cfg);
    assert!(
        pa.best_metric >= ga.best_metric - 2.0,
        "PA ({}) should not be meaningfully worse than GA ({})",
        pa.best_metric,
        ga.best_metric
    );
}

#[test]
#[ignore = "slow behavioral convergence test; run with --ignored"]
fn non_iid_data_hurts_fedavg_and_injection_recovers_accuracy() {
    // Fig. 1b: label-sharded data degrades FedAvg accuracy relative to IID data. The
    // synchronization factor is E = 1.0 (one aggregation per epoch), so workers train on
    // their single-label shards for a full local epoch between aggregations.
    let mut iid = shape_cfg(ModelKind::ResNetLike, 10);
    iid.train_samples = 4000;
    iid.algorithm = AlgorithmSpec::FedAvg { c: 1.0, e: 1.0 };
    let iid_report = algorithms::run(&iid);

    let mut noniid = iid.clone();
    noniid.non_iid_labels_per_worker = Some(1);
    let noniid_report = algorithms::run(&noniid);

    assert!(
        noniid_report.final_metric < iid_report.final_metric,
        "non-IID FedAvg ({}) should underperform IID FedAvg ({})",
        noniid_report.final_metric,
        iid_report.final_metric
    );

    // Fig. 12: data-injection on the same non-IID split improves over plain FedAvg.
    let mut injected = noniid.clone();
    injected.algorithm = AlgorithmSpec::selsync_injected(0.75, 0.75, 0.3);
    let injected_report = algorithms::run(&injected);
    assert!(
        injected_report.final_metric >= noniid_report.final_metric,
        "data-injection ({}) should match or beat plain non-IID FedAvg ({})",
        injected_report.final_metric,
        noniid_report.final_metric
    );
}

#[test]
#[ignore = "slow behavioral convergence test; run with --ignored"]
fn communication_cost_ordering_matches_the_cost_model() {
    // For the same iteration count: BSP moves the most data, FedAvg much less, SelSync in
    // between depending on δ, local SGD nothing.
    let mut cfg = shape_cfg(ModelKind::ResNetLike, 4);
    cfg.iterations = 120;

    let mut results = Vec::new();
    for algo in [
        AlgorithmSpec::Bsp,
        AlgorithmSpec::selsync(0.3),
        AlgorithmSpec::FedAvg { c: 1.0, e: 0.5 },
        AlgorithmSpec::LocalSgd,
    ] {
        let mut c = cfg.clone();
        c.algorithm = algo;
        results.push(algorithms::run(&c));
    }
    let bsp = &results[0];
    let sel = &results[1];
    let fed = &results[2];
    let local = &results[3];
    assert!(bsp.bytes_communicated > sel.bytes_communicated);
    assert!(sel.bytes_communicated > local.bytes_communicated);
    assert_eq!(local.bytes_communicated, 0);
    assert!(fed.bytes_communicated < bsp.bytes_communicated);
    // And simulated time follows the same ordering for BSP vs SelSync vs LocalSGD.
    assert!(bsp.sim_time_s > sel.sim_time_s && sel.sim_time_s > local.sim_time_s);
}

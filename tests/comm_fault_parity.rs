//! Message-fault robustness acceptance suite (see `docs/COMM_FAULTS.md`).
//!
//! A seeded `[comm_faults]` schedule must leave both SelSync backends exactly as
//! deterministic as lossless links do: event logs stay byte-identical across the
//! simulator, the threaded cluster and every `SELSYNC_THREADS` setting; retry and
//! eviction events are pure functions of the schedule; duplicate/delay-only weather
//! is observationally indistinguishable from lossless links; and a worker that
//! exhausts its retry budget leaves the run precisely like a scheduled no-rejoin
//! crash at the same round.

use selsync_repro::comm::faults::CommFaultSpec;
use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, TrainConfig};
use selsync_repro::core::threaded::run_threaded_selsync;
use selsync_repro::nn::model::ModelKind;
use selsync_repro::scenario::{builtin, sweep};
use selsync_repro::tensor::par;
use selsync_repro::tracelog::{
    explain, first_divergence, Event, EventLog, TraceGranularity, TraceSink,
};

/// Run the simulator with a fresh full-granularity sink and return the encoded log.
fn sim_trace(cfg: &TrainConfig) -> String {
    let mut cfg = cfg.clone();
    cfg.trace = TraceSink::capture(TraceGranularity::Full);
    algorithms::run(&cfg);
    cfg.trace.take_log().encode()
}

/// Run the threaded cluster with a fresh full-granularity sink and return the encoded log.
fn threaded_trace(cfg: &TrainConfig) -> String {
    let mut cfg = cfg.clone();
    cfg.trace = TraceSink::capture(TraceGranularity::Full);
    run_threaded_selsync(&cfg);
    cfg.trace.take_log().encode()
}

/// Decode both logs and panic with the trace-diff explanation when they differ.
fn assert_logs_equal(left: &str, right: &str, left_label: &str, right_label: &str, ctx: &str) {
    if left == right {
        return;
    }
    let a = EventLog::decode(left).expect("left log decodes");
    let b = EventLog::decode(right).expect("right log decodes");
    match first_divergence(&a, &b) {
        Some(div) => panic!(
            "{ctx}: event logs diverged\n{}",
            explain(&div, left_label, right_label)
        ),
        None => panic!("{ctx}: logs differ as text but not as events — codec drift?"),
    }
}

/// A small direct config with a mixed δ schedule, the shape the threaded unit
/// tests use: 3 workers, 25 rounds, signal-exchanging fixed policy.
fn base_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 3);
    cfg.iterations = 25;
    cfg.batch_size = 8;
    cfg.train_samples = 256;
    cfg.test_samples = 64;
    cfg.algorithm = AlgorithmSpec::selsync(0.05);
    cfg
}

/// Deterministically search for weather that evicts exactly one worker strictly
/// inside the run, so the pre- and post-eviction regimes are both exercised.
fn mid_run_evicting_spec(cfg: &TrainConfig) -> CommFaultSpec {
    let spec_for = |seed| CommFaultSpec {
        seed,
        drop: 0.05,
        duplicate: 0.0,
        corrupt: 0.01,
        delay: 0.0,
        delay_rounds: 0,
        retry_budget: 2,
        timeout_s: 1e-3,
    };
    let seed = (0..500)
        .find(|&seed| {
            let mut probe = cfg.clone();
            probe.comm_faults = Some(spec_for(seed));
            let evictions = probe.comm_fault_evictions();
            evictions.len() == 1 && (3..20).contains(&evictions[0].1)
        })
        .expect("some seed in 0..500 evicts exactly one worker mid-run");
    spec_for(seed)
}

/// The `flaky-links` built-in at smoke scale: lossy enough to retry constantly
/// within 30 rounds, with a budget deep enough that nobody is evicted.
fn flaky_links_cfg() -> TrainConfig {
    let mut s = builtin("flaky-links").expect("built-in scenario");
    sweep::rescale_fault_windows(&mut s, 30);
    s.eval_every = 10;
    s.train_samples = 512;
    s.test_samples = 128;
    s.eval_samples = 128;
    s.batch_size = 8;
    s.sweep = None;
    s.train_config(AlgorithmSpec::selsync(0.055))
}

#[test]
fn flaky_links_trace_is_byte_identical_across_backends_and_thread_counts() {
    let cfg = flaky_links_cfg();
    let (sim_ref, thr_ref) = par::with_threads(1, || (sim_trace(&cfg), threaded_trace(&cfg)));
    assert!(
        sim_ref.contains("\"comm_retry\""),
        "the built-in weather must force retries at smoke scale"
    );
    assert_logs_equal(&sim_ref, &thr_ref, "simulator", "threaded", "flaky-links");
    for threads in [2usize, 4] {
        let (sim, thr) = par::with_threads(threads, || (sim_trace(&cfg), threaded_trace(&cfg)));
        assert_eq!(
            sim, sim_ref,
            "flaky-links: simulator log at {threads} threads"
        );
        assert_eq!(
            thr, thr_ref,
            "flaky-links: threaded log at {threads} threads"
        );
    }
}

#[test]
fn eviction_equals_a_scheduled_crash_modulo_comm_events() {
    let mut cfg = base_cfg();
    cfg.comm_faults = Some(mid_run_evicting_spec(&cfg));
    let faulty = sim_trace(&cfg);
    assert!(
        faulty.contains("\"comm_evict\""),
        "the searched weather must evict"
    );
    // Both backends tell the same eviction story.
    assert_logs_equal(
        &faulty,
        &threaded_trace(&cfg),
        "simulator",
        "threaded",
        "evicting weather",
    );
    // A fault-free run with the eviction pre-compiled as a no-rejoin crash emits
    // the exact same log minus the comm events: membership edges, round decisions
    // and signals are untouched by *how* the worker left.
    let mut crashed = cfg.clone();
    crashed.conditions = cfg.effective_conditions();
    crashed.comm_faults = None;
    let clean = sim_trace(&crashed);
    let filtered = EventLog {
        events: EventLog::decode(&faulty)
            .expect("faulty log decodes")
            .events
            .into_iter()
            .filter(|e| !matches!(e, Event::CommRetry { .. } | Event::CommEvict { .. }))
            .collect(),
    };
    assert_logs_equal(
        &filtered.encode(),
        &clean,
        "faulty-minus-comm",
        "scheduled-crash",
        "evicting weather",
    );
    // The synchronization schedule is identical too.
    let a = algorithms::run(&cfg);
    let b = algorithms::run(&crashed);
    assert_eq!(a.sync_rounds, b.sync_rounds);
    assert_eq!((a.sync_steps, a.local_steps), (b.sync_steps, b.local_steps));
}

#[test]
fn duplicate_and_delay_weather_is_indistinguishable_from_lossless() {
    // Duplicated deliveries are absorbed by envelope-id dedupe and delays only
    // reorder frames within the timeout, so a drop/corrupt-free schedule must be
    // a perfect no-op: identical logs *and* identical reports (no retry pricing).
    let mut cfg = base_cfg();
    cfg.comm_faults = Some(CommFaultSpec {
        seed: 9,
        drop: 0.0,
        duplicate: 0.4,
        corrupt: 0.0,
        delay: 0.3,
        delay_rounds: 0,
        retry_budget: 3,
        timeout_s: 5e-3,
    });
    assert!(cfg.comm_fault_evictions().is_empty());
    let mut lossless = cfg.clone();
    lossless.comm_faults = None;
    assert_eq!(sim_trace(&cfg), sim_trace(&lossless));
    assert_eq!(threaded_trace(&cfg), threaded_trace(&lossless));
    let a = algorithms::run(&cfg);
    let b = algorithms::run(&lossless);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn retries_terminate_within_budget_and_are_priced_into_the_report() {
    let mut cfg = base_cfg();
    let budget = 5;
    cfg.comm_faults = Some(CommFaultSpec {
        seed: 42,
        drop: 0.08,
        duplicate: 0.04,
        corrupt: 0.02,
        delay: 0.06,
        delay_rounds: 0,
        retry_budget: budget,
        timeout_s: 5e-3,
    });
    assert!(cfg.comm_fault_evictions().is_empty());
    let log = EventLog::decode(&sim_trace(&cfg)).expect("log decodes");
    let retries: Vec<u32> = log
        .events
        .iter()
        .filter_map(|e| match e {
            Event::CommRetry { attempts, .. } => Some(*attempts),
            _ => None,
        })
        .collect();
    assert!(!retries.is_empty(), "this weather must retry in 25 rounds");
    assert!(
        retries.iter().all(|&a| a > 1 && a <= budget),
        "every retried op terminates within its budget: {retries:?}"
    );
    // The weather is visible in the cost model (retry backoff + re-sent frames,
    // on top of the δ-signal exchange both runs price), but not in the schedule.
    let mut lossless = cfg.clone();
    lossless.comm_faults = None;
    let faulty_report = algorithms::run(&cfg);
    let clean_report = algorithms::run(&lossless);
    assert_eq!(faulty_report.sync_rounds, clean_report.sync_rounds);
    assert!(faulty_report.bytes_communicated > clean_report.bytes_communicated);
    assert!(faulty_report.sim_time_s > clean_report.sim_time_s);
}

//! Property tests for the event-log codec: `decode(encode(log)) == log` and the
//! canonical encoding is a fixed point, for arbitrary event sequences — every event
//! kind, awkward float mantissas, non-finite floats, option fields, empty arrays,
//! and header strings that need escaping.

use proptest::prelude::*;
use selsync_repro::tracelog::{Event, EventLog, FaultKind, PullKind, WindowEdge, TRACE_VERSION};

/// Header strings are the only free-form text in the format; these candidates cover
/// the escape table (quotes, backslashes, newlines, tabs, control chars, non-ASCII).
const LABELS: &[&str] = &[
    "SelSync(d=0.055,PA)",
    "adaptive(0->0.5,warmup=8,settle=0.05x4,spike=2.5)",
    "quotes \" and \\ backslash",
    "newline\nand\ttab",
    "control\u{1}char",
    "δ-schedule π≈3.14159",
    "",
];

/// Non-finite values are a documented codec deviation (bare `NaN` / `inf` tokens);
/// weave them in alongside ordinary finite draws.
fn pick_f32(raw: f32, selector: u8) -> f32 {
    match selector % 8 {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 0.0,
        4 => -raw,
        _ => raw,
    }
}

/// NaN != NaN, so event equality is checked on the re-encoded line for floats and
/// structurally for everything else. Two events are codec-equal when their canonical
/// lines match byte for byte.
#[allow(clippy::too_many_arguments)]
fn build_event(
    kind: u8,
    round: usize,
    worker: usize,
    raw_a: f32,
    raw_b: f32,
    float_sel: u8,
    bits: u8,
    label_sel: usize,
) -> Event {
    let a = pick_f32(raw_a, float_sel);
    let b = pick_f32(raw_b, float_sel.wrapping_add(3));
    match kind % 7 {
        0 => Event::Header {
            version: TRACE_VERSION,
            algorithm: LABELS[label_sel % LABELS.len()].to_string(),
            policy: LABELS[(label_sel + 1) % LABELS.len()].to_string(),
            workers: worker + 1,
            iterations: round + 1,
            seed: round as u64 ^ 0x5EED,
        },
        1 => Event::Membership {
            round,
            active: (0..worker % 9).collect(),
            joined: if bits & 1 != 0 { vec![worker] } else { vec![] },
            left: if bits & 2 != 0 {
                vec![worker, worker + 1]
            } else {
                vec![]
            },
        },
        2 => Event::FaultWindow {
            round,
            kind: match bits % 3 {
                0 => FaultKind::Slowdown,
                1 => FaultKind::Bandwidth,
                _ => FaultKind::Latency,
            },
            edge: if bits & 4 != 0 {
                WindowEdge::Open
            } else {
                WindowEdge::Close
            },
            worker: (bits & 8 != 0).then_some(worker),
        },
        3 => Event::RejoinPull {
            round,
            worker,
            pull: if bits & 1 != 0 {
                PullKind::Scheduled
            } else {
                PullKind::WallClock
            },
            from: (bits & 2 != 0).then_some(round / 2),
        },
        4 => Event::Signal {
            round,
            mean_loss: a,
            max_delta: b,
        },
        5 => Event::Round {
            round,
            delta: a,
            flags: (0..worker % 9).map(|w| bits >> (w % 8) & 1 != 0).collect(),
            synced: bits & 1 != 0,
        },
        _ => Event::RegimeSwitch {
            round,
            exploit: bits & 1 != 0,
            loss_ewma: a,
            delta_ewma: b,
            mean_loss: pick_f32(raw_a * 0.5, float_sel.wrapping_add(5)),
            max_delta: pick_f32(raw_b * 2.0, float_sel.wrapping_add(6)),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_event_sequences_round_trip_through_the_codec(
        kinds in proptest::collection::vec(0u8..7, 0..24),
        rounds in proptest::collection::vec(0usize..10_000, 24),
        workers in proptest::collection::vec(0usize..32, 24),
        floats_a in proptest::collection::vec(-1.0e6f32..1.0e6, 24),
        floats_b in proptest::collection::vec(1.0e-8f32..1.0, 24),
        float_sels in proptest::collection::vec(0u8..255, 24),
        bits in proptest::collection::vec(0u8..255, 24),
        label_sels in proptest::collection::vec(0usize..64, 24),
    ) {
        let events: Vec<Event> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                build_event(
                    kind, rounds[i], workers[i], floats_a[i], floats_b[i],
                    float_sels[i], bits[i], label_sels[i],
                )
            })
            .collect();
        let log = EventLog { events };

        let text = log.encode();
        let decoded = EventLog::decode(&text)
            .unwrap_or_else(|e| panic!("round-trip decode failed: {e}\n---\n{text}"));
        prop_assert_eq!(decoded.events.len(), log.events.len());
        // Canonical encoding is a fixed point; byte equality of the re-encoded
        // text is the codec's definition of event equality (NaN-safe).
        prop_assert_eq!(&text, &decoded.encode());
        // Structural equality must hold too whenever no NaN is involved.
        for (a, b) in log.events.iter().zip(&decoded.events) {
            let has_nan = selsync_repro::tracelog::codec::encode_event(a).contains("NaN");
            if !has_nan {
                prop_assert_eq!(a, b);
            }
        }
    }
}

//! Determinism of the new δ-policy and sweep paths: the sweep report and the
//! adaptive-δ run must be byte-identical across `SELSYNC_THREADS` values, and a
//! recorded-seed regression pins the adaptive arm's synchronization schedule.

use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, RejoinPull};
use selsync_repro::core::policy::PolicySpec;
use selsync_repro::core::sim::with_sequential_rounds;
use selsync_repro::core::threaded::run_threaded_selsync;
use selsync_repro::core::TrainConfig;
use selsync_repro::nn::model::ModelKind;
use selsync_repro::scenario::{builtin, sweep, ArmKind, Scenario, SweepSpec};
use selsync_repro::tensor::par;

fn adaptive_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
    cfg.iterations = 40;
    cfg.eval_every = 10;
    cfg.train_samples = 512;
    cfg.test_samples = 128;
    cfg.eval_samples = 128;
    cfg.batch_size = 8;
    cfg.algorithm = AlgorithmSpec::selsync(0.3);
    cfg.delta_policy = Some(PolicySpec::adaptive_default());
    cfg
}

fn tiny_sweep_scenario() -> Scenario {
    let mut s = Scenario::base("sweep-determinism", 3, 24);
    s.train_samples = 384;
    s.test_samples = 96;
    s.eval_samples = 96;
    s.batch_size = 8;
    s.eval_every = 6;
    s.sweep = Some(SweepSpec {
        deltas: vec![0.0, 0.1],
        seeds: vec![42, 43],
        policies: vec![PolicySpec::adaptive_default()],
    });
    s
}

#[test]
fn adaptive_run_is_byte_identical_across_thread_counts() {
    let cfg = adaptive_cfg();
    let reference = with_sequential_rounds(|| par::with_threads(1, || algorithms::run(&cfg)));
    let reference = format!("{reference:?}");
    for threads in [1usize, 2, 4] {
        let got = par::with_threads(threads, || algorithms::run(&cfg));
        assert_eq!(
            format!("{got:?}"),
            reference,
            "adaptive-δ run at {threads} threads diverged from the sequential path"
        );
    }
}

#[test]
fn sweep_report_is_byte_identical_across_thread_counts() {
    let scenario = tiny_sweep_scenario();
    let one = par::with_threads(1, || {
        let r = sweep::run_sweep(&scenario).unwrap();
        (r.render(), r.to_json())
    });
    for threads in [2usize, 4] {
        let many = par::with_threads(threads, || {
            let r = sweep::run_sweep(&scenario).unwrap();
            (r.render(), r.to_json())
        });
        assert_eq!(one.0, many.0, "sweep text at {threads} threads");
        assert_eq!(one.1, many.1, "sweep JSON at {threads} threads");
    }
}

#[test]
fn sweep_is_reproducible_across_reruns_with_fixed_seeds() {
    let scenario = tiny_sweep_scenario();
    let a = sweep::run_sweep(&scenario).unwrap();
    let b = sweep::run_sweep(&scenario).unwrap();
    assert_eq!(a.render(), b.render());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn recorded_seed_adaptive_sync_schedule_regression() {
    // The adaptive arm's synchronization schedule at the recorded configuration
    // (ResNet-like, 4 workers, seed 42): dense during the eager descent, empty once
    // the loss settles. Any change to the policy's switching logic, the Δ(g)/loss
    // signals, or the simulator's round semantics shows up here first.
    let report = algorithms::run(&adaptive_cfg());
    let expected: Vec<usize> = (0..=22).collect();
    assert_eq!(
        report.sync_rounds, expected,
        "adaptive arm sync schedule changed"
    );
    assert_eq!(
        report.algorithm,
        "SelSync(adaptive(0->0.5,warmup=8,settle=0.05x4,spike=2.5),PA)"
    );
}

/// The scaled elastic-churn shape the parity suite uses: every fault window mapped
/// into a 30-iteration run by the shared [`sweep::rescale_fault_windows`] helper
/// (rolling crash windows + the bandwidth dip survive the shrink), small datasets,
/// scheduled rejoin pulls from the built-in.
fn scaled_elastic_churn() -> Scenario {
    let mut s = builtin("elastic-churn").expect("built-in scenario");
    sweep::rescale_fault_windows(&mut s, 30);
    s.eval_every = 10;
    s.train_samples = 512;
    s.test_samples = 128;
    s.eval_samples = 128;
    s.batch_size = 8;
    s.sweep = None;
    s
}

#[test]
fn recorded_seed_threaded_adaptive_sync_schedule_regression_on_elastic_churn() {
    // The *threaded* counterpart of the simulator regression above: the adaptive
    // arm's synchronization schedule on the scaled elastic-churn scenario (rolling
    // crash/rejoin churn, seed 42), produced by the shared cluster policy over the
    // real PS/collectives with scheduled rejoin pulls. Any change to the scalar
    // all-reduce, the signal board's ordering, the snapshot ring, or the policy's
    // switching logic shows up here first — and the schedule must stay equal to the
    // simulator's (restricted per worker to its present rounds).
    let scenario = scaled_elastic_churn();
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(0.055));
    cfg.delta_policy = Some(PolicySpec::adaptive_default());
    assert_eq!(cfg.rejoin_pull, RejoinPull::Scheduled);

    let sim = algorithms::run(&cfg);
    // Dense through the churny descent (rounds 0..=19), relaxed once the loss EWMA
    // settles (20..=24 local), re-entering the eager regime at 25 when a rejoiner's
    // restarted tracker spikes Δ(g).
    let expected: Vec<usize> = (0..=19).chain(25..=28).collect();
    assert_eq!(
        sim.sync_rounds, expected,
        "simulator adaptive schedule on elastic-churn changed"
    );

    let reports = run_threaded_selsync(&cfg);
    for r in &reports {
        let mine: Vec<usize> = expected
            .iter()
            .copied()
            .filter(|&round| cfg.conditions.is_present(r.worker, round))
            .collect();
        assert_eq!(
            r.sync_rounds, mine,
            "threaded adaptive schedule changed for worker {}",
            r.worker
        );
    }
}

#[test]
#[ignore = "slow behavioral test; run with --ignored"]
fn adaptive_arm_beats_the_best_fixed_delta_on_elastic_churn() {
    // The sweep acceptance criterion: on the built-in time-varying elastic-churn
    // scenario, the adaptive-δ arm reaches the target accuracy (the δ=0 arm's final
    // metric, 0.5% tolerance) on every seed, spending fewer synchronizations to get
    // there than the best fixed δ that also reaches it on every seed.
    let scenario = builtin("elastic-churn").expect("built-in scenario");
    let report = sweep::run_sweep(&scenario).expect("sweep runs");

    let adaptive = report
        .arms
        .iter()
        .find(|a| matches!(a.kind, ArmKind::Policy(PolicySpec::Adaptive { .. })))
        .expect("elastic-churn carries the adaptive arm");
    assert_eq!(
        adaptive.reached_target,
        report.seeds.len(),
        "adaptive arm must reach the target accuracy on every seed"
    );

    let best_fixed = report
        .best_fixed()
        .expect("some fixed δ reaches the target on every seed");
    let fixed_syncs = report.arms[best_fixed]
        .syncs_to_target
        .expect("best fixed reached the target");
    let adaptive_syncs = adaptive
        .syncs_to_target
        .expect("adaptive reached the target");
    assert!(
        adaptive_syncs < fixed_syncs,
        "adaptive arm must reach the target with fewer syncs than the best fixed δ: \
         adaptive {adaptive_syncs} vs {} {fixed_syncs}",
        report.arms[best_fixed].label
    );
}

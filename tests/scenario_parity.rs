//! Threaded-driver scenario parity: the thread-per-worker SelSync driver over the
//! *real* parameter server and collectives must produce the same synchronization
//! schedule (the rounds where sync fired) as the deterministic simulator, under the
//! same scenario fault schedule and seed.
//!
//! This holds because the threaded driver mirrors the simulator's training semantics
//! exactly — same datasets, same per-worker shuffled traversals, same optimizer and
//! learning-rate schedule, same tracker configuration, same dropout-stream positions —
//! and because the elastic PS round combines contributions in worker-id order, making
//! the synchronized averages bit-identical to the simulator's. Crash faults are
//! excluded: a rejoining thread's PS pull reads wall-clock state (real-cluster
//! semantics), which is deliberately not deterministic.

use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, TrainConfig};
use selsync_repro::core::policy::PolicySpec;
use selsync_repro::core::threaded::run_threaded_selsync;
use selsync_repro::scenario::{builtin, FaultSpec, Scenario};

/// A scaled-down copy of a built-in scenario (fast enough for the default suite),
/// with fault windows rescaled into the shrunk iteration range.
fn scaled(name: &str) -> Scenario {
    let mut s = builtin(name).expect("built-in scenario");
    let ratio = 30.0 / s.iterations as f64;
    for fault in &mut s.faults {
        match fault {
            FaultSpec::Slowdown {
                start, duration, ..
            }
            | FaultSpec::Bandwidth {
                start, duration, ..
            }
            | FaultSpec::Latency {
                start, duration, ..
            } => {
                *start = (*start as f64 * ratio) as usize;
                *duration = ((*duration as f64 * ratio) as usize).max(1);
            }
            FaultSpec::Crash { .. } => panic!("parity scenarios must be crash-free"),
        }
    }
    s.iterations = 30;
    s.eval_every = 10;
    s.train_samples = 512;
    s.test_samples = 128;
    s.eval_samples = 128;
    s.batch_size = 8;
    s.sweep = None;
    s
}

fn assert_parity(cfg: &TrainConfig, label: &str) {
    let sim = algorithms::run(cfg);
    let threaded = run_threaded_selsync(cfg);
    assert_eq!(threaded.len(), cfg.workers);
    for worker in &threaded {
        assert_eq!(
            worker.sync_rounds, sim.sync_rounds,
            "{label}: worker {} sync schedule diverged from the simulator's \
             (sim synced {} of {} rounds)",
            worker.worker, sim.sync_steps, cfg.iterations
        );
        assert_eq!(worker.sync_steps, sim.sync_steps, "{label}");
    }
}

/// δ chosen so the scaled scenarios produce a *mixed* schedule (some rounds sync,
/// some stay local) — the regime where parity is non-trivial. Pinned by the
/// assertions inside the tests.
const MIXED_DELTA: f32 = 0.055;

#[test]
fn steady_scenario_sync_schedule_matches_the_simulator() {
    let scenario = scaled("steady");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    let sim = algorithms::run(&cfg);
    assert!(
        sim.sync_steps > 0 && sim.local_steps > 0,
        "δ={MIXED_DELTA} must give a mixed schedule for the parity to be meaningful \
         (got {} sync / {} local)",
        sim.sync_steps,
        sim.local_steps
    );
    assert_parity(&cfg, "steady");
}

#[test]
fn transient_straggler_scenario_sync_schedule_matches_the_simulator() {
    // The slowdown affects simulated timing only, never values — the threaded driver
    // (which has no notion of simulated time) must still reproduce the schedule.
    let scenario = scaled("transient-straggler");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    assert_parity(&cfg, "transient-straggler");
}

#[test]
fn degraded_network_scenario_sync_schedule_matches_the_simulator() {
    let scenario = scaled("degraded-network");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    assert_parity(&cfg, "degraded-network");
}

#[test]
fn scheduled_policy_sync_schedule_matches_the_simulator() {
    // A scheduled δ policy is a pure function of the iteration, so every threaded
    // worker replica agrees with the simulator's cluster-level policy.
    let scenario = scaled("steady");
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    cfg.delta_policy = Some(PolicySpec::Schedule {
        starts: vec![0, 8, 20],
        deltas: vec![0.0, 1e9, MIXED_DELTA],
    });
    let sim = algorithms::run(&cfg);
    // The schedule's stages are visible in the sync schedule: the first 8 rounds all
    // sync (δ=0), rounds 8..20 never do (δ huge).
    assert!(
        sim.sync_rounds
            .iter()
            .take(8)
            .eq([0, 1, 2, 3, 4, 5, 6, 7].iter()),
        "first stage must synchronize every round: {:?}",
        sim.sync_rounds
    );
    assert!(sim.sync_rounds.iter().all(|&r| !(8..20).contains(&r)));
    assert_parity(&cfg, "steady/scheduled-policy");
}

#[test]
fn threaded_final_state_matches_the_simulator_after_a_final_sync() {
    // Under δ=0 the last round synchronizes, so the threaded workers' final parameters
    // (= the PS global) must equal the simulator's synchronized global average —
    // parity extends beyond the schedule to the parameter stream itself.
    let scenario = scaled("steady");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(0.0));
    let sim = algorithms::run(&cfg);
    assert_eq!(sim.sync_steps as usize, cfg.iterations);
    let threaded = run_threaded_selsync(&cfg);
    for worker in &threaded {
        assert_eq!(
            worker.distance_to_global, 0.0,
            "worker {} must end exactly on the PS state",
            worker.worker
        );
        assert_eq!(worker.sync_rounds, sim.sync_rounds);
    }
}

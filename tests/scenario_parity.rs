//! Threaded-driver scenario parity: the thread-per-worker SelSync driver over the
//! *real* parameter server and collectives must produce the same synchronization
//! schedule (the rounds where sync fired) as the deterministic simulator, under the
//! same scenario fault schedule and seed.
//!
//! This holds because the threaded driver mirrors the simulator's training semantics
//! exactly — same datasets, same per-worker shuffled traversals, same optimizer and
//! learning-rate schedule, same tracker configuration, same dropout-stream positions —
//! and because the elastic PS round combines contributions in worker-id order, making
//! the synchronized averages bit-identical to the simulator's. Since the
//! cluster-coherent signaling PR the contract covers *every* policy kind and *faulty*
//! schedules too:
//!
//! * adaptive δ policies: the threaded driver runs one shared policy fed the same
//!   worker-order cluster aggregates (loss mean, `Δ(g)` max, via the elastic scalar
//!   all-reduce) the simulator merges, so the stateful policy's decisions coincide;
//! * crash/rejoin schedules: under `RejoinPull::Scheduled` a rejoining thread pulls
//!   the last *scheduled* global from the PS snapshot ring — exactly the simulator's
//!   rejoin pull — instead of the non-deterministic wall-clock PS state. (The built-in
//!   crash scenarios ship with `rejoin_pull = "scheduled"`.)
//!
//! Under a fault schedule a worker only sees the rounds it was present at, so the
//! per-worker contract is: `worker.sync_rounds` equals the simulator's
//! `RunReport::sync_rounds` restricted to that worker's present rounds.

use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, RejoinPull, TrainConfig};
use selsync_repro::core::policy::PolicySpec;
use selsync_repro::core::threaded::run_threaded_selsync;
use selsync_repro::scenario::{builtin, sweep, Scenario};
use selsync_repro::tensor::par;
use selsync_repro::tracelog::{diff_report, TraceGranularity, TraceSink};

/// A scaled-down copy of a built-in scenario (fast enough for the default suite),
/// with every fault window — crash windows included — rescaled into the shrunk
/// iteration range by the shared [`sweep::rescale_fault_windows`] helper.
fn scaled(name: &str) -> Scenario {
    let mut s = builtin(name).expect("built-in scenario");
    sweep::rescale_fault_windows(&mut s, 30);
    s.eval_every = 10;
    s.train_samples = 512;
    s.test_samples = 128;
    s.eval_samples = 128;
    s.batch_size = 8;
    s.sweep = None;
    s
}

/// Assert the full parity contract: every threaded worker's sync schedule equals the
/// simulator's restricted to the rounds that worker was present at (on a crash-free
/// schedule that is the simulator's schedule verbatim).
fn assert_parity(cfg: &TrainConfig, label: &str) {
    let sim = algorithms::run(cfg);
    let threaded = run_threaded_selsync(cfg);
    assert_eq!(threaded.len(), cfg.workers);
    for worker in &threaded {
        let expected: Vec<usize> = sim
            .sync_rounds
            .iter()
            .copied()
            .filter(|&round| cfg.conditions.is_present(worker.worker, round))
            .collect();
        if worker.sync_rounds != expected || worker.sync_steps as usize != expected.len() {
            // Self-diagnosing failure: re-run both backends with event-log capture
            // and let the trace-diff engine pin the first divergent round and field.
            panic!(
                "{label}: worker {} sync schedule diverged from the simulator's \
                 (sim synced {} of {} rounds)\n{}",
                worker.worker,
                sim.sync_steps,
                cfg.iterations,
                trace_divergence(cfg)
            );
        }
    }
}

/// Re-run both backends with full event-log capture and render the first divergent
/// round with its field-level explanation (`docs/EVENT_LOG.md`).
fn trace_divergence(cfg: &TrainConfig) -> String {
    let capture = |threaded: bool| {
        let mut cfg = cfg.clone();
        cfg.trace = TraceSink::capture(TraceGranularity::Full);
        if threaded {
            run_threaded_selsync(&cfg);
        } else {
            algorithms::run(&cfg);
        }
        cfg.trace.take_log()
    };
    let (sim_log, threaded_log) = (capture(false), capture(true));
    diff_report(&sim_log, &threaded_log, "simulator", "threaded").unwrap_or_else(|| {
        "event logs agree — the divergence is outside the traced schedule".into()
    })
}

/// δ chosen so the scaled scenarios produce a *mixed* schedule (some rounds sync,
/// some stay local) — the regime where parity is non-trivial. Pinned by the
/// assertions inside the tests.
const MIXED_DELTA: f32 = 0.055;

#[test]
fn steady_scenario_sync_schedule_matches_the_simulator() {
    let scenario = scaled("steady");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    let sim = algorithms::run(&cfg);
    assert!(
        sim.sync_steps > 0 && sim.local_steps > 0,
        "δ={MIXED_DELTA} must give a mixed schedule for the parity to be meaningful \
         (got {} sync / {} local)",
        sim.sync_steps,
        sim.local_steps
    );
    assert_parity(&cfg, "steady");
}

#[test]
fn transient_straggler_scenario_sync_schedule_matches_the_simulator() {
    // The slowdown affects simulated timing only, never values — the threaded driver
    // (which has no notion of simulated time) must still reproduce the schedule.
    let scenario = scaled("transient-straggler");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    assert_parity(&cfg, "transient-straggler");
}

#[test]
fn degraded_network_scenario_sync_schedule_matches_the_simulator() {
    let scenario = scaled("degraded-network");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    assert_parity(&cfg, "degraded-network");
}

#[test]
fn crash_rejoin_scenario_sync_schedule_matches_the_simulator() {
    // The built-in crash scenario ships with scheduled rejoin pulls, so the rejoining
    // thread reads the last *scheduled* global (the simulator's semantics) and the
    // parity contract extends into and beyond the crash windows.
    let scenario = scaled("crash-rejoin");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    assert_eq!(cfg.rejoin_pull, RejoinPull::Scheduled);
    let sim = algorithms::run(&cfg);
    assert!(
        sim.sync_steps > 0 && sim.local_steps > 0,
        "mixed schedule required (got {} sync / {} local)",
        sim.sync_steps,
        sim.local_steps
    );
    assert_parity(&cfg, "crash-rejoin");
}

#[test]
fn elastic_churn_scenario_sync_schedule_matches_the_simulator() {
    let scenario = scaled("elastic-churn");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    assert_parity(&cfg, "elastic-churn");
}

#[test]
fn scheduled_policy_sync_schedule_matches_the_simulator() {
    // A scheduled δ policy is a pure function of the iteration, so every threaded
    // worker agrees with the simulator's cluster-level policy.
    let scenario = scaled("steady");
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    cfg.delta_policy = Some(PolicySpec::Schedule {
        starts: vec![0, 8, 20],
        deltas: vec![0.0, 1e9, MIXED_DELTA],
    });
    let sim = algorithms::run(&cfg);
    // The schedule's stages are visible in the sync schedule: the first 8 rounds all
    // sync (δ=0), rounds 8..20 never do (δ huge).
    assert!(
        sim.sync_rounds
            .iter()
            .take(8)
            .eq([0, 1, 2, 3, 4, 5, 6, 7].iter()),
        "first stage must synchronize every round: {:?}",
        sim.sync_rounds
    );
    assert!(sim.sync_rounds.iter().all(|&r| !(8..20).contains(&r)));
    assert_parity(&cfg, "steady/scheduled-policy");
}

#[test]
fn scheduled_policy_on_crash_and_churn_schedules_matches_the_simulator() {
    for name in ["crash-rejoin", "elastic-churn"] {
        let scenario = scaled(name);
        let mut cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
        cfg.delta_policy = Some(PolicySpec::Schedule {
            starts: vec![0, 10],
            deltas: vec![0.0, MIXED_DELTA],
        });
        assert_parity(&cfg, &format!("{name}/scheduled-policy"));
    }
}

#[test]
fn adaptive_policy_sync_schedule_matches_the_simulator() {
    // The stateful adaptive policy is the case per-worker replicas could never get
    // right: its decisions depend on the *cluster* signal stream. The threaded
    // driver's shared policy board observes the same worker-order aggregates the
    // simulator merges, so the schedules coincide — including the settle switch.
    let scenario = scaled("steady");
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    cfg.delta_policy = Some(PolicySpec::adaptive_default());
    let sim = algorithms::run(&cfg);
    assert!(
        sim.local_steps > 0,
        "the adaptive arm must relax within the run: {:?}",
        sim.sync_rounds
    );
    assert_parity(&cfg, "steady/adaptive-policy");
}

#[test]
fn adaptive_policy_on_crash_and_churn_schedules_matches_the_simulator() {
    // The widened contract's centrepiece: a stateful policy on faulty schedules.
    // Rejoins restart per-worker trackers (producing the Δ(g) spikes the policy
    // reacts to) while the shared policy itself — like the simulator's — survives.
    for name in ["crash-rejoin", "elastic-churn"] {
        let scenario = scaled(name);
        let mut cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
        cfg.delta_policy = Some(PolicySpec::adaptive_default());
        assert_eq!(cfg.rejoin_pull, RejoinPull::Scheduled, "{name}");
        assert_parity(&cfg, &format!("{name}/adaptive-policy"));
    }
}

#[test]
fn crash_rejoin_parity_reports_are_byte_identical_across_thread_counts() {
    // The acceptance contract: on a faulty schedule with the adaptive arm, both
    // backends' reports are byte-identical for SELSYNC_THREADS ∈ {1, 2, 4}, and the
    // threaded schedule equals the simulator's at every thread count.
    let scenario = scaled("crash-rejoin");
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
    cfg.delta_policy = Some(PolicySpec::adaptive_default());

    let (sim_ref, threaded_ref) = par::with_threads(1, || {
        (
            format!("{:?}", algorithms::run(&cfg)),
            format!("{:?}", run_threaded_selsync(&cfg)),
        )
    });
    for threads in [2usize, 4] {
        let (sim, threaded) = par::with_threads(threads, || {
            (
                format!("{:?}", algorithms::run(&cfg)),
                format!("{:?}", run_threaded_selsync(&cfg)),
            )
        });
        assert_eq!(sim, sim_ref, "simulator report at {threads} threads");
        assert_eq!(
            threaded, threaded_ref,
            "threaded reports at {threads} threads"
        );
    }
    assert_parity(&cfg, "crash-rejoin/threads");
}

#[test]
fn threaded_final_state_matches_the_simulator_after_a_final_sync() {
    // Under δ=0 the last round synchronizes, so the threaded workers' final parameters
    // (= the PS global) must equal the simulator's synchronized global average —
    // parity extends beyond the schedule to the parameter stream itself.
    let scenario = scaled("steady");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(0.0));
    let sim = algorithms::run(&cfg);
    assert_eq!(sim.sync_steps as usize, cfg.iterations);
    let threaded = run_threaded_selsync(&cfg);
    for worker in &threaded {
        assert_eq!(
            worker.distance_to_global, 0.0,
            "worker {} must end exactly on the PS state",
            worker.worker
        );
        assert_eq!(worker.sync_rounds, sim.sync_rounds);
    }
}

#[test]
fn crash_rejoin_final_state_matches_the_simulator_after_a_final_sync() {
    // Same parameter-stream check across a crash window: δ=0 keeps every round
    // synchronized, the rejoiner pulls the scheduled global, and everyone ends on the
    // PS state.
    let scenario = scaled("crash-rejoin");
    let cfg = scenario.train_config(AlgorithmSpec::selsync(0.0));
    let threaded = run_threaded_selsync(&cfg);
    for worker in &threaded {
        assert_eq!(
            worker.distance_to_global, 0.0,
            "worker {} must end exactly on the PS state",
            worker.worker
        );
    }
    assert_parity(&cfg, "crash-rejoin/bsp");
}

#[test]
#[ignore = "slow: every built-in x {fixed, scheduled, adaptive} x {1,2,4} threads; run with --ignored"]
fn all_faulty_builtins_hold_parity_for_every_arm_across_thread_counts() {
    for name in [
        "steady",
        "transient-straggler",
        "degraded-network",
        "crash-rejoin",
        "heterogeneous-fleet",
        "elastic-churn",
    ] {
        let scenario = scaled(name);
        let arms: Vec<(&str, Option<PolicySpec>)> = vec![
            ("fixed", None),
            (
                "scheduled",
                Some(PolicySpec::Schedule {
                    starts: vec![0, 10],
                    deltas: vec![0.0, MIXED_DELTA],
                }),
            ),
            ("adaptive", Some(PolicySpec::adaptive_default())),
        ];
        for (arm, policy) in arms {
            let mut cfg = scenario.train_config(AlgorithmSpec::selsync(MIXED_DELTA));
            // Crash-free builtins keep wall-clock pulls (nothing rejoins); the crash
            // builtins ship scheduled pulls, which is what makes this sweep valid.
            cfg.delta_policy = policy;
            let label = format!("{name}/{arm}");
            let reference = par::with_threads(1, || {
                assert_parity(&cfg, &label);
                format!("{:?}", run_threaded_selsync(&cfg))
            });
            for threads in [2usize, 4] {
                let got =
                    par::with_threads(threads, || format!("{:?}", run_threaded_selsync(&cfg)));
                assert_eq!(got, reference, "{label} at {threads} threads");
            }
        }
    }
}

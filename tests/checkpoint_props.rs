//! Property tests for the durable checkpoint codec (`selsync::checkpoint`):
//! `decode(encode(c)) == c` for randomly shaped checkpoints, canonical encoding is a
//! fixed point, floats survive bit-exactly (including non-finite values), and any
//! single-byte corruption of the encoded text is rejected by the checksum.

use proptest::prelude::*;
use selsync_repro::core::checkpoint::{Checkpoint, Section};

/// Build a checkpoint from primitive draws (the offline proptest shim has no
/// combinators, so composition happens here, deterministically).
fn build_checkpoint(
    backend: bool,
    fingerprint: u64,
    round: usize,
    section_count: usize,
    ints: &[u64],
    floats: &[f32],
    trace_lines: usize,
) -> Checkpoint {
    let mut ckpt = Checkpoint::new(if backend { "sim" } else { "threaded" }, fingerprint, round);
    for s in 0..section_count {
        let mut section = Section::new(format!("section{s}"));
        // Rotate the draw pools so sections carry different, overlapping payloads.
        for (i, &v) in ints.iter().enumerate() {
            if i % section_count.max(1) == s {
                section.push_int(v);
            }
        }
        for (i, &v) in floats.iter().enumerate() {
            if i % section_count.max(1) == s {
                section.push_f32(v);
            }
        }
        section.push_f32s(floats);
        section.push_ints(ints);
        section.push_opt_int((s % 2 == 0).then_some(fingerprint));
        section.push_opt_f32((s % 2 == 1).then(|| floats.first().copied().unwrap_or(0.5)));
        ckpt.add_section(section);
    }
    ckpt.trace = (0..trace_lines)
        .map(|i| format!("{{\"kind\":\"round\",\"round\":{i}}}"))
        .collect();
    ckpt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn checkpoint_round_trip_is_identity(
        backend in 0u8..2,
        fingerprint in 0u64..u64::MAX,
        round in 0usize..10_000,
        section_count in 1usize..6,
        ints in proptest::collection::vec(0u64..u64::MAX, 0..24),
        floats in proptest::collection::vec(-1.0e6f32..1.0e6, 0..24),
        trace_lines in 0usize..12,
    ) {
        let ckpt = build_checkpoint(
            backend == 0, fingerprint, round, section_count, &ints, &floats, trace_lines,
        );
        let text = ckpt.encode();
        let parsed = Checkpoint::decode(&text)
            .unwrap_or_else(|e| panic!("round-trip decode failed: {e}\n---\n{text}"));
        prop_assert_eq!(&ckpt, &parsed);
        // Canonical encoding is a fixed point.
        prop_assert_eq!(text, parsed.encode());
    }

    #[test]
    fn single_byte_corruption_is_rejected(
        fingerprint in 0u64..u64::MAX,
        round in 0usize..10_000,
        ints in proptest::collection::vec(0u64..u64::MAX, 1..16),
        floats in proptest::collection::vec(-1.0e3f32..1.0e3, 1..16),
        position in 0usize..10_000,
        replacement in 0u8..64,
    ) {
        let ckpt = build_checkpoint(true, fingerprint, round, 2, &ints, &floats, 3);
        let text = ckpt.encode();
        let bytes = text.as_bytes();
        let mut pos = position % bytes.len();
        // Never corrupt newlines: replacing one merges lines, which is allowed to
        // fail for structural reasons; keeping the mutation strictly in-line tests
        // the strongest claim (the checksum itself must catch it). Every line is
        // non-empty, so the next byte after a newline is in-line.
        if bytes[pos] == b'\n' {
            pos = (pos + 1) % bytes.len();
        }
        // Substitute one byte with a *different* printable character drawn from a
        // hex-adjacent alphabet, so the mutation stays line-structured but must
        // still trip the trailing FNV-1a checksum (or a stricter parse error).
        let alphabet = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ-_";
        let mut replacement = alphabet[replacement as usize % alphabet.len()];
        if replacement == bytes[pos] {
            replacement = if replacement == b'0' { b'1' } else { b'0' };
        }
        let mut corrupted = bytes.to_vec();
        corrupted[pos] = replacement;
        let corrupted = String::from_utf8(corrupted).expect("ascii stays utf8");
        prop_assert!(
            Checkpoint::decode(&corrupted).is_err(),
            "byte {} flipped {:?} -> {:?} must not decode",
            pos,
            bytes[pos] as char,
            replacement as char
        );
    }
}

/// Non-finite and signed-zero floats survive bit-exactly (the codec stores
/// `to_bits` hex words, not decimal renderings).
#[test]
fn non_finite_floats_round_trip_bit_exactly() {
    let mut ckpt = Checkpoint::new("sim", 7, 3);
    let specials = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        -0.0,
        f32::MIN_POSITIVE,
        f32::from_bits(0x7fc0_1234), // payload-carrying NaN
    ];
    let mut section = Section::new("specials");
    section.push_f32s(&specials);
    section.push_f64(f64::NAN);
    ckpt.add_section(section);
    let parsed = Checkpoint::decode(&ckpt.encode()).expect("specials decode");
    let mut reader = parsed.read_section("specials");
    let got = reader.f32s();
    assert_eq!(got.len(), specials.len());
    for (a, b) in specials.iter().zip(got.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "{a} must survive bit-exactly");
    }
    assert_eq!(reader.f64().to_bits(), f64::NAN.to_bits());
    reader.finish();
}

/// Truncations — a missing checksum line, a dropped section, an empty file — are
/// decode errors, never panics.
#[test]
fn truncated_checkpoints_are_rejected() {
    let mut ckpt = Checkpoint::new("sim", 7, 3);
    let mut section = Section::new("s");
    section.push_ints(&[1, 2, 3]);
    ckpt.add_section(section);
    ckpt.trace = vec!["{\"kind\":\"round\",\"round\":0}".into()];
    let text = ckpt.encode();
    assert!(Checkpoint::decode("").is_err());
    for cut in 1..text.len() {
        if text.is_char_boundary(cut) {
            assert!(
                Checkpoint::decode(&text[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }
}

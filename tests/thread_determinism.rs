//! Thread-count determinism: the compute backend must produce byte-identical
//! results whether it runs on 1 thread or many. These tests exercise the full
//! stack — training drivers and the scenario comparison runner — under scoped
//! thread-count overrides (`SELSYNC_THREADS` equivalents).

use proptest::prelude::*;
use selsync_repro::core::algorithms;
use selsync_repro::core::conditions::{ClusterConditions, FaultEvent};
use selsync_repro::core::config::{AlgorithmSpec, TrainConfig};
use selsync_repro::core::sim::with_sequential_rounds;
use selsync_repro::nn::model::ModelKind;
use selsync_repro::scenario::{library, runner, Scenario};
use selsync_repro::tensor::par;

fn train_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
    cfg.iterations = 40;
    cfg.eval_every = 10;
    cfg.train_samples = 512;
    cfg.test_samples = 128;
    cfg.eval_samples = 128;
    cfg.batch_size = 16;
    cfg.algorithm = AlgorithmSpec::selsync(0.25);
    cfg
}

#[test]
fn training_run_is_bit_identical_across_thread_counts() {
    let cfg = train_cfg();
    let one = par::with_threads(1, || algorithms::run(&cfg));
    let four = par::with_threads(4, || algorithms::run(&cfg));
    // Debug formatting covers every field, including the full eval history, with
    // exact float formatting — equal strings means equal bytes end to end.
    assert_eq!(format!("{one:?}"), format!("{four:?}"));
}

#[test]
fn scenario_report_is_byte_identical_across_thread_counts() {
    let mut scenario = Scenario::base("thread-determinism", 3, 24);
    scenario.train_samples = 384;
    scenario.test_samples = 96;
    scenario.eval_samples = 96;
    scenario.batch_size = 8;
    scenario.eval_every = 6;
    let one = par::with_threads(1, || runner::run_scenario(&scenario).unwrap().render());
    let four = par::with_threads(4, || runner::run_scenario(&scenario).unwrap().render());
    assert_eq!(one, four, "report bytes must not depend on thread count");
}

/// A small run of `algo` on `kind`, optionally with a crash/rejoin fault.
fn round_cfg(kind: ModelKind, algo: AlgorithmSpec, workers: usize, faulty: bool) -> TrainConfig {
    let mut cfg = TrainConfig::small(kind, workers);
    cfg.iterations = 24;
    cfg.eval_every = 8;
    cfg.train_samples = 384;
    cfg.test_samples = 96;
    cfg.eval_samples = 96;
    cfg.batch_size = 8;
    cfg.algorithm = algo;
    if faulty {
        cfg.conditions = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: workers - 1,
            start: 6,
            rejoin: Some(14),
        });
    }
    cfg
}

/// The worker-parallel `run_round` path at 1, 2 and 4 threads must produce a
/// `RunReport` byte-identical to the sequential seed path (one shared engine,
/// workers processed in order — the pre-parallel baseline).
fn assert_round_parallelism_is_invisible(cfg: &TrainConfig, label: &str) {
    let reference = with_sequential_rounds(|| par::with_threads(1, || algorithms::run(cfg)));
    let reference = format!("{reference:?}");
    for threads in [1usize, 2, 4] {
        let got = par::with_threads(threads, || algorithms::run(cfg));
        assert_eq!(
            format!("{got:?}"),
            reference,
            "{label}: parallel rounds at {threads} threads diverged from the sequential path"
        );
    }
}

#[test]
fn selsync_parallel_rounds_match_the_sequential_path() {
    let cfg = round_cfg(
        ModelKind::ResNetLike,
        AlgorithmSpec::selsync(0.25),
        4,
        false,
    );
    assert_round_parallelism_is_invisible(&cfg, "selsync/resnet");
}

#[test]
fn ssp_with_dropout_model_matches_the_sequential_path() {
    // AlexLike exercises dropout (per-engine RNG-stream seeking) and Adam; SSP adds
    // the segmented round with interleaved global pushes.
    let cfg = round_cfg(
        ModelKind::AlexLike,
        AlgorithmSpec::Ssp { staleness: 8 },
        3,
        false,
    );
    assert_round_parallelism_is_invisible(&cfg, "ssp/alexnet");
}

#[test]
fn crash_rejoin_rounds_match_the_sequential_path() {
    let cfg = round_cfg(ModelKind::ResNetLike, AlgorithmSpec::selsync(0.0), 4, true);
    assert_round_parallelism_is_invisible(&cfg, "selsync/crash-rejoin");
}

#[test]
#[ignore = "slow: all five algorithms x {clean, crash-rejoin} x {1,2,4} threads; run with --ignored"]
fn all_algorithms_parallel_round_sweep_matches_the_sequential_path() {
    // Every driver, on the model that stresses it most (dropout models included),
    // both on a clean cluster and under a crash/rejoin fault schedule.
    let arms: Vec<(&str, ModelKind, AlgorithmSpec)> = vec![
        ("bsp", ModelKind::ResNetLike, AlgorithmSpec::Bsp),
        (
            "localsgd",
            ModelKind::TransformerLike,
            AlgorithmSpec::LocalSgd,
        ),
        (
            "fedavg",
            ModelKind::VggLike,
            AlgorithmSpec::FedAvg { c: 0.5, e: 0.25 },
        ),
        (
            "ssp",
            ModelKind::AlexLike,
            AlgorithmSpec::Ssp { staleness: 8 },
        ),
        (
            "selsync",
            ModelKind::ResNetLike,
            AlgorithmSpec::selsync(0.1),
        ),
        (
            "selsync-ga",
            ModelKind::AlexLike,
            AlgorithmSpec::selsync_ga(0.1),
        ),
    ];
    for (name, kind, algo) in arms {
        for faulty in [false, true] {
            let cfg = round_cfg(kind, algo, 4, faulty);
            let label = format!("{name}{}", if faulty { "/crash-rejoin" } else { "" });
            assert_round_parallelism_is_invisible(&cfg, &label);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Randomized δ / seed / cluster width: the parallel rounds must be invisible for
    // any configuration, not just the hand-picked ones above.
    #[test]
    fn parallel_rounds_are_invisible_for_random_selsync_configs(
        delta in 0.0f32..0.6,
        seed in 1u64..1_000_000,
        workers in 2usize..6,
    ) {
        let mut cfg = round_cfg(ModelKind::ResNetLike, AlgorithmSpec::selsync(delta), workers, false);
        cfg.seed = seed;
        cfg.iterations = 12;
        cfg.eval_every = 6;
        let reference = with_sequential_rounds(|| par::with_threads(1, || algorithms::run(&cfg)));
        let four = par::with_threads(4, || algorithms::run(&cfg));
        prop_assert_eq!(format!("{reference:?}"), format!("{four:?}"));
    }
}

#[test]
#[ignore = "slow: full built-in scenario sweep; run with --ignored"]
fn all_builtin_scenarios_are_byte_identical_across_thread_counts() {
    for scenario in library::all_builtin() {
        let one = par::with_threads(1, || runner::run_scenario(&scenario).unwrap().render());
        let four = par::with_threads(4, || runner::run_scenario(&scenario).unwrap().render());
        assert_eq!(
            one, four,
            "{} must not depend on thread count",
            scenario.name
        );
    }
}

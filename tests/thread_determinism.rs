//! Thread-count determinism: the compute backend must produce byte-identical
//! results whether it runs on 1 thread or many. These tests exercise the full
//! stack — training drivers and the scenario comparison runner — under scoped
//! thread-count overrides (`SELSYNC_THREADS` equivalents).

use selsync_repro::core::algorithms;
use selsync_repro::core::config::{AlgorithmSpec, TrainConfig};
use selsync_repro::nn::model::ModelKind;
use selsync_repro::scenario::{library, runner, Scenario};
use selsync_repro::tensor::par;

fn train_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
    cfg.iterations = 40;
    cfg.eval_every = 10;
    cfg.train_samples = 512;
    cfg.test_samples = 128;
    cfg.eval_samples = 128;
    cfg.batch_size = 16;
    cfg.algorithm = AlgorithmSpec::selsync(0.25);
    cfg
}

#[test]
fn training_run_is_bit_identical_across_thread_counts() {
    let cfg = train_cfg();
    let one = par::with_threads(1, || algorithms::run(&cfg));
    let four = par::with_threads(4, || algorithms::run(&cfg));
    // Debug formatting covers every field, including the full eval history, with
    // exact float formatting — equal strings means equal bytes end to end.
    assert_eq!(format!("{one:?}"), format!("{four:?}"));
}

#[test]
fn scenario_report_is_byte_identical_across_thread_counts() {
    let mut scenario = Scenario::base("thread-determinism", 3, 24);
    scenario.train_samples = 384;
    scenario.test_samples = 96;
    scenario.eval_samples = 96;
    scenario.batch_size = 8;
    scenario.eval_every = 6;
    let one = par::with_threads(1, || runner::run_scenario(&scenario).unwrap().render());
    let four = par::with_threads(4, || runner::run_scenario(&scenario).unwrap().render());
    assert_eq!(one, four, "report bytes must not depend on thread count");
}

#[test]
#[ignore = "slow: full built-in scenario sweep; run with --ignored"]
fn all_builtin_scenarios_are_byte_identical_across_thread_counts() {
    for scenario in library::all_builtin() {
        let one = par::with_threads(1, || runner::run_scenario(&scenario).unwrap().render());
        let four = par::with_threads(4, || runner::run_scenario(&scenario).unwrap().render());
        assert_eq!(
            one, four,
            "{} must not depend on thread count",
            scenario.name
        );
    }
}

//! Integration tests for the thread-per-worker driver: the real parameter server and the
//! 1-bit status all-gather must implement Alg. 1's coordination faithfully under actual
//! concurrency.

use selsync_repro::comm::{Collective, ParameterServer};
use selsync_repro::core::config::{AlgorithmSpec, TrainConfig};
use selsync_repro::core::threaded::run_threaded_selsync;
use selsync_repro::nn::model::ModelKind;
use std::sync::Arc;

#[test]
fn threaded_selsync_workers_agree_on_every_decision() {
    let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 6);
    cfg.iterations = 30;
    cfg.batch_size = 8;
    cfg.train_samples = 384;
    cfg.algorithm = AlgorithmSpec::selsync(0.1);
    let reports = run_threaded_selsync(&cfg);
    assert_eq!(reports.len(), 6);
    let schedule = (reports[0].sync_steps, reports[0].local_steps);
    for r in &reports {
        // The all-gather makes the decision global: every worker sees the same schedule.
        assert_eq!((r.sync_steps, r.local_steps), schedule);
        assert_eq!(r.sync_steps + r.local_steps, 30);
        assert!(r.final_loss.is_finite());
    }
}

#[test]
fn threaded_bsp_keeps_replicas_identical_to_the_global_model() {
    let mut cfg = TrainConfig::small(ModelKind::VggLike, 4);
    cfg.iterations = 20;
    cfg.batch_size = 8;
    cfg.train_samples = 256;
    cfg.algorithm = AlgorithmSpec::Bsp;
    let reports = run_threaded_selsync(&cfg);
    for r in &reports {
        assert_eq!(r.sync_steps, 20);
        assert!(
            r.distance_to_global < 1e-3,
            "worker {} distance {}",
            r.worker,
            r.distance_to_global
        );
    }
}

#[test]
fn parameter_server_rounds_compose_with_collectives_under_contention() {
    // A stress-style test mixing the status all-gather and PS rounds from many threads.
    let n = 8;
    let ps = Arc::new(ParameterServer::new(vec![0.0; 64]));
    let coll = Arc::new(Collective::new(n));
    let handles: Vec<_> = (0..n)
        .map(|w| {
            let ps = Arc::clone(&ps);
            let coll = Arc::clone(&coll);
            std::thread::spawn(move || {
                let mut last = Vec::new();
                for round in 0..50 {
                    let flag = (w + round) % 3 == 0;
                    let flags = coll.allgather_flags(w, flag);
                    assert_eq!(flags.len(), n);
                    if flags.iter().any(|&f| f) {
                        let contribution = vec![(w + round) as f32; 64];
                        last = ps.sync_round(&contribution, n);
                    }
                    coll.barrier(w);
                }
                last
            })
        })
        .collect();
    let results: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Every worker's last synchronized value must be identical.
    for r in &results {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn ssp_style_async_pushes_do_not_lose_updates() {
    let n = 6;
    let dim = 32;
    let ps = Arc::new(ParameterServer::new(vec![0.0; dim]));
    let handles: Vec<_> = (0..n)
        .map(|w| {
            let ps = Arc::clone(&ps);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    ps.push_delta(&vec![1.0; dim], 1.0);
                }
                let _ = ps.pull();
                w
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let global = ps.pull();
    // 6 workers x 100 pushes of +1 must all be applied (the RwLock serialises them).
    assert!(global.iter().all(|&x| (x - 600.0).abs() < 1e-3));
}

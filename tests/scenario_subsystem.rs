//! Integration tests for the scenario & fault-injection subsystem: schema round-trip,
//! determinism of the comparison runner, and the recorded-seed regression for the
//! transient-straggler scenario (SelSync's simulated throughput must beat BSP's under
//! that fault schedule).

use selsync_repro::scenario::{builtin, library, runner, Scenario};

#[test]
fn schema_round_trip_for_every_builtin() {
    for scenario in library::all_builtin() {
        let text = scenario.to_toml_string();
        let parsed =
            Scenario::from_toml_str(&text).unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        assert_eq!(
            scenario, parsed,
            "parse(serialize(s)) must equal s for {}",
            scenario.name
        );
        // Canonical serialization is a fixed point.
        assert_eq!(text, parsed.to_toml_string(), "{}", scenario.name);
    }
}

#[test]
fn scenario_files_with_schema_errors_are_rejected() {
    let good = builtin("crash-rejoin").unwrap().to_toml_string();
    // Unknown fault kinds, missing required keys and broken schedules all error.
    assert!(Scenario::from_toml_str(&good.replace("\"crash\"", "\"meteor\"")).is_err());
    assert!(Scenario::from_toml_str(&good.replace("workers = 6", "")).is_err());
    assert!(Scenario::from_toml_str(&good.replace("workers = 6", "workers = 2")).is_err());
}

#[test]
#[ignore = "slow behavioral convergence test; run with --ignored"]
fn transient_straggler_is_deterministic_and_selsync_beats_bsp() {
    // The recorded-seed regression behind the subsystem's acceptance criterion: the
    // built-in transient-straggler scenario at its recorded seed (42) must (a) render
    // byte-identically across runs and (b) show SelSync's simulated throughput beating
    // BSP's under the fault schedule.
    let scenario = builtin("transient-straggler").unwrap();
    assert_eq!(
        scenario.seed, 42,
        "the recorded seed is part of the regression fixture"
    );

    let first = runner::run_scenario(&scenario).expect("scenario runs");
    let second = runner::run_scenario(&scenario).expect("scenario runs");
    assert_eq!(
        first.render(),
        second.render(),
        "same scenario + same seed must produce byte-identical reports"
    );

    let bsp = first.bsp();
    let selsync = first.selsync();
    assert_eq!(
        bsp.iterations, selsync.iterations,
        "identical accounting across arms"
    );
    // Equal iterations process equal samples, so throughput compares as inverse time.
    assert!(
        selsync.sim_time_s < bsp.sim_time_s,
        "SelSync simulated throughput must be >= BSP's: {} vs {} seconds",
        selsync.sim_time_s,
        bsp.sim_time_s
    );
    assert!(first.selsync_raw_speedup() >= 1.0);
    // And it reaches BSP's final metric sooner than BSP does.
    let target_speedup = first
        .selsync_target_speedup()
        .expect("SelSync must reach BSP's final metric under the straggler schedule");
    assert!(
        target_speedup >= 1.0,
        "time-to-target speedup {target_speedup}"
    );
    // The straggler stretches synchronous compute: BSP pays the 3.5x window.
    let steady = builtin("steady").unwrap();
    assert!(scenario.iterations == steady.iterations && scenario.workers == steady.workers);
}

#[test]
#[ignore = "slow behavioral convergence test; run with --ignored"]
fn crash_rejoin_scenario_trains_through_membership_changes() {
    // Miniature copy of the crash-rejoin shape (scaled down to keep the test fast):
    // the cluster must keep training while workers leave and return.
    let mut scenario = builtin("crash-rejoin").unwrap();
    scenario.iterations = 60;
    scenario.eval_every = 10;
    scenario.train_samples = 512;
    scenario.test_samples = 128;
    scenario.eval_samples = 128;
    scenario.faults = vec![
        selsync_repro::scenario::FaultSpec::Crash {
            worker: 2,
            start: 15,
            rejoin: Some(35),
        },
        selsync_repro::scenario::FaultSpec::Crash {
            worker: 4,
            start: 50,
            rejoin: None,
        },
    ];
    let report = runner::run_scenario(&scenario).expect("scenario runs");
    for run in &report.runs {
        assert!(
            run.final_loss.is_finite(),
            "{} must survive crashes",
            run.algorithm
        );
        assert_eq!(run.iterations, 60);
    }
    // BSP keeps synchronizing every iteration over the live subset, but moves fewer
    // bytes than the same shape without faults (absent workers contribute nothing).
    assert_eq!(report.bsp().sync_steps, 60);
    let mut steady = scenario.clone();
    steady.faults.clear();
    let steady_bsp = selsync_repro::core::algorithms::run(
        &steady.train_config(selsync_repro::core::config::AlgorithmSpec::Bsp),
    );
    assert!(report.bsp().bytes_communicated < steady_bsp.bytes_communicated);
}

//! Linear-algebra and elementwise operations on [`Tensor`].
//!
//! Matrix products are the compute hot path of the neural-network substrate. All three
//! matmul variants are cache-blocked (row blocks × k/n tiles) and run on the shared
//! worker pool ([`crate::par`]) once the FLOP count justifies the dispatch. Two
//! invariants hold for every kernel here:
//!
//! 1. **Order preservation**: each output element accumulates its `k` products in
//!    ascending-`p` order, exactly like the straightforward triple loop, regardless of
//!    tiling or thread count — results are bit-identical to the serial kernels.
//! 2. **Disjoint writes**: parallel tasks own disjoint row blocks (or column stripes for
//!    [`matmul_at_acc`]); no reduction races, so thread count never changes the bytes.
//!
//! The `_into`/`_acc` variants write into caller-owned buffers so steady-state training
//! allocates nothing per step (see [`crate::scratch`]). Full-precision reductions
//! (`sum`, `dot`, …) stay serial on purpose: parallel partial sums would change the
//! floating-point reduction order.

use crate::{par, Result, Tensor, TensorError};

/// Multiply-add count (`m·k·n`) above which the matmul kernels parallelise; below it the
/// pool dispatch costs more than the arithmetic.
const PAR_FLOP_THRESHOLD: usize = 1 << 16;

/// Output rows per parallel task (and per cache block) in `matmul`/`matmul_bt`.
const ROW_BLOCK: usize = 4;

/// Columns of `B`/`out` processed per tile (keeps a row block of `out` in L1).
const N_TILE: usize = 256;

/// Rows of `B` (the `k` dimension) streamed per tile.
const K_TILE: usize = 256;

/// Output columns per parallel stripe in `matmul_at_acc`.
const COL_BLOCK: usize = 64;

/// Independent accumulator lanes (output columns held in registers) per `matmul_bt`
/// inner pass. Each lane is a separate dependency chain summing in ascending-p order,
/// so the blocking changes throughput, never bytes.
const BT_LANES: usize = 4;

#[inline]
fn shape_err(op: &'static str, a: &Tensor, b: &Tensor) -> TensorError {
    TensorError::ShapeMismatch {
        op,
        lhs: a.shape(),
        rhs: b.shape(),
    }
}

#[inline]
fn out_shape_err(op: &'static str, out: &Tensor, expected: (usize, usize)) -> TensorError {
    TensorError::ShapeMismatch {
        op,
        lhs: out.shape(),
        rhs: expected,
    }
}

/// Row blocks for an `m x n` output given the total multiply-add count: one block (fully
/// serial) below the parallel threshold, [`ROW_BLOCK`]-row blocks above it.
#[inline]
fn row_block_elems(m: usize, n: usize, flops: usize) -> usize {
    if flops >= PAR_FLOP_THRESHOLD && m > 1 {
        ROW_BLOCK * n
    } else {
        m.max(1) * n
    }
}

/// Dense matrix product `A (m x k) * B (k x n) -> (m x n)`.
///
/// The returned tensor is backed by the thread-local scratch arena; call
/// [`Tensor::recycle`] when done to make the hot path allocation-free.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = Tensor::scratch_zeros(a.rows(), b.cols());
    matmul_acc(a, b, &mut out).map_err(|e| match e {
        TensorError::ShapeMismatch { .. } => shape_err("matmul", a, b),
        other => other,
    })?;
    Ok(out)
}

/// `out = A * B` into a caller-owned tensor of shape `(a.rows, b.cols)`.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    out.fill(0.0);
    matmul_acc(a, b, out)
}

/// `out += A * B` (accumulating): the zero-alloc building block behind
/// [`matmul`]/[`matmul_into`].
pub fn matmul_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(shape_err("matmul", a, b));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    if out.shape() != (m, n) {
        return Err(out_shape_err("matmul_into", out, (m, n)));
    }
    if m == 0 || n == 0 {
        return Ok(());
    }
    let a_data = a.data();
    let b_data = b.data();
    // Parallel over row blocks of `out` (disjoint chunks); within a block the classic
    // k-outer/axpy-inner loop streams B row-by-row, tiled so a ROW_BLOCK x N_TILE
    // panel of `out` stays cache-resident while a K_TILE x N_TILE panel of B is swept.
    par::for_each_chunk_mut(
        out.data_mut(),
        row_block_elems(m, n, m * n * k),
        |start, oc| {
            let r0 = start / n;
            let rows = oc.len() / n;
            let mut jc = 0;
            while jc < n {
                let je = (jc + N_TILE).min(n);
                let mut pc = 0;
                while pc < k {
                    let pe = (pc + K_TILE).min(k);
                    for p in pc..pe {
                        let b_row = &b_data[p * n + jc..p * n + je];
                        for r in 0..rows {
                            let a_val = a_data[(r0 + r) * k + p];
                            if a_val == 0.0 {
                                continue;
                            }
                            let o = &mut oc[r * n + jc..r * n + je];
                            for (oo, &bb) in o.iter_mut().zip(b_row.iter()) {
                                *oo += a_val * bb;
                            }
                        }
                    }
                    pc = pe;
                }
                jc = je;
            }
        },
    );
    Ok(())
}

/// Product with the second operand transposed: `A (m x k) * B^T` where `B` is `(n x k)`.
///
/// This is the shape needed for the backward pass of a linear layer
/// (`dX = dY * W^T`) without materialising the transpose.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = Tensor::scratch_zeros(a.rows(), b.rows());
    matmul_bt_acc(a, b, &mut out).map_err(|e| match e {
        TensorError::ShapeMismatch { .. } => shape_err("matmul_bt", a, b),
        other => other,
    })?;
    Ok(out)
}

/// `out = A * B^T` into a caller-owned tensor of shape `(a.rows, b.rows)`.
pub fn matmul_bt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    out.fill(0.0);
    matmul_bt_acc(a, b, out)
}

/// `out += A * B^T` (accumulating).
pub fn matmul_bt_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    if a.cols() != b.cols() {
        return Err(shape_err("matmul_bt", a, b));
    }
    let (m, k) = a.shape();
    let n = b.rows();
    if out.shape() != (m, n) {
        return Err(out_shape_err("matmul_bt_into", out, (m, n)));
    }
    if m == 0 || n == 0 {
        return Ok(());
    }
    // Parallel over row blocks; within a block, columns are walked in register-blocked
    // groups of BT_LANES with the rows inner, so a group of B rows is reused across the
    // whole block while hot. The lanes are *independent output accumulators* (one per
    // column), each summing its k products in ascending-p order — exactly the scalar
    // dot's operation order per element, so results are bit-identical to the scalar
    // kernel while the BT_LANES separate dependency chains hide FMA latency.
    par::for_each_chunk_mut(
        out.data_mut(),
        row_block_elems(m, n, m * n * k),
        |start, oc| {
            let r0 = start / n;
            let rows = oc.len() / n;
            let mut c0 = 0;
            while c0 < n {
                let ce = (c0 + BT_LANES).min(n);
                if ce - c0 == BT_LANES {
                    let b0 = &b.row(c0)[..k];
                    let b1 = &b.row(c0 + 1)[..k];
                    let b2 = &b.row(c0 + 2)[..k];
                    let b3 = &b.row(c0 + 3)[..k];
                    for r in 0..rows {
                        let a_row = &a.row(r0 + r)[..k];
                        let mut acc = [0.0f32; BT_LANES];
                        for p in 0..k {
                            let av = a_row[p];
                            acc[0] += av * b0[p];
                            acc[1] += av * b1[p];
                            acc[2] += av * b2[p];
                            acc[3] += av * b3[p];
                        }
                        let o = &mut oc[r * n + c0..r * n + ce];
                        for (oo, &l) in o.iter_mut().zip(acc.iter()) {
                            *oo += l;
                        }
                    }
                } else {
                    // Ragged tail: plain scalar dots (same per-element order).
                    for r in 0..rows {
                        let a_row = &a.row(r0 + r)[..k];
                        for c in c0..ce {
                            let b_row = &b.row(c)[..k];
                            let mut acc = 0.0f32;
                            for p in 0..k {
                                acc += a_row[p] * b_row[p];
                            }
                            oc[r * n + c] += acc;
                        }
                    }
                }
                c0 = ce;
            }
        },
    );
    Ok(())
}

/// Product with the first operand transposed: `A^T * B` where `A` is `(k x m)`, `B` is `(k x n)`.
///
/// This is the shape needed for the weight gradient of a linear layer (`dW = X^T * dY`).
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = Tensor::scratch_zeros(a.cols(), b.cols());
    matmul_at_acc(a, b, &mut out).map_err(|e| match e {
        TensorError::ShapeMismatch { .. } => shape_err("matmul_at", a, b),
        other => other,
    })?;
    Ok(out)
}

/// `out = A^T * B` into a caller-owned tensor of shape `(a.cols, b.cols)`.
pub fn matmul_at_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    out.fill(0.0);
    matmul_at_acc(a, b, out)
}

/// `out += A^T * B` (accumulating) — used to add `dW = X^T * dY` directly into a layer's
/// gradient tensor without a temporary.
pub fn matmul_at_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    if a.rows() != b.rows() {
        return Err(shape_err("matmul_at", a, b));
    }
    let (k, m) = a.shape();
    let n = b.cols();
    if out.shape() != (m, n) {
        return Err(out_shape_err("matmul_at_into", out, (m, n)));
    }
    if m == 0 || n == 0 {
        return Ok(());
    }
    // The k dimension is the outer loop (each step scatters a rank-1 update into the
    // whole output), so tasks own disjoint *column stripes* of `out` instead of row
    // blocks; each stripe sweeps p in ascending order.
    let stripes = if m * n * k >= PAR_FLOP_THRESHOLD && n > 1 {
        n.div_ceil(COL_BLOCK)
    } else {
        1
    };
    let width = n.div_ceil(stripes);
    let out_ptr = par::SendPtr(out.data_mut().as_mut_ptr());
    par::parallel_for(stripes, |t| {
        let jc = t * width;
        let je = (jc + width).min(n);
        if jc >= je {
            return;
        }
        for p in 0..k {
            let a_row = a.row(p);
            let b_row = &b.row(p)[jc..je];
            for (i, &a_val) in a_row.iter().enumerate() {
                if a_val == 0.0 {
                    continue;
                }
                // SAFETY: stripes own disjoint column ranges of every output row, and
                // the parallel_for blocks until all stripes complete.
                let o = unsafe {
                    std::slice::from_raw_parts_mut(out_ptr.get().add(i * n + jc), je - jc)
                };
                for (oo, &bb) in o.iter_mut().zip(b_row.iter()) {
                    *oo += a_val * bb;
                }
            }
        }
    });
    Ok(())
}

/// Materialised transpose.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.shape();
    Tensor::from_fn(n, m, |r, c| a.get(c, r))
}

/// Elementwise sum `a + b`.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = a.clone();
    out.zip_mut_with(b, |x, y| x + y)?;
    Ok(out)
}

/// Elementwise difference `a - b`.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = a.clone();
    out.zip_mut_with(b, |x, y| x - y)?;
    Ok(out)
}

/// Elementwise (Hadamard) product `a ⊙ b`.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = a.clone();
    out.zip_mut_with(b, |x, y| x * y)?;
    Ok(out)
}

/// Scale every element by `s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// In-place AXPY: `y += alpha * x`, parallel over fixed element chunks (per-element
/// arithmetic is unchanged, so results are bit-identical to the serial loop).
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) -> Result<()> {
    if y.shape() != x.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "axpy",
            lhs: y.shape(),
            rhs: x.shape(),
        });
    }
    par::zip2_mut(y.data_mut(), x.data(), |yi, xi| yi + alpha * xi);
    Ok(())
}

/// Slice AXPY for the flat parameter/gradient vectors the distributed algorithms
/// exchange: `y += alpha * x`, parallel over fixed chunks.
pub fn axpy_slice(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy_slice length mismatch");
    par::zip2_mut(y, x, |yi, xi| yi + alpha * xi);
}

/// Broadcast-add a `1 x n` row vector to every row of an `m x n` tensor.
pub fn add_row_broadcast(a: &Tensor, row: &Tensor) -> Result<Tensor> {
    if row.rows() != 1 || row.cols() != a.cols() {
        return Err(shape_err("add_row_broadcast", a, row));
    }
    let mut out = a.clone();
    let r = row.data();
    for i in 0..out.rows() {
        for (o, &b) in out.row_mut(i).iter_mut().zip(r.iter()) {
            *o += b;
        }
    }
    Ok(out)
}

/// Sum over rows, producing a `1 x n` row vector (used for bias gradients).
pub fn sum_rows(a: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(1, a.cols());
    sum_rows_acc(a, &mut out).expect("freshly sized output");
    out
}

/// Accumulate the row sums of `a` into an existing `1 x a.cols()` tensor (adds the bias
/// gradient directly into a layer's gradient accumulator, no temporary).
pub fn sum_rows_acc(a: &Tensor, out: &mut Tensor) -> Result<()> {
    if out.rows() != 1 || out.cols() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "sum_rows_acc",
            lhs: out.shape(),
            rhs: (1, a.cols()),
        });
    }
    for r in 0..a.rows() {
        for (o, &x) in out.row_mut(0).iter_mut().zip(a.row(r).iter()) {
            *o += x;
        }
    }
    Ok(())
}

/// Sum of all elements.
pub fn sum(a: &Tensor) -> f32 {
    a.data().iter().sum()
}

/// Mean of all elements.
pub fn mean(a: &Tensor) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    sum(a) / a.len() as f32
}

/// Population variance of all elements.
pub fn variance(a: &Tensor) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.data().iter().map(|x| (x - m).powi(2)).sum::<f32>() / a.len() as f32
}

/// Squared L2 norm of all elements.
pub fn sq_norm(a: &Tensor) -> f32 {
    a.data().iter().map(|x| x * x).sum()
}

/// L2 norm of all elements.
pub fn norm_l2(a: &Tensor) -> f32 {
    sq_norm(a).sqrt()
}

/// Dot product of two tensors viewed as flat vectors.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.len() != b.len() {
        return Err(shape_err("dot", a, b));
    }
    Ok(a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| x * y)
        .sum())
}

/// Row-wise softmax (numerically stabilised with the row max). The result is backed by
/// the thread-local scratch arena.
pub fn softmax_rows(a: &Tensor) -> Tensor {
    let mut out = Tensor::scratch_copy(a);
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            denom += *x;
        }
        let inv = 1.0 / denom;
        for x in row.iter_mut() {
            *x *= inv;
        }
    }
    out
}

/// Index of the maximum element in each row.
pub fn argmax_rows(a: &Tensor) -> Vec<usize> {
    a.rows_iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|(_, x), (_, y)| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Clip every element to `[-limit, limit]` (gradient clipping).
pub fn clip(a: &mut Tensor, limit: f32) {
    a.map_inplace(|x| x.clamp(-limit, limit));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_parallel_matches_serial_shape() {
        // Large enough to trigger the rayon path.
        let a = Tensor::from_fn(80, 70, |r, c| ((r * 7 + c) % 5) as f32 - 2.0);
        let b = Tensor::from_fn(70, 90, |r, c| ((r + 3 * c) % 7) as f32 - 3.0);
        let c = matmul(&a, &b).unwrap();
        // Spot-check a few entries against a straightforward triple loop.
        for &(i, j) in &[(0usize, 0usize), (13, 57), (79, 89), (40, 1)] {
            let mut acc = 0.0f32;
            for p in 0..70 {
                acc += a.get(i, p) * b.get(p, j);
            }
            assert!((c.get(i, j) - acc).abs() < 1e-3, "({i},{j})");
        }
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Tensor::from_fn(4, 6, |r, c| (r as f32) - (c as f32) * 0.5);
        let b = Tensor::from_fn(5, 6, |r, c| (r * c) as f32 * 0.1);
        let direct = matmul_bt(&a, &b).unwrap();
        let via_t = matmul(&a, &transpose(&b)).unwrap();
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = Tensor::from_fn(6, 4, |r, c| (r + c) as f32 * 0.3);
        let b = Tensor::from_fn(6, 5, |r, c| (r as f32) - (c as f32));
        let direct = matmul_at(&a, &b).unwrap();
        let via_t = matmul(&transpose(&a), &b).unwrap();
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn add_sub_hadamard_scale() {
        let a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[4., 5., 6.]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(sub(&b, &a).unwrap().data(), &[3., 3., 3.]);
        assert_eq!(hadamard(&a, &b).unwrap().data(), &[4., 10., 18.]);
        assert_eq!(scale(&a, 2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = t(1, 3, &[1., 1., 1.]);
        let mut y = t(1, 3, &[1., 2., 3.]);
        axpy(0.5, &x, &mut y).unwrap();
        assert_eq!(y.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn broadcast_and_sum_rows() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let bias = t(1, 3, &[10., 20., 30.]);
        let c = add_row_broadcast(&a, &bias).unwrap();
        assert_eq!(c.data(), &[11., 22., 33., 14., 25., 36.]);
        assert_eq!(sum_rows(&a).data(), &[5., 7., 9.]);
    }

    #[test]
    fn reductions() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        assert_eq!(sum(&a), 10.0);
        assert_eq!(mean(&a), 2.5);
        assert!((variance(&a) - 1.25).abs() < 1e-6);
        assert_eq!(sq_norm(&a), 30.0);
        assert!((norm_l2(&a) - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(dot(&a, &a).unwrap(), 30.0);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let a = t(2, 3, &[1., 2., 3., -1., 0., 1.]);
        let s = softmax_rows(&a);
        for r in 0..2 {
            let total: f32 = s.row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
            assert!(s.row(r).iter().all(|&x| x > 0.0));
        }
        // Larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = t(1, 3, &[1000., 1001., 1002.]);
        let s = softmax_rows(&a);
        assert!(s.data().iter().all(|x| x.is_finite()));
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn argmax_and_clip() {
        let a = t(2, 3, &[1., 5., 2., -3., -1., -2.]);
        assert_eq!(argmax_rows(&a), vec![1, 1]);
        let mut b = t(1, 3, &[-10., 0.5, 10.]);
        clip(&mut b, 1.0);
        assert_eq!(b.data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        let a = Tensor::from_fn(9, 11, |r, c| ((r * 5 + c) % 7) as f32 - 3.0);
        let b = Tensor::from_fn(11, 6, |r, c| ((r + 2 * c) % 5) as f32 * 0.5 - 1.0);
        let mut out = Tensor::zeros(9, 6);
        matmul_into(&a, &b, &mut out).unwrap();
        assert_eq!(out.data(), matmul(&a, &b).unwrap().data());

        let bt = Tensor::from_fn(6, 11, |r, c| (r as f32 - c as f32) * 0.3);
        let mut out_bt = Tensor::zeros(9, 6);
        matmul_bt_into(&a, &bt, &mut out_bt).unwrap();
        assert_eq!(out_bt.data(), matmul_bt(&a, &bt).unwrap().data());

        let at = Tensor::from_fn(9, 6, |r, c| ((r * 3 + c) % 4) as f32 - 1.5);
        let mut out_at = Tensor::zeros(11, 6);
        matmul_at_into(&a, &at, &mut out_at).unwrap();
        assert_eq!(out_at.data(), matmul_at(&a, &at).unwrap().data());
    }

    #[test]
    fn acc_variants_accumulate_instead_of_overwriting() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let b = t(2, 2, &[1., 0., 0., 1.]);
        let mut out = Tensor::full(2, 2, 10.0);
        matmul_acc(&a, &b, &mut out).unwrap();
        assert_eq!(out.data(), &[11., 12., 13., 14.]);
    }

    #[test]
    fn into_variants_check_output_shape() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(3, 4);
        let mut wrong = Tensor::zeros(2, 5);
        assert!(matmul_into(&a, &b, &mut wrong).is_err());
        assert!(matmul_bt_into(&a, &Tensor::zeros(4, 3), &mut wrong).is_err());
        assert!(matmul_at_into(&Tensor::zeros(2, 3), &Tensor::zeros(2, 4), &mut wrong).is_err());
    }

    #[test]
    fn matmul_is_bit_identical_across_thread_counts() {
        // The determinism contract of the compute backend: same bytes out for 1 and 4
        // threads, for shapes both below and above the parallel threshold.
        for &(m, k, n) in &[(3usize, 5usize, 4usize), (64, 96, 80), (130, 70, 33)] {
            let a = Tensor::from_fn(m, k, |r, c| ((r * 31 + c * 17) % 23) as f32 * 0.17 - 1.9);
            let b = Tensor::from_fn(k, n, |r, c| ((r * 13 + c * 7) % 19) as f32 * 0.11 - 1.0);
            let one = crate::par::with_threads(1, || matmul(&a, &b).unwrap());
            let four = crate::par::with_threads(4, || matmul(&a, &b).unwrap());
            assert_eq!(one.data(), four.data(), "matmul {m}x{k}x{n}");
            let bt_b = Tensor::from_fn(n, k, |r, c| ((r + c * 3) % 11) as f32 * 0.2 - 1.1);
            let one_bt = crate::par::with_threads(1, || matmul_bt(&a, &bt_b).unwrap());
            let four_bt = crate::par::with_threads(4, || matmul_bt(&a, &bt_b).unwrap());
            assert_eq!(one_bt.data(), four_bt.data(), "matmul_bt {m}x{k}x{n}");
            let at_b = Tensor::from_fn(m, n, |r, c| ((r * 7 + c) % 13) as f32 * 0.15 - 0.9);
            let one_at = crate::par::with_threads(1, || matmul_at(&a, &at_b).unwrap());
            let four_at = crate::par::with_threads(4, || matmul_at(&a, &at_b).unwrap());
            assert_eq!(one_at.data(), four_at.data(), "matmul_at {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_bt_register_blocking_is_bit_identical_to_scalar_dots() {
        // The BT_LANES register blocking must not change a single bit relative to the
        // straightforward one-dot-per-output scalar kernel, for shapes exercising full
        // lane groups, ragged tails, and both serial and parallel row-block paths.
        for &(m, k, n) in &[
            (1usize, 3usize, 1usize),
            (5, 17, 6),
            (8, 33, 7),   // ragged tail (7 % 4 != 0)
            (64, 96, 80), // above the parallel threshold
            (130, 70, 33),
        ] {
            let a = Tensor::from_fn(m, k, |r, c| ((r * 29 + c * 13) % 31) as f32 * 0.23 - 2.1);
            let b = Tensor::from_fn(n, k, |r, c| ((r * 11 + c * 19) % 27) as f32 * 0.19 - 1.7);
            let fast = matmul_bt(&a, &b).unwrap();
            let mut reference = Tensor::zeros(m, n);
            for r in 0..m {
                for c in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a.get(r, p) * b.get(c, p);
                    }
                    reference.set(r, c, acc);
                }
            }
            assert_eq!(fast.data(), reference.data(), "matmul_bt {m}x{k}x{n}");
        }
    }

    #[test]
    fn axpy_slice_matches_axpy() {
        let x: Vec<f32> = (0..1000).map(|i| (i % 9) as f32 * 0.3).collect();
        let mut y: Vec<f32> = (0..1000).map(|i| (i % 4) as f32).collect();
        let mut yt = Tensor::from_vec(1, 1000, y.clone()).unwrap();
        let xt = Tensor::from_vec(1, 1000, x.clone()).unwrap();
        axpy(0.25, &xt, &mut yt).unwrap();
        axpy_slice(0.25, &x, &mut y);
        assert_eq!(yt.data(), y.as_slice());
    }

    #[test]
    fn sum_rows_acc_adds_to_existing() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let mut acc = Tensor::full(1, 3, 1.0);
        sum_rows_acc(&a, &mut acc).unwrap();
        assert_eq!(acc.data(), &[6., 8., 10.]);
        assert!(sum_rows_acc(&a, &mut Tensor::zeros(1, 2)).is_err());
    }
}

//! Linear-algebra and elementwise operations on [`Tensor`].
//!
//! Matrix products are the compute hot path of the neural-network substrate; the plain
//! `matmul` switches to a rayon-parallel row partitioning once the output is large
//! enough to amortise the fork-join overhead (see the Rayon guidance in the hpc-parallel
//! coding guides). Everything else is written as straightforward, allocation-conscious
//! loops over row slices.

use crate::{Result, Tensor, TensorError};
use rayon::prelude::*;

/// Minimum number of output elements before `matmul` uses the rayon-parallel path.
const PAR_THRESHOLD: usize = 64 * 64;

#[inline]
fn shape_err(op: &'static str, a: &Tensor, b: &Tensor) -> TensorError {
    TensorError::ShapeMismatch {
        op,
        lhs: a.shape(),
        rhs: b.shape(),
    }
}

/// Dense matrix product `A (m x k) * B (k x n) -> (m x n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.cols() != b.rows() {
        return Err(shape_err("matmul", a, b));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);

    let compute_row = |a_row: &[f32], out_row: &mut [f32]| {
        // k-outer loop with axpy-style inner loop: streams through B row-by-row, which is
        // cache-friendly for row-major storage and auto-vectorises well.
        for (p, &a_val) in a_row.iter().enumerate().take(k) {
            if a_val == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for (o, &b_val) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_val * b_val;
            }
        }
    };

    if m * n >= PAR_THRESHOLD && m > 1 {
        let a_data = a.data();
        out.data_mut()
            .par_chunks_mut(n)
            .zip(a_data.par_chunks(k))
            .for_each(|(out_row, a_row)| compute_row(a_row, out_row));
    } else {
        for r in 0..m {
            let a_row = a.row(r);
            // Split borrow: copy out row pointer via index math through data_mut.
            let out_row = &mut out.data_mut()[r * n..(r + 1) * n];
            compute_row(a_row, out_row);
        }
    }
    Ok(out)
}

/// Product with the second operand transposed: `A (m x k) * B^T` where `B` is `(n x k)`.
///
/// This is the shape needed for the backward pass of a linear layer
/// (`dX = dY * W^T`) without materialising the transpose.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.cols() != b.cols() {
        return Err(shape_err("matmul_bt", a, b));
    }
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Tensor::zeros(m, n);
    for r in 0..m {
        let a_row = a.row(r);
        let out_row = &mut out.data_mut()[r * n..(r + 1) * n];
        for (c, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(c);
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a_row[p] * b_row[p];
            }
            *o = acc;
        }
    }
    Ok(out)
}

/// Product with the first operand transposed: `A^T * B` where `A` is `(k x m)`, `B` is `(k x n)`.
///
/// This is the shape needed for the weight gradient of a linear layer (`dW = X^T * dY`).
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rows() != b.rows() {
        return Err(shape_err("matmul_at", a, b));
    }
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for p in 0..k {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for (i, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let out_row = &mut out.data_mut()[i * n..(i + 1) * n];
            for (o, &b_val) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_val * b_val;
            }
        }
    }
    Ok(out)
}

/// Materialised transpose.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.shape();
    Tensor::from_fn(n, m, |r, c| a.get(c, r))
}

/// Elementwise sum `a + b`.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = a.clone();
    out.zip_mut_with(b, |x, y| x + y)?;
    Ok(out)
}

/// Elementwise difference `a - b`.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = a.clone();
    out.zip_mut_with(b, |x, y| x - y)?;
    Ok(out)
}

/// Elementwise (Hadamard) product `a ⊙ b`.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = a.clone();
    out.zip_mut_with(b, |x, y| x * y)?;
    Ok(out)
}

/// Scale every element by `s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// In-place AXPY: `y += alpha * x`.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) -> Result<()> {
    y.zip_mut_with(x, |yi, xi| yi + alpha * xi)
}

/// Broadcast-add a `1 x n` row vector to every row of an `m x n` tensor.
pub fn add_row_broadcast(a: &Tensor, row: &Tensor) -> Result<Tensor> {
    if row.rows() != 1 || row.cols() != a.cols() {
        return Err(shape_err("add_row_broadcast", a, row));
    }
    let mut out = a.clone();
    let r = row.data();
    for i in 0..out.rows() {
        for (o, &b) in out.row_mut(i).iter_mut().zip(r.iter()) {
            *o += b;
        }
    }
    Ok(out)
}

/// Sum over rows, producing a `1 x n` row vector (used for bias gradients).
pub fn sum_rows(a: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(1, a.cols());
    for r in 0..a.rows() {
        for (o, &x) in out.row_mut(0).iter_mut().zip(a.row(r).iter()) {
            *o += x;
        }
    }
    out
}

/// Sum of all elements.
pub fn sum(a: &Tensor) -> f32 {
    a.data().iter().sum()
}

/// Mean of all elements.
pub fn mean(a: &Tensor) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    sum(a) / a.len() as f32
}

/// Population variance of all elements.
pub fn variance(a: &Tensor) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.data().iter().map(|x| (x - m).powi(2)).sum::<f32>() / a.len() as f32
}

/// Squared L2 norm of all elements.
pub fn sq_norm(a: &Tensor) -> f32 {
    a.data().iter().map(|x| x * x).sum()
}

/// L2 norm of all elements.
pub fn norm_l2(a: &Tensor) -> f32 {
    sq_norm(a).sqrt()
}

/// Dot product of two tensors viewed as flat vectors.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.len() != b.len() {
        return Err(shape_err("dot", a, b));
    }
    Ok(a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| x * y)
        .sum())
}

/// Row-wise softmax (numerically stabilised with the row max).
pub fn softmax_rows(a: &Tensor) -> Tensor {
    let mut out = a.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            denom += *x;
        }
        let inv = 1.0 / denom;
        for x in row.iter_mut() {
            *x *= inv;
        }
    }
    out
}

/// Index of the maximum element in each row.
pub fn argmax_rows(a: &Tensor) -> Vec<usize> {
    a.rows_iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|(_, x), (_, y)| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Clip every element to `[-limit, limit]` (gradient clipping).
pub fn clip(a: &mut Tensor, limit: f32) {
    a.map_inplace(|x| x.clamp(-limit, limit));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_parallel_matches_serial_shape() {
        // Large enough to trigger the rayon path.
        let a = Tensor::from_fn(80, 70, |r, c| ((r * 7 + c) % 5) as f32 - 2.0);
        let b = Tensor::from_fn(70, 90, |r, c| ((r + 3 * c) % 7) as f32 - 3.0);
        let c = matmul(&a, &b).unwrap();
        // Spot-check a few entries against a straightforward triple loop.
        for &(i, j) in &[(0usize, 0usize), (13, 57), (79, 89), (40, 1)] {
            let mut acc = 0.0f32;
            for p in 0..70 {
                acc += a.get(i, p) * b.get(p, j);
            }
            assert!((c.get(i, j) - acc).abs() < 1e-3, "({i},{j})");
        }
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Tensor::from_fn(4, 6, |r, c| (r as f32) - (c as f32) * 0.5);
        let b = Tensor::from_fn(5, 6, |r, c| (r * c) as f32 * 0.1);
        let direct = matmul_bt(&a, &b).unwrap();
        let via_t = matmul(&a, &transpose(&b)).unwrap();
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = Tensor::from_fn(6, 4, |r, c| (r + c) as f32 * 0.3);
        let b = Tensor::from_fn(6, 5, |r, c| (r as f32) - (c as f32));
        let direct = matmul_at(&a, &b).unwrap();
        let via_t = matmul(&transpose(&a), &b).unwrap();
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn add_sub_hadamard_scale() {
        let a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[4., 5., 6.]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(sub(&b, &a).unwrap().data(), &[3., 3., 3.]);
        assert_eq!(hadamard(&a, &b).unwrap().data(), &[4., 10., 18.]);
        assert_eq!(scale(&a, 2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = t(1, 3, &[1., 1., 1.]);
        let mut y = t(1, 3, &[1., 2., 3.]);
        axpy(0.5, &x, &mut y).unwrap();
        assert_eq!(y.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn broadcast_and_sum_rows() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let bias = t(1, 3, &[10., 20., 30.]);
        let c = add_row_broadcast(&a, &bias).unwrap();
        assert_eq!(c.data(), &[11., 22., 33., 14., 25., 36.]);
        assert_eq!(sum_rows(&a).data(), &[5., 7., 9.]);
    }

    #[test]
    fn reductions() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        assert_eq!(sum(&a), 10.0);
        assert_eq!(mean(&a), 2.5);
        assert!((variance(&a) - 1.25).abs() < 1e-6);
        assert_eq!(sq_norm(&a), 30.0);
        assert!((norm_l2(&a) - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(dot(&a, &a).unwrap(), 30.0);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let a = t(2, 3, &[1., 2., 3., -1., 0., 1.]);
        let s = softmax_rows(&a);
        for r in 0..2 {
            let total: f32 = s.row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
            assert!(s.row(r).iter().all(|&x| x > 0.0));
        }
        // Larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = t(1, 3, &[1000., 1001., 1002.]);
        let s = softmax_rows(&a);
        assert!(s.data().iter().all(|x| x.is_finite()));
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn argmax_and_clip() {
        let a = t(2, 3, &[1., 5., 2., -3., -1., -2.]);
        assert_eq!(argmax_rows(&a), vec![1, 1]);
        let mut b = t(1, 3, &[-10., 0.5, 10.]);
        clip(&mut b, 1.0);
        assert_eq!(b.data(), &[-1.0, 0.5, 1.0]);
    }
}

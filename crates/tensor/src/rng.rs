//! Seedable random-number helpers.
//!
//! Every stochastic component in the reproduction (weight init, mini-batch sampling,
//! data-injection worker selection, synthetic datasets) draws from a
//! [`rand_chacha::ChaCha8Rng`] created through this module, so a fixed seed reproduces a
//! run bit-for-bit.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG type used throughout the workspace.
pub type SelRng = ChaCha8Rng;

/// Create a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> SelRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derive an independent child RNG from a base seed and a stream index.
///
/// Workers in the simulated cluster each get `derived(seed, worker_id)` so runs are
/// deterministic regardless of thread interleaving.
pub fn derived(seed: u64, stream: u64) -> SelRng {
    // Mix the stream index into the seed with a splitmix64-style finalizer so nearby
    // streams do not produce correlated ChaCha key schedules.
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ChaCha8Rng::seed_from_u64(z)
}

/// Draw one sample from `N(mean, std^2)` using the Box–Muller transform.
pub fn normal(rng: &mut impl Rng, mean: f32, std: f32) -> f32 {
    // Box–Muller: avoid log(0) by clamping away from zero.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + std * mag * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fill a slice with `N(mean, std^2)` samples.
pub fn fill_normal(rng: &mut impl Rng, out: &mut [f32], mean: f32, std: f32) {
    for x in out.iter_mut() {
        *x = normal(rng, mean, std);
    }
}

/// Fill a slice with `U(lo, hi)` samples.
pub fn fill_uniform(rng: &mut impl Rng, out: &mut [f32], lo: f32, hi: f32) {
    for x in out.iter_mut() {
        *x = rng.gen_range(lo..hi);
    }
}

/// Produce a uniformly random permutation of `0..n` (Fisher–Yates).
pub fn permutation(rng: &mut impl Rng, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Sample `k` distinct indices from `0..n` without replacement (partial Fisher–Yates).
///
/// Runs in `O(k)` memory: instead of materialising `0..n`, only the displaced
/// positions are tracked in a map. The RNG draw sequence and the returned sample are
/// identical to the classic array-based partial shuffle.
pub fn sample_without_replacement(rng: &mut impl Rng, n: usize, k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    sample_without_replacement_into(rng, n, k, &mut out);
    out
}

/// [`sample_without_replacement`] into a caller-owned buffer (cleared first).
pub fn sample_without_replacement_into(
    rng: &mut impl Rng,
    n: usize,
    k: usize,
    out: &mut Vec<usize>,
) {
    SparseSampler::new().sample_into(rng, n, k, out);
}

/// Reusable sparse Fisher–Yates sampler: `O(k)` memory instead of materialising
/// `0..n`, and the displacement map keeps its capacity across calls — the zero-alloc
/// path for per-step compressors that hold a sampler in their state.
#[derive(Debug, Clone, Default)]
pub struct SparseSampler {
    /// `swapped[p]` is the value currently sitting at position `p` (positions not
    /// present still hold their own index).
    swapped: std::collections::HashMap<usize, usize>,
}

impl SparseSampler {
    /// Create an empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample `k` distinct indices from `0..n` into `out` (cleared first). The RNG
    /// draw sequence and the result are identical to the classic array-based partial
    /// Fisher–Yates shuffle.
    pub fn sample_into(&mut self, rng: &mut impl Rng, n: usize, k: usize, out: &mut Vec<usize>) {
        assert!(k <= n, "cannot sample {k} items from a population of {n}");
        out.clear();
        out.reserve(k);
        self.swapped.clear();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            let vj = self.swapped.get(&j).copied().unwrap_or(j);
            let vi = self.swapped.get(&i).copied().unwrap_or(i);
            out.push(vj);
            self.swapped.insert(j, vi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = derived(42, 0);
        let mut b = derived(42, 1);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut rng = seeded(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng, 1.0, 2.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(3);
        let p = permutation(&mut rng, 100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = seeded(5);
        let s = sample_without_replacement(&mut rng, 50, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(s.iter().all(|&x| x < 50));
    }

    #[test]
    #[should_panic]
    fn sample_more_than_population_panics() {
        let mut rng = seeded(5);
        let _ = sample_without_replacement(&mut rng, 3, 4);
    }
}

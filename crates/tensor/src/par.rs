//! Deterministic parallel helpers over the shared worker pool.
//!
//! Everything here follows one contract: work is split into **fixed-size,
//! index-disjoint chunks**, each chunk is processed with the same per-element
//! operation order a serial loop would use, and no cross-chunk reduction ever
//! races. Results are therefore bit-identical for every thread count — the
//! property the scenario subsystem's byte-identical reports depend on.
//!
//! Thread count comes from `SELSYNC_THREADS` (default `available_parallelism`);
//! see [`with_threads`] for scoped overrides in tests and benchmarks.

pub use rayon::pool::{configured_threads, current_num_threads, parallel_for, with_threads};

/// Chunk length (elements) for parallel elementwise sweeps. Fixed — never a
/// function of the thread count — so the work decomposition is reproducible.
pub const ELEM_CHUNK: usize = 16 * 1024;

/// Raw-pointer wrapper for index-disjoint cross-thread writes.
///
/// Closures must capture the wrapper (via [`SendPtr::get`]), never the bare
/// pointer, to inherit the `Send`/`Sync` guarantees. Constructing one is safe;
/// every dereference of the wrapped pointer is `unsafe` and carries the usual
/// obligations (in-bounds, disjoint across tasks, borrow outlives all uses —
/// which [`parallel_for`] guarantees by blocking until every task finishes).
pub struct SendPtr<T>(pub *mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer.
    pub fn get(&self) -> *mut T {
        self.0
    }
}

/// Apply `f(start, end)` over `0..len` in fixed `chunk`-sized ranges, in
/// parallel. `f` must only touch state belonging to its range.
pub fn for_each_range(len: usize, chunk: usize, f: impl Fn(usize, usize) + Sync) {
    if len == 0 {
        return;
    }
    let chunk = chunk.max(1);
    parallel_for(len.div_ceil(chunk), |t| {
        let start = t * chunk;
        f(start, (start + chunk).min(len));
    });
}

/// Parallel sweep over disjoint mutable chunks of `data`; `f` receives the
/// chunk's start index and the chunk itself.
pub fn for_each_chunk_mut(data: &mut [f32], chunk: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    let len = data.len();
    let base = SendPtr(data.as_mut_ptr());
    for_each_range(len, chunk, |start, end| {
        // SAFETY: ranges are disjoint and within bounds; the borrow of `data`
        // outlives the blocking `parallel_for` call.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(start, slice);
    });
}

/// Parallel `y[i] = f(y[i], x[i])`. Panics on length mismatch.
pub fn zip2_mut(y: &mut [f32], x: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    assert_eq!(y.len(), x.len(), "zip2_mut length mismatch");
    for_each_chunk_mut(y, ELEM_CHUNK, |start, ys| {
        let len = ys.len();
        for (yy, &xx) in ys.iter_mut().zip(&x[start..start + len]) {
            *yy = f(*yy, xx);
        }
    });
}

/// Parallel elementwise update over two mutable vectors and one input:
/// `f(&mut a[i], &mut b[i], x[i])` (the SGD momentum shape).
pub fn zip3_mut(
    a: &mut [f32],
    b: &mut [f32],
    x: &[f32],
    f: impl Fn(&mut f32, &mut f32, f32) + Sync,
) {
    assert_eq!(a.len(), b.len(), "zip3_mut length mismatch");
    assert_eq!(a.len(), x.len(), "zip3_mut length mismatch");
    let len = a.len();
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    for_each_range(len, ELEM_CHUNK, |start, end| {
        // SAFETY: disjoint ranges over both mutable slices.
        let sa = unsafe { std::slice::from_raw_parts_mut(pa.get().add(start), end - start) };
        let sb = unsafe { std::slice::from_raw_parts_mut(pb.get().add(start), end - start) };
        for ((ai, bi), &xi) in sa.iter_mut().zip(sb.iter_mut()).zip(&x[start..end]) {
            f(ai, bi, xi);
        }
    });
}

/// Parallel elementwise update over three mutable vectors and one input:
/// `f(&mut a[i], &mut b[i], &mut c[i], x[i])` (the Adam moment shape).
pub fn zip4_mut(
    a: &mut [f32],
    b: &mut [f32],
    c: &mut [f32],
    x: &[f32],
    f: impl Fn(&mut f32, &mut f32, &mut f32, f32) + Sync,
) {
    assert_eq!(a.len(), b.len(), "zip4_mut length mismatch");
    assert_eq!(a.len(), c.len(), "zip4_mut length mismatch");
    assert_eq!(a.len(), x.len(), "zip4_mut length mismatch");
    let len = a.len();
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    let pc = SendPtr(c.as_mut_ptr());
    for_each_range(len, ELEM_CHUNK, |start, end| {
        // SAFETY: disjoint ranges over all three mutable slices.
        let sa = unsafe { std::slice::from_raw_parts_mut(pa.get().add(start), end - start) };
        let sb = unsafe { std::slice::from_raw_parts_mut(pb.get().add(start), end - start) };
        let sc = unsafe { std::slice::from_raw_parts_mut(pc.get().add(start), end - start) };
        for (((ai, bi), ci), &xi) in sa
            .iter_mut()
            .zip(sb.iter_mut())
            .zip(sc.iter_mut())
            .zip(&x[start..end])
        {
            f(ai, bi, ci, xi);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zip2_matches_serial_for_any_thread_count() {
        let x: Vec<f32> = (0..40_000).map(|i| (i % 17) as f32 * 0.25).collect();
        let mut serial: Vec<f32> = (0..40_000).map(|i| (i % 5) as f32).collect();
        let mut parallel = serial.clone();
        for (y, &xx) in serial.iter_mut().zip(&x) {
            *y = *y * 0.9 + xx;
        }
        with_threads(4, || zip2_mut(&mut parallel, &x, |y, xx| y * 0.9 + xx));
        assert_eq!(serial, parallel, "bitwise identical across thread counts");
    }

    #[test]
    fn zip3_applies_in_place() {
        let mut a = vec![1.0f32; 100];
        let mut b = vec![2.0f32; 100];
        let x = vec![3.0f32; 100];
        zip3_mut(&mut a, &mut b, &x, |ai, bi, xi| {
            *bi += xi;
            *ai -= *bi;
        });
        assert!(a.iter().all(|&v| v == -4.0));
        assert!(b.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn for_each_range_covers_everything_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits: Vec<AtomicU32> = (0..10_001).map(|_| AtomicU32::new(0)).collect();
        with_threads(3, || {
            for_each_range(hits.len(), 128, |s, e| {
                for h in &hits[s..e] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[should_panic]
    fn zip2_length_mismatch_panics() {
        zip2_mut(&mut [0.0], &[0.0, 1.0], |y, _| y);
    }
}

//! The core row-major 2-D [`Tensor`] type.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major, 2-D matrix of `f32` values.
///
/// Vectors are represented as `1 x n` (row vector) or `n x 1` (column vector) tensors.
/// The type is intentionally small: all data lives in one contiguous `Vec<f32>` so the
/// communication substrate can treat parameters and gradients as flat byte buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor::full(rows, cols, 1.0)
    }

    /// Create a tensor filled with a constant `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a tensor from an existing buffer in row-major order.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Create a tensor by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { rows, cols, data }
    }

    /// Build a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Tensor {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`; panics if out of bounds (debug-friendly hot path).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Checked element access.
    pub fn try_get(&self, r: usize, c: usize) -> Result<f32> {
        if r >= self.rows || c >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: (r, c),
                shape: self.shape(),
            });
        }
        Ok(self.data[r * self.cols + c])
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy the rows indexed by `indices` into a new tensor (gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        // Start from an empty tensor: gather_rows_into sizes and fills it, so
        // pre-zeroing a full buffer here would be a wasted memset.
        let mut out = Tensor::zeros(0, 0);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// Gather rows into a caller-owned tensor, reshaping it to `(indices.len(), cols)`
    /// and reusing its buffer — the zero-alloc per-step batch-assembly path.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Tensor) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &idx in indices {
            out.data.extend_from_slice(self.row(idx));
        }
    }

    /// Apply `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combine with another tensor of identical shape: `self[i] = f(self[i], other[i])`.
    pub fn zip_mut_with(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "zip_mut_with",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = f(*a, *b);
        }
        Ok(())
    }

    /// Reshape without copying. Errors if the element count changes.
    pub fn reshape(self, rows: usize, cols: usize) -> Result<Tensor> {
        if rows * cols != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            rows,
            cols,
            data: self.data,
        })
    }

    /// Number of bytes occupied by the element buffer (used by the network cost model).
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    // --- scratch-arena integration (zero-alloc hot paths) --------------------------

    /// Create a zero-filled tensor backed by this thread's scratch arena
    /// ([`crate::scratch`]). Identical to [`Tensor::zeros`] except the buffer
    /// is recycled rather than freshly allocated when possible.
    pub fn scratch_zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: crate::scratch::take_zeroed(rows * cols),
        }
    }

    /// Arena-backed copy of `src` (a `clone` whose buffer comes from the
    /// scratch arena).
    pub fn scratch_copy(src: &Tensor) -> Self {
        let mut t = Tensor::scratch_zeros(src.rows, src.cols);
        t.data.copy_from_slice(&src.data);
        t
    }

    /// Return this tensor's buffer to the scratch arena.
    pub fn recycle(self) {
        crate::scratch::recycle(self.data);
    }

    /// Cache a copy of `self` in `slot`, reusing the slot's existing buffer
    /// when the shape matches (the per-step layer-cache path allocates nothing
    /// in steady state).
    pub fn clone_into_slot(&self, slot: &mut Option<Tensor>) {
        match slot {
            Some(t) if t.shape() == self.shape() => t.data.copy_from_slice(&self.data),
            _ => *slot = Some(self.clone()),
        }
    }

    /// Set every element to `value` (memset-style, faster than `map_inplace`).
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(2, 2, vec![1.0; 3]),
            Err(TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(2, 3);
        t.set(1, 2, 7.5);
        assert_eq!(t.get(1, 2), 7.5);
        assert_eq!(t.try_get(1, 2), Ok(7.5));
        assert!(t.try_get(2, 0).is_err());
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(t.row(1), &[2.0, 3.0]);
        assert_eq!(t.rows_iter().count(), 3);
    }

    #[test]
    fn gather_rows_copies_selected() {
        let t = Tensor::from_fn(4, 2, |r, _| r as f32);
        let g = t.gather_rows(&[3, 1]);
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::full(2, 2, 2.0);
        let b = a.map(|x| x * x);
        assert!(b.data().iter().all(|&x| x == 4.0));
        let mut c = a.clone();
        c.zip_mut_with(&b, |x, y| x + y).unwrap();
        assert!(c.data().iter().all(|&x| x == 6.0));
        assert!(c.zip_mut_with(&Tensor::zeros(3, 3), |x, _| x).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let r = t.clone().reshape(3, 2).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(4, 2).is_err());
    }

    #[test]
    fn nbytes_counts_f32() {
        assert_eq!(Tensor::zeros(2, 5).nbytes(), 40);
    }
}

//! # selsync-tensor
//!
//! Dense numerical substrate for the SelSync reproduction.
//!
//! The crate provides a small, fast, row-major 2-D [`Tensor`] of `f32` values together
//! with the linear-algebra and elementwise operations the neural-network substrate
//! (`selsync-nn`) needs: matrix multiplication (rayon-parallel for large operands),
//! transposed products, broadcasts, reductions, norms and softmax.
//!
//! Design notes:
//!
//! * Everything is `f32`: the paper's workloads are single-precision DNN training.
//! * Tensors are plain owned buffers (`Vec<f32>`); views are expressed as row slices.
//!   This keeps the API small and the aliasing story trivial, which matters because the
//!   communication substrate moves flattened parameter/gradient vectors between threads.
//! * All random initialisation goes through seedable RNGs ([`rng`]) so experiments and
//!   tests are deterministic.

pub mod init;
pub mod ops;
pub mod par;
pub mod rng;
pub mod scratch;
pub mod tensor;

pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A constructor was given a buffer whose length does not match the shape.
    LengthMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Requested index.
        index: (usize, usize),
        /// Tensor shape.
        shape: (usize, usize),
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "length mismatch: expected {expected} elements, got {actual}"
                )
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

//! Thread-local scratch-buffer arena.
//!
//! The training hot path (forward/backward every iteration, for every worker)
//! used to allocate a fresh `Vec<f32>` for every layer output, gradient and
//! temporary. This module recycles those buffers instead: [`take_zeroed`]
//! hands out a pooled buffer, [`recycle`] returns it. The arena is
//! thread-local, so the threaded cluster driver and the worker pool need no
//! locking, and buffers stay NUMA/cache-local to the thread that uses them.
//!
//! Steady-state training allocates nothing per step once every shape has been
//! seen once per thread.

use std::cell::RefCell;

/// Maximum number of buffers retained per thread.
const MAX_POOLED: usize = 64;

/// Buffers larger than this many elements are never retained (don't hoard).
const MAX_POOLED_LEN: usize = 1 << 24;

thread_local! {
    static ARENA: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Take a zero-filled buffer of exactly `len` elements from the arena
/// (allocating only when no pooled buffer has enough capacity).
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut buf = ARENA
        .with(|arena| {
            let mut arena = arena.borrow_mut();
            let pos = arena.iter().position(|b| b.capacity() >= len);
            pos.map(|p| arena.swap_remove(p)).or_else(|| arena.pop())
        })
        .unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    buf
}

/// Return a buffer to the arena for reuse by this thread.
pub fn recycle(mut buf: Vec<f32>) {
    if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_LEN {
        return;
    }
    buf.clear();
    ARENA.with(|arena| {
        let mut arena = arena.borrow_mut();
        if arena.len() < MAX_POOLED {
            arena.push(buf);
        }
    });
}

/// Number of buffers currently pooled on this thread (diagnostics/tests).
pub fn pooled_buffers() -> usize {
    ARENA.with(|arena| arena.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffer_is_reused() {
        let mut a = take_zeroed(100);
        a[0] = 5.0;
        let ptr = a.as_ptr();
        recycle(a);
        let b = take_zeroed(50);
        assert_eq!(b.as_ptr(), ptr, "same allocation comes back");
        assert!(b.iter().all(|&x| x == 0.0), "and it is zeroed");
        assert_eq!(b.len(), 50);
        recycle(b);
    }

    #[test]
    fn take_is_zeroed_even_from_fresh_allocation() {
        let v = take_zeroed(17);
        assert_eq!(v.len(), 17);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let before = pooled_buffers();
        recycle(Vec::new());
        assert_eq!(pooled_buffers(), before);
    }
}

//! Weight initialisation schemes.
//!
//! The paper's models are standard vision / language networks whose training dynamics in
//! the early epochs (large, volatile gradients — §II-E of the paper) depend on sensible
//! initialisation. We provide the conventional schemes used by PyTorch defaults.

use crate::rng;
use crate::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rng_: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut t = Tensor::zeros(fan_in, fan_out);
    rng::fill_uniform(rng_, t.data_mut(), -a, a);
    t
}

/// Kaiming/He normal initialisation: `N(0, sqrt(2 / fan_in))`, suited to ReLU networks.
pub fn he_normal(rng_: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    let mut t = Tensor::zeros(fan_in, fan_out);
    rng::fill_normal(rng_, t.data_mut(), 0.0, std);
    t
}

/// Plain normal initialisation `N(mean, std^2)` with an arbitrary shape.
pub fn normal(rng_: &mut impl Rng, rows: usize, cols: usize, mean: f32, std: f32) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    rng::fill_normal(rng_, t.data_mut(), mean, std);
    t
}

/// Plain uniform initialisation `U(lo, hi)` with an arbitrary shape.
pub fn uniform(rng_: &mut impl Rng, rows: usize, cols: usize, lo: f32, hi: f32) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    rng::fill_uniform(rng_, t.data_mut(), lo, hi);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn xavier_respects_bound() {
        let mut r = seeded(1);
        let t = xavier_uniform(&mut r, 64, 32);
        let a = (6.0f32 / 96.0).sqrt();
        assert_eq!(t.shape(), (64, 32));
        assert!(t.data().iter().all(|&x| x >= -a && x <= a));
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let mut r = seeded(2);
        let t = he_normal(&mut r, 256, 256);
        let mean: f32 = t.data().iter().sum::<f32>() / t.len() as f32;
        let var: f32 = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        let expected = 2.0 / 256.0;
        assert!(mean.abs() < 0.01);
        assert!(
            (var - expected).abs() < expected * 0.2,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn uniform_respects_range() {
        let mut r = seeded(3);
        let t = uniform(&mut r, 10, 10, -0.5, 0.25);
        assert!(t.data().iter().all(|&x| (-0.5..0.25).contains(&x)));
    }

    #[test]
    fn initialisation_is_deterministic_per_seed() {
        let a = normal(&mut seeded(9), 4, 4, 0.0, 1.0);
        let b = normal(&mut seeded(9), 4, 4, 0.0, 1.0);
        assert_eq!(a, b);
    }
}

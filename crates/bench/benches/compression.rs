//! Compression-overhead micro-benchmarks (the paper's §II-D point that compression "is
//! not a zero-cost operation"): compress/decompress cost of each baseline on a
//! model-sized gradient, for comparison with SelSync's ~µs Δ(g_i) tracking cost.

use criterion::{criterion_group, criterion_main, Criterion};
use selsync_bench::synthetic_gradient;
use selsync_compress::{decompress_dense, Compressor, RandomK, SignSgd, TernGrad, TopK};
use selsync_nn::model::ModelKind;
use std::hint::black_box;

fn bench_compressors(c: &mut Criterion) {
    let grad = synthetic_gradient(ModelKind::VggLike);
    let mut group = c.benchmark_group("compress");
    group.sample_size(30);
    group.bench_function("topk_1pct", |b| {
        let mut comp = TopK::new(0.01);
        b.iter(|| comp.compress(black_box(&grad)));
    });
    group.bench_function("randomk_1pct", |b| {
        let mut comp = RandomK::new(0.01, 7, true);
        b.iter(|| comp.compress(black_box(&grad)));
    });
    group.bench_function("signsgd", |b| {
        let mut comp = SignSgd::new();
        b.iter(|| comp.compress(black_box(&grad)));
    });
    group.bench_function("terngrad", |b| {
        let mut comp = TernGrad::new(3);
        b.iter(|| comp.compress(black_box(&grad)));
    });
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let grad = synthetic_gradient(ModelKind::VggLike);
    let payload = TopK::new(0.01).compress(&grad);
    c.bench_function("decompress_topk_1pct", |b| b.iter(|| decompress_dense(black_box(&payload))));
}

criterion_group!(benches, bench_compressors, bench_decompress);
criterion_main!(benches);

//! Fig. 8b as a criterion micro-benchmark: DefDP vs SelDP partition construction time at
//! the paper's dataset cardinalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selsync_data::partition::{build_all, PartitionScheme};
use std::hint::black_box;

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_build");
    group.sample_size(10);
    let datasets = [("cifar", 50_000usize), ("imagenet", 1_281_167), ("wikitext", 2_900_000)];
    for (name, samples) in datasets {
        for scheme in [PartitionScheme::DefDp, PartitionScheme::SelDp] {
            let id = format!("{name}_{}", scheme.name());
            group.bench_with_input(BenchmarkId::from_parameter(id), &samples, |b, &n| {
                b.iter(|| build_all(black_box(scheme), black_box(n), 16));
            });
        }
    }
    group.finish();
}

fn bench_batch_drawing(c: &mut Criterion) {
    let mut part =
        selsync_data::partition::WorkerPartition::build(PartitionScheme::SelDp, 1_281_167, 16, 3);
    c.bench_function("next_batch_32", |b| b.iter(|| part.next_batch(black_box(32))));
}

criterion_group!(benches, bench_partitioning, bench_batch_drawing);
criterion_main!(benches);

//! Micro-benchmarks of the tensor substrate's hot kernels (matmul variants, softmax),
//! which dominate per-step compute time in the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selsync_tensor::{ops, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[32usize, 64, 128, 256] {
        let a = Tensor::from_fn(n, n, |r, c| ((r * 7 + c) % 11) as f32 * 0.1 - 0.5);
        let b = Tensor::from_fn(n, n, |r, c| ((r + 3 * c) % 13) as f32 * 0.1 - 0.6);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_backward_products(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_transposed");
    group.sample_size(20);
    let x = Tensor::from_fn(64, 128, |r, c| ((r + c) % 7) as f32 * 0.1);
    let dy = Tensor::from_fn(64, 96, |r, c| ((r * c) % 5) as f32 * 0.01);
    let w = Tensor::from_fn(128, 96, |r, c| ((r + 2 * c) % 9) as f32 * 0.05);
    group.bench_function("dW = X^T dY (matmul_at)", |b| {
        b.iter(|| ops::matmul_at(black_box(&x), black_box(&dy)).unwrap())
    });
    group.bench_function("dX = dY W^T (matmul_bt)", |b| {
        b.iter(|| ops::matmul_bt(black_box(&dy), black_box(&w)).unwrap())
    });
    group.finish();
}

fn bench_softmax_and_norms(c: &mut Criterion) {
    let logits = Tensor::from_fn(256, 1000, |r, c| ((r * 13 + c * 7) % 23) as f32 * 0.1);
    c.bench_function("softmax_rows 256x1000", |b| {
        b.iter(|| ops::softmax_rows(black_box(&logits)))
    });
    let grad = Tensor::from_fn(1, 100_000, |_, c| (c % 97) as f32 * 1e-4);
    c.bench_function("sq_norm 100k", |b| b.iter(|| ops::sq_norm(black_box(&grad))));
}

criterion_group!(benches, bench_matmul, bench_backward_products, bench_softmax_and_norms);
criterion_main!(benches);

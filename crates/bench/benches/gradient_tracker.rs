//! Fig. 8a as a criterion micro-benchmark: the per-iteration cost of the Δ(g_i)
//! computation (gradient statistic + EWMA smoothing + relative change) as a function of
//! the EWMA window size, on gradients sized like each model analogue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selsync::tracker::{GradStatistic, GradientTracker};
use selsync_bench::synthetic_gradient;
use selsync_nn::model::ModelKind;
use std::hint::black_box;

fn bench_tracker_windows(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_g_update");
    for kind in [ModelKind::ResNetLike, ModelKind::TransformerLike] {
        let grad = synthetic_gradient(kind);
        for window in [25usize, 50, 100, 200] {
            let id = format!("{}_w{window}", kind.paper_name());
            group.bench_with_input(BenchmarkId::from_parameter(id), &window, |b, &w| {
                let mut tracker = GradientTracker::new(GradStatistic::SqNorm, 0.16, w);
                b.iter(|| tracker.update(black_box(&grad)));
            });
        }
    }
    group.finish();
}

fn bench_statistics(c: &mut Criterion) {
    let grad = synthetic_gradient(ModelKind::VggLike);
    c.bench_function("statistic_sq_norm", |b| {
        b.iter(|| GradStatistic::SqNorm.evaluate(black_box(&grad)))
    });
    c.bench_function("statistic_variance", |b| {
        b.iter(|| GradStatistic::Variance.evaluate(black_box(&grad)))
    });
}

criterion_group!(benches, bench_tracker_windows, bench_statistics);
criterion_main!(benches);

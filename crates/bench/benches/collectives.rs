//! Communication-substrate micro-benchmarks: the real (thread-rendezvous) 1-bit status
//! all-gather and parameter-server synchronization rounds, plus the analytical network
//! model's cost evaluation. The status all-gather is the op SelSync adds to every step,
//! so its overhead must be negligible next to a parameter exchange.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selsync_comm::{Collective, NetworkModel, ParameterServer};
use std::hint::black_box;
use std::sync::Arc;

fn run_threads<T: Send>(n: usize, f: impl Fn(usize) -> T + Send + Sync) -> Vec<T> {
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..n).map(|w| s.spawn(move || f(w))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn bench_status_allgather(c: &mut Criterion) {
    let mut group = c.benchmark_group("status_allgather");
    group.sample_size(20);
    for &n in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let coll = Arc::new(Collective::new(n));
                let c2 = Arc::clone(&coll);
                run_threads(n, move |w| c2.allgather_flags(w, w % 3 == 0))
            });
        });
    }
    group.finish();
}

fn bench_ps_sync_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_sync_round");
    group.sample_size(10);
    for &dim in &[1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            b.iter(|| {
                let ps = Arc::new(ParameterServer::new(vec![0.0; dim]));
                let ps2 = Arc::clone(&ps);
                run_threads(8, move |w| ps2.sync_round(&vec![w as f32; dim], 8))
            });
        });
    }
    group.finish();
}

fn bench_network_model(c: &mut Criterion) {
    let net = NetworkModel::paper_5gbps();
    c.bench_function("cost_model_ps_sync_time", |b| {
        b.iter(|| net.ps_sync_time(black_box(507 * 1024 * 1024), black_box(16)))
    });
}

criterion_group!(benches, bench_status_allgather, bench_ps_sync_round, bench_network_model);
criterion_main!(benches);

//! Experiment harness reproducing every table and figure of the SelSync paper.
//!
//! Each `fig*`/`table*` function regenerates one artefact of the paper's evaluation
//! section and returns the data as a [`Table`] (CSV/markdown-renderable). The binaries
//! in `src/bin/` are thin wrappers; `run_all` executes everything and writes CSVs under
//! `bench_results/`.
//!
//! Scaling: the paper's runs train to full convergence on 16 V100s. The harness defaults
//! to a *scaled* setup (documented per experiment in `EXPERIMENTS.md`) so the whole
//! suite finishes on a laptop; set the environment variable `SELSYNC_SCALE=full` for the
//! larger configuration (more iterations and the paper's 16 workers).

use selsync::algorithms;
use selsync::config::{AlgorithmSpec, TrainConfig};
use selsync::report::RunReport;
use selsync_data::partition::{build_all, PartitionScheme};
use selsync_metrics::kde::{gaussian_kde, kde_distance};
use selsync_metrics::table::{fmt_f, Table};
use selsync_nn::cost::{compute_time_ms, fits_in_memory, memory_bytes, DeviceProfile};
use selsync_nn::model::{ModelKind, PaperModel};
use selsync_tensor::Tensor;

/// How large the experiments are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick runs (default): 8 workers, a few hundred iterations per run.
    Quick,
    /// Full runs: the paper's 16 workers and a few thousand iterations per run.
    Full,
}

impl Scale {
    /// Read the scale from the `SELSYNC_SCALE` environment variable (`full` or `quick`).
    pub fn from_env() -> Scale {
        match std::env::var("SELSYNC_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Cluster size for training runs.
    pub fn workers(&self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Full => 16,
        }
    }

    /// Iterations for training runs.
    pub fn iterations(&self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Full => 3000,
        }
    }
}

/// Training configuration used by the convergence experiments at the given scale.
pub fn experiment_config(model: ModelKind, scale: Scale) -> TrainConfig {
    let mut cfg = TrainConfig::small(model, scale.workers());
    cfg.batch_size = if scale == Scale::Full { 32 } else { 16 };
    cfg.iterations = scale.iterations();
    cfg.eval_every = (cfg.iterations / 10).max(1);
    cfg.train_samples = if scale == Scale::Full { 16_384 } else { 4_096 };
    cfg.test_samples = if scale == Scale::Full { 2_048 } else { 512 };
    cfg.eval_samples = 512;
    cfg
}

/// Run one algorithm on one model at the given scale.
pub fn run_algo(model: ModelKind, algo: AlgorithmSpec, scale: Scale) -> RunReport {
    let mut cfg = experiment_config(model, scale);
    cfg.algorithm = algo;
    algorithms::run(&cfg)
}

/// Write a table as CSV under `bench_results/<name>.csv` (directory created on demand).
pub fn write_csv(name: &str, table: &Table) {
    let dir = std::path::Path::new("bench_results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Print a table with a title and also persist it as CSV.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("\n### {title}\n");
    println!("{}", table.to_markdown());
    write_csv(name, table);
}

// ---------------------------------------------------------------------------
// Fig. 1a — relative throughput vs cluster size (communication overhead)
// ---------------------------------------------------------------------------

/// Fig. 1a: training throughput relative to one worker as the PS cluster grows, for the
/// four paper models over a 5 Gbps network. Computed from the cost model (the quantity
/// the paper measures is bandwidth-bound, not statistics-bound).
pub fn fig1a_relative_throughput() -> Table {
    let net = selsync_comm::NetworkModel::paper_5gbps();
    let device = DeviceProfile::v100();
    let batch = 32usize;
    let cluster_sizes = [1usize, 2, 4, 8, 16];

    let mut table = Table::new(vec![
        "model",
        "workers",
        "throughput_samples_per_s",
        "relative_throughput",
    ]);
    for kind in ModelKind::all() {
        let m = PaperModel::build(kind, 1);
        let tc = compute_time_ms(&m.nominal, batch, &device) / 1e3;
        let single = batch as f64 / tc;
        for &n in &cluster_sizes {
            let ts = if n == 1 {
                0.0
            } else {
                net.ps_sync_time(m.nominal.wire_bytes, n)
            };
            let throughput = (n * batch) as f64 / (tc + ts);
            table.push_row(vec![
                kind.paper_name().to_string(),
                n.to_string(),
                fmt_f(throughput, 1),
                fmt_f(throughput / single, 3),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 1b — FedAvg on IID vs non-IID data
// ---------------------------------------------------------------------------

/// Fig. 1b: FedAvg accuracy on IID vs label-sharded non-IID data (ResNet-like/CIFAR10-like
/// with 1 label per worker, VGG-like/CIFAR100-like with 10 labels per worker, 10 workers).
pub fn fig1b_fedavg_iid_vs_noniid(scale: Scale) -> Table {
    let mut table = Table::new(vec!["model", "data", "final_accuracy_%", "best_accuracy_%"]);
    for (kind, labels_per_worker) in [
        (ModelKind::ResNetLike, 1usize),
        (ModelKind::VggLike, 10usize),
    ] {
        for noniid in [false, true] {
            let mut cfg = experiment_config(kind, scale);
            cfg.workers = 10;
            cfg.algorithm = AlgorithmSpec::FedAvg { c: 1.0, e: 0.1 };
            cfg.non_iid_labels_per_worker = if noniid {
                Some(labels_per_worker)
            } else {
                None
            };
            let report = algorithms::run(&cfg);
            table.push_row(vec![
                kind.paper_name().to_string(),
                if noniid {
                    "non-IID".to_string()
                } else {
                    "IID".to_string()
                },
                fmt_f(report.final_metric as f64, 2),
                fmt_f(report.best_metric as f64, 2),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 2 — compute time and memory vs batch size
// ---------------------------------------------------------------------------

/// Fig. 2a/2b: per-iteration compute time and memory against batch size on a Tesla K80,
/// from the nominal model footprints.
pub fn fig2_batchsize_costs() -> Table {
    let device = DeviceProfile::tesla_k80();
    let mut table = Table::new(vec![
        "model",
        "batch_size",
        "compute_time_ms",
        "memory_GB",
        "fits_in_12GB",
    ]);
    for kind in ModelKind::all() {
        let m = PaperModel::build(kind, 1);
        for batch in [32usize, 64, 128, 256, 512, 1024] {
            let t = compute_time_ms(&m.nominal, batch, &device);
            let mem = memory_bytes(&m.nominal, batch) as f64 / 1e9;
            table.push_row(vec![
                kind.paper_name().to_string(),
                batch.to_string(),
                fmt_f(t, 1),
                fmt_f(mem, 2),
                fits_in_memory(&m.nominal, batch, &device).to_string(),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 3 — gradient KDE early vs late in training
// ---------------------------------------------------------------------------

/// Fig. 3: width of the gradient distribution (90% KDE mass) early vs late in training,
/// for the ResNet-like and Transformer-like models.
pub fn fig3_gradient_kde(scale: Scale) -> Table {
    let steps = scale.iterations().min(600);
    let mut table = Table::new(vec![
        "model",
        "phase",
        "kde_mass_width_90",
        "kde_peak_density",
        "mean_abs_gradient",
    ]);
    for kind in [ModelKind::ResNetLike, ModelKind::TransformerLike] {
        let mut cfg = experiment_config(kind, scale);
        cfg.workers = 1;
        let data = build_training_data(kind, &cfg);
        let mut model = PaperModel::build(kind, 21);
        let mut opt = cfg.optimizer.build();
        let mut early = Vec::new();
        let mut late = Vec::new();
        for step in 0..steps {
            let idx: Vec<usize> = (0..cfg.batch_size)
                .map(|i| (step * cfg.batch_size + i) % data.len())
                .collect();
            let (x, y) = data.batch(&idx);
            model.forward_backward(&x, &y);
            let grads = model.grads_flat();
            if step < 10 {
                early.extend(grads.iter().step_by(7).cloned());
            }
            if step >= steps - 10 {
                late.extend(grads.iter().step_by(7).cloned());
            }
            let mut params = model.params_flat();
            opt.step(&mut params, &grads, cfg.lr.lr_at(0, step));
            model.set_params_flat(&params);
        }
        for (phase, sample) in [("early", &early), ("late", &late)] {
            let kde = gaussian_kde(sample, 128, None);
            let peak = kde.density.iter().cloned().fold(0.0f32, f32::max);
            let mean_abs = sample.iter().map(|g| g.abs()).sum::<f32>() / sample.len().max(1) as f32;
            table.push_row(vec![
                kind.paper_name().to_string(),
                phase.to_string(),
                format!("{:.6}", kde.mass_width(0.9)),
                format!("{peak:.2}"),
                format!("{mean_abs:.6}"),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 4 — Hessian top eigenvalue vs gradient variance
// ---------------------------------------------------------------------------

/// Fig. 4: the largest Hessian eigenvalue and the first-order gradient variance sampled
/// along a training trajectory (ResNet-like and VGG-like).
pub fn fig4_hessian_vs_variance(scale: Scale) -> Table {
    use selsync_hessian::hvp::ModelBatchOracle;
    use selsync_hessian::power::top_eigenvalue;
    use selsync_hessian::variance::gradient_variance;

    let steps = scale.iterations().min(300);
    let sample_every = (steps / 10).max(1);
    let mut table = Table::new(vec![
        "model",
        "step",
        "hessian_top_eigenvalue",
        "gradient_variance",
    ]);
    for kind in [ModelKind::ResNetLike, ModelKind::VggLike] {
        let mut cfg = experiment_config(kind, scale);
        cfg.workers = 1;
        let data = build_training_data(kind, &cfg);
        let mut model = PaperModel::build(kind, 31);
        let mut opt = cfg.optimizer.build();
        for step in 0..steps {
            let idx: Vec<usize> = (0..cfg.batch_size)
                .map(|i| (step * cfg.batch_size + i) % data.len())
                .collect();
            let (x, y) = data.batch(&idx);
            model.forward_backward(&x, &y);
            let grads = model.grads_flat();
            if step % sample_every == 0 {
                let var = gradient_variance(&grads);
                let params = model.params_flat();
                let eig = {
                    let mut oracle = ModelBatchOracle::new(&mut model, &x, &y);
                    top_eigenvalue(&mut oracle, &params, 4, 1e-2, 17).eigenvalue
                };
                table.push_row(vec![
                    kind.paper_name().to_string(),
                    step.to_string(),
                    format!("{eig:.4}"),
                    format!("{var:.8}"),
                ]);
            }
            let mut params = model.params_flat();
            opt.step(&mut params, &grads, cfg.lr.lr_at(0, step));
            model.set_params_flat(&params);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 5 — Δ(g_i) vs convergence
// ---------------------------------------------------------------------------

/// Fig. 5: the relative gradient change `Δ(g_i)` alongside the test metric over a BSP
/// training run, for all four models.
pub fn fig5_gradchange_vs_convergence(scale: Scale) -> Table {
    let mut table = Table::new(vec!["model", "iteration", "delta_g", "test_metric", "lr"]);
    for kind in ModelKind::all() {
        let report = run_algo(kind, AlgorithmSpec::Bsp, scale);
        for p in &report.history {
            table.push_row(vec![
                kind.paper_name().to_string(),
                p.iteration.to_string(),
                format!("{:.5}", p.delta_g),
                format!("{:.3}", p.test_metric),
                format!("{:.5}", p.lr),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 8 — overheads: Δ(g_i) computation and SelDP partitioning
// ---------------------------------------------------------------------------

/// Fig. 8a: wall-clock overhead of the `Δ(g_i)` computation per iteration for different
/// EWMA window sizes, measured on gradients of each model's (analogue) parameter count.
pub fn fig8a_tracker_overhead() -> Table {
    use selsync::tracker::{GradStatistic, GradientTracker};
    let mut table = Table::new(vec!["model", "window", "mean_update_time_us"]);
    for kind in ModelKind::all() {
        let model = PaperModel::build(kind, 1);
        let dim = model.param_count();
        let grad: Vec<f32> = (0..dim)
            .map(|i| ((i * 37) % 97) as f32 * 1e-3 - 0.05)
            .collect();
        for window in [25usize, 50, 100, 200] {
            let mut tracker = GradientTracker::new(GradStatistic::SqNorm, 0.16, window);
            let reps = 2000;
            let start = std::time::Instant::now();
            for _ in 0..reps {
                let _ = tracker.update(&grad);
            }
            let us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
            table.push_row(vec![
                kind.paper_name().to_string(),
                window.to_string(),
                fmt_f(us, 2),
            ]);
        }
    }
    table
}

/// Fig. 8b: one-time partitioning cost of DefDP vs SelDP at the paper's dataset
/// cardinalities (CIFAR10/100: 50 K, ImageNet-1K: 1.28 M, WikiText-103: ~2.9 M contexts).
pub fn fig8b_partitioning_overhead() -> Table {
    let datasets = [
        ("CIFAR10", 50_000usize),
        ("CIFAR100", 50_000),
        ("ImageNet-1K", 1_281_167),
        ("WikiText-103", 2_900_000),
    ];
    let workers = 16;
    let mut table = Table::new(vec!["dataset", "samples", "scheme", "partition_time_ms"]);
    for (name, samples) in datasets {
        for scheme in [PartitionScheme::DefDp, PartitionScheme::SelDp] {
            let start = std::time::Instant::now();
            let parts = build_all(scheme, samples, workers);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(parts.len(), workers);
            table.push_row(vec![
                name.to_string(),
                samples.to_string(),
                scheme.name().to_string(),
                fmt_f(ms, 2),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 9 — SelDP vs DefDP under SelSync
// ---------------------------------------------------------------------------

/// Fig. 9: SelSync (δ = 0.25, gradient aggregation during the sync phase, as in the
/// paper's figure) trained with SelDP vs DefDP, for all four models.
pub fn fig9_seldp_vs_defdp(scale: Scale) -> Table {
    let mut table = Table::new(vec![
        "model",
        "partitioning",
        "final_metric",
        "best_metric",
        "lssr",
    ]);
    for kind in ModelKind::all() {
        for scheme in [PartitionScheme::SelDp, PartitionScheme::DefDp] {
            let mut cfg = experiment_config(kind, scale);
            cfg.partition = scheme;
            cfg.algorithm = AlgorithmSpec::selsync_ga(0.25);
            let report = algorithms::run(&cfg);
            table.push_row(vec![
                kind.paper_name().to_string(),
                scheme.name().to_string(),
                fmt_f(report.final_metric as f64, 2),
                fmt_f(report.best_metric as f64, 2),
                fmt_f(report.lssr, 3),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 10 — gradient vs parameter aggregation
// ---------------------------------------------------------------------------

/// Fig. 10: SelSync (δ = 0.25, SelDP) with gradient vs parameter aggregation.
pub fn fig10_ga_vs_pa(scale: Scale) -> Table {
    let mut table = Table::new(vec![
        "model",
        "aggregation",
        "final_metric",
        "best_metric",
        "lssr",
    ]);
    for kind in ModelKind::all() {
        for (label, algo) in [
            ("PA", AlgorithmSpec::selsync(0.25)),
            ("GA", AlgorithmSpec::selsync_ga(0.25)),
        ] {
            let report = run_algo(kind, algo, scale);
            table.push_row(vec![
                kind.paper_name().to_string(),
                label.to_string(),
                fmt_f(report.final_metric as f64, 2),
                fmt_f(report.best_metric as f64, 2),
                fmt_f(report.lssr, 3),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 11 — weight distributions under BSP / PA / GA
// ---------------------------------------------------------------------------

/// Fig. 11: train BSP, SelSync+PA and SelSync+GA on the ResNet-like model while
/// recording a residual-block weight matrix at the half-way point and at the end, then
/// compare the weight distributions (90%-mass KDE width and KDE distance to BSP).
pub fn fig11_weight_distribution(scale: Scale) -> Table {
    let kind = ModelKind::ResNetLike;
    let layer_index = 2; // weight matrix of the first residual block's first Linear layer
    let configs = [
        ("BSP", AlgorithmSpec::Bsp),
        ("SelSync+PA", AlgorithmSpec::selsync(0.25)),
        ("SelSync+GA", AlgorithmSpec::selsync_ga(0.25)),
    ];

    let mut snapshots: Vec<(String, Vec<f32>, Vec<f32>)> = Vec::new();
    for (label, algo) in configs {
        let mut cfg = experiment_config(kind, scale);
        cfg.iterations = cfg.iterations.min(400);
        cfg.algorithm = algo;
        let half = cfg.iterations / 2;
        let (mid, fin) = run_with_weight_snapshots(&cfg, layer_index, half);
        snapshots.push((label.to_string(), mid, fin));
    }

    let mut table = Table::new(vec![
        "run",
        "checkpoint",
        "kde_mass_width_90",
        "kde_distance_to_bsp",
    ]);
    for (phase_idx, phase) in ["mid", "final"].iter().enumerate() {
        let bsp_sample = if phase_idx == 0 {
            &snapshots[0].1
        } else {
            &snapshots[0].2
        };
        let bsp_kde = gaussian_kde(bsp_sample, 128, None);
        for (label, mid, fin) in &snapshots {
            let sample = if phase_idx == 0 { mid } else { fin };
            let kde = gaussian_kde(sample, 128, None);
            table.push_row(vec![
                label.clone(),
                phase.to_string(),
                format!("{:.5}", kde.mass_width(0.9)),
                format!("{:.5}", kde_distance(&kde, &bsp_kde)),
            ]);
        }
    }
    table
}

/// Run BSP or SelSync while snapshotting the chosen layer's weights at `mid_iteration`
/// and at the end (helper for Fig. 11).
fn run_with_weight_snapshots(
    cfg: &TrainConfig,
    layer_index: usize,
    mid_iteration: usize,
) -> (Vec<f32>, Vec<f32>) {
    use selsync::aggregation::{average, AggregationMode};
    use selsync::policy::SyncPolicy;
    use selsync::sim::{Simulator, WorkerStep};
    use selsync::SyncDecision;

    let (delta, aggregation, is_bsp) = match cfg.algorithm {
        AlgorithmSpec::Bsp => (0.0, AggregationMode::Gradient, true),
        AlgorithmSpec::SelSync {
            delta, aggregation, ..
        } => (delta, aggregation, false),
        _ => panic!("run_with_weight_snapshots supports BSP and SelSync only"),
    };
    let policy = SyncPolicy::new(delta);
    let mut sim = Simulator::new(cfg);
    let n = sim.num_workers();
    let workers: Vec<usize> = (0..n).collect();
    let mut steps: Vec<WorkerStep> = Vec::new();
    let mut mid = Vec::new();
    for it in 0..cfg.iterations {
        let lr = sim.lr_at(it);
        sim.plan_round(&workers, &mut steps);
        let round = sim.run_round(&steps);
        let sync = is_bsp || policy.decide_from_deltas(&round.deltas) == SyncDecision::Synchronize;
        if sync {
            match aggregation {
                AggregationMode::Gradient => {
                    let avg = average(sim.round_grads());
                    sim.apply_round_shared(&workers, &avg, lr);
                }
                AggregationMode::Parameter => {
                    sim.apply_round_own(&steps, lr);
                    let avg = sim.average_params();
                    sim.set_all_params(&avg);
                }
            }
        } else {
            sim.apply_round_own(&steps, lr);
        }
        if it == mid_iteration {
            let params = sim.average_params();
            mid = sim.layer_weights(&params, layer_index);
        }
    }
    let params = sim.average_params();
    let fin = sim.layer_weights(&params, layer_index);
    (mid, fin)
}

// ---------------------------------------------------------------------------
// Fig. 12 — non-IID data-injection vs FedAvg
// ---------------------------------------------------------------------------

/// Fig. 12: FedAvg vs SelSync with data-injection `(α, β, δ)` on label-sharded non-IID
/// data (ResNet-like/CIFAR10-like and VGG-like/CIFAR100-like).
pub fn fig12_noniid_injection(scale: Scale) -> Table {
    let mut table = Table::new(vec![
        "model",
        "method",
        "final_accuracy_%",
        "best_accuracy_%",
        "lssr",
    ]);
    for (kind, labels) in [
        (ModelKind::ResNetLike, 1usize),
        (ModelKind::VggLike, 10usize),
    ] {
        let methods: Vec<(String, AlgorithmSpec)> = vec![
            (
                "FedAvg(1,0.25)".to_string(),
                AlgorithmSpec::FedAvg { c: 1.0, e: 0.25 },
            ),
            (
                "(0.5,0.5,0.05)".to_string(),
                AlgorithmSpec::selsync_injected(0.5, 0.5, 0.05),
            ),
            (
                "(0.5,0.5,0.3)".to_string(),
                AlgorithmSpec::selsync_injected(0.5, 0.5, 0.3),
            ),
            (
                "(0.75,0.75,0.3)".to_string(),
                AlgorithmSpec::selsync_injected(0.75, 0.75, 0.3),
            ),
        ];
        for (label, algo) in methods {
            let mut cfg = experiment_config(kind, scale);
            cfg.workers = 10;
            cfg.non_iid_labels_per_worker = Some(labels);
            cfg.algorithm = algo;
            let report = algorithms::run(&cfg);
            table.push_row(vec![
                kind.paper_name().to_string(),
                label,
                fmt_f(report.final_metric as f64, 2),
                fmt_f(report.best_metric as f64, 2),
                fmt_f(report.lssr, 3),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Table I — full comparison
// ---------------------------------------------------------------------------

/// Table I: BSP, FedAvg (4 configurations), SSP (2 thresholds) and SelSync (δ = 0.3,
/// 0.5) on the requested models, reporting iterations, LSSR, final metric, convergence
/// difference, whether BSP is outperformed and the speedup.
pub fn table1_comparison(models: &[ModelKind], scale: Scale) -> Table {
    let mut table = Table::new(vec![
        "model",
        "method",
        "iterations",
        "lssr",
        "metric",
        "conv_diff",
        "outperforms_bsp",
        "speedup_same_iters",
        "speedup_to_bsp_target",
    ]);
    for &kind in models {
        let bsp = run_algo(kind, AlgorithmSpec::Bsp, scale);
        let others: Vec<AlgorithmSpec> = vec![
            AlgorithmSpec::FedAvg { c: 1.0, e: 0.25 },
            AlgorithmSpec::FedAvg { c: 1.0, e: 0.125 },
            AlgorithmSpec::FedAvg { c: 0.5, e: 0.25 },
            AlgorithmSpec::FedAvg { c: 0.5, e: 0.125 },
            AlgorithmSpec::Ssp { staleness: 100 },
            AlgorithmSpec::Ssp { staleness: 200 },
            AlgorithmSpec::selsync(0.3),
            AlgorithmSpec::selsync(0.5),
        ];
        push_table1_row(&mut table, kind, &bsp, &bsp);
        for algo in others {
            let report = run_algo(kind, algo, scale);
            push_table1_row(&mut table, kind, &report, &bsp);
        }
    }
    table
}

fn push_table1_row(table: &mut Table, kind: ModelKind, report: &RunReport, bsp: &RunReport) {
    let is_bsp = report.algorithm == "BSP";
    let lssr = if report.algorithm.starts_with("SSP") {
        "-".to_string()
    } else {
        fmt_f(report.lssr, 3)
    };
    let speedup_target = report
        .speedup_to_baseline_target(bsp)
        .map(|s| format!("{s:.2}x"))
        .unwrap_or_else(|| "-".to_string());
    table.push_row(vec![
        kind.paper_name().to_string(),
        report.algorithm.clone(),
        report.iterations.to_string(),
        lssr,
        fmt_f(report.final_metric as f64, 2),
        if is_bsp {
            "0.00".to_string()
        } else {
            format!("{:+.2}", report.convergence_diff(bsp))
        },
        if is_bsp {
            "N/A".to_string()
        } else {
            report.outperforms(bsp).to_string()
        },
        if is_bsp {
            "1.00x".to_string()
        } else {
            format!("{:.2}x", report.raw_time_speedup(bsp))
        },
        if is_bsp {
            "1.00x".to_string()
        } else {
            speedup_target
        },
    ]);
}

// ---------------------------------------------------------------------------
// Scenario sweep — δ grid × seed set × policy arms over one built-in scenario
// ---------------------------------------------------------------------------

/// Aggregated δ-grid/seed/policy sweep over the `elastic-churn` built-in (the
/// time-varying scenario the adaptive-δ arm targets: rolling worker churn makes
/// sparse fixed thresholds miss the target accuracy), as a table: one row per arm
/// with mean ± spread statistics. `Quick` runs the CI-sized variant; `Full` sweeps
/// the full built-in.
pub fn scenario_sweep_summary(scale: Scale) -> Table {
    let scenario = selsync_scenario::builtin("elastic-churn").expect("built-in scenario");
    let scenario = match scale {
        Scale::Quick => selsync_scenario::sweep::quick_variant(&scenario),
        Scale::Full => scenario,
    };
    let report = selsync_scenario::run_sweep(&scenario).expect("valid sweep");
    let mut table = Table::new(vec![
        "arm",
        "final_metric_mean",
        "final_metric_spread",
        "lssr_mean",
        "sync_steps_mean",
        "switches_mean",
        "syncs_to_target_mean",
        "reached_target",
        "seeds",
        "sim_time_s_mean",
    ]);
    for arm in &report.arms {
        table.push_row(vec![
            arm.label.clone(),
            fmt_f(arm.final_metric.mean, 3),
            fmt_f(arm.final_metric.spread, 3),
            fmt_f(arm.lssr.mean, 4),
            fmt_f(arm.sync_steps.mean, 1),
            fmt_f(arm.switches.mean, 1),
            arm.syncs_to_target
                .map(|s| fmt_f(s, 1))
                .unwrap_or_else(|| "-".into()),
            arm.reached_target.to_string(),
            report.seeds.len().to_string(),
            fmt_f(arm.sim_time_s.mean, 3),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

/// Build the training dataset used by a config (shared by the single-replica figure
/// drivers that bypass the simulator).
pub fn build_training_data(kind: ModelKind, cfg: &TrainConfig) -> selsync_data::Dataset {
    use selsync_data::synthetic::{gaussian_mixture, markov_tokens, MixtureSpec, TokenSpec};
    use selsync_nn::model::TaskKind;
    let model = PaperModel::build(kind, cfg.seed);
    match model.task {
        TaskKind::Classification { .. } => {
            let spec = match kind {
                ModelKind::ResNetLike => MixtureSpec::cifar10_like(cfg.train_samples),
                ModelKind::VggLike => MixtureSpec::cifar100_like(cfg.train_samples),
                _ => MixtureSpec::imagenet_like(cfg.train_samples),
            };
            gaussian_mixture(&spec, cfg.seed ^ 0xDA7A)
        }
        TaskKind::LanguageModel { .. } => markov_tokens(
            &TokenSpec::wikitext_like(cfg.train_samples),
            cfg.seed ^ 0xDA7A,
        ),
    }
}

/// Synthetic gradient vector of a model's (analogue) dimensionality, used by the
/// criterion micro-benchmarks.
pub fn synthetic_gradient(kind: ModelKind) -> Vec<f32> {
    let dim = PaperModel::build(kind, 1).param_count();
    (0..dim)
        .map(|i| (((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5) * 0.01)
        .collect()
}

/// A deterministic input batch for micro-benchmarks.
pub fn synthetic_batch(kind: ModelKind, batch: usize) -> (Tensor, Vec<usize>) {
    let model = PaperModel::build(kind, 1);
    let x = Tensor::from_fn(batch, model.input_dim(), |r, c| {
        (((r * 31 + c * 7) % 13) as f32 - 6.0) * 0.1
    });
    let y = (0..batch).map(|i| i % model.output_dim()).collect();
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_shows_sublinear_scaling() {
        let t = fig1a_relative_throughput();
        assert_eq!(t.len(), 4 * 5);
        let row = t
            .rows
            .iter()
            .find(|r| r[0] == "VGG11" && r[1] == "16")
            .expect("VGG11/16 row present");
        let rel: f64 = row[3].parse().unwrap();
        assert!(
            rel < 8.0,
            "relative throughput {rel} should be far from linear"
        );
    }

    #[test]
    fn fig2_transformer_oom_appears() {
        let t = fig2_batchsize_costs();
        let row = t
            .rows
            .iter()
            .find(|r| r[0] == "Transformer" && r[1] == "128")
            .expect("Transformer/128 row");
        assert_eq!(row[4], "false");
    }

    #[test]
    fn fig8b_partitioning_is_a_one_time_small_cost() {
        let t = fig8b_partitioning_overhead();
        assert_eq!(t.len(), 8);
        for row in &t.rows {
            let ms: f64 = row[3].parse().unwrap();
            assert!(
                ms < 10_000.0,
                "partitioning should take seconds at most, got {ms} ms"
            );
        }
    }

    #[test]
    fn scale_from_env_defaults_to_quick() {
        assert_eq!(Scale::Quick.workers(), 8);
        assert_eq!(Scale::Full.workers(), 16);
        assert!(Scale::Quick.iterations() < Scale::Full.iterations());
    }

    #[test]
    fn synthetic_helpers_match_model_shapes() {
        for kind in ModelKind::all() {
            let g = synthetic_gradient(kind);
            assert_eq!(g.len(), PaperModel::build(kind, 1).param_count());
            let (x, y) = synthetic_batch(kind, 8);
            assert_eq!(x.rows(), 8);
            assert_eq!(y.len(), 8);
        }
    }
}

//! Runs every figure and table of the paper in sequence and writes the CSVs under
//! `bench_results/`. Use `SELSYNC_SCALE=full` for the larger 16-worker configuration.

use selsync_bench::*;
use selsync_nn::model::ModelKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("regenerating all figures/tables at {scale:?} scale");

    emit(
        "fig1a_relative_throughput",
        "Fig. 1a — relative throughput vs cluster size",
        &fig1a_relative_throughput(),
    );
    emit(
        "fig1b_fedavg_iid_vs_noniid",
        "Fig. 1b — FedAvg IID vs non-IID",
        &fig1b_fedavg_iid_vs_noniid(scale),
    );
    emit(
        "fig2_batchsize_costs",
        "Fig. 2 — compute/memory vs batch size",
        &fig2_batchsize_costs(),
    );
    emit(
        "fig3_gradient_kde",
        "Fig. 3 — gradient KDE early vs late",
        &fig3_gradient_kde(scale),
    );
    emit(
        "fig4_hessian_variance",
        "Fig. 4 — Hessian eigenvalue vs gradient variance",
        &fig4_hessian_vs_variance(scale),
    );
    emit(
        "fig5_gradchange_convergence",
        "Fig. 5 — Δ(g_i) vs convergence",
        &fig5_gradchange_vs_convergence(scale),
    );
    emit(
        "fig8a_tracker_overhead",
        "Fig. 8a — Δ(g_i) overhead vs window",
        &fig8a_tracker_overhead(),
    );
    emit(
        "fig8b_partitioning_overhead",
        "Fig. 8b — partitioning overhead",
        &fig8b_partitioning_overhead(),
    );
    emit(
        "fig9_seldp_vs_defdp",
        "Fig. 9 — SelDP vs DefDP",
        &fig9_seldp_vs_defdp(scale),
    );
    emit(
        "fig10_ga_vs_pa",
        "Fig. 10 — GA vs PA",
        &fig10_ga_vs_pa(scale),
    );
    emit(
        "fig11_weight_distribution",
        "Fig. 11 — weight distributions",
        &fig11_weight_distribution(scale),
    );
    emit(
        "fig12_noniid_injection",
        "Fig. 12 — non-IID data-injection",
        &fig12_noniid_injection(scale),
    );
    emit(
        "table1_comparison",
        "Table I — algorithm comparison",
        &table1_comparison(&ModelKind::all(), scale),
    );
    emit(
        "scenario_sweep_elastic_churn",
        "Scenario sweep — δ grid x seeds x policy arms (elastic-churn)",
        &scenario_sweep_summary(scale),
    );

    eprintln!("done; CSVs written to bench_results/");
}

//! Regenerates Fig. 10 of the paper: SelSync (δ=0.25, SelDP) with gradient aggregation
//! vs parameter aggregation.

use selsync_bench::{emit, fig10_ga_vs_pa, Scale};

fn main() {
    emit(
        "fig10_ga_vs_pa",
        "Fig. 10 — gradient vs parameter aggregation under SelSync",
        &fig10_ga_vs_pa(Scale::from_env()),
    );
}

//! Record, replay and diff deterministic SelSync event logs (see `docs/EVENT_LOG.md`).
//!
//! ```text
//! scenario_replay --record out.jsonl --scenario crash-rejoin --quick
//!                                         # run a scenario, write its event log
//! scenario_replay --record out.jsonl --scenario elastic-churn --quick \
//!                 --backend threaded --policy adaptive --delta 0.055
//!                                         # same, on the threaded cluster backend
//! scenario_replay --diff sim.jsonl threaded.jsonl
//!                                         # pin the first divergent round + fields
//! scenario_replay --check committed.jsonl --scenario elastic-churn --quick \
//!                 --policy adaptive --delta 0.055
//!                                         # replay live and diff against a recording
//! scenario_replay --list                  # list built-in scenarios
//! ```
//!
//! Event logs carry no timestamps and no backend tag, and the sink orders events
//! canonically, so `--diff` on a simulator log and a threaded log of the same config
//! must report them identical — that is the cross-backend determinism contract, and
//! `--check` turns any committed log into a regression test. Exit status: 0 when the
//! logs match, 1 on divergence (the first divergent round and every differing field
//! are printed), 2 on usage errors.

use selsync::algorithms;
use selsync::config::{AlgorithmSpec, CheckpointSpec, TrainConfig};
use selsync::policy::PolicySpec;
use selsync::threaded::{run_threaded_selsync, run_threaded_selsync_resumed};
use selsync::Checkpoint;
use selsync_scenario::{builtin, library, sweep, Scenario, BUILTIN_NAMES};
use selsync_tracelog::{diff_report, EventLog, TraceGranularity, TraceSink};

fn usage() -> ! {
    eprintln!(
        "usage: scenario_replay --record FILE --scenario <builtin-name | file.toml>\n\
         \x20                      [--backend sim|threaded]\n\
         \x20                      [--policy fixed|scheduled|adaptive|variance]\n\
         \x20                      [--delta D] [--seed N] [--quick]\n\
         \x20                      [--ckpt-every N] [--ckpt-dir DIR] [--halt ROUND]\n\
         \x20                      [--resume CKPT]\n\
         \x20      scenario_replay --check FILE --scenario <...> [same options]\n\
         \x20      scenario_replay --diff LEFT RIGHT\n\
         \x20      scenario_replay --list\n\
         built-ins: {}",
        BUILTIN_NAMES.join(", ")
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq)]
enum Backend {
    Sim,
    Threaded,
}

/// Scenario + run options resolved from the command line; `config()` turns them
/// into the exact `TrainConfig` the recording (or the live replay) uses.
struct RunSpec {
    scenario: Scenario,
    backend: Backend,
    policy: String,
    delta: f32,
    /// CLI checkpoint policy; overrides the scenario's `[checkpoint]` block.
    checkpoint: Option<CheckpointSpec>,
    /// Path of a checkpoint image to resume from instead of starting at round 0.
    resume: Option<String>,
}

/// Same CI-sized rescale the trace-parity suite applies: 30 iterations with the
/// fault schedule rescaled to fit, small sample counts, no sweep block. `--record
/// --quick` therefore reproduces the suite's committed traces byte for byte.
fn scaled(mut s: Scenario) -> Scenario {
    sweep::rescale_fault_windows(&mut s, 30);
    s.eval_every = 10;
    s.train_samples = 512;
    s.test_samples = 128;
    s.eval_samples = 128;
    s.batch_size = 8;
    s.sweep = None;
    s
}

fn load(spec: &str) -> Scenario {
    let loaded = if spec.ends_with(".toml") {
        std::fs::read_to_string(spec)
            .map_err(|e| format!("{spec}: {e}"))
            .and_then(|text| Scenario::from_toml_str(&text))
    } else {
        builtin(spec).ok_or_else(|| {
            format!("unknown built-in scenario {spec:?} (try --list, or pass a .toml file)")
        })
    };
    loaded.unwrap_or_else(|e| fail(&e))
}

impl RunSpec {
    fn config(&self) -> TrainConfig {
        let mut cfg = self
            .scenario
            .train_config(AlgorithmSpec::selsync(self.delta));
        cfg.delta_policy = match self.policy.as_str() {
            "fixed" => None,
            "scheduled" => Some(PolicySpec::Schedule {
                starts: vec![0, 10],
                deltas: vec![0.0, self.delta],
            }),
            "adaptive" => Some(PolicySpec::adaptive_default()),
            "variance" => Some(PolicySpec::variance_default()),
            other => fail(&format!(
                "unknown policy {other:?} (expected fixed, scheduled, adaptive or variance)"
            )),
        };
        if self.checkpoint.is_some() {
            cfg.checkpoint = self.checkpoint.clone();
        }
        cfg
    }

    /// Run the configured backend with a full-granularity sink and return the
    /// encoded canonical event log. With `--resume` the run continues from the
    /// checkpoint image: the sink is preloaded with the recorded trace prefix, so
    /// the returned log covers the *whole* run and must be byte-identical to an
    /// uninterrupted recording (the recovery contract in `docs/RECOVERY.md`).
    fn record(&self) -> String {
        let mut cfg = self.config();
        cfg.trace = TraceSink::capture(TraceGranularity::Full);
        match &self.resume {
            Some(path) => {
                let ckpt = Checkpoint::read_file(path).unwrap_or_else(|e| fail(&e));
                let want = match self.backend {
                    Backend::Sim => "sim",
                    Backend::Threaded => "threaded",
                };
                if ckpt.backend != want {
                    fail(&format!(
                        "checkpoint {path} was written by the {:?} backend; pass --backend {}",
                        ckpt.backend, ckpt.backend
                    ));
                }
                match self.backend {
                    Backend::Sim => {
                        algorithms::selsync::run_resumed(&cfg, &ckpt);
                    }
                    Backend::Threaded => {
                        run_threaded_selsync_resumed(&cfg, &ckpt);
                    }
                }
            }
            None => match self.backend {
                Backend::Sim => {
                    algorithms::run(&cfg);
                }
                Backend::Threaded => {
                    run_threaded_selsync(&cfg);
                }
            },
        }
        cfg.trace.take_log().encode()
    }
}

fn read_log(path: &str) -> (String, EventLog) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    let log = EventLog::decode(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    (text, log)
}

/// Diff two decoded logs; prints the verdict and returns the process exit code.
fn diff_logs(left: &EventLog, right: &EventLog, left_label: &str, right_label: &str) -> i32 {
    match diff_report(left, right, left_label, right_label) {
        Some(report) => {
            print!("{report}");
            1
        }
        None => {
            println!(
                "logs are identical: {} events, {left_label} == {right_label}",
                left.events.len()
            );
            0
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--list" {
        for scenario in library::all_builtin() {
            println!("{:22} {}", scenario.name, scenario.description);
        }
        return;
    }
    if args[0] == "--diff" {
        let (left_path, right_path) = match (args.get(1), args.get(2)) {
            (Some(l), Some(r)) if args.len() == 3 => (l, r),
            _ => usage(),
        };
        let (_, left) = read_log(left_path);
        let (_, right) = read_log(right_path);
        std::process::exit(diff_logs(&left, &right, left_path, right_path));
    }

    let (mode, file) = match args[0].as_str() {
        "--record" | "--check" => (
            args[0].clone(),
            args.get(1).unwrap_or_else(|| usage()).clone(),
        ),
        _ => usage(),
    };
    let mut scenario_spec: Option<String> = None;
    let mut backend = Backend::Sim;
    let mut policy = "fixed".to_string();
    let mut delta: Option<f32> = None;
    let mut seed: Option<u64> = None;
    let mut quick = false;
    let mut ckpt_every: Option<usize> = None;
    let mut ckpt_dir: Option<String> = None;
    let mut halt: Option<usize> = None;
    let mut resume: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => {
                scenario_spec = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--backend" => {
                backend = match args.get(i + 1).unwrap_or_else(|| usage()).as_str() {
                    "sim" => Backend::Sim,
                    "threaded" => Backend::Threaded,
                    other => fail(&format!(
                        "unknown backend {other:?} (expected sim or threaded)"
                    )),
                };
                i += 2;
            }
            "--policy" => {
                policy = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            "--delta" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                delta = Some(v.parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--seed" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                seed = Some(v.parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--ckpt-every" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                ckpt_every = Some(v.parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--ckpt-dir" => {
                ckpt_dir = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--halt" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                halt = Some(v.parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--resume" => {
                resume = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            _ => usage(),
        }
    }
    let mut scenario = load(&scenario_spec.unwrap_or_else(|| usage()));
    if let Some(seed) = seed {
        scenario.seed = seed;
    }
    if quick {
        scenario = scaled(scenario);
    }
    let delta = delta.unwrap_or(scenario.delta);
    let checkpoint = match (ckpt_every, halt) {
        (None, None) => {
            if ckpt_dir.is_some() {
                fail("--ckpt-dir needs --ckpt-every (or --halt)");
            }
            None
        }
        (every, halt_after) => Some(CheckpointSpec {
            // `--halt R` alone writes exactly one image: the one at round R.
            every: every.unwrap_or_else(|| halt_after.expect("halt set") + 1),
            dir: ckpt_dir.unwrap_or_else(|| format!("target/replay-ckpt/{}", scenario.name)),
            halt_after,
            keep: None,
        }),
    };
    let spec = RunSpec {
        scenario,
        backend,
        policy,
        delta,
        checkpoint,
        resume,
    };

    match mode.as_str() {
        "--record" => {
            let log = spec.record();
            if let Err(e) = std::fs::write(&file, &log) {
                fail(&format!("could not write {file}: {e}"));
            }
            println!(
                "recorded {} lines to {file} ({} backend, {} policy, delta {})",
                log.lines().count(),
                match spec.backend {
                    Backend::Sim => "sim",
                    Backend::Threaded => "threaded",
                },
                spec.policy,
                delta
            );
        }
        "--check" => {
            let (_, committed) = read_log(&file);
            let live_text = spec.record();
            let live = EventLog::decode(&live_text).expect("live log decodes");
            std::process::exit(diff_logs(&committed, &live, "committed", "live"));
        }
        _ => unreachable!(),
    }
}

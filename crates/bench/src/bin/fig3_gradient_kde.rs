//! Regenerates Fig. 3 of the paper: kernel density estimates of layer gradients early vs
//! late in training (gradients shrink and concentrate near zero as training progresses).

use selsync_bench::{emit, fig3_gradient_kde, Scale};

fn main() {
    emit(
        "fig3_gradient_kde",
        "Fig. 3 — gradient distribution early vs late in training",
        &fig3_gradient_kde(Scale::from_env()),
    );
}

//! `bench_kernels` — machine-readable perf report for the compute backend.
//!
//! Measures GFLOP/s for the three matmul kernels at several shapes, elementwise
//! bandwidth for the optimizer/aggregation sweeps, simulator training
//! throughput (steps/sec), and the 1-thread vs 4-thread speedup on the
//! 256x256x256 matmul (the backend's acceptance benchmark). Emits one JSON
//! object on stdout so CI can archive the perf trajectory PR over PR.
//!
//! Usage: `bench_kernels [--quick] [--baseline <json>]`
//!   --quick            smaller shapes / fewer repetitions (CI mode)
//!   --baseline <json>  after printing, compare the `sim_round` steps/sec against the
//!                      committed baseline report and exit non-zero on a >20%
//!                      regression (per workers x threads cell)
//!
//! Thread count comes from `SELSYNC_THREADS` (default `available_parallelism`);
//! the speedup and `sim_round` sections override it internally via the pool's
//! scoped override.

use selsync::algorithms;
use selsync::config::{AlgorithmSpec, TrainConfig};
use selsync_nn::model::ModelKind;
use selsync_tensor::{ops, par, Tensor};
use std::time::Instant;

/// Run `f` repeatedly until ~`budget_s` seconds elapse (at least once), returning
/// seconds per call.
fn time_per_call(budget_s: f64, mut f: impl FnMut()) -> f64 {
    // Warm-up: populates scratch arenas and the worker pool.
    f();
    let mut reps = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= budget_s || reps >= 1 << 20 {
            return elapsed / reps as f64;
        }
        let target = (budget_s / (elapsed / reps as f64).max(1e-9)).ceil();
        reps = (target as u32).clamp(reps * 2, 1 << 20);
    }
}

fn tensor(rows: usize, cols: usize, salt: usize) -> Tensor {
    Tensor::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 17 + salt * 7) % 23) as f32 * 0.17 - 1.9
    })
}

struct KernelResult {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    secs_per_call: f64,
    gflops: f64,
}

fn bench_matmuls(shapes: &[(usize, usize, usize)], budget_s: f64) -> Vec<KernelResult> {
    let mut results = Vec::new();
    for &(m, k, n) in shapes {
        let a = tensor(m, k, 1);
        let b = tensor(k, n, 2);
        let bt = tensor(n, k, 3);
        let at = tensor(m, n, 4);
        let flops = (2 * m * k * n) as f64;

        let mut out = Tensor::zeros(m, n);
        let secs = time_per_call(budget_s, || {
            ops::matmul_into(&a, &b, &mut out).expect("matmul shapes");
        });
        results.push(KernelResult {
            kernel: "matmul",
            m,
            k,
            n,
            secs_per_call: secs,
            gflops: flops / secs / 1e9,
        });

        let mut out_bt = Tensor::zeros(m, n);
        let secs = time_per_call(budget_s, || {
            ops::matmul_bt_into(&a, &bt, &mut out_bt).expect("matmul_bt shapes");
        });
        results.push(KernelResult {
            kernel: "matmul_bt",
            m,
            k,
            n,
            secs_per_call: secs,
            gflops: flops / secs / 1e9,
        });

        let mut out_at = Tensor::zeros(k, n);
        let secs = time_per_call(budget_s, || {
            ops::matmul_at_into(&a, &at, &mut out_at).expect("matmul_at shapes");
        });
        results.push(KernelResult {
            kernel: "matmul_at",
            m,
            k,
            n,
            secs_per_call: secs,
            gflops: flops / secs / 1e9,
        });
    }
    results
}

struct SimRoundResult {
    workers: usize,
    threads: usize,
    steps_per_sec: f64,
}

/// Simulator round throughput: BSP (the arm every comparison shares, all workers
/// active every round) at several cluster widths, at 1 vs 4 effective pool threads.
/// Wall time includes one warm-up run so dataset/engine construction and the pool
/// spin-up are excluded from the measured runs.
fn bench_sim_round(quick: bool) -> Vec<SimRoundResult> {
    let mut results = Vec::new();
    for &workers in &[4usize, 8, 16] {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, workers);
        cfg.iterations = if quick { 12 } else { 40 };
        cfg.eval_every = cfg.iterations; // final eval only
        cfg.train_samples = 512;
        cfg.test_samples = 64;
        cfg.eval_samples = 64;
        cfg.batch_size = 16;
        cfg.algorithm = AlgorithmSpec::Bsp;
        for &threads in &[1usize, 4] {
            let steps_per_sec = par::with_threads(threads, || {
                let _warmup = algorithms::run(&cfg);
                let start = Instant::now();
                let report = algorithms::run(&cfg);
                report.iterations as f64 / start.elapsed().as_secs_f64()
            });
            results.push(SimRoundResult {
                workers,
                threads,
                steps_per_sec,
            });
        }
    }
    results
}

/// Extract `(workers, threads, steps_per_sec)` triples from the `sim_round` section of
/// a report produced by this binary (hand-rolled: the workspace builds offline, so
/// there is no JSON parser dependency — the format is our own).
fn parse_sim_round(json: &str) -> Vec<(usize, usize, f64)> {
    fn field<T: std::str::FromStr>(entry: &str, key: &str) -> Option<T> {
        let pos = entry.find(key)? + key.len();
        let rest = entry[pos..].trim_start();
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    }
    let Some(pos) = json.find("\"sim_round\"") else {
        return Vec::new();
    };
    let rest = &json[pos..];
    let body = &rest[..rest.find(']').unwrap_or(rest.len())];
    body.split('{')
        .skip(1)
        .filter_map(|entry| {
            Some((
                field::<usize>(entry, "\"workers\":")?,
                field::<usize>(entry, "\"threads\":")?,
                field::<f64>(entry, "\"steps_per_sec\":")?,
            ))
        })
        .collect()
}

/// Compare this run's `sim_round` numbers against a committed baseline report; returns
/// an error line per cell that regressed more than 20% below the baseline floor.
fn check_baseline(current: &str, baseline: &str) -> Vec<String> {
    let base = parse_sim_round(baseline);
    let now = parse_sim_round(current);
    let mut failures = Vec::new();
    if base.is_empty() {
        // A baseline that parses to nothing must fail loudly, or the gate silently
        // becomes a no-op (malformed file, renamed key, wrong path).
        failures.push("baseline file contains no sim_round entries".to_string());
    }
    for (workers, threads, floor) in base {
        let Some(&(_, _, got)) = now.iter().find(|&&(w, t, _)| w == workers && t == threads) else {
            failures.push(format!(
                "sim_round cell workers={workers} threads={threads} missing from current report"
            ));
            continue;
        };
        if got < 0.8 * floor {
            failures.push(format!(
                "sim_round regression at workers={workers} threads={threads}: \
                 {got:.2} steps/s < 80% of baseline {floor:.2}"
            ));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args.get(i + 1).expect("--baseline requires a path").clone());
    let budget_s = if quick { 0.1 } else { 0.4 };

    let shapes: &[(usize, usize, usize)] = if quick {
        &[(64, 64, 64), (256, 256, 256)]
    } else {
        &[
            (64, 64, 64),
            (128, 128, 128),
            (256, 256, 256),
            (512, 512, 512),
        ]
    };

    let kernels = bench_matmuls(shapes, budget_s);

    // Elementwise bandwidth: the axpy sweep behind optimizer updates/aggregation.
    let elems = if quick { 1 << 18 } else { 1 << 21 };
    let x: Vec<f32> = (0..elems).map(|i| (i % 13) as f32 * 0.1).collect();
    let mut y = vec![0.0f32; elems];
    let axpy_secs = time_per_call(budget_s, || ops::axpy_slice(0.5, &x, &mut y));
    // 2 reads + 1 write of f32 per element.
    let axpy_gbs = (elems as f64 * 12.0) / axpy_secs / 1e9;

    // Simulator round throughput: a small BSP run (the arm every comparison shares).
    let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
    cfg.iterations = if quick { 20 } else { 60 };
    cfg.eval_every = cfg.iterations; // final eval only
    cfg.train_samples = 512;
    cfg.test_samples = 128;
    cfg.eval_samples = 128;
    cfg.batch_size = 16;
    cfg.algorithm = AlgorithmSpec::Bsp;
    let start = Instant::now();
    let report = algorithms::run(&cfg);
    let sim_secs = start.elapsed().as_secs_f64();
    let steps_per_sec = report.iterations as f64 / sim_secs;

    // Worker-parallel round throughput across cluster widths and thread counts.
    let sim_round = bench_sim_round(quick);

    // Acceptance benchmark: 256^3 matmul at 1 vs 4 effective threads.
    let (m, k, n) = (256, 256, 256);
    let a = tensor(m, k, 5);
    let b = tensor(k, n, 6);
    let mut out = Tensor::zeros(m, n);
    let flops = (2 * m * k * n) as f64;
    let t1 = par::with_threads(1, || {
        time_per_call(budget_s, || {
            ops::matmul_into(&a, &b, &mut out).expect("matmul shapes");
        })
    });
    let t4 = par::with_threads(4, || {
        time_per_call(budget_s, || {
            ops::matmul_into(&a, &b, &mut out).expect("matmul shapes");
        })
    });

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"threads\": {{ \"configured\": {}, \"available_parallelism\": {} }},\n",
        par::configured_threads(),
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    ));
    json.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"secs_per_call\": {:.6e}, \"gflops\": {:.3} }}{}\n",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.secs_per_call,
            r.gflops,
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"elementwise\": {{ \"op\": \"axpy\", \"elems\": {elems}, \"secs_per_call\": {axpy_secs:.6e}, \"gbytes_per_sec\": {axpy_gbs:.3} }},\n"
    ));
    json.push_str(&format!(
        "  \"simulator\": {{ \"model\": \"resnet_like\", \"workers\": 4, \"iterations\": {}, \"wall_secs\": {:.3}, \"steps_per_sec\": {:.2} }},\n",
        report.iterations, sim_secs, steps_per_sec
    ));
    json.push_str("  \"sim_round\": [\n");
    for (i, r) in sim_round.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"workers\": {}, \"threads\": {}, \"steps_per_sec\": {:.2} }}{}\n",
            r.workers,
            r.threads,
            r.steps_per_sec,
            if i + 1 == sim_round.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_256\": {{ \"t1_secs\": {:.6e}, \"t4_secs\": {:.6e}, \"t1_gflops\": {:.3}, \"t4_gflops\": {:.3}, \"speedup\": {:.3} }}\n",
        t1,
        t4,
        flops / t1 / 1e9,
        flops / t4 / 1e9,
        t1 / t4
    ));
    json.push_str("}\n");
    print!("{json}");

    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let failures = check_baseline(&json, &baseline);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("bench_kernels: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("bench_kernels: sim_round within 20% of the committed baseline ({path})");
    }
}

//! Regenerates Fig. 5 of the paper: the relative gradient change Δ(g_i) plotted against
//! the test metric over BSP training, for all four workloads.

use selsync_bench::{emit, fig5_gradchange_vs_convergence, Scale};

fn main() {
    emit(
        "fig5_gradchange_convergence",
        "Fig. 5 — Δ(g_i) vs convergence under BSP",
        &fig5_gradchange_vs_convergence(Scale::from_env()),
    );
}

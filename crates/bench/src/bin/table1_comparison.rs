//! Regenerates Table I of the paper: BSP, FedAvg (4 configs), SSP (2 thresholds) and
//! SelSync (δ = 0.3, 0.5) across the four workloads — iterations, LSSR, final metric,
//! convergence difference vs BSP and speedups.
//!
//! Pass model names as arguments to restrict the sweep (e.g. `table1_comparison resnet vgg`),
//! and set `SELSYNC_SCALE=full` for the paper-scale 16-worker configuration.

use selsync_bench::{emit, table1_comparison, Scale};
use selsync_nn::model::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let models: Vec<ModelKind> = if args.is_empty() {
        ModelKind::all().to_vec()
    } else {
        ModelKind::all()
            .into_iter()
            .filter(|k| {
                args.iter()
                    .any(|a| k.paper_name().to_lowercase().contains(a))
            })
            .collect()
    };
    if models.is_empty() {
        eprintln!(
            "no model matched {:?}; expected substrings of: ResNet101, VGG11, AlexNet, Transformer",
            args
        );
        std::process::exit(1);
    }
    let scale = Scale::from_env();
    eprintln!("running Table I for {models:?} at {scale:?} scale — this trains 9 configurations per model");
    emit(
        "table1_comparison",
        "Table I — BSP / FedAvg / SSP / SelSync comparison",
        &table1_comparison(&models, scale),
    );
}

//! Regenerates Fig. 11 of the paper: the distribution of a ResNet-like layer's weights
//! under BSP, SelSync with parameter aggregation and SelSync with gradient aggregation.
//! PA should track BSP's distribution closely; GA drifts.

use selsync_bench::{emit, fig11_weight_distribution, Scale};

fn main() {
    emit(
        "fig11_weight_distribution",
        "Fig. 11 — weight distributions: BSP vs PA vs GA",
        &fig11_weight_distribution(Scale::from_env()),
    );
}

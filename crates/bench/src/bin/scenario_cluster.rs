//! Run a scenario's SelSync arm as a real multi-process cluster — one OS process
//! per worker plus a parameter-server hub process — over the socket transport,
//! then verify the merged event log against the in-process simulator.
//!
//! ```text
//! scenario_cluster crash-rejoin                  # built-in, UDS hub socket
//! scenario_cluster flaky-links --workers 4       # override the worker count
//! scenario_cluster crash-rejoin --iterations 60  # shorter smoke run
//! scenario_cluster steady --trace merged.jsonl   # write the merged event log
//! scenario_cluster flaky-links --check           # exit 1 unless byte-identical
//! scenario_cluster steady --kill 1:12            # kill worker 1 at round 12;
//!                                                # verify against the
//!                                                # equivalent scheduled crash
//! scenario_cluster steady --ckpt-dir D --halt 9  # checkpoint and halt
//! scenario_cluster steady --resume D/ckpt-9      # resume; merged trace must
//!                                                # equal the uninterrupted run
//! scenario_cluster custom.toml                   # scenario file; a
//!                                                # [scenario] transport =
//!                                                # "socket" block may pick TCP
//! ```
//!
//! The orchestrator writes the resolved scenario to a run directory, spawns
//! itself once per role (`--role hub` / `--role worker --index I`), waits for
//! every process, merges the per-process trace shards with
//! [`selsync_tracelog::EventLog::merge`], and runs the sequential simulator on
//! the same scenario in-process. The verdict compares:
//!
//! * the **merged event log** against the simulator's, byte for byte, and
//! * each worker's **synchronization schedule** against the simulator's
//!   schedule restricted to the rounds that worker was present.
//!
//! Timing and accuracy metrics (simulated seconds, eval history) are cost-model
//! quantities only the simulator computes — the cluster reports schedule-level
//! facts (docs/TRANSPORT.md).

use selsync::checkpoint::Checkpoint;
use selsync::conditions::FaultEvent;
use selsync::config::{AlgorithmSpec, CheckpointSpec};
use selsync::process::{
    decode_worker_report, encode_worker_report, ensure_supported, run_process_hub_with,
    run_process_worker_with, WorkerOptions,
};
use selsync_comm::socket::SocketAddrSpec;
use selsync_scenario::{builtin, Scenario, TransportSpec, BUILTIN_NAMES};
use selsync_tracelog::{EventLog, TraceGranularity, TraceSink};
use std::path::{Path, PathBuf};
use std::process::Command;

fn usage() -> ! {
    eprintln!(
        "usage: scenario_cluster <builtin-name | file.toml> [--workers N] [--seed N]\n\
         \x20                       [--iterations N] [--trace FILE] [--check]\n\
         \x20                       [--kill WORKER:ROUND] [--ckpt-every N]\n\
         \x20                       [--ckpt-dir DIR] [--halt N] [--resume IMAGE]\n\
         built-ins: {}",
        BUILTIN_NAMES.join(", ")
    );
    std::process::exit(2);
}

fn load(spec: &str) -> Result<Scenario, String> {
    if spec.ends_with(".toml") {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        Scenario::from_toml_str(&text)
    } else {
        builtin(spec).ok_or_else(|| {
            format!("unknown built-in scenario {spec:?} (pass a .toml file for custom runs)")
        })
    }
}

/// The training configuration every process (and the reference simulator)
/// derives from the scenario: the SelSync arm with full trace capture.
fn cluster_config(scenario: &Scenario) -> selsync::config::TrainConfig {
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(scenario.delta));
    cfg.trace = TraceSink::capture(TraceGranularity::Full);
    cfg
}

/// Parse a `--kill WORKER:ROUND` operand.
fn parse_kill(text: &str) -> Option<(usize, usize)> {
    let (w, r) = text.split_once(':')?;
    Some((w.parse().ok()?, r.parse().ok()?))
}

/// Child-process entry: run one role against the hub socket and write the
/// role's output file (`hub`: the trace shard; `worker`: the report line
/// followed by the shard). Never returns to the orchestrator path.
fn run_child(
    role: &str,
    index: usize,
    scenario_path: &str,
    socket: &str,
    out: &str,
    resume: Option<&str>,
    kill: Option<(usize, usize)>,
) -> ! {
    let scenario = match load(scenario_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: child could not load scenario: {e}");
            std::process::exit(1);
        }
    };
    let cfg = cluster_config(&scenario);
    let resume_image = resume.map(|path| {
        Checkpoint::read_file(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("error: child could not read checkpoint {path}: {e}");
            std::process::exit(1);
        })
    });
    let addr = SocketAddrSpec::parse(socket);
    let output = match role {
        "hub" => run_process_hub_with(&cfg, &addr, resume_image.as_ref()),
        "worker" => {
            let opts = WorkerOptions {
                resume: resume_image.as_ref(),
                kill_at: kill.and_then(|(w, r)| (w == index).then_some(r)),
            };
            let (report, shard) = run_process_worker_with(&cfg, index, &addr, opts);
            format!("{}\n{shard}", encode_worker_report(&report))
        }
        other => {
            eprintln!("error: unknown role {other:?}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(out, output) {
        eprintln!("error: child could not write {out}: {e}");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn spawn_role(
    scenario_path: &Path,
    socket: &str,
    run_dir: &Path,
    role: &str,
    index: usize,
    resume: Option<&str>,
    kill: Option<(usize, usize)>,
) -> (std::process::Child, PathBuf) {
    let out = run_dir.join(format!("{role}{index}.out"));
    let exe = std::env::current_exe().expect("current_exe");
    let mut command = Command::new(exe);
    command
        .arg("--role")
        .arg(role)
        .arg("--index")
        .arg(index.to_string())
        .arg("--scenario")
        .arg(scenario_path)
        .arg("--socket")
        .arg(socket)
        .arg("--out")
        .arg(&out);
    if let Some(path) = resume {
        command.arg("--resume").arg(path);
    }
    if let Some((w, r)) = kill {
        command.arg("--kill").arg(format!("{w}:{r}"));
    }
    let child = command
        .spawn()
        .unwrap_or_else(|e| panic!("failed to spawn {role} {index}: {e}"));
    (child, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    // Hidden child mode: the orchestrator re-invokes this binary per role.
    if args[0] == "--role" {
        let mut role = None;
        let mut index = 0usize;
        let mut scenario_path = None;
        let mut socket = None;
        let mut out = None;
        let mut resume = None;
        let mut kill = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--role" => role = args.get(i + 1).cloned(),
                "--index" => index = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(0),
                "--scenario" => scenario_path = args.get(i + 1).cloned(),
                "--socket" => socket = args.get(i + 1).cloned(),
                "--out" => out = args.get(i + 1).cloned(),
                "--resume" => resume = args.get(i + 1).cloned(),
                "--kill" => kill = args.get(i + 1).and_then(|v| parse_kill(v)),
                _ => {}
            }
            i += 2;
        }
        let (Some(role), Some(scenario_path), Some(socket), Some(out)) =
            (role, scenario_path, socket, out)
        else {
            eprintln!("error: incomplete child invocation");
            std::process::exit(1);
        };
        run_child(
            &role,
            index,
            &scenario_path,
            &socket,
            &out,
            resume.as_deref(),
            kill,
        );
    }

    let mut scenario = match load(&args[0]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut trace_out: Option<String> = None;
    let mut check = false;
    let mut kill: Option<(usize, usize)> = None;
    let mut resume: Option<String> = None;
    let mut ckpt_every: Option<usize> = None;
    let mut ckpt_dir: Option<String> = None;
    let mut halt: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                scenario.workers = v.parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                scenario.seed = v.parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--iterations" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                scenario.iterations = v.parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--trace" => {
                trace_out = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            "--kill" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                kill = Some(parse_kill(v).unwrap_or_else(|| usage()));
                i += 2;
            }
            "--resume" => {
                resume = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--ckpt-every" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                ckpt_every = Some(v.parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--ckpt-dir" => {
                ckpt_dir = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--halt" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                halt = Some(v.parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            _ => usage(),
        }
    }
    if let Err(e) = scenario.validate() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if let Some((w, r)) = kill {
        if w >= scenario.workers || r >= scenario.iterations {
            eprintln!(
                "error: --kill {w}:{r} is outside the cluster ({} workers, {} iterations)",
                scenario.workers, scenario.iterations
            );
            std::process::exit(2);
        }
    }
    if resume.is_some() && (ckpt_every.is_some() || ckpt_dir.is_some() || halt.is_some()) {
        eprintln!("error: --resume replays from an existing image; drop the --ckpt-*/--halt flags");
        std::process::exit(2);
    }
    if resume.is_some() {
        // A resumed verification run replays the remaining rounds against the
        // uninterrupted reference; it does not write further images.
        scenario.checkpoint = None;
    }
    if ckpt_every.is_some() || ckpt_dir.is_some() || halt.is_some() {
        let every = match (ckpt_every, halt) {
            (Some(e), _) => e,
            // Halt-only runs still need a due boundary at the halt round;
            // `every > halt` means the halt image is the only one written.
            (None, Some(h)) => h + 1,
            (None, None) => {
                eprintln!("error: --ckpt-dir needs --ckpt-every or --halt");
                std::process::exit(2);
            }
        };
        let dir = ckpt_dir.unwrap_or_else(|| {
            eprintln!(
                "error: --ckpt-every/--halt need --ckpt-dir (images must land somewhere durable)"
            );
            std::process::exit(2);
        });
        scenario.checkpoint = Some(CheckpointSpec {
            every,
            dir,
            halt_after: halt,
            keep: scenario.checkpoint.as_ref().and_then(|c| c.keep),
        });
    }
    // A one-line diagnosis (naming the offending scenario key) beats the panic
    // backtrace every child would otherwise print.
    if let Err(e) = ensure_supported(&cluster_config(&scenario)) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }

    let n = scenario.workers;
    let run_dir = std::env::temp_dir().join(format!(
        "selsync-cluster-{}-{}",
        scenario.name,
        std::process::id()
    ));
    std::fs::create_dir_all(&run_dir).expect("create run dir");
    // Children re-parse the resolved scenario from disk, so the file round trip
    // — not argument forwarding — is the single source of configuration truth.
    // Runtime knobs that are not configuration (--kill, --resume) are forwarded
    // as child arguments instead.
    let scenario_path = run_dir.join("scenario.toml");
    std::fs::write(&scenario_path, scenario.to_toml_string()).expect("write scenario file");
    let socket = match &scenario.transport {
        TransportSpec::Socket { addr: Some(addr) } => addr.clone(),
        _ => run_dir.join("hub.sock").to_string_lossy().into_owned(),
    };

    eprintln!(
        "cluster: {} workers + hub over {} ({})",
        n,
        socket,
        if socket.contains(':') { "tcp" } else { "uds" },
    );
    let mut children = Vec::new();
    children.push(spawn_role(
        &scenario_path,
        &socket,
        &run_dir,
        "hub",
        0,
        resume.as_deref(),
        None,
    ));
    for w in 0..n {
        children.push(spawn_role(
            &scenario_path,
            &socket,
            &run_dir,
            "worker",
            w,
            resume.as_deref(),
            kill,
        ));
    }
    let mut outputs = Vec::new();
    for (mut child, out) in children {
        let status = child.wait().expect("wait for child");
        if !status.success() {
            eprintln!(
                "error: cluster process for {} failed ({status})",
                out.display()
            );
            std::process::exit(1);
        }
        outputs.push(std::fs::read_to_string(&out).expect("read child output"));
    }

    // outputs[0] is the hub shard; outputs[1..] are "report\nshard" per worker.
    let mut shards = vec![EventLog::decode(&outputs[0]).expect("hub shard decodes")];
    let mut reports = Vec::new();
    for text in &outputs[1..] {
        let (report_line, shard) = text
            .split_once('\n')
            .expect("worker output has a report line");
        reports.push(decode_worker_report(report_line).expect("worker report decodes"));
        shards.push(EventLog::decode(shard).expect("worker shard decodes"));
    }
    reports.sort_by_key(|r| r.worker);
    let merged = EventLog::merge(shards).encode();

    if let Some(path) = &trace_out {
        std::fs::write(path, &merged).expect("write merged trace");
        eprintln!("merged event log written to {path}");
    }

    // A halted run stops at the checkpoint quiescent point — there is no
    // uninterrupted reference to compare against. Resume from the image to
    // finish the run and get the parity verdict.
    if let Some(h) = halt {
        let ck = scenario.checkpoint.as_ref().expect("--halt built a spec");
        println!(
            "# scenario: {} (seed {}) — halted after round {h}",
            scenario.name, scenario.seed
        );
        println!(
            "checkpoint images under {}; resume with --resume {}/ckpt-{h}",
            ck.dir, ck.dir
        );
        std::fs::remove_dir_all(&run_dir).ok();
        return;
    }

    // Reference: the sequential simulator on the same scenario, in-process. A
    // --kill death must behave exactly like a scheduled no-rejoin crash at the
    // kill round, so the reference gets that crash.
    let mut cfg = cluster_config(&scenario);
    if let Some((w, r)) = kill {
        cfg.conditions = cfg.conditions.clone().with_fault(FaultEvent::Crash {
            worker: w,
            start: r,
            rejoin: None,
        });
    }
    let sim_report = selsync::algorithms::run(&cfg);
    let sim_trace = cfg.trace.take_log().encode();

    let effective = cfg.effective_conditions();
    let mut divergences = Vec::new();
    if merged != sim_trace {
        let first = merged
            .lines()
            .zip(sim_trace.lines())
            .position(|(a, b)| a != b)
            .map(|at| format!("first differing line {}", at + 1))
            .unwrap_or_else(|| "different line counts".to_string());
        divergences.push(format!("merged event log != simulator log ({first})"));
    }
    for r in &reports {
        let expected: Vec<usize> = sim_report
            .sync_rounds
            .iter()
            .copied()
            .filter(|&round| effective.is_present(r.worker, round))
            .collect();
        if r.sync_rounds != expected {
            divergences.push(format!(
                "worker {} schedule {:?} != simulator's {:?}",
                r.worker, r.sync_rounds, expected
            ));
        }
    }

    println!(
        "# scenario: {} (seed {}) — multi-process cluster, {} workers",
        scenario.name, scenario.seed, n
    );
    for r in &reports {
        println!(
            "worker {:2}: {:3} sync / {:3} local rounds, final loss {:.5}",
            r.worker, r.sync_steps, r.local_steps, r.final_loss
        );
    }
    println!(
        "simulator: {} sync / {} local rounds, {} trace events",
        sim_report.sync_steps,
        sim_report.local_steps,
        sim_trace.lines().count()
    );
    if divergences.is_empty() {
        println!("parity: OK — merged log byte-identical to the simulator's");
        std::fs::remove_dir_all(&run_dir).ok();
    } else {
        println!("parity: DIVERGED");
        for d in &divergences {
            println!("  - {d}");
        }
        eprintln!("run artifacts kept in {}", run_dir.display());
        if check {
            std::process::exit(1);
        }
    }
}

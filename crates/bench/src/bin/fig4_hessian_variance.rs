//! Regenerates Fig. 4 of the paper: the largest Hessian eigenvalue tracks the (cheap)
//! first-order gradient variance along a training trajectory.

use selsync_bench::{emit, fig4_hessian_vs_variance, Scale};

fn main() {
    emit(
        "fig4_hessian_variance",
        "Fig. 4 — Hessian top eigenvalue vs gradient variance",
        &fig4_hessian_vs_variance(Scale::from_env()),
    );
}

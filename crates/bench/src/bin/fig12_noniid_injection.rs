//! Regenerates Fig. 12 of the paper: on label-sharded non-IID data, SelSync with
//! randomized data-injection (α, β, δ) recovers accuracy that plain FedAvg loses.

use selsync_bench::{emit, fig12_noniid_injection, Scale};

fn main() {
    emit(
        "fig12_noniid_injection",
        "Fig. 12 — data-injection vs FedAvg on non-IID data",
        &fig12_noniid_injection(Scale::from_env()),
    );
}

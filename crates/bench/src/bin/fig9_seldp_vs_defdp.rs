//! Regenerates Fig. 9 of the paper: SelSync (δ=0.25, gradient aggregation) trained with
//! the SelDP circular-queue partitioning vs the default DefDP partitioning.

use selsync_bench::{emit, fig9_seldp_vs_defdp, Scale};

fn main() {
    emit(
        "fig9_seldp_vs_defdp",
        "Fig. 9 — SelSync with SelDP vs DefDP",
        &fig9_seldp_vs_defdp(Scale::from_env()),
    );
}

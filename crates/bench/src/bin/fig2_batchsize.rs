//! Regenerates Fig. 2 of the paper: per-iteration compute time (2a) and memory use (2b)
//! as the per-worker batch size grows, on a Tesla K80 profile.

use selsync_bench::{emit, fig2_batchsize_costs};

fn main() {
    emit(
        "fig2_batchsize_costs",
        "Fig. 2 — compute time and memory vs batch size (Tesla K80)",
        &fig2_batchsize_costs(),
    );
}

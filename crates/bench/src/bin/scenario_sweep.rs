//! Run one scenario's δ-grid/seed/policy sweep and print the aggregated mean ± spread
//! comparison report.
//!
//! ```text
//! scenario_sweep --list                            # list built-in scenarios
//! scenario_sweep degraded-network                  # sweep a built-in
//! scenario_sweep path/to/custom.toml               # sweep a scenario file ([sweep] block)
//! scenario_sweep degraded-network --quick          # CI-sized smoke sweep
//! scenario_sweep degraded-network --seed 7         # rebase the scenario + sweep seeds
//! scenario_sweep degraded-network --out report.md  # also write the text report
//! scenario_sweep degraded-network --json sweep.json# also write the JSON report
//! scenario_sweep elastic-churn --threaded-schedule ts.json
//!                                                  # also run the threaded driver's
//!                                                  # adaptive arm and archive its
//!                                                  # sync schedule + simulator parity
//! scenario_sweep elastic-churn --trace-dir traces/ # also record each arm's
//!                                                  # first-seed event log
//!                                                  # (docs/EVENT_LOG.md)
//! ```
//!
//! Scenarios without a `[sweep]` block use the default grid (δ ∈ {0, 0.05, 0.15, 0.3,
//! 0.6} × 3 seeds × the default adaptive-δ arm). Same scenario + same sweep + same
//! seeds ⇒ byte-identical report and JSON, for every `SELSYNC_THREADS` value — piping
//! the output to a file and diffing against a recorded run is a regression test.

use selsync::algorithms;
use selsync::config::AlgorithmSpec;
use selsync::policy::PolicySpec;
use selsync::threaded::run_threaded_selsync;
use selsync_scenario::{builtin, library, sweep, Scenario, BUILTIN_NAMES};
use selsync_tracelog::{diff_report, TraceGranularity, TraceSink};

fn usage() -> ! {
    eprintln!(
        "usage: scenario_sweep <builtin-name | file.toml> [--quick] [--seed N] [--out FILE] \
         [--json FILE] [--threaded-schedule FILE] [--trace-dir DIR]\n\
         \x20      scenario_sweep --list\n\
         built-ins: {}",
        BUILTIN_NAMES.join(", ")
    );
    std::process::exit(2);
}

/// Run the scenario's adaptive arm (its first adaptive `[[policy]]`, or the default
/// adaptive policy) through the *threaded* driver and the simulator, and render a
/// deterministic JSON record of both synchronization schedules plus the parity
/// verdict (every worker's threaded schedule == the simulator's restricted to that
/// worker's present rounds). Both runs capture event logs, so a parity break ships
/// its own diagnosis: `first_divergence` pins the first divergent round and field
/// via the trace-diff engine (null when the logs agree). Archived by CI next to the
/// sweep report so the threaded adaptive schedule is comparable PR over PR.
fn threaded_schedule_json(scenario: &Scenario) -> String {
    let policy = scenario
        .sweep
        .as_ref()
        .and_then(|s| {
            s.policies
                .iter()
                .find(|p| matches!(p, PolicySpec::Adaptive { .. }))
        })
        .cloned()
        .unwrap_or_else(PolicySpec::adaptive_default);
    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(scenario.delta));
    cfg.delta_policy = Some(policy.clone());
    cfg.trace = TraceSink::capture(TraceGranularity::Full);

    let sim = algorithms::run(&cfg);
    let sim_log = cfg.trace.take_log();
    let workers = run_threaded_selsync(&cfg);
    let threaded_log = cfg.trace.take_log();
    let divergence = diff_report(&sim_log, &threaded_log, "simulator", "threaded");
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    }
    let fmt_rounds = |rounds: &[usize]| -> String {
        let items: Vec<String> = rounds.iter().map(|r| r.to_string()).collect();
        format!("[{}]", items.join(", "))
    };
    let parity = workers.iter().all(|w| {
        let expected: Vec<usize> = sim
            .sync_rounds
            .iter()
            .copied()
            .filter(|&round| cfg.conditions.is_present(w.worker, round))
            .collect();
        w.sync_rounds == expected
    });

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", esc(&scenario.name)));
    out.push_str(&format!("  \"policy\": \"{}\",\n", esc(&policy.label())));
    out.push_str(&format!("  \"seed\": {},\n", scenario.seed));
    out.push_str(&format!("  \"iterations\": {},\n", cfg.iterations));
    out.push_str(&format!(
        "  \"rejoin_pull\": \"{}\",\n",
        match cfg.rejoin_pull {
            selsync::config::RejoinPull::WallClock => "wall-clock",
            selsync::config::RejoinPull::Scheduled => "scheduled",
        }
    ));
    out.push_str(&format!(
        "  \"simulator_sync_rounds\": {},\n",
        fmt_rounds(&sim.sync_rounds)
    ));
    out.push_str("  \"workers\": [\n");
    for (i, w) in workers.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"worker\": {}, \"sync_rounds\": {}}}{}\n",
            w.worker,
            fmt_rounds(&w.sync_rounds),
            if i + 1 == workers.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"parity_with_simulator\": {parity},\n"));
    match &divergence {
        Some(report) => out.push_str(&format!(
            "  \"first_divergence\": \"{}\"\n",
            esc(report.trim_end())
        )),
        None => out.push_str("  \"first_divergence\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// Deterministic, filesystem-safe file name for one sweep arm's event log.
fn trace_file_name(label: &str) -> String {
    let mut name = String::new();
    for c in label.chars() {
        if c.is_ascii_alphanumeric() || matches!(c, '.' | '-') {
            name.push(c);
        } else if !name.ends_with('_') {
            name.push('_');
        }
    }
    format!("{}.trace.jsonl", name.trim_matches('_'))
}

fn load(spec: &str) -> Result<Scenario, String> {
    if spec.ends_with(".toml") {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        Scenario::from_toml_str(&text)
    } else {
        builtin(spec).ok_or_else(|| {
            format!("unknown built-in scenario {spec:?} (try --list, or pass a .toml file)")
        })
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--list" {
        for scenario in library::all_builtin() {
            println!("{:22} {}", scenario.name, scenario.description);
        }
        return;
    }

    let mut scenario = match load(&args[0]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut threaded_path: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--seed" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                let seed: u64 = v.parse().unwrap_or_else(|_| usage());
                scenario.seed = seed;
                // The sweep's seed set is the spread axis; rebase it on the override
                // (same cardinality) so --seed is never a silent no-op for scenarios
                // with an explicit [sweep] block.
                if let Some(sweep) = &mut scenario.sweep {
                    sweep.seeds = (0..sweep.seeds.len())
                        .map(|k| seed.wrapping_add(k as u64))
                        .collect();
                }
                i += 2;
            }
            "--out" => {
                out_path = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--threaded-schedule" => {
                threaded_path = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--trace-dir" => {
                trace_dir = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            _ => usage(),
        }
    }
    if quick {
        scenario = sweep::quick_variant(&scenario);
    }
    if trace_dir.is_some() {
        // Equivalent to `[trace] enabled = true`: the sweep records each arm's
        // first-seed event log alongside its statistics.
        scenario.trace.enabled = true;
    }

    let report = match sweep::run_sweep(&scenario) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let text = report.render();
    print!("{text}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = threaded_path {
        if let Err(e) = std::fs::write(&path, threaded_schedule_json(&scenario)) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(dir) = trace_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: could not create {dir}: {e}");
            std::process::exit(1);
        }
        for arm in &report.arms {
            let Some(trace) = &arm.trace else { continue };
            let path = std::path::Path::new(&dir).join(trace_file_name(&arm.label));
            if let Err(e) = std::fs::write(&path, trace) {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("event log written to {}", path.display());
        }
    }
}

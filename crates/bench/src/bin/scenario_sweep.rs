//! Run one scenario's δ-grid/seed/policy sweep and print the aggregated mean ± spread
//! comparison report.
//!
//! ```text
//! scenario_sweep --list                            # list built-in scenarios
//! scenario_sweep degraded-network                  # sweep a built-in
//! scenario_sweep path/to/custom.toml               # sweep a scenario file ([sweep] block)
//! scenario_sweep degraded-network --quick          # CI-sized smoke sweep
//! scenario_sweep degraded-network --seed 7         # rebase the scenario + sweep seeds
//! scenario_sweep degraded-network --out report.md  # also write the text report
//! scenario_sweep degraded-network --json sweep.json# also write the JSON report
//! ```
//!
//! Scenarios without a `[sweep]` block use the default grid (δ ∈ {0, 0.05, 0.15, 0.3,
//! 0.6} × 3 seeds × the default adaptive-δ arm). Same scenario + same sweep + same
//! seeds ⇒ byte-identical report and JSON, for every `SELSYNC_THREADS` value — piping
//! the output to a file and diffing against a recorded run is a regression test.

use selsync_scenario::{builtin, library, sweep, Scenario, BUILTIN_NAMES};

fn usage() -> ! {
    eprintln!(
        "usage: scenario_sweep <builtin-name | file.toml> [--quick] [--seed N] [--out FILE] [--json FILE]\n\
         \x20      scenario_sweep --list\n\
         built-ins: {}",
        BUILTIN_NAMES.join(", ")
    );
    std::process::exit(2);
}

fn load(spec: &str) -> Result<Scenario, String> {
    if spec.ends_with(".toml") {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        Scenario::from_toml_str(&text)
    } else {
        builtin(spec).ok_or_else(|| {
            format!("unknown built-in scenario {spec:?} (try --list, or pass a .toml file)")
        })
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--list" {
        for scenario in library::all_builtin() {
            println!("{:22} {}", scenario.name, scenario.description);
        }
        return;
    }

    let mut scenario = match load(&args[0]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--seed" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                let seed: u64 = v.parse().unwrap_or_else(|_| usage());
                scenario.seed = seed;
                // The sweep's seed set is the spread axis; rebase it on the override
                // (same cardinality) so --seed is never a silent no-op for scenarios
                // with an explicit [sweep] block.
                if let Some(sweep) = &mut scenario.sweep {
                    sweep.seeds = (0..sweep.seeds.len())
                        .map(|k| seed.wrapping_add(k as u64))
                        .collect();
                }
                i += 2;
            }
            "--out" => {
                out_path = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            _ => usage(),
        }
    }
    if quick {
        scenario = sweep::quick_variant(&scenario);
    }

    let report = match sweep::run_sweep(&scenario) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let text = report.render();
    print!("{text}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
    }
}

//! Run one scenario — built-in or a TOML file — through every algorithm arm and print
//! the deterministic comparison report.
//!
//! ```text
//! scenario_run --list                         # list built-in scenarios
//! scenario_run transient-straggler            # run a built-in
//! scenario_run path/to/custom.toml            # run a scenario file
//! scenario_run transient-straggler --seed 7   # override the seed
//! scenario_run transient-straggler --out r.md # also write the report to a file
//! scenario_run crash-rejoin --trace t.jsonl   # also record the SelSync arm's
//!                                             # event log (docs/EVENT_LOG.md)
//! scenario_run ps-brownout --ckpt-every 40    # persist a recovery image of the
//!                                             # SelSync arm every 40 rounds
//! scenario_run ps-brownout --resume target/checkpoints/ps-brownout/ckpt-79
//!                                             # resume the SelSync arm from a
//!                                             # checkpoint (docs/RECOVERY.md)
//! scenario_run --dump crash-rejoin            # print a built-in as TOML
//! ```
//!
//! Same scenario + same seed ⇒ byte-identical report, so piping the output to a file
//! and diffing against a recorded run is a regression test. A `--resume` run prints
//! the resumed SelSync arm's report only (the other arms are not re-run), and its
//! trace/report are byte-identical to the uninterrupted run's.

use selsync::config::{AlgorithmSpec, CheckpointSpec};
use selsync::Checkpoint;
use selsync_scenario::{builtin, library, runner, Scenario, BUILTIN_NAMES};
use selsync_tracelog::TraceSink;

fn usage() -> ! {
    eprintln!(
        "usage: scenario_run <builtin-name | file.toml> [--seed N] [--out FILE] [--trace FILE]\n\
         \x20                   [--ckpt-every N] [--ckpt-dir DIR] [--ckpt-keep N] [--halt ROUND]\n\
         \x20                   [--resume CKPT]\n\
         \x20      scenario_run --list\n\
         \x20      scenario_run --dump <builtin-name>\n\
         built-ins: {}",
        BUILTIN_NAMES.join(", ")
    );
    std::process::exit(2);
}

fn load(spec: &str) -> Result<Scenario, String> {
    if spec.ends_with(".toml") {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        Scenario::from_toml_str(&text)
    } else {
        builtin(spec).ok_or_else(|| {
            format!("unknown built-in scenario {spec:?} (try --list, or pass a .toml file)")
        })
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--list" {
        for scenario in library::all_builtin() {
            println!("{:22} {}", scenario.name, scenario.description);
        }
        return;
    }
    if args[0] == "--dump" {
        let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
        match builtin(name) {
            Some(s) => print!("{}", s.to_toml_string()),
            None => {
                eprintln!("unknown built-in scenario {name:?}");
                std::process::exit(2);
            }
        }
        return;
    }

    let mut scenario = match load(&args[0]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut out_path: Option<String> = None;
    let mut ckpt_every: Option<usize> = None;
    let mut ckpt_dir: Option<String> = None;
    let mut ckpt_keep: Option<usize> = None;
    let mut halt: Option<usize> = None;
    let mut resume: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                scenario.seed = v.parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--out" => {
                out_path = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--trace" => {
                // Equivalent to a `[trace]` block in the scenario file: enable
                // capture and point the recording at FILE.
                scenario.trace.enabled = true;
                scenario.trace.path = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--ckpt-every" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                ckpt_every = Some(v.parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--ckpt-dir" => {
                ckpt_dir = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--ckpt-keep" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                ckpt_keep = Some(v.parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--halt" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                halt = Some(v.parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--resume" => {
                resume = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            _ => usage(),
        }
    }
    // Equivalent to a `[checkpoint]` block in the scenario file; only the SelSync
    // arm writes recovery images (the baseline arms have no recovery contract).
    match (ckpt_every, halt) {
        (None, None) => {
            if ckpt_dir.is_some() || ckpt_keep.is_some() {
                eprintln!("error: --ckpt-dir/--ckpt-keep need --ckpt-every (or --halt)");
                std::process::exit(2);
            }
        }
        (every, halt_after) => {
            scenario.checkpoint = Some(CheckpointSpec {
                // `--halt R` alone writes exactly one image: the one at round R.
                every: every.unwrap_or_else(|| halt_after.expect("halt set") + 1),
                dir: ckpt_dir.unwrap_or_else(|| format!("target/checkpoints/{}", scenario.name)),
                halt_after,
                keep: ckpt_keep,
            });
        }
    }

    if let Some(path) = resume {
        // Resume the SelSync arm from the checkpoint image and print its report;
        // the resumed trace and report are byte-identical to an uninterrupted
        // run's (docs/RECOVERY.md), so diffing them against a full run's output is
        // the recovery regression test.
        let ckpt = match Checkpoint::read_file(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        if ckpt.backend != "sim" && ckpt.backend != "threaded" {
            eprintln!(
                "error: checkpoint {path} was written by the unknown {:?} backend; \
                 scenario_run resumes simulator checkpoints directly and threaded \
                 ones via cross-backend translation (docs/RECOVERY.md)",
                ckpt.backend
            );
            std::process::exit(1);
        }
        let mut cfg = scenario.train_config(AlgorithmSpec::selsync(scenario.delta));
        if scenario.trace.enabled {
            cfg.trace = TraceSink::capture(scenario.trace.granularity);
        }
        let report = selsync::algorithms::selsync::run_resumed(&cfg, &ckpt);
        let mut text = format!(
            "# scenario: {} (seed {}) resumed from round {}\n",
            scenario.name, scenario.seed, ckpt.round
        );
        text.push_str(&format!("{report:#?}\n"));
        print!("{text}");
        if let Some(path) = out_path {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
        if let Some(path) = &scenario.trace.path {
            if let Err(e) = std::fs::write(path, cfg.trace.take_log().encode()) {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("event log written to {path}");
        }
        return;
    }

    let report = match runner::run_scenario(&scenario) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let text = report.render();
    print!("{text}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &scenario.trace.path {
        let Some(trace) = &report.trace else {
            eprintln!("error: trace capture was enabled but no SelSync arm ran");
            std::process::exit(1);
        };
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("event log written to {path}");
    }
}

//! Regenerates Fig. 1 of the paper: (a) relative training throughput vs cluster size
//! over a 5 Gbps parameter-server setup, and (b) FedAvg accuracy on IID vs non-IID data.

use selsync_bench::{emit, fig1a_relative_throughput, fig1b_fedavg_iid_vs_noniid, Scale};

fn main() {
    let scale = Scale::from_env();
    emit(
        "fig1a_relative_throughput",
        "Fig. 1a — relative throughput vs cluster size (PS, 5 Gbps)",
        &fig1a_relative_throughput(),
    );
    emit(
        "fig1b_fedavg_iid_vs_noniid",
        "Fig. 1b — FedAvg on IID vs non-IID data",
        &fig1b_fedavg_iid_vs_noniid(scale),
    );
}

//! Regenerates Fig. 8 of the paper: (a) the per-iteration overhead of computing Δ(g_i)
//! for different EWMA windows, and (b) the one-time DefDP vs SelDP partitioning cost.

use selsync_bench::{emit, fig8a_tracker_overhead, fig8b_partitioning_overhead};

fn main() {
    emit(
        "fig8a_tracker_overhead",
        "Fig. 8a — Δ(g_i) computation overhead vs EWMA window",
        &fig8a_tracker_overhead(),
    );
    emit(
        "fig8b_partitioning_overhead",
        "Fig. 8b — DefDP vs SelDP partitioning time",
        &fig8b_partitioning_overhead(),
    );
}

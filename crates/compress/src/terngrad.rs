//! TernGrad quantization (Wen et al.): stochastic ternarisation of the gradient to
//! {-1, 0, +1} scaled by the maximum magnitude. Unbiased in expectation.

use crate::{Compressed, Compressor};
use rand::Rng;
use selsync_tensor::rng::{self, SelRng};

/// Stochastic ternary quantizer.
#[derive(Debug, Clone)]
pub struct TernGrad {
    rng: SelRng,
}

impl TernGrad {
    /// Create a TernGrad compressor with a deterministic RNG.
    pub fn new(seed: u64) -> Self {
        TernGrad {
            rng: rng::seeded(seed),
        }
    }
}

impl Compressor for TernGrad {
    fn compress(&mut self, grad: &[f32]) -> Compressed {
        let dim = grad.len();
        let scale = grad.iter().fold(0.0f32, |m, g| m.max(g.abs()));
        let levels = if scale == 0.0 {
            vec![0i8; dim]
        } else {
            grad.iter()
                .map(|&g| {
                    // P(level = sign(g)) = |g| / scale, else 0 — unbiased: E[level*scale] = g.
                    let p = (g.abs() / scale).clamp(0.0, 1.0);
                    if self.rng.gen::<f32>() < p {
                        if g >= 0.0 {
                            1i8
                        } else {
                            -1i8
                        }
                    } else {
                        0i8
                    }
                })
                .collect()
        };
        Compressed::Ternary { dim, levels, scale }
    }

    fn name(&self) -> &'static str {
        "terngrad"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compression_ratio, decompress_dense};

    #[test]
    fn levels_are_ternary_and_scale_is_max() {
        let mut c = TernGrad::new(7);
        let grad = vec![0.5, -2.0, 1.0, 0.0];
        let p = c.compress(&grad);
        if let Compressed::Ternary { levels, scale, .. } = &p {
            assert_eq!(*scale, 2.0);
            assert!(levels.iter().all(|&l| l == -1 || l == 0 || l == 1));
        } else {
            panic!("expected ternary");
        }
    }

    #[test]
    fn quantization_is_unbiased_in_expectation() {
        let grad = vec![1.0f32, -0.5, 0.25, 0.0];
        let trials = 4000;
        let mut acc = [0.0f32; 4];
        for seed in 0..trials {
            let mut c = TernGrad::new(seed);
            let dense = decompress_dense(&c.compress(&grad));
            for (a, d) in acc.iter_mut().zip(dense.iter()) {
                *a += d;
            }
        }
        for (a, &g) in acc.iter().zip(grad.iter()) {
            let mean = a / trials as f32;
            assert!((mean - g).abs() < 0.05, "mean {mean} vs {g}");
        }
    }

    #[test]
    fn zero_gradient_stays_zero() {
        let mut c = TernGrad::new(1);
        let dense = decompress_dense(&c.compress(&[0.0; 16]));
        assert!(dense.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn compression_ratio_is_high() {
        let mut c = TernGrad::new(3);
        let grad = vec![0.3; 4096];
        assert!(compression_ratio(&c.compress(&grad)) > 10.0);
    }
}

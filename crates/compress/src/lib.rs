//! # selsync-compress
//!
//! Gradient-compression baselines from the paper's related-work discussion (§II-D).
//!
//! SelSync itself does not compress gradients — it skips communication entirely on
//! low-significance steps — but the paper positions it against sparsification
//! (Top-k / DGC), quantization (signSGD, TernGrad) and low-rank methods, and notes that
//! compression "is not a zero-cost operation". This crate implements the standard
//! baselines so the benchmark harness can compare communication volumes and
//! compression/decompression overheads, and so downstream users can combine SelSync's
//! selective synchronization with compressed synchronization steps.
//!
//! All compressors implement the [`Compressor`] trait: `compress` produces a
//! [`Compressed`] payload with a well-defined wire size, and `decompress` reconstructs a
//! dense vector. The [`error_feedback::ErrorFeedback`] wrapper adds the standard
//! residual-accumulation loop that keeps biased compressors convergent.

pub mod error_feedback;
pub mod randomk;
pub mod signsgd;
pub mod terngrad;
pub mod topk;

pub use error_feedback::ErrorFeedback;
pub use randomk::RandomK;
pub use signsgd::SignSgd;
pub use terngrad::TernGrad;
pub use topk::TopK;

/// A compressed gradient payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Compressed {
    /// Sparse representation: selected indices and their values.
    Sparse {
        /// Length of the original dense vector.
        dim: usize,
        /// Indices of the transmitted coordinates.
        indices: Vec<u32>,
        /// Values at those coordinates.
        values: Vec<f32>,
    },
    /// Sign representation: one bit per coordinate plus a single scale.
    Signs {
        /// Length of the original dense vector.
        dim: usize,
        /// Per-coordinate signs packed as booleans (`true` = positive).
        signs: Vec<bool>,
        /// Scale applied to every reconstructed coordinate.
        scale: f32,
    },
    /// Ternary representation: {-1, 0, +1} per coordinate plus a single scale.
    Ternary {
        /// Length of the original dense vector.
        dim: usize,
        /// Per-coordinate ternary levels.
        levels: Vec<i8>,
        /// Scale applied to non-zero coordinates.
        scale: f32,
    },
}

impl Compressed {
    /// Bytes this payload would occupy on the wire (indices 4 B, values 4 B, signs 1 bit,
    /// ternary levels 2 bits, scales 4 B).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Compressed::Sparse {
                indices, values, ..
            } => 4 * indices.len() + 4 * values.len() + 8,
            Compressed::Signs { signs, .. } => signs.len().div_ceil(8) + 4 + 8,
            Compressed::Ternary { levels, .. } => levels.len().div_ceil(4) + 4 + 8,
        }
    }

    /// Length of the original dense vector.
    pub fn dim(&self) -> usize {
        match self {
            Compressed::Sparse { dim, .. }
            | Compressed::Signs { dim, .. }
            | Compressed::Ternary { dim, .. } => *dim,
        }
    }
}

/// A lossy gradient compressor.
pub trait Compressor: Send {
    /// Compress a dense gradient.
    fn compress(&mut self, grad: &[f32]) -> Compressed;

    /// Reconstruct a dense gradient from a payload produced by this compressor.
    fn decompress(&self, payload: &Compressed) -> Vec<f32> {
        decompress_dense(payload)
    }

    /// Human-readable name.
    fn name(&self) -> &'static str;
}

/// Shared dense reconstruction used by every compressor.
pub fn decompress_dense(payload: &Compressed) -> Vec<f32> {
    match payload {
        Compressed::Sparse {
            dim,
            indices,
            values,
        } => {
            let mut out = vec![0.0f32; *dim];
            for (&i, &v) in indices.iter().zip(values.iter()) {
                out[i as usize] = v;
            }
            out
        }
        Compressed::Signs { dim, signs, scale } => {
            let mut out = vec![0.0f32; *dim];
            for (o, &s) in out.iter_mut().zip(signs.iter()) {
                *o = if s { *scale } else { -*scale };
            }
            out
        }
        Compressed::Ternary { dim, levels, scale } => {
            let mut out = vec![0.0f32; *dim];
            for (o, &l) in out.iter_mut().zip(levels.iter()) {
                *o = l as f32 * scale;
            }
            out
        }
    }
}

/// Compression ratio achieved by a payload relative to dense f32 transmission.
pub fn compression_ratio(payload: &Compressed) -> f64 {
    let dense = payload.dim() * 4;
    dense as f64 / payload.wire_bytes().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_wire_bytes_counts_pairs() {
        let p = Compressed::Sparse {
            dim: 100,
            indices: vec![1, 2, 3],
            values: vec![0.1, 0.2, 0.3],
        };
        assert_eq!(p.wire_bytes(), 3 * 4 + 3 * 4 + 8);
        assert_eq!(p.dim(), 100);
    }

    #[test]
    fn signs_pack_to_one_bit() {
        let p = Compressed::Signs {
            dim: 16,
            signs: vec![true; 16],
            scale: 1.0,
        };
        assert_eq!(p.wire_bytes(), 2 + 4 + 8);
    }

    #[test]
    fn compression_ratio_is_relative_to_dense() {
        let p = Compressed::Sparse {
            dim: 1000,
            indices: vec![0; 10],
            values: vec![0.0; 10],
        };
        assert!(compression_ratio(&p) > 40.0);
    }

    #[test]
    fn dense_reconstruction_of_each_variant() {
        let sparse = Compressed::Sparse {
            dim: 4,
            indices: vec![1, 3],
            values: vec![2.0, -1.0],
        };
        assert_eq!(decompress_dense(&sparse), vec![0.0, 2.0, 0.0, -1.0]);
        let signs = Compressed::Signs {
            dim: 3,
            signs: vec![true, false, true],
            scale: 0.5,
        };
        assert_eq!(decompress_dense(&signs), vec![0.5, -0.5, 0.5]);
        let tern = Compressed::Ternary {
            dim: 3,
            levels: vec![1, 0, -1],
            scale: 2.0,
        };
        assert_eq!(decompress_dense(&tern), vec![2.0, 0.0, -2.0]);
    }
}

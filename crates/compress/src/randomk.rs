//! Random-k sparsification: transmit a uniformly random subset of coordinates.
//!
//! A cheaper (no selection cost) but noisier alternative to Top-k; included as the
//! sparsification strawman the compression literature compares against.

use crate::{Compressed, Compressor};
use selsync_tensor::rng::{self, SelRng, SparseSampler};

/// Transmit a random `fraction` of coordinates, scaled by `1/fraction` so the
/// compression is unbiased in expectation.
#[derive(Debug, Clone)]
pub struct RandomK {
    /// Fraction of coordinates to keep, in `(0, 1]`.
    pub fraction: f32,
    rng: SelRng,
    unbiased: bool,
    /// Reused per-step sampling workspace (the `O(k)` sparse Fisher–Yates sample lands
    /// here; the wire payload gets exact-size vectors).
    workspace: Vec<usize>,
    /// Reused sampler state (its displacement map keeps its capacity across steps).
    sampler: SparseSampler,
}

impl RandomK {
    /// Create a Random-k compressor. `unbiased` rescales kept values by `1/fraction`.
    pub fn new(fraction: f32, seed: u64, unbiased: bool) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        RandomK {
            fraction,
            rng: rng::seeded(seed),
            unbiased,
            workspace: Vec::new(),
            sampler: SparseSampler::new(),
        }
    }
}

impl Compressor for RandomK {
    fn compress(&mut self, grad: &[f32]) -> Compressed {
        let dim = grad.len();
        let k = ((dim as f32 * self.fraction).ceil() as usize).clamp(1, dim);
        self.sampler
            .sample_into(&mut self.rng, dim, k, &mut self.workspace);
        self.workspace.sort_unstable();
        let scale = if self.unbiased {
            1.0 / self.fraction
        } else {
            1.0
        };
        let values = self.workspace.iter().map(|&i| grad[i] * scale).collect();
        Compressed::Sparse {
            dim,
            indices: self.workspace.iter().map(|&i| i as u32).collect(),
            values,
        }
    }

    fn name(&self) -> &'static str {
        "randomk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompress_dense;

    #[test]
    fn keeps_requested_fraction() {
        let mut c = RandomK::new(0.25, 1, false);
        let grad = vec![1.0; 100];
        if let Compressed::Sparse { indices, .. } = c.compress(&grad) {
            assert_eq!(indices.len(), 25);
        } else {
            panic!("expected sparse");
        }
    }

    #[test]
    fn unbiased_scaling_preserves_expected_sum() {
        let grad = vec![1.0; 1000];
        let mut sums = 0.0;
        let trials = 50;
        for seed in 0..trials {
            let mut c = RandomK::new(0.1, seed, true);
            let dense = decompress_dense(&c.compress(&grad));
            sums += dense.iter().sum::<f32>();
        }
        let mean_sum = sums / trials as f32;
        assert!((mean_sum - 1000.0).abs() < 1.0, "mean sum {mean_sum}");
    }

    #[test]
    fn different_seeds_pick_different_coordinates() {
        let grad = vec![1.0; 100];
        let a = RandomK::new(0.1, 1, false).compress(&grad);
        let b = RandomK::new(0.1, 2, false).compress(&grad);
        assert_ne!(a, b);
    }
}

//! Error-feedback (residual accumulation) wrapper.
//!
//! Biased compressors (Top-k in particular) only converge reliably when the discarded
//! residual is added back into the next step's gradient. The wrapper keeps the residual
//! memory and exposes the same [`Compressor`] interface.

use crate::{decompress_dense, Compressed, Compressor};

/// Wrap any compressor with residual error feedback.
pub struct ErrorFeedback<C: Compressor> {
    inner: C,
    residual: Vec<f32>,
}

impl<C: Compressor> ErrorFeedback<C> {
    /// Wrap `inner` with an initially empty residual.
    pub fn new(inner: C) -> Self {
        ErrorFeedback {
            inner,
            residual: Vec::new(),
        }
    }

    /// Current residual memory (empty before the first compression).
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }
}

impl<C: Compressor> Compressor for ErrorFeedback<C> {
    fn compress(&mut self, grad: &[f32]) -> Compressed {
        if self.residual.len() != grad.len() {
            self.residual = vec![0.0; grad.len()];
        }
        // Compensated gradient = gradient + carried residual.
        let compensated: Vec<f32> = grad
            .iter()
            .zip(self.residual.iter())
            .map(|(g, r)| g + r)
            .collect();
        let payload = self.inner.compress(&compensated);
        let transmitted = decompress_dense(&payload);
        for ((r, &c), &t) in self
            .residual
            .iter_mut()
            .zip(compensated.iter())
            .zip(transmitted.iter())
        {
            *r = c - t;
        }
        payload
    }

    fn name(&self) -> &'static str {
        "error_feedback"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::TopK;

    #[test]
    fn residual_carries_dropped_mass() {
        let mut ef = ErrorFeedback::new(TopK::new(0.25));
        let grad = vec![10.0, 1.0, 1.0, 1.0];
        let p = ef.compress(&grad);
        let sent = decompress_dense(&p);
        // Only the big coordinate is sent; the dropped ones live in the residual.
        assert_eq!(sent[0], 10.0);
        assert_eq!(ef.residual()[0], 0.0);
        assert_eq!(&ef.residual()[1..], &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn every_coordinate_is_eventually_transmitted() {
        // With error feedback, a persistently small coordinate accumulates until it wins
        // the top-k selection; the total transmitted mass approaches the total gradient mass.
        let mut ef = ErrorFeedback::new(TopK::new(0.25));
        let grad = vec![4.0, 1.0, 1.0, 1.0];
        let mut transmitted_sum = vec![0.0f32; 4];
        for _ in 0..12 {
            let p = ef.compress(&grad);
            for (t, d) in transmitted_sum.iter_mut().zip(decompress_dense(&p)) {
                *t += d;
            }
        }
        // After 12 rounds each small coordinate (contributing 12 total) must have been
        // sent at least a few times.
        for &t in &transmitted_sum[1..] {
            assert!(t > 5.0, "transmitted {transmitted_sum:?}");
        }
    }

    #[test]
    fn compensated_sum_is_conserved() {
        // grad + old_residual == transmitted + new_residual  (exact bookkeeping identity)
        let mut ef = ErrorFeedback::new(TopK::new(0.5));
        let g1 = vec![3.0, -2.0, 0.5, 0.1];
        let p1 = ef.compress(&g1);
        let sent1 = decompress_dense(&p1);
        let lhs: Vec<f32> = g1.clone();
        for i in 0..4 {
            assert!((lhs[i] - (sent1[i] + ef.residual()[i])).abs() < 1e-6);
        }
    }
}

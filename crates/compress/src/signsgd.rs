//! signSGD quantization (Bernstein et al.): transmit only the sign of each coordinate
//! plus a single scale (the mean absolute value), achieving ~32x compression.

use crate::{Compressed, Compressor};

/// Sign quantizer with mean-magnitude scaling.
#[derive(Debug, Clone, Default)]
pub struct SignSgd;

impl SignSgd {
    /// Create a signSGD compressor.
    pub fn new() -> Self {
        SignSgd
    }
}

impl Compressor for SignSgd {
    fn compress(&mut self, grad: &[f32]) -> Compressed {
        let dim = grad.len();
        let scale = if dim == 0 {
            0.0
        } else {
            grad.iter().map(|g| g.abs()).sum::<f32>() / dim as f32
        };
        let signs = grad.iter().map(|&g| g >= 0.0).collect();
        Compressed::Signs { dim, signs, scale }
    }

    fn name(&self) -> &'static str {
        "signsgd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compression_ratio, decompress_dense};

    #[test]
    fn signs_and_scale_are_correct() {
        let mut c = SignSgd::new();
        let grad = vec![2.0, -4.0, 6.0, -8.0];
        let p = c.compress(&grad);
        let dense = decompress_dense(&p);
        // Scale = mean |g| = 5.
        assert_eq!(dense, vec![5.0, -5.0, 5.0, -5.0]);
    }

    #[test]
    fn achieves_roughly_32x_compression() {
        let mut c = SignSgd::new();
        let grad = vec![0.5; 4096];
        let p = c.compress(&grad);
        let ratio = compression_ratio(&p);
        assert!(ratio > 25.0 && ratio < 33.0, "ratio {ratio}");
    }

    #[test]
    fn preserves_descent_direction() {
        // The reconstructed vector must have positive inner product with the original.
        let mut c = SignSgd::new();
        let grad: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.7).sin()).collect();
        let dense = decompress_dense(&c.compress(&grad));
        let dot: f32 = grad.iter().zip(dense.iter()).map(|(a, b)| a * b).sum();
        assert!(dot > 0.0);
    }

    #[test]
    fn empty_gradient_is_handled() {
        let mut c = SignSgd::new();
        let p = c.compress(&[]);
        assert_eq!(decompress_dense(&p), Vec::<f32>::new());
    }
}

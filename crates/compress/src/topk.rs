//! Top-k sparsification (DGC / Top-k of §II-D).
//!
//! Transmits only the `k` largest-magnitude coordinates of the gradient together with
//! their indices.

use crate::{Compressed, Compressor};

/// Keep the `fraction` largest-magnitude coordinates (at least one).
#[derive(Debug, Clone)]
pub struct TopK {
    /// Fraction of coordinates to keep, in `(0, 1]`.
    pub fraction: f32,
    /// Reused per-step selection workspace (the wire payload gets an exact-size copy, so
    /// the `O(dim)` index buffer is allocated once, not once per gradient).
    workspace: Vec<u32>,
}

impl TopK {
    /// Create a Top-k compressor keeping `fraction` of the coordinates.
    pub fn new(fraction: f32) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        TopK {
            fraction,
            workspace: Vec::new(),
        }
    }

    fn k_for(&self, dim: usize) -> usize {
        ((dim as f32 * self.fraction).ceil() as usize).clamp(1, dim)
    }
}

impl Compressor for TopK {
    fn compress(&mut self, grad: &[f32]) -> Compressed {
        let dim = grad.len();
        let k = self.k_for(dim);
        // Select the k largest |g| coordinates via partial selection over the reused
        // index workspace (`select_nth_unstable_by` is O(dim), not an O(dim log dim)
        // full sort); only the selected prefix is then sorted for deterministic output.
        self.workspace.clear();
        self.workspace.extend(0..dim as u32);
        let idx = &mut self.workspace;
        if k < dim {
            idx.select_nth_unstable_by(k.saturating_sub(1), |&a, &b| {
                grad[b as usize]
                    .abs()
                    .partial_cmp(&grad[a as usize].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        let selected = &mut idx[..k];
        selected.sort_unstable();
        let values = selected.iter().map(|&i| grad[i as usize]).collect();
        Compressed::Sparse {
            dim,
            indices: selected.to_vec(),
            values,
        }
    }

    fn name(&self) -> &'static str {
        "topk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompress_dense;

    #[test]
    fn selects_largest_magnitudes() {
        let mut c = TopK::new(0.5);
        let grad = vec![0.1, -5.0, 0.2, 3.0, -0.05, 0.0];
        let p = c.compress(&grad);
        if let Compressed::Sparse {
            indices, values, ..
        } = &p
        {
            assert_eq!(indices.len(), 3);
            assert!(indices.contains(&1) && indices.contains(&3));
            assert_eq!(values.len(), 3);
        } else {
            panic!("expected sparse payload");
        }
        let dense = decompress_dense(&p);
        assert_eq!(dense[1], -5.0);
        assert_eq!(dense[3], 3.0);
        assert_eq!(dense[4], 0.0);
    }

    #[test]
    fn full_fraction_is_lossless() {
        let mut c = TopK::new(1.0);
        let grad = vec![1.0, -2.0, 3.0];
        let p = c.compress(&grad);
        assert_eq!(decompress_dense(&p), grad);
    }

    #[test]
    fn at_least_one_coordinate_is_kept() {
        let mut c = TopK::new(0.001);
        let grad = vec![0.0, 0.0, 7.0, 0.0];
        let p = c.compress(&grad);
        let dense = decompress_dense(&p);
        assert_eq!(dense[2], 7.0);
    }

    #[test]
    fn wire_size_shrinks_with_fraction() {
        let grad: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let a = TopK::new(0.01).compress(&grad).wire_bytes();
        let b = TopK::new(0.5).compress(&grad).wire_bytes();
        assert!(a < b);
    }

    #[test]
    #[should_panic]
    fn zero_fraction_rejected() {
        let _ = TopK::new(0.0);
    }
}

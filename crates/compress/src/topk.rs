//! Top-k sparsification (DGC / Top-k of §II-D).
//!
//! Transmits only the `k` largest-magnitude coordinates of the gradient together with
//! their indices.

use crate::{Compressed, Compressor};

/// Keep the `fraction` largest-magnitude coordinates (at least one).
#[derive(Debug, Clone)]
pub struct TopK {
    /// Fraction of coordinates to keep, in `(0, 1]`.
    pub fraction: f32,
}

impl TopK {
    /// Create a Top-k compressor keeping `fraction` of the coordinates.
    pub fn new(fraction: f32) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        TopK { fraction }
    }

    fn k_for(&self, dim: usize) -> usize {
        ((dim as f32 * self.fraction).ceil() as usize).clamp(1, dim)
    }
}

impl Compressor for TopK {
    fn compress(&mut self, grad: &[f32]) -> Compressed {
        let dim = grad.len();
        let k = self.k_for(dim);
        // Select the k largest |g| coordinates via a partial sort of indices.
        let mut idx: Vec<u32> = (0..dim as u32).collect();
        idx.select_nth_unstable_by(k.saturating_sub(1), |&a, &b| {
            grad[b as usize]
                .abs()
                .partial_cmp(&grad[a as usize].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx.sort_unstable();
        let values = idx.iter().map(|&i| grad[i as usize]).collect();
        Compressed::Sparse {
            dim,
            indices: idx,
            values,
        }
    }

    fn name(&self) -> &'static str {
        "topk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompress_dense;

    #[test]
    fn selects_largest_magnitudes() {
        let mut c = TopK::new(0.5);
        let grad = vec![0.1, -5.0, 0.2, 3.0, -0.05, 0.0];
        let p = c.compress(&grad);
        if let Compressed::Sparse {
            indices, values, ..
        } = &p
        {
            assert_eq!(indices.len(), 3);
            assert!(indices.contains(&1) && indices.contains(&3));
            assert_eq!(values.len(), 3);
        } else {
            panic!("expected sparse payload");
        }
        let dense = decompress_dense(&p);
        assert_eq!(dense[1], -5.0);
        assert_eq!(dense[3], 3.0);
        assert_eq!(dense[4], 0.0);
    }

    #[test]
    fn full_fraction_is_lossless() {
        let mut c = TopK::new(1.0);
        let grad = vec![1.0, -2.0, 3.0];
        let p = c.compress(&grad);
        assert_eq!(decompress_dense(&p), grad);
    }

    #[test]
    fn at_least_one_coordinate_is_kept() {
        let mut c = TopK::new(0.001);
        let grad = vec![0.0, 0.0, 7.0, 0.0];
        let p = c.compress(&grad);
        let dense = decompress_dense(&p);
        assert_eq!(dense[2], 7.0);
    }

    #[test]
    fn wire_size_shrinks_with_fraction() {
        let grad: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let a = TopK::new(0.01).compress(&grad).wire_bytes();
        let b = TopK::new(0.5).compress(&grad).wire_bytes();
        assert!(a < b);
    }

    #[test]
    #[should_panic]
    fn zero_fraction_rejected() {
        let _ = TopK::new(0.0);
    }
}

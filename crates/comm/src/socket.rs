//! Length-prefixed socket transport between OS processes (UDS default, TCP via
//! address config) — the multi-process backend's wire.
//!
//! The process model is a star: one **hub** process owns the parameter server,
//! the collective and the shared policy board; every **worker** process holds
//! exactly one stream connection to it. Two kinds of traffic ride the same
//! connection, both as ordinary [`Envelope`] frames reassembled by the
//! incremental [`FrameDecoder`] (a read may return half a frame or three):
//!
//! * **Transport echo** — [`SocketTransport`] implements [`Transport`] by
//!   writing the frame and reading the hub's verbatim echo. The hub treats
//!   every non-[`MsgKind::Rpc`] frame statelessly: what arrives is written
//!   back byte for byte. That puts a real socket round-trip under the existing
//!   [`crate::MessageLayer`] without changing its semantics — dedupe, retry
//!   and acknowledgement logic stay where they are, and the
//!   [`crate::FaultyTransport`] decorator composes over this transport
//!   unchanged (dropped legs never touch the wire, corrupted legs flip a byte
//!   of what the socket actually delivered).
//! * **RPC** — [`HubClient`] sends an [`MsgKind::Rpc`] envelope and blocks for
//!   the reply. The hub dispatches the payload to its [`RpcService`] (pull,
//!   sync-round rendezvous, all-reduces, policy-board calls). Blocking
//!   rendezvous ops work naturally: each connection is served by its own hub
//!   thread, so one worker waiting inside a collective does not stall the
//!   others.
//!
//! Workers are single-threaded and strictly lockstep per connection (write one
//! frame, read one frame), so no request/response correlation ids are needed.

use crate::transport::{Delivery, Link, Transport};
use crate::wire::{Envelope, FrameDecoder, MsgKind, WireError, HUB_SENDER};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where the hub listens: a Unix domain socket path (the default for local
/// multi-process clusters) or a TCP `host:port` address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketAddrSpec {
    /// Unix domain socket at this path.
    Unix(PathBuf),
    /// TCP socket at this `host:port`.
    Tcp(String),
}

impl SocketAddrSpec {
    /// Parse a CLI-style address: anything containing `:` is TCP, everything
    /// else is a UDS path.
    pub fn parse(text: &str) -> Self {
        if text.contains(':') {
            SocketAddrSpec::Tcp(text.to_string())
        } else {
            SocketAddrSpec::Unix(PathBuf::from(text))
        }
    }
}

impl std::fmt::Display for SocketAddrSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketAddrSpec::Unix(path) => write!(f, "{}", path.display()),
            SocketAddrSpec::Tcp(addr) => write!(f, "{addr}"),
        }
    }
}

/// The hub-side service RPC payloads dispatch to. Implemented by the driver
/// crate (the hub process wraps its parameter server, collective and policy
/// board); the transport layer only moves the bytes.
pub trait RpcService: Send + Sync {
    /// Handle one request from `worker` at logical `round`; the returned bytes
    /// travel back as the reply payload. May block (rendezvous ops do).
    fn handle(&self, worker: u32, round: u64, request: &[u8]) -> Vec<u8>;

    /// The connection identified as `worker` terminated — cleanly (EOF at a
    /// frame boundary) or abruptly (broken pipe, EOF mid-frame). Called exactly
    /// once per identified connection, after its last frame was served; the
    /// default does nothing. Services that model worker death as an eviction
    /// hook in here.
    fn connection_closed(&self, worker: u32) {
        let _ = worker;
    }
}

fn wire_to_io(e: WireError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// One side of a stream connection plus its reassembly buffer.
struct Conn {
    stream: Box<dyn Stream>,
    decoder: FrameDecoder,
}

/// Object-safe Read + Write.
trait Stream: Read + Write + Send {}
impl<T: Read + Write + Send> Stream for T {}

impl Conn {
    fn write_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(frame)?;
        self.stream.flush()
    }

    /// Block until one complete frame is reassembled. `Ok(None)` on clean EOF
    /// at a frame boundary; EOF mid-frame is an error.
    fn read_frame(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            if let Some(frame) = self.decoder.next_frame().map_err(wire_to_io)? {
                return Ok(Some(frame));
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return if self.decoder.pending() == 0 {
                    Ok(None)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        format!("stream ended {} bytes into a frame", self.decoder.pending()),
                    ))
                };
            }
            self.decoder.push(&buf[..n]);
        }
    }
}

/// A worker's connection to the hub. Cheap to clone handles off
/// ([`SocketConn::transport`], [`SocketConn::client`]); all share the one
/// underlying stream in strict lockstep.
pub struct SocketConn {
    conn: Arc<Mutex<Conn>>,
}

impl SocketConn {
    /// Connect to the hub, retrying until `retry_for` elapses — worker
    /// processes race the hub's bind, so the first connects may refuse.
    /// Retries back off exponentially (2 ms doubling to a 50 ms cap), with
    /// every sleep clamped to the remaining budget so the deadline is never
    /// overshot; on expiry the last OS error is wrapped into the returned
    /// failure instead of being discarded.
    pub fn connect(addr: &SocketAddrSpec, retry_for: Duration) -> std::io::Result<Self> {
        const BACKOFF_CAP: Duration = Duration::from_millis(50);
        let deadline = Instant::now() + retry_for;
        let mut backoff = Duration::from_millis(2);
        loop {
            let attempt: std::io::Result<Box<dyn Stream>> = match addr {
                SocketAddrSpec::Unix(path) => {
                    UnixStream::connect(path).map(|s| Box::new(s) as Box<dyn Stream>)
                }
                SocketAddrSpec::Tcp(addr) => {
                    TcpStream::connect(addr).map(|s| Box::new(s) as Box<dyn Stream>)
                }
            };
            match attempt {
                Ok(stream) => {
                    return Ok(SocketConn {
                        conn: Arc::new(Mutex::new(Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                        })),
                    })
                }
                Err(e) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(std::io::Error::new(
                            e.kind(),
                            format!(
                                "connect to {addr} failed after retrying for {retry_for:?}: {e}"
                            ),
                        ));
                    }
                    std::thread::sleep(backoff.min(deadline - now));
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                }
            }
        }
    }

    /// A [`Transport`] that moves every frame through this connection.
    pub fn transport(&self) -> SocketTransport {
        SocketTransport {
            conn: Arc::clone(&self.conn),
        }
    }

    /// An RPC handle for hub-side service calls from worker `worker`.
    pub fn client(&self, worker: u32) -> HubClient {
        HubClient {
            conn: Arc::clone(&self.conn),
            worker,
        }
    }
}

/// [`Transport`] over a hub connection: write the frame, read the hub's
/// verbatim echo. Always exactly one punctual delivery — weather is layered on
/// by composing [`crate::FaultyTransport`] *over* this transport, so fault
/// fates stay pure functions of the link key and never depend on socket
/// timing.
pub struct SocketTransport {
    conn: Arc<Mutex<Conn>>,
}

impl Transport for SocketTransport {
    fn deliver(&self, link: Link, frame: &[u8]) -> Vec<Delivery> {
        let mut conn = self.conn.lock();
        conn.write_frame(frame)
            .unwrap_or_else(|e| panic!("socket transport write failed on {link:?}: {e}"));
        let echoed = conn
            .read_frame()
            .unwrap_or_else(|e| panic!("socket transport read failed on {link:?}: {e}"))
            .unwrap_or_else(|| panic!("hub closed the connection mid-exchange on {link:?}"));
        vec![Delivery {
            frame: echoed,
            delayed: false,
        }]
    }
}

/// Blocking RPC handle: one request envelope out, one reply envelope in.
pub struct HubClient {
    conn: Arc<Mutex<Conn>>,
    worker: u32,
}

impl HubClient {
    /// Call the hub service and return its reply payload.
    pub fn rpc(&self, round: u64, payload: Vec<u8>) -> Vec<u8> {
        let request = Envelope {
            kind: MsgKind::Rpc,
            round,
            sender: self.worker,
            payload,
        };
        let mut conn = self.conn.lock();
        conn.write_frame(&request.encode())
            .unwrap_or_else(|e| panic!("rpc write failed (worker {}): {e}", self.worker));
        let frame = conn
            .read_frame()
            .unwrap_or_else(|e| panic!("rpc read failed (worker {}): {e}", self.worker))
            .unwrap_or_else(|| {
                panic!("hub closed the connection mid-rpc (worker {})", self.worker)
            });
        let reply = Envelope::decode(&frame)
            .unwrap_or_else(|e| panic!("rpc reply failed to decode (worker {}): {e}", self.worker));
        assert_eq!(reply.kind, MsgKind::Rpc, "rpc reply kind");
        assert_eq!(reply.round, round, "rpc reply round");
        assert_eq!(reply.sender, HUB_SENDER, "rpc reply sender");
        reply.payload
    }
}

/// The hub process's listener: accepts exactly one connection per worker and
/// serves each on its own thread until the worker hangs up.
pub struct HubServer {
    listener: Listener,
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl HubServer {
    /// Bind the listen socket (removing a stale UDS path first).
    pub fn bind(addr: &SocketAddrSpec) -> std::io::Result<Self> {
        let listener = match addr {
            SocketAddrSpec::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Listener::Unix(UnixListener::bind(path)?)
            }
            SocketAddrSpec::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
        };
        Ok(HubServer { listener })
    }

    /// Accept `workers` connections and serve them until every stream reaches
    /// EOF. Non-RPC frames are echoed verbatim; RPC frames are dispatched to
    /// `service` and answered with the reply payload. Returns the first
    /// connection error, after all threads have finished.
    pub fn serve(&self, workers: usize, service: Arc<dyn RpcService>) -> std::io::Result<()> {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let stream: Box<dyn Stream> = match &self.listener {
                    Listener::Unix(l) => Box::new(l.accept()?.0),
                    Listener::Tcp(l) => Box::new(l.accept()?.0),
                };
                let service = Arc::clone(&service);
                handles.push(scope.spawn(move || serve_connection(stream, service)));
            }
            let mut result = Ok(());
            for handle in handles {
                let outcome = handle.join().expect("hub connection thread panicked");
                if result.is_ok() {
                    result = outcome;
                }
            }
            result
        })
    }
}

/// Byte offset of the sender id inside an encoded frame (the u32 length, the
/// kind byte and the u64 round precede it — see [`crate::wire`]).
const FRAME_SENDER_AT: usize = 4 + 1 + 8;

/// The sender id a frame carries on the wire, if the frame is long enough to
/// hold one. Reliable even under `[comm_faults]` weather: corruption is applied
/// worker-side to what the hub echoed, so the bytes the hub *reads* are always
/// the ones the worker wrote.
fn frame_sender(frame: &[u8]) -> Option<u32> {
    frame
        .get(FRAME_SENDER_AT..FRAME_SENDER_AT + 4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
}

fn serve_connection(stream: Box<dyn Stream>, service: Arc<dyn RpcService>) -> std::io::Result<()> {
    let mut conn = Conn {
        stream,
        decoder: FrameDecoder::new(),
    };
    // The worker behind this connection, learned from the first frame's sender
    // field. Before identification an I/O failure is a hub-fatal error; after
    // it, any termination — clean EOF, mid-frame EOF, broken pipe — is a worker
    // death, reported to the service (which models it as a deterministic
    // eviction) instead of tearing the whole cluster down.
    let mut worker: Option<u32> = None;
    let closed = |w: u32| {
        service.connection_closed(w);
        Ok(())
    };
    loop {
        let frame = match conn.read_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(e) => {
                return match worker {
                    Some(w) => closed(w),
                    None => Err(e),
                }
            }
        };
        if worker.is_none() {
            worker = frame_sender(&frame);
        }
        // Only RPC frames are interpreted; everything else — including frames a
        // worker-side fault decorator corrupted — is echoed back untouched. The
        // worker's message layer does the checksum validation, exactly as it
        // does over the in-memory transports.
        let is_rpc = frame.len() > 4 && frame[4] == MsgKind::Rpc.as_u8();
        let reply = if is_rpc {
            let request = Envelope::decode(&frame).map_err(wire_to_io)?;
            Envelope {
                kind: MsgKind::Rpc,
                round: request.round,
                sender: HUB_SENDER,
                payload: service.handle(request.sender, request.round, &request.payload),
            }
            .encode()
        } else {
            frame
        };
        if let Err(e) = conn.write_frame(&reply) {
            return match worker {
                Some(w) => closed(w),
                None => Err(e),
            };
        }
    }
    match worker {
        Some(w) => closed(w),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{CommFaultSchedule, CommFaultSpec, Leg};
    use crate::transport::MessageLayer;

    /// A service that answers with the request payload reversed.
    struct Reverser;
    impl RpcService for Reverser {
        fn handle(&self, _worker: u32, _round: u64, request: &[u8]) -> Vec<u8> {
            request.iter().rev().copied().collect()
        }
    }

    fn temp_sock(tag: &str) -> SocketAddrSpec {
        SocketAddrSpec::Unix(
            std::env::temp_dir().join(format!("selsync-socket-test-{tag}-{}", std::process::id())),
        )
    }

    fn with_hub<R>(tag: &str, workers: usize, f: impl FnOnce(&SocketAddrSpec) -> R) -> R {
        let addr = temp_sock(tag);
        let server = HubServer::bind(&addr).expect("bind");
        let serving = std::thread::spawn(move || server.serve(workers, Arc::new(Reverser)));
        let out = f(&addr);
        serving.join().unwrap().expect("hub serves cleanly");
        if let SocketAddrSpec::Unix(path) = &addr {
            let _ = std::fs::remove_file(path);
        }
        out
    }

    #[test]
    fn address_spec_parses_uds_paths_and_tcp_addresses() {
        assert_eq!(
            SocketAddrSpec::parse("/tmp/hub.sock"),
            SocketAddrSpec::Unix(PathBuf::from("/tmp/hub.sock"))
        );
        assert_eq!(
            SocketAddrSpec::parse("127.0.0.1:9044"),
            SocketAddrSpec::Tcp("127.0.0.1:9044".into())
        );
    }

    #[test]
    fn socket_transport_echoes_frames_and_rpc_dispatches() {
        with_hub("echo", 1, |addr| {
            let conn = SocketConn::connect(addr, Duration::from_secs(5)).expect("connect");
            let transport = conn.transport();
            let frame = Envelope {
                kind: MsgKind::Flags,
                round: 3,
                sender: 0,
                payload: vec![1],
            }
            .encode();
            let link = Link {
                worker: 0,
                round: 3,
                attempt: 0,
                leg: Leg::Request,
            };
            let got = transport.deliver(link, &frame);
            assert_eq!(
                got,
                vec![Delivery {
                    frame,
                    delayed: false
                }]
            );
            let client = conn.client(0);
            assert_eq!(client.rpc(4, vec![1, 2, 3]), vec![3, 2, 1]);
        });
    }

    #[test]
    fn message_layer_over_the_socket_matches_lossless_outcomes() {
        with_hub("layer", 1, |addr| {
            let conn = SocketConn::connect(addr, Duration::from_secs(5)).expect("connect");
            let layer = MessageLayer::over(Box::new(conn.transport()), 1);
            for round in 0..8u64 {
                let out = layer
                    .exchange(0, round, MsgKind::Flags, &[1])
                    .expect("socket exchange succeeds");
                assert_eq!(out.attempts, 1);
                assert_eq!(out.duplicates_absorbed, 0);
                assert_eq!(out.corrupt_rejected, 0);
            }
        });
    }

    #[test]
    fn faulty_decorator_composes_over_the_socket_with_scheduled_outcomes() {
        // The same weather over the socket must produce the same exchange
        // outcomes as over memory: fates are keyed by the link, not the wire.
        let spec = CommFaultSpec {
            seed: 17,
            drop: 0.25,
            duplicate: 0.15,
            corrupt: 0.15,
            delay: 0.1,
            delay_rounds: 0,
            retry_budget: 4,
            timeout_s: 1e-3,
        };
        let schedule = CommFaultSchedule::new(spec);
        let memory = MessageLayer::faulty(schedule);
        let mut expected = Vec::new();
        for round in 0..24u64 {
            expected.push(memory.exchange(0, round, MsgKind::Flags, &[1]));
        }
        with_hub("faulty", 1, |addr| {
            let conn = SocketConn::connect(addr, Duration::from_secs(5)).expect("connect");
            let layer = MessageLayer::faulty_over(schedule, Box::new(conn.transport()));
            for round in 0..24u64 {
                let got = layer.exchange(0, round, MsgKind::Flags, &[1]);
                assert_eq!(got, expected[round as usize], "round {round}");
            }
        });
        // A corrupt-fated request leg still consists of real socket round
        // trips: the decorator flips a byte of what the hub echoed.
        assert!(
            expected.iter().any(|r| match r {
                Ok(out) => out.corrupt_rejected > 0,
                Err(_) => true,
            }),
            "the drawn weather must exercise the reject path somewhere"
        );
    }

    #[test]
    fn connect_failure_reports_the_os_cause_and_respects_the_deadline() {
        let addr = temp_sock("nobody-listening");
        let retry_for = Duration::from_millis(60);
        let started = Instant::now();
        let err = match SocketConn::connect(&addr, retry_for) {
            Ok(_) => panic!("no hub is bound there, connect must fail"),
            Err(e) => e,
        };
        let elapsed = started.elapsed();
        // Clamped sleeps: the deadline may be exceeded only by the cost of the
        // final connect attempt, not by a whole backoff sleep.
        assert!(
            elapsed < retry_for + Duration::from_millis(200),
            "connect retried past its deadline: {elapsed:?}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains("failed after retrying for"),
            "missing retry context: {msg}"
        );
        assert!(
            msg.contains(&addr.to_string()),
            "missing target address: {msg}"
        );
        // The final OS error must ride along instead of being discarded.
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        assert!(
            msg.to_lowercase().contains("no such file"),
            "missing the OS cause: {msg}"
        );
    }

    #[test]
    fn worker_hangup_after_identification_fires_connection_closed_once() {
        struct Recorder {
            closed: Mutex<Vec<u32>>,
        }
        impl RpcService for Recorder {
            fn handle(&self, _worker: u32, _round: u64, request: &[u8]) -> Vec<u8> {
                request.to_vec()
            }
            fn connection_closed(&self, worker: u32) {
                self.closed.lock().push(worker);
            }
        }
        let addr = temp_sock("hangup");
        let server = HubServer::bind(&addr).expect("bind");
        let service = Arc::new(Recorder {
            closed: Mutex::new(Vec::new()),
        });
        let svc: Arc<dyn RpcService> = Arc::clone(&service) as _;
        let serving = std::thread::spawn(move || server.serve(3, svc));
        // Two workers identify themselves over one RPC each, then hang up at a
        // frame boundary (the clean-EOF death shape).
        for worker in [7u32, 9] {
            let conn = SocketConn::connect(&addr, Duration::from_secs(5)).expect("connect");
            let client = conn.client(worker);
            assert_eq!(client.rpc(0, vec![worker as u8]), vec![worker as u8]);
        }
        // A third identifies itself, then dies mid-frame: the hub maps the
        // illegal EOF to the same callback instead of a fatal serve error.
        let SocketAddrSpec::Unix(path) = &addr else {
            unreachable!()
        };
        let mut raw = UnixStream::connect(path).expect("raw connect");
        let hello = Envelope {
            kind: MsgKind::Flags,
            round: 0,
            sender: 11,
            payload: vec![0xEE],
        }
        .encode();
        raw.write_all(&hello).expect("raw write");
        let mut echo = vec![0u8; hello.len()];
        raw.read_exact(&mut echo).expect("raw echo");
        assert_eq!(echo, hello);
        raw.write_all(&[1, 2, 3]).expect("partial frame");
        drop(raw);

        serving
            .join()
            .unwrap()
            .expect("hub survives worker hangups");
        let mut closed = service.closed.lock().clone();
        closed.sort_unstable();
        assert_eq!(closed, vec![7, 9, 11]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn multiple_workers_are_served_concurrently() {
        with_hub("multi", 3, |addr| {
            let mut joins = Vec::new();
            for worker in 0..3u32 {
                let addr = addr.clone();
                joins.push(std::thread::spawn(move || {
                    let conn = SocketConn::connect(&addr, Duration::from_secs(5)).expect("connect");
                    let client = conn.client(worker);
                    for round in 0..16u64 {
                        let payload = vec![worker as u8, round as u8];
                        assert_eq!(
                            client.rpc(round, payload.clone()),
                            vec![round as u8, worker as u8],
                        );
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        });
    }
}

//! In-memory parameter server.
//!
//! The server stores the flat global vector (parameters for PA, or a gradient buffer for
//! GA) and offers two interaction styles:
//!
//! * **Synchronous rounds** ([`ParameterServer::sync_round`]): every participating
//!   worker contributes a vector; once all have arrived the server averages them, stores
//!   the result as the new global state and hands the averaged vector back to every
//!   participant. This is the blocking push-then-pull of BSP, FedAvg and SelSync's
//!   synchronization phase (Alg. 1, lines 14–15).
//! * **Asynchronous push/pull** ([`ParameterServer::push_delta`] /
//!   [`ParameterServer::pull`]): non-blocking updates used by SSP, where workers apply
//!   scaled deltas to the global state whenever they finish a step.

use crate::rounds::ElasticRounds;
use parking_lot::{Condvar, Mutex, RwLock};

/// Default depth of the scheduled-snapshot ring enabled by
/// [`ParameterServer::enable_scheduled_snapshots`]. Synchronized rounds progress
/// roughly in lockstep (every present worker passes the same status all-gather), so a
/// handful of retained rounds is far more than any rejoiner can lag behind.
pub const DEFAULT_SNAPSHOT_DEPTH: usize = 8;

/// Round-keyed ring of the globals produced by completed elastic synchronization
/// rounds, plus the pre-training initial global as a permanent floor entry. This is
/// what makes a *deterministic* rejoin pull possible: a rejoiner at round `r` asks for
/// the global of the last **scheduled** synchronization before `r`
/// ([`ParameterServer::scheduled_global_before`]) instead of reading whatever the PS
/// holds at that wall-clock moment.
struct SnapshotRing {
    /// Retained sync rounds (0 = disabled, nothing is recorded).
    depth: usize,
    /// The global vector before any synchronization (the init broadcast).
    initial: Vec<f32>,
    /// `(round, post-sync mean)` entries, sorted by round ascending. Rounds can
    /// *complete* out of order under disjoint live-worker sets, so insertion keeps the
    /// ring sorted rather than assuming append order. Eviction always removes the
    /// smallest round, so the ring invariantly retains the `depth` *largest* recorded
    /// rounds — any lookup answered from a retained entry is therefore exact.
    entries: Vec<(u64, Vec<f32>)>,
    /// Smallest round id ever evicted — lets a lookup that would fall back to the
    /// initial global detect (and refuse to answer) a query whose true answer no
    /// longer exists instead of silently returning a too-old snapshot.
    evicted_min: Option<u64>,
}

/// Serializable snapshot of the scheduled-snapshot ring (part of [`PsState`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RingState {
    /// Retained depth the ring was enabled with.
    pub depth: usize,
    /// The permanent pre-training floor entry.
    pub initial: Vec<f32>,
    /// `(round, post-sync mean)` entries, sorted by round ascending.
    pub entries: Vec<(u64, Vec<f32>)>,
    /// Smallest round id ever evicted from the ring.
    pub evicted_min: Option<u64>,
}

/// Serializable snapshot of everything a [`ParameterServer`] must carry across a
/// checkpoint/restore cycle: the global vector, the newest-global guard and the
/// rejoin snapshot ring. In-flight elastic rounds are deliberately excluded —
/// checkpoints are only taken at quiescent points (every worker parked between
/// rounds), where none exist.
#[derive(Debug, Clone, PartialEq)]
pub struct PsState {
    /// The flat global vector.
    pub global: Vec<f32>,
    /// The newest round whose mean defined the global vector.
    pub last_global_round: Option<u64>,
    /// Snapshot-ring state (`None` when the ring is disabled).
    pub ring: Option<RingState>,
}

/// Shared-memory parameter server over a flat `f32` vector.
pub struct ParameterServer {
    global: RwLock<Vec<f32>>,
    round: Mutex<RoundState>,
    round_cv: Condvar,
    /// Round-keyed elastic aggregation rounds (membership may differ round to round
    /// when workers crash and rejoin) — the shared [`ElasticRounds`] skeleton with a
    /// sum-then-average combine.
    elastic: ElasticRounds<Vec<f32>, Vec<f32>>,
    /// The newest round whose mean has been written to the global vector. Rounds
    /// complete in *completion* order, which under disjoint live-worker sets can differ
    /// from round order — a worker that skipped rounds can finish round `k` while a
    /// slower worker is still closing round `k-1`; this guard keeps the older mean from
    /// overwriting the newer one.
    last_global_round: Mutex<Option<u64>>,
    /// Scheduled-snapshot ring for deterministic rejoin pulls (disabled by default).
    snapshots: Mutex<SnapshotRing>,
}

struct RoundState {
    accum: Vec<f32>,
    contributions: usize,
    expected: usize,
    generation: u64,
    /// Result of the generation that just completed (kept until the next round starts).
    finished: Option<(u64, Vec<f32>)>,
}

impl ParameterServer {
    /// Create a server holding `initial` as the global vector.
    pub fn new(initial: Vec<f32>) -> Self {
        let dim = initial.len();
        ParameterServer {
            global: RwLock::new(initial),
            round: Mutex::new(RoundState {
                accum: vec![0.0; dim],
                contributions: 0,
                expected: 0,
                generation: 0,
                finished: None,
            }),
            round_cv: Condvar::new(),
            elastic: ElasticRounds::new(),
            last_global_round: Mutex::new(None),
            snapshots: Mutex::new(SnapshotRing {
                depth: 0,
                initial: Vec::new(),
                entries: Vec::new(),
                evicted_min: None,
            }),
        }
    }

    /// Enable the round-keyed scheduled-snapshot ring: from now on every completed
    /// [`Self::sync_round_elastic`] records its round's mean, keeping the newest
    /// `depth` rounds, and [`Self::scheduled_global_before`] answers deterministic
    /// rejoin pulls. The current global vector is captured as the permanent
    /// before-any-synchronization floor, so call this before training starts.
    pub fn enable_scheduled_snapshots(&self, depth: usize) {
        assert!(depth > 0, "snapshot ring depth must be positive");
        let mut ring = self.snapshots.lock();
        ring.depth = depth;
        ring.initial = self.global.read().clone();
        ring.entries.clear();
        ring.evicted_min = None;
    }

    /// The global produced by the newest **scheduled** synchronization round with id
    /// `< round` — what a deterministic rejoiner at `round` pulls, independent of
    /// wall-clock interleaving. Falls back to the initial global when no earlier round
    /// synchronized. Panics if the ring is disabled, or if the answer was evicted
    /// (ring too shallow for how far this rejoiner lagged).
    pub fn scheduled_global_before(&self, round: u64) -> Vec<f32> {
        let ring = self.snapshots.lock();
        assert!(
            ring.depth > 0,
            "scheduled snapshots are not enabled on this parameter server"
        );
        match ring.entries.iter().rev().find(|&&(r, _)| r < round) {
            // Eviction removes the smallest retained round, so the ring holds the
            // `depth` largest recorded rounds — every evicted round is older than
            // every retained one, and a retained match is therefore exact.
            Some((_, data)) => data.clone(),
            None => {
                // No retained sync before `round`: the initial global is the answer
                // only if no *evicted* round was before it either.
                assert!(
                    ring.evicted_min.is_none_or(|e| e >= round),
                    "snapshot ring too shallow: the scheduled global before round \
                     {round} was evicted"
                );
                ring.initial.clone()
            }
        }
    }

    /// The round id of the newest **scheduled** synchronization round with id
    /// `< round` — the round whose global [`Self::scheduled_global_before`] would
    /// answer with — or `None` when the answer is the pre-training initial global.
    /// Same preconditions as the value lookup: panics if the ring is disabled or the
    /// answer was evicted. The trace layer records this id on deterministic rejoin
    /// pulls so both backends log the same `from` round.
    pub fn scheduled_round_before(&self, round: u64) -> Option<u64> {
        let ring = self.snapshots.lock();
        assert!(
            ring.depth > 0,
            "scheduled snapshots are not enabled on this parameter server"
        );
        match ring.entries.iter().rev().find(|&&(r, _)| r < round) {
            Some(&(r, _)) => Some(r),
            None => {
                assert!(
                    ring.evicted_min.is_none_or(|e| e >= round),
                    "snapshot ring too shallow: the scheduled global before round \
                     {round} was evicted"
                );
                None
            }
        }
    }

    /// Dimensionality of the stored vector.
    pub fn dim(&self) -> usize {
        self.global.read().len()
    }

    /// Snapshot of the global vector (the `pullFromPS` of Alg. 1).
    pub fn pull(&self) -> Vec<f32> {
        self.global.read().clone()
    }

    /// Overwrite the global vector (used to initialise training or by tests).
    pub fn store(&self, value: Vec<f32>) {
        let mut g = self.global.write();
        assert_eq!(g.len(), value.len(), "parameter server dimension mismatch");
        *g = value;
    }

    /// Apply a scaled delta to the global vector without any coordination (SSP-style
    /// asynchronous update): `global += scale * delta`.
    pub fn push_delta(&self, delta: &[f32], scale: f32) {
        let mut g = self.global.write();
        assert_eq!(g.len(), delta.len(), "parameter server dimension mismatch");
        for (gi, &di) in g.iter_mut().zip(delta.iter()) {
            *gi += scale * di;
        }
    }

    /// Participate in a blocking synchronous aggregation round over `participants`
    /// workers. Blocks until all participants of the current round have contributed,
    /// then returns the element-wise average. The average also becomes the new global
    /// vector.
    ///
    /// All participants of one round must pass the same `participants` count.
    pub fn sync_round(&self, contribution: &[f32], participants: usize) -> Vec<f32> {
        assert!(
            participants > 0,
            "a synchronization round needs at least one participant"
        );
        let mut state = self.round.lock();
        assert_eq!(
            contribution.len(),
            state.accum.len(),
            "contribution dimension mismatch"
        );

        // If a previous round just finished and its result has been fully consumed,
        // `finished` may still hold it; a new round starts when contributions == 0.
        if state.contributions == 0 {
            state.expected = participants;
            for a in state.accum.iter_mut() {
                *a = 0.0;
            }
        } else {
            assert_eq!(
                state.expected, participants,
                "mismatched participant counts in one round"
            );
        }

        for (a, &c) in state.accum.iter_mut().zip(contribution.iter()) {
            *a += c;
        }
        state.contributions += 1;
        let my_generation = state.generation;

        if state.contributions == state.expected {
            // Last contributor closes the round: average, publish, wake everyone.
            let n = state.expected as f32;
            let mean: Vec<f32> = state.accum.iter().map(|&x| x / n).collect();
            {
                let mut g = self.global.write();
                g.copy_from_slice(&mean);
            }
            state.finished = Some((my_generation, mean.clone()));
            state.generation += 1;
            state.contributions = 0;
            self.round_cv.notify_all();
            return mean;
        }

        // Wait until our generation finishes.
        loop {
            self.round_cv.wait(&mut state);
            if let Some((gen, result)) = &state.finished {
                if *gen == my_generation {
                    return result.clone();
                }
            }
        }
    }

    /// Participate in a blocking aggregation round with **elastic membership**: only the
    /// workers alive at this training iteration contribute, and the round is keyed by
    /// the explicit `round` id rather than an implicit generation counter, so crashed
    /// workers that skip rounds can neither close nor corrupt rounds they were not part
    /// of. Averages over the present workers only; the average becomes the new global
    /// vector. All participants of one round must pass the same `participants` count,
    /// and a worker contributes at most once per round.
    ///
    /// The mean is accumulated in **worker-id order** (one in-order sum per element,
    /// then one divide), never arrival order — bit-identical to
    /// `selsync::aggregation::average_present_into` over the same replicas, which is
    /// what lets the threaded driver reproduce the simulator's parameter stream.
    pub fn sync_round_elastic(
        &self,
        round: u64,
        worker: usize,
        contribution: &[f32],
        participants: usize,
    ) -> Vec<f32> {
        let dim = self.dim();
        assert_eq!(contribution.len(), dim, "contribution dimension mismatch");
        self.elastic.run(
            round,
            worker,
            participants,
            contribution.to_vec(),
            |contribs| {
                let n = contribs.len() as f32;
                let mut mean = vec![0.0f32; dim];
                for (_, c) in contribs {
                    assert_eq!(c.len(), dim, "contribution dimension mismatch");
                    for (o, &x) in mean.iter_mut().zip(c.iter()) {
                        *o += x;
                    }
                }
                for o in mean.iter_mut() {
                    *o /= n;
                }
                // Only the newest completed round may define the global vector: an
                // older round completing late (its last participant was slower) must
                // not clobber a newer round's mean.
                let mut last = self.last_global_round.lock();
                if last.is_none_or(|r| round >= r) {
                    let mut g = self.global.write();
                    g.copy_from_slice(&mean);
                    *last = Some(round);
                }
                drop(last);
                // Record the round's mean in the scheduled-snapshot ring (when
                // enabled), keeping the entries sorted by round id so out-of-order
                // completions cannot corrupt the "newest before r" lookup.
                let mut ring = self.snapshots.lock();
                if ring.depth > 0 {
                    if let Err(pos) = ring.entries.binary_search_by_key(&round, |e| e.0) {
                        ring.entries.insert(pos, (round, mean.clone()));
                    }
                    if ring.entries.len() > ring.depth {
                        let (evicted, _) = ring.entries.remove(0);
                        ring.evicted_min =
                            Some(ring.evicted_min.map_or(evicted, |e| e.min(evicted)));
                    }
                }
                mean
            },
        )
    }

    /// Capture the server's durable state for a checkpoint. Must only be called at
    /// a quiescent point (no in-flight elastic round) — the elastic rendezvous
    /// state is not captured.
    pub fn export_state(&self) -> PsState {
        let ring = self.snapshots.lock();
        PsState {
            global: self.global.read().clone(),
            last_global_round: *self.last_global_round.lock(),
            ring: (ring.depth > 0).then(|| RingState {
                depth: ring.depth,
                initial: ring.initial.clone(),
                entries: ring.entries.clone(),
                evicted_min: ring.evicted_min,
            }),
        }
    }

    /// Restore durable state captured by [`Self::export_state`] onto a freshly
    /// built server (same dimensionality). Call before any worker starts.
    pub fn restore_state(&self, state: &PsState) {
        {
            let mut g = self.global.write();
            assert_eq!(g.len(), state.global.len(), "checkpoint dimension mismatch");
            g.copy_from_slice(&state.global);
        }
        *self.last_global_round.lock() = state.last_global_round;
        let mut ring = self.snapshots.lock();
        match &state.ring {
            Some(r) => {
                ring.depth = r.depth;
                ring.initial = r.initial.clone();
                ring.entries = r.entries.clone();
                ring.evicted_min = r.evicted_min;
            }
            None => {
                ring.depth = 0;
                ring.initial = Vec::new();
                ring.entries.clear();
                ring.evicted_min = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pull_returns_initial_state() {
        let ps = ParameterServer::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(ps.pull(), vec![1.0, 2.0, 3.0]);
        assert_eq!(ps.dim(), 3);
    }

    #[test]
    fn push_delta_accumulates() {
        let ps = ParameterServer::new(vec![0.0; 4]);
        ps.push_delta(&[1.0, 2.0, 3.0, 4.0], 0.5);
        ps.push_delta(&[1.0, 0.0, 0.0, 0.0], 1.0);
        assert_eq!(ps.pull(), vec![1.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn store_replaces_state() {
        let ps = ParameterServer::new(vec![0.0; 2]);
        ps.store(vec![5.0, 6.0]);
        assert_eq!(ps.pull(), vec![5.0, 6.0]);
    }

    #[test]
    fn single_participant_round_is_identity() {
        let ps = ParameterServer::new(vec![0.0; 3]);
        let avg = ps.sync_round(&[3.0, 6.0, 9.0], 1);
        assert_eq!(avg, vec![3.0, 6.0, 9.0]);
        assert_eq!(ps.pull(), vec![3.0, 6.0, 9.0]);
    }

    #[test]
    fn multi_threaded_round_averages_all_contributions() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 2]));
        let workers = 8;
        let mut handles = Vec::new();
        for w in 0..workers {
            let ps = Arc::clone(&ps);
            handles.push(std::thread::spawn(move || {
                ps.sync_round(&[w as f32, 1.0], workers)
            }));
        }
        let expected_mean = (0..workers).sum::<usize>() as f32 / workers as f32;
        for h in handles {
            let avg = h.join().unwrap();
            assert!((avg[0] - expected_mean).abs() < 1e-6);
            assert!((avg[1] - 1.0).abs() < 1e-6);
        }
        assert!((ps.pull()[0] - expected_mean).abs() < 1e-6);
    }

    #[test]
    fn consecutive_rounds_are_independent() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 1]));
        for round in 0..5 {
            let mut handles = Vec::new();
            for w in 0..4 {
                let ps = Arc::clone(&ps);
                let v = (round * 4 + w) as f32;
                handles.push(std::thread::spawn(move || ps.sync_round(&[v], 4)));
            }
            let expected = (0..4).map(|w| (round * 4 + w) as f32).sum::<f32>() / 4.0;
            for h in handles {
                assert!((h.join().unwrap()[0] - expected).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let ps = ParameterServer::new(vec![0.0; 2]);
        ps.push_delta(&[1.0], 1.0);
    }

    #[test]
    fn elastic_rounds_average_over_present_workers_only() {
        // Round 0: all 4 workers. Round 1: worker 3 crashed — only 3 contribute, and
        // the average is over those 3. Worker 3 skips straight to round 2 after
        // rejoining; membership is per-round, so nothing deadlocks.
        let ps = Arc::new(ParameterServer::new(vec![0.0; 1]));
        let mut handles = Vec::new();
        for w in 0..4usize {
            let ps = Arc::clone(&ps);
            handles.push(std::thread::spawn(move || {
                let mut results = Vec::new();
                for round in 0..3u64 {
                    if w == 3 && round == 1 {
                        continue;
                    }
                    let expected = if round == 1 { 3 } else { 4 };
                    let avg = ps.sync_round_elastic(round, w, &[(w + 1) as f32], expected);
                    results.push((round, avg[0]));
                }
                results
            }));
        }
        let all: Vec<Vec<(u64, f32)>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (w, results) in all.into_iter().enumerate() {
            for (round, avg) in results {
                let expected = match round {
                    1 => (1.0 + 2.0 + 3.0) / 3.0,
                    _ => (1.0 + 2.0 + 3.0 + 4.0) / 4.0,
                };
                assert!(
                    (avg - expected).abs() < 1e-6,
                    "worker {w} round {round}: {avg}"
                );
            }
        }
        // The last round's average is the stored global state.
        assert!((ps.pull()[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn late_completing_older_round_does_not_clobber_the_global() {
        // Disjoint live sets let rounds complete out of order: a worker alone in round
        // 5 closes it before the worker alone in round 3 arrives. The global vector
        // must keep round 5's mean.
        let ps = ParameterServer::new(vec![0.0; 1]);
        let newer = ps.sync_round_elastic(5, 0, &[50.0], 1);
        assert_eq!(newer, vec![50.0]);
        let older = ps.sync_round_elastic(3, 0, &[30.0], 1);
        assert_eq!(
            older,
            vec![30.0],
            "the round itself still returns its own mean"
        );
        assert_eq!(
            ps.pull(),
            vec![50.0],
            "global must stay at the newest round's mean"
        );
        // A genuinely newer round still advances the global.
        ps.sync_round_elastic(7, 0, &[70.0], 1);
        assert_eq!(ps.pull(), vec![70.0]);
    }

    #[test]
    fn snapshot_ring_answers_round_keyed_lookups() {
        let ps = ParameterServer::new(vec![0.0; 1]);
        ps.enable_scheduled_snapshots(4);
        // Synced rounds 2, 5, 9 (single participant ⇒ the mean is the contribution).
        for (round, v) in [(2u64, 2.0f32), (5, 5.0), (9, 9.0)] {
            ps.sync_round_elastic(round, 0, &[v], 1);
        }
        // Before any sync round: the initial global.
        assert_eq!(ps.scheduled_global_before(0), vec![0.0]);
        assert_eq!(ps.scheduled_global_before(2), vec![0.0]);
        // Round-keyed: strictly the newest scheduled sync *before* the asked round.
        assert_eq!(ps.scheduled_global_before(3), vec![2.0]);
        assert_eq!(ps.scheduled_global_before(5), vec![2.0]);
        assert_eq!(ps.scheduled_global_before(6), vec![5.0]);
        assert_eq!(ps.scheduled_global_before(9), vec![5.0]);
        assert_eq!(ps.scheduled_global_before(100), vec![9.0]);
    }

    #[test]
    fn snapshot_ring_reports_the_round_id_of_its_answer() {
        let ps = ParameterServer::new(vec![0.0; 1]);
        ps.enable_scheduled_snapshots(4);
        for (round, v) in [(2u64, 2.0f32), (5, 5.0), (9, 9.0)] {
            ps.sync_round_elastic(round, 0, &[v], 1);
        }
        assert_eq!(ps.scheduled_round_before(2), None);
        assert_eq!(ps.scheduled_round_before(3), Some(2));
        assert_eq!(ps.scheduled_round_before(9), Some(5));
        assert_eq!(ps.scheduled_round_before(100), Some(9));
    }

    #[test]
    fn snapshot_ring_handles_out_of_order_round_completion() {
        // Disjoint live sets let a newer round complete before an older one; the ring
        // must stay sorted by round id, not completion order.
        let ps = ParameterServer::new(vec![0.0; 1]);
        ps.enable_scheduled_snapshots(4);
        ps.sync_round_elastic(7, 0, &[70.0], 1);
        ps.sync_round_elastic(4, 1, &[40.0], 1);
        assert_eq!(ps.scheduled_global_before(5), vec![40.0]);
        assert_eq!(ps.scheduled_global_before(8), vec![70.0]);
    }

    #[test]
    fn snapshot_ring_evicts_the_oldest_round_beyond_its_depth() {
        let ps = ParameterServer::new(vec![0.0; 1]);
        ps.enable_scheduled_snapshots(2);
        for round in 1..=4u64 {
            ps.sync_round_elastic(round, 0, &[round as f32 * 10.0], 1);
        }
        // Rounds 1 and 2 were evicted; 3 and 4 remain.
        assert_eq!(ps.scheduled_global_before(4), vec![30.0]);
        assert_eq!(ps.scheduled_global_before(5), vec![40.0]);
        // Asking for a horizon at or before the evicted rounds still answers the
        // initial-global case exactly: round 1 is not `< 1`, so `before(1)` is the
        // floor entry.
        assert_eq!(ps.scheduled_global_before(1), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "too shallow")]
    fn snapshot_ring_refuses_a_lookup_whose_answer_was_evicted() {
        let ps = ParameterServer::new(vec![0.0; 1]);
        ps.enable_scheduled_snapshots(2);
        for round in 1..=4u64 {
            ps.sync_round_elastic(round, 0, &[round as f32], 1);
        }
        // The newest sync before round 3 is round 2 — evicted, so the ring must
        // refuse rather than silently hand back round 1's or the initial global.
        ps.scheduled_global_before(3);
    }

    #[test]
    #[should_panic(expected = "not enabled")]
    fn scheduled_pull_requires_the_ring_to_be_enabled() {
        let ps = ParameterServer::new(vec![0.0; 1]);
        ps.scheduled_global_before(1);
    }

    #[test]
    fn concurrent_rejoiners_in_the_same_round_pull_the_same_snapshot() {
        // Two rejoiners at round 6 race the lookup while live workers complete later
        // rounds; both must see exactly round 4's mean (the newest scheduled sync
        // before 6), never a later or torn value.
        let ps = Arc::new(ParameterServer::new(vec![0.0; 2]));
        ps.enable_scheduled_snapshots(4);
        ps.sync_round_elastic(4, 0, &[4.0, 44.0], 1);
        ps.sync_round_elastic(7, 0, &[7.0, 77.0], 1);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let ps = Arc::clone(&ps);
                std::thread::spawn(move || ps.scheduled_global_before(6))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![4.0, 44.0]);
        }
    }

    #[test]
    fn export_restore_round_trips_the_global_guard_and_ring() {
        let ps = ParameterServer::new(vec![0.0; 2]);
        ps.enable_scheduled_snapshots(3);
        for round in [2u64, 5, 8, 11] {
            ps.sync_round_elastic(round, 0, &[round as f32, -(round as f32)], 1);
        }
        let state = ps.export_state();
        let ring = state.ring.as_ref().expect("ring enabled");
        assert_eq!(ring.depth, 3);
        assert_eq!(ring.entries.len(), 3, "depth bounds the retained rounds");
        assert_eq!(ring.evicted_min, Some(2));

        // A fresh server restored from the state answers identically.
        let fresh = ParameterServer::new(vec![0.0; 2]);
        fresh.restore_state(&state);
        assert_eq!(fresh.pull(), ps.pull());
        assert_eq!(
            fresh.scheduled_global_before(9),
            ps.scheduled_global_before(9)
        );
        assert_eq!(fresh.scheduled_round_before(100), Some(11));
        assert_eq!(fresh.export_state(), state, "export is a fixed point");
        // The newest-global guard survived: an older round cannot clobber.
        fresh.sync_round_elastic(6, 0, &[600.0, 600.0], 1);
        assert_eq!(fresh.pull(), ps.pull());
    }

    #[test]
    fn export_without_ring_restores_a_disabled_ring() {
        let ps = ParameterServer::new(vec![1.0]);
        let state = ps.export_state();
        assert!(state.ring.is_none());
        let fresh = ParameterServer::new(vec![0.0]);
        fresh.enable_scheduled_snapshots(2);
        fresh.restore_state(&state);
        assert_eq!(fresh.pull(), vec![1.0]);
        assert!(fresh.export_state().ring.is_none());
    }

    #[test]
    fn elastic_mean_is_summed_in_worker_order_not_arrival_order() {
        // Values chosen so the fp sum depends on order: with f32,
        // (1e8 + 1.0) - 1e8 == 0 but (1e8 - 1e8) + 1.0 == 1.0. The combine must sum
        // in worker-id order (w0 + w1 + w2) regardless of which thread closes the
        // round, so the mean is a pure function of the contributions.
        let expected = {
            let mut s = 0.0f32;
            for v in [1e8f32, 1.0, -1e8] {
                s += v;
            }
            s / 3.0
        };
        for _ in 0..8 {
            let ps = Arc::new(ParameterServer::new(vec![0.0; 1]));
            let handles: Vec<_> = [(0usize, 1e8f32), (1, 1.0), (2, -1e8)]
                .into_iter()
                .map(|(w, v)| {
                    let ps = Arc::clone(&ps);
                    std::thread::spawn(move || ps.sync_round_elastic(0, w, &[v], 3))
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), vec![expected]);
            }
        }
    }
}

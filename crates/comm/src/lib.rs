//! # selsync-comm
//!
//! Communication substrate for the SelSync reproduction.
//!
//! The paper's system runs 16 GPU workers and one parameter-server process connected by
//! a 5 Gbps NIC, using PyTorch RPC. Here the *control flow* is executed for real between
//! OS threads inside one process, and the *duration* of each transfer is supplied by an
//! analytical cost model:
//!
//! * [`ps`] — an in-memory parameter server holding the flat global parameter vector,
//!   with blocking synchronous aggregation rounds (BSP / SelSync / FedAvg) and
//!   non-blocking push/pull (SSP).
//! * [`collective`] — thread rendezvous collectives: the 1-bit-per-worker `all-gather`
//!   used by SelSync's synchronization-status exchange (Alg. 1, line 12), an
//!   all-reduce, and a barrier.
//! * [`netmodel`] — the analytical network cost model (bandwidth, latency, PS incast,
//!   ring all-reduce) that converts nominal transfer sizes into simulated seconds. All
//!   throughput/speedup numbers in the benchmark harness come from this model, with the
//!   same accounting applied to every algorithm.
//! * [`rounds`] — the round-keyed elastic rendezvous skeleton shared by the parameter
//!   server's elastic aggregation rounds and the collective's elastic status
//!   all-gather: contributions are keyed by worker id and combined in worker order, so
//!   deterministic combines stay deterministic under any thread scheduling.
//! * [`cluster`] — a small harness for running a closure on `N` worker threads and
//!   collecting the per-worker results.
//! * [`wire`] — serialized, length-prefixed wire messages: every comm op is an
//!   [`wire::Envelope`] with kind/round/sender ids and a checksum, deduped by its
//!   `(kind, round, sender)` identity.
//! * [`transport`] — the pluggable [`transport::Transport`] seam: a lossless
//!   in-memory transport preserving today's behavior bit-for-bit, a fault-injecting
//!   decorator, and the retry/timeout/eviction [`transport::MessageLayer`] on top.
//! * [`faults`] — the deterministic per-link fault schedule (`[comm_faults]`):
//!   drop/duplicate/corrupt/delay weather as a pure hash of
//!   `(seed, worker, round, attempt, leg)`, plus retry budget and backoff.
//! * [`socket`] — a real OS-socket transport (Unix domain sockets by default, TCP by
//!   address) behind the same [`transport::Transport`] seam, plus the hub-side frame
//!   server and blocking RPC channel the multi-process backend runs on.

pub mod cluster;
pub mod collective;
pub mod faults;
pub mod netmodel;
pub mod ps;
pub mod rounds;
pub mod socket;
pub mod transport;
pub mod wire;

pub use collective::{Collective, ScalarOp};
pub use faults::{CommFaultSchedule, CommFaultSpec, PsFaultSchedule, PsFaultSpec};
pub use netmodel::NetworkModel;
pub use ps::ParameterServer;
pub use socket::{HubClient, HubServer, RpcService, SocketAddrSpec, SocketConn, SocketTransport};
pub use transport::{
    Delivery, Evicted, ExchangeOutcome, FaultyTransport, Link, LosslessTransport, MessageLayer,
    PsExchangeError, Transport,
};
pub use wire::{Envelope, EnvelopeId, MsgKind, WireError, HUB_SENDER};

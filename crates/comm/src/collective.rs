//! Thread-rendezvous collectives.
//!
//! SelSync's decision step is an `all-gather` of one synchronization-status bit per
//! worker (Alg. 1, line 12); its aggregation step (and the decentralized variant the
//! paper mentions in §III-E) is an all-reduce. Both are implemented here as
//! generation-counted rendezvous among the worker threads, plus a plain barrier.

use crate::rounds::ElasticRounds;
use parking_lot::{Condvar, Mutex};

/// Reduction applied by [`Collective::allreduce_scalar_among`]. `Sum` and `Mean` fold
/// the contributions in **worker-id order** (one in-order f32 fold, then — for `Mean` —
/// one divide), so the result is bit-identical to the sequential fold the simulator
/// performs over the same per-worker values; `Max` is the plain maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarOp {
    /// Worker-order sum of the contributions.
    Sum,
    /// Worker-order sum divided by the participant count.
    Mean,
    /// Maximum contribution.
    Max,
}

/// A reusable set of collectives for a fixed group of `n` workers.
pub struct Collective {
    n: usize,
    flags: Rendezvous<Vec<bool>>,
    reduce: Rendezvous<Vec<f32>>,
    barrier: Rendezvous<()>,
    /// Round-keyed elastic status all-gather — the shared [`ElasticRounds`] skeleton
    /// with a gather combine (absent workers read as the fill value).
    elastic_flags: ElasticRounds<bool, Vec<bool>>,
    /// Round-keyed elastic scalar all-reduce, one independent rendezvous per
    /// [`ScalarOp`] so a single training round can carry one exchange of each op
    /// (e.g. the loss mean and the `Δ(g)` max) without the round ids colliding.
    elastic_scalars: [ElasticRounds<f32, f32>; 3],
    /// Round-keyed elastic fixed-size vector all-reduce: the per-worker signal feed
    /// (Δ moments for quantile/variance statistics) rides here, one vector exchange
    /// per round.
    elastic_vecs: ElasticRounds<Vec<f32>, Vec<f32>>,
}

/// Internal generation-counted rendezvous: workers deposit a contribution, the last one
/// combines them, and everyone receives the combined result for that generation.
struct Rendezvous<T: Clone> {
    state: Mutex<RendezvousState<T>>,
    cv: Condvar,
}

struct RendezvousState<T: Clone> {
    contributions: Vec<Option<T>>,
    arrived: usize,
    generation: u64,
    result: Option<(u64, T)>,
}

impl<T: Clone> Rendezvous<T> {
    fn new(n: usize) -> Self {
        Rendezvous {
            state: Mutex::new(RendezvousState {
                contributions: (0..n).map(|_| None).collect(),
                arrived: 0,
                generation: 0,
                result: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn run(&self, worker: usize, value: T, combine: impl FnOnce(&[Option<T>]) -> T) -> T {
        let mut s = self.state.lock();
        assert!(worker < s.contributions.len(), "worker id out of range");
        assert!(
            s.contributions[worker].is_none(),
            "worker {worker} contributed twice in one round"
        );
        s.contributions[worker] = Some(value);
        s.arrived += 1;
        let my_gen = s.generation;

        if s.arrived == s.contributions.len() {
            let combined = combine(&s.contributions);
            s.result = Some((my_gen, combined.clone()));
            s.generation += 1;
            s.arrived = 0;
            for c in s.contributions.iter_mut() {
                *c = None;
            }
            self.cv.notify_all();
            return combined;
        }
        loop {
            self.cv.wait(&mut s);
            if let Some((gen, result)) = &s.result {
                if *gen == my_gen {
                    return result.clone();
                }
            }
        }
    }
}

impl Collective {
    /// Create collectives for a group of `n` workers.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "collective group must be non-empty");
        Collective {
            n,
            flags: Rendezvous::new(n),
            reduce: Rendezvous::new(n),
            barrier: Rendezvous::new(n),
            elastic_flags: ElasticRounds::new(),
            elastic_scalars: [
                ElasticRounds::new(),
                ElasticRounds::new(),
                ElasticRounds::new(),
            ],
            elastic_vecs: ElasticRounds::new(),
        }
    }

    /// Group size.
    pub fn world_size(&self) -> usize {
        self.n
    }

    /// All-gather of one boolean per worker: every worker receives the full flags array
    /// indexed by worker id. This is the `allgather_status` of Alg. 1.
    pub fn allgather_flags(&self, worker: usize, flag: bool) -> Vec<bool> {
        self.flags.run(worker, vec![flag], |contrib| {
            contrib
                .iter()
                .map(|c| c.as_ref().map(|v| v[0]).unwrap_or(false))
                .collect()
        })
    }

    /// All-gather of one boolean per worker among an elastic subset of `expected` live
    /// workers at the explicitly identified `round` (fault injection: crashed workers
    /// skip rounds entirely, so rounds must be round-keyed rather than generation
    /// counted). Absent workers' flags read `false`; the returned array is still
    /// indexed by worker id over the full group.
    pub fn allgather_flags_among(
        &self,
        round: u64,
        worker: usize,
        flag: bool,
        expected: usize,
    ) -> Vec<bool> {
        assert!(worker < self.n, "worker id out of range");
        let n = self.n;
        self.elastic_flags
            .run(round, worker, expected, flag, |contribs| {
                let mut out = vec![false; n];
                for &(w, f) in contribs {
                    out[w] = f;
                }
                out
            })
    }

    /// All-reduce of one scalar per worker among an elastic subset of `expected` live
    /// workers at the explicitly identified `round`: every participant receives the
    /// [`ScalarOp`]-combined value of all contributions. This is the cluster-signal
    /// exchange that accompanies the 1-bit status all-gather — it lets an adaptive δ
    /// policy act on *cluster* aggregates (the round's loss mean, its `Δ(g)` max)
    /// instead of per-worker replicas of the signal.
    ///
    /// `Sum`/`Mean` fold the contributions in worker-id order (never arrival order),
    /// so the result is bit-identical to the simulator's sequential fold over the same
    /// per-worker values regardless of thread scheduling. Each op has its own
    /// round-keyed rendezvous: one round may carry at most one exchange *per op*, and
    /// all participants of one `(round, op)` exchange must pass the same `expected`
    /// count.
    pub fn allreduce_scalar_among(
        &self,
        round: u64,
        worker: usize,
        value: f32,
        expected: usize,
        op: ScalarOp,
    ) -> f32 {
        assert!(worker < self.n, "worker id out of range");
        let rounds = &self.elastic_scalars[match op {
            ScalarOp::Sum => 0,
            ScalarOp::Mean => 1,
            ScalarOp::Max => 2,
        }];
        rounds.run(round, worker, expected, value, |contribs| {
            // Contributions arrive sorted by worker id (the ElasticRounds contract).
            match op {
                ScalarOp::Sum => contribs.iter().fold(0.0f32, |acc, &(_, v)| acc + v),
                ScalarOp::Mean => {
                    let sum = contribs.iter().fold(0.0f32, |acc, &(_, v)| acc + v);
                    sum / contribs.len() as f32
                }
                ScalarOp::Max => contribs
                    .iter()
                    .map(|&(_, v)| v)
                    .fold(f32::NEG_INFINITY, f32::max),
            }
        })
    }

    /// All-reduce of one small fixed-size `f32` vector per worker among an elastic
    /// subset of `expected` live workers at the explicitly identified `round` — the
    /// per-worker *signal feed*: instead of collapsing the round's `Δ(g_i)` to a
    /// single max, workers exchange fixed-length statistic vectors (e.g. `[Δ, Δ²]`)
    /// whose elementwise aggregates give the cluster variance/quantile picture an
    /// adaptive policy can act on.
    ///
    /// The [`ScalarOp`] is applied elementwise with the same worker-id-order fold as
    /// [`Collective::allreduce_scalar_among`], so results are bit-identical to the
    /// simulator's sequential fold. All contributions of one round must have equal
    /// length; one round may carry at most one vector exchange.
    pub fn allreduce_vec_among(
        &self,
        round: u64,
        worker: usize,
        values: Vec<f32>,
        expected: usize,
        op: ScalarOp,
    ) -> Vec<f32> {
        assert!(worker < self.n, "worker id out of range");
        self.elastic_vecs
            .run(round, worker, expected, values, |contribs| {
                let dim = contribs.first().map(|(_, v)| v.len()).unwrap_or(0);
                let count = contribs.len();
                let mut out = vec![
                    match op {
                        ScalarOp::Sum | ScalarOp::Mean => 0.0f32,
                        ScalarOp::Max => f32::NEG_INFINITY,
                    };
                    dim
                ];
                // Contributions arrive sorted by worker id (the ElasticRounds
                // contract), so each element folds in worker order.
                for (w, v) in contribs {
                    assert_eq!(
                        v.len(),
                        dim,
                        "vector all-reduce contributions must have equal length (worker {w})"
                    );
                    for (o, &x) in out.iter_mut().zip(v.iter()) {
                        match op {
                            ScalarOp::Sum | ScalarOp::Mean => *o += x,
                            ScalarOp::Max => *o = o.max(x),
                        }
                    }
                }
                if op == ScalarOp::Mean {
                    for o in out.iter_mut() {
                        *o /= count as f32;
                    }
                }
                out
            })
    }

    /// All-reduce (mean) over equal-length `f32` vectors: every worker receives the
    /// element-wise average of all contributions.
    pub fn allreduce_mean(&self, worker: usize, value: Vec<f32>) -> Vec<f32> {
        let n = self.n as f32;
        self.reduce.run(worker, value, move |contrib| {
            let dim = contrib
                .iter()
                .flatten()
                .next()
                .map(|v| v.len())
                .unwrap_or(0);
            let mut out = vec![0.0f32; dim];
            for c in contrib.iter().flatten() {
                assert_eq!(
                    c.len(),
                    dim,
                    "allreduce contributions must have equal length"
                );
                for (o, &x) in out.iter_mut().zip(c.iter()) {
                    *o += x;
                }
            }
            for o in out.iter_mut() {
                *o /= n;
            }
            out
        })
    }

    /// Block until all workers reach the barrier.
    pub fn barrier(&self, worker: usize) {
        self.barrier.run(worker, (), |_| ());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn spawn_workers<T: Send + 'static>(
        n: usize,
        f: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> Vec<T> {
        let f = Arc::new(f);
        let handles: Vec<_> = (0..n)
            .map(|w| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || f(w))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn allgather_flags_returns_everyones_bit() {
        let coll = Arc::new(Collective::new(6));
        let c = Arc::clone(&coll);
        let results = spawn_workers(6, move |w| c.allgather_flags(w, w % 2 == 0));
        for flags in results {
            assert_eq!(flags, vec![true, false, true, false, true, false]);
        }
    }

    #[test]
    fn allreduce_mean_averages_vectors() {
        let coll = Arc::new(Collective::new(4));
        let c = Arc::clone(&coll);
        let results = spawn_workers(4, move |w| c.allreduce_mean(w, vec![w as f32, 10.0]));
        for avg in results {
            assert!((avg[0] - 1.5).abs() < 1e-6);
            assert!((avg[1] - 10.0).abs() < 1e-6);
        }
    }

    #[test]
    fn collectives_are_reusable_across_rounds() {
        let coll = Arc::new(Collective::new(3));
        let c = Arc::clone(&coll);
        let results = spawn_workers(3, move |w| {
            let mut outputs = Vec::new();
            for round in 0..10 {
                let v = c.allreduce_mean(w, vec![(w + round) as f32]);
                outputs.push(v[0]);
                c.barrier(w);
            }
            outputs
        });
        for out in results {
            for (round, v) in out.iter().enumerate() {
                let expected = (0..3).map(|w| (w + round) as f32).sum::<f32>() / 3.0;
                assert!((v - expected).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn barrier_synchronises_all_workers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let coll = Arc::new(Collective::new(5));
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&coll);
        let cnt = Arc::clone(&counter);
        let results = spawn_workers(5, move |w| {
            cnt.fetch_add(1, Ordering::SeqCst);
            c.barrier(w);
            // After the barrier every worker must observe all 5 increments.
            cnt.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&seen| seen == 5));
    }

    #[test]
    fn world_size_reported() {
        assert_eq!(Collective::new(7).world_size(), 7);
    }

    #[test]
    fn scalar_allreduce_computes_sum_mean_and_max() {
        let coll = Arc::new(Collective::new(4));
        let c = Arc::clone(&coll);
        // One exchange of each op in the same round: the per-op rendezvous keep the
        // shared round id from colliding.
        let results = spawn_workers(4, move |w| {
            let v = (w + 1) as f32;
            (
                c.allreduce_scalar_among(3, w, v, 4, ScalarOp::Sum),
                c.allreduce_scalar_among(3, w, v, 4, ScalarOp::Mean),
                c.allreduce_scalar_among(3, w, v, 4, ScalarOp::Max),
            )
        });
        for (sum, mean, max) in results {
            assert_eq!(sum, 10.0);
            assert_eq!(mean, 2.5);
            assert_eq!(max, 4.0);
        }
    }

    #[test]
    fn scalar_allreduce_sums_in_worker_order_not_arrival_order() {
        // With f32, (1e8 + 1.0) - 1e8 == 0 but (1e8 - 1e8) + 1.0 == 1.0: the fold
        // must run in worker-id order no matter which thread closes the round.
        let expected = {
            let mut s = 0.0f32;
            for v in [1e8f32, 1.0, -1e8] {
                s += v;
            }
            s
        };
        for _ in 0..8 {
            let coll = Arc::new(Collective::new(3));
            let handles: Vec<_> = [(0usize, 1e8f32), (1, 1.0), (2, -1e8)]
                .into_iter()
                .map(|(w, v)| {
                    let c = Arc::clone(&coll);
                    std::thread::spawn(move || c.allreduce_scalar_among(0, w, v, 3, ScalarOp::Sum))
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), expected);
            }
        }
    }

    #[test]
    fn scalar_allreduce_tolerates_elastic_membership() {
        // Worker 2 skips round 1 entirely; the reductions run over the present pair.
        let coll = Arc::new(Collective::new(3));
        let c = Arc::clone(&coll);
        let results = spawn_workers(3, move |w| {
            let mut seen = Vec::new();
            for round in 0..3u64 {
                if w == 2 && round == 1 {
                    continue;
                }
                let expected = if round == 1 { 2 } else { 3 };
                let v = (w + 1) as f32 * 10.0;
                seen.push((
                    round,
                    c.allreduce_scalar_among(round, w, v, expected, ScalarOp::Mean),
                    c.allreduce_scalar_among(round, w, v, expected, ScalarOp::Max),
                ));
            }
            seen
        });
        for (w, seen) in results.into_iter().enumerate() {
            for (round, mean, max) in seen {
                let (em, ex) = if round == 1 {
                    ((10.0 + 20.0) / 2.0, 20.0)
                } else {
                    ((10.0 + 20.0 + 30.0) / 3.0, 30.0)
                };
                assert_eq!(mean, em, "worker {w} round {round}");
                assert_eq!(max, ex, "worker {w} round {round}");
            }
        }
    }

    /// Decode a membership mask for one round (bit `w` set ⇒ worker `w` present),
    /// forced non-empty so every round has a participant.
    fn members(mask: u8, group: usize) -> Vec<usize> {
        let mask = if mask as usize & ((1 << group) - 1) == 0 {
            1
        } else {
            mask as usize
        };
        (0..group).filter(|w| mask & (1 << w) != 0).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        // Random join/leave sequences, mirroring the ElasticRounds flags proptest:
        // every worker walks only the rounds it is a member of (crashed workers skip
        // rounds entirely). For each round, every present worker's Sum/Mean/Max result
        // must equal the worker-order fold over exactly the present workers'
        // contributions — independent of arrival order.
        #[test]
        fn scalar_allreduce_matches_the_worker_order_fold_over_random_membership(
            masks in proptest::collection::vec(0u8..255, 4..12),
            group in 2usize..6,
        ) {
            let masks: Vec<Vec<usize>> = masks.iter().map(|&m| members(m, group)).collect();
            let coll = Arc::new(Collective::new(group));
            let masks = Arc::new(masks);

            type Reduced = Vec<(u64, f32, f32, f32)>;
            let results: Vec<Reduced> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..group)
                    .map(|w| {
                        let coll = Arc::clone(&coll);
                        let masks = Arc::clone(&masks);
                        scope.spawn(move || {
                            let mut seen = Vec::new();
                            for (round, m) in masks.iter().enumerate() {
                                if !m.contains(&w) {
                                    continue;
                                }
                                let round = round as u64;
                                let value = (round as usize * 100 + w * 7) as f32;
                                let n = m.len();
                                seen.push((
                                    round,
                                    coll.allreduce_scalar_among(round, w, value, n, ScalarOp::Sum),
                                    coll.allreduce_scalar_among(round, w, value, n, ScalarOp::Mean),
                                    coll.allreduce_scalar_among(round, w, value, n, ScalarOp::Max),
                                ));
                            }
                            seen
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            for (w, seen) in results.into_iter().enumerate() {
                let expected_rounds: Vec<u64> = masks
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.contains(&w))
                    .map(|(r, _)| r as u64)
                    .collect();
                prop_assert_eq!(
                    seen.iter().map(|&(r, ..)| r).collect::<Vec<_>>(),
                    expected_rounds
                );
                for (round, sum, mean, max) in seen {
                    let m = &masks[round as usize];
                    // The reference: a sequential fold in ascending worker-id order.
                    let vals: Vec<f32> = m
                        .iter()
                        .map(|&p| (round as usize * 100 + p * 7) as f32)
                        .collect();
                    let esum = vals.iter().fold(0.0f32, |a, &b| a + b);
                    let emean = esum / vals.len() as f32;
                    let emax = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    prop_assert_eq!(sum, esum, "round {} worker {}", round, w);
                    prop_assert_eq!(mean, emean, "round {} worker {}", round, w);
                    prop_assert_eq!(max, emax, "round {} worker {}", round, w);
                }
            }
        }
    }

    #[test]
    fn vec_allreduce_aggregates_elementwise() {
        let coll = Arc::new(Collective::new(4));
        let c = Arc::clone(&coll);
        let results = spawn_workers(4, move |w| {
            let d = (w + 1) as f32;
            // The Δ-moment feed: [Δ, Δ²] per worker, cluster mean.
            c.allreduce_vec_among(0, w, vec![d, d * d], 4, ScalarOp::Mean)
        });
        for out in results {
            assert_eq!(out, vec![(1.0 + 2.0 + 3.0 + 4.0) / 4.0, 30.0 / 4.0]);
        }
    }

    #[test]
    fn vec_allreduce_tolerates_elastic_membership() {
        // Worker 0 skips round 1; the moment feed runs over the survivors.
        let coll = Arc::new(Collective::new(3));
        let c = Arc::clone(&coll);
        let results = spawn_workers(3, move |w| {
            let mut seen = Vec::new();
            for round in 0..3u64 {
                if w == 0 && round == 1 {
                    continue;
                }
                let expected = if round == 1 { 2 } else { 3 };
                let d = (w + 1) as f32;
                seen.push((
                    round,
                    c.allreduce_vec_among(round, w, vec![d, d * d], expected, ScalarOp::Mean),
                ));
            }
            seen
        });
        for (w, seen) in results.into_iter().enumerate() {
            for (round, out) in seen {
                let expected = if round == 1 {
                    vec![(2.0 + 3.0) / 2.0, (4.0 + 9.0) / 2.0]
                } else {
                    vec![(1.0 + 2.0 + 3.0) / 3.0, (1.0 + 4.0 + 9.0) / 3.0]
                };
                assert_eq!(out, expected, "worker {w} round {round}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        // The vector all-reduce must match the per-element worker-order fold for every
        // op, under any thread scheduling.
        #[test]
        fn vec_allreduce_matches_the_worker_order_fold(
            group in 2usize..6,
            dim in 1usize..5,
            op_tag in 0u8..3,
        ) {
            let op = match op_tag {
                0 => ScalarOp::Sum,
                1 => ScalarOp::Mean,
                _ => ScalarOp::Max,
            };
            let value = |w: usize, e: usize| ((w * 13 + e * 5) as f32) * 0.25 - 2.0;
            let coll = Arc::new(Collective::new(group));
            let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..group)
                    .map(|w| {
                        let coll = Arc::clone(&coll);
                        scope.spawn(move || {
                            let v: Vec<f32> = (0..dim).map(|e| value(w, e)).collect();
                            coll.allreduce_vec_among(0, w, v, group, op)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let expected: Vec<f32> = (0..dim)
                .map(|e| {
                    let vals: Vec<f32> = (0..group).map(|w| value(w, e)).collect();
                    match op {
                        ScalarOp::Sum => vals.iter().fold(0.0f32, |a, &b| a + b),
                        ScalarOp::Mean => {
                            vals.iter().fold(0.0f32, |a, &b| a + b) / vals.len() as f32
                        }
                        ScalarOp::Max => vals.iter().copied().fold(f32::NEG_INFINITY, f32::max),
                    }
                })
                .collect();
            for out in results {
                prop_assert_eq!(&out, &expected);
            }
        }
    }

    #[test]
    fn elastic_flags_tolerate_a_worker_skipping_rounds() {
        // Worker 2 is "crashed" for rounds 1..3: it skips them entirely and races ahead
        // to round 3 — the round-keyed rendezvous must neither deadlock nor let the
        // skipped rounds be closed by the wrong membership.
        let coll = Arc::new(Collective::new(3));
        let c = Arc::clone(&coll);
        let results = spawn_workers(3, move |w| {
            let mut gathered = Vec::new();
            for round in 0..5u64 {
                let crashed = w == 2 && (1..3).contains(&round);
                if crashed {
                    continue;
                }
                let expected = if (1..3).contains(&round) { 2 } else { 3 };
                let flags = c.allgather_flags_among(round, w, w == 0, expected);
                gathered.push((round, flags));
            }
            gathered
        });
        for (w, gathered) in results.into_iter().enumerate() {
            let expected_rounds: Vec<u64> = if w == 2 {
                vec![0, 3, 4]
            } else {
                (0..5).collect()
            };
            assert_eq!(
                gathered.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
                expected_rounds
            );
            for (round, flags) in gathered {
                // Worker 0's flag is always set; worker 2's contribution is absent
                // (reads false) during its crash window.
                assert!(flags[0], "round {round}");
                assert!(!flags[1], "round {round}");
                assert!(!flags[2], "round {round}");
            }
        }
    }
}

//! Analytical network cost model.
//!
//! The reproduction does not have a 5 Gbps testbed, so synchronization *durations* are
//! computed from an analytical model while the synchronization *logic* runs for real.
//! The model is deliberately simple and is applied identically to every algorithm, so
//! relative comparisons (the paper's speedup columns and throughput curves) are
//! meaningful:
//!
//! * Parameter-server exchange: all `N` workers push `bytes` to the PS over a shared
//!   link and pull the averaged result back, so the PS-side link moves `2·N·bytes`.
//! * Ring all-reduce: the classical `2·(N-1)/N · bytes` per-link volume plus
//!   latency terms per step.
//! * Status-bit all-gather: `N-1` bits per worker — latency-dominated, matching the
//!   2–4 ms the paper measured.

use serde::{Deserialize, Serialize};

/// Bandwidth/latency description of the cluster interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link bandwidth in bits per second (the paper's NIC: 5 Gbps).
    pub bandwidth_bps: f64,
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Fixed per-synchronization software overhead in seconds (serialization, RPC
    /// dispatch); keeps small messages from looking free.
    pub software_overhead_s: f64,
}

impl NetworkModel {
    /// The paper's testbed: 5 Gbps NIC between docker-swarm containers.
    pub fn paper_5gbps() -> Self {
        NetworkModel {
            bandwidth_bps: 5.0e9,
            latency_s: 1.0e-3,
            software_overhead_s: 2.0e-3,
        }
    }

    /// A faster datacenter network (for sensitivity/ablation experiments).
    pub fn datacenter_25gbps() -> Self {
        NetworkModel {
            bandwidth_bps: 25.0e9,
            latency_s: 0.2e-3,
            software_overhead_s: 1.0e-3,
        }
    }

    /// Seconds to move `bytes` across one link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }

    /// Seconds for a full parameter-server synchronization of `bytes` per worker across
    /// `workers` workers: the PS link carries `workers·bytes` in (push) and
    /// `workers·bytes` out (pull), serialised because the PS NIC is shared.
    pub fn ps_sync_time(&self, bytes: u64, workers: usize) -> f64 {
        if workers == 0 {
            return 0.0;
        }
        let volume_bits = 2.0 * workers as f64 * bytes as f64 * 8.0;
        self.software_overhead_s + 2.0 * self.latency_s + volume_bits / self.bandwidth_bps
    }

    /// Seconds for a bandwidth-optimal ring all-reduce of `bytes` across `workers`.
    pub fn ring_allreduce_time(&self, bytes: u64, workers: usize) -> f64 {
        if workers <= 1 {
            return 0.0;
        }
        let n = workers as f64;
        let volume_bits = 2.0 * (n - 1.0) / n * bytes as f64 * 8.0;
        self.software_overhead_s
            + 2.0 * (n - 1.0) * self.latency_s
            + volume_bits / self.bandwidth_bps
    }

    /// Seconds for the 1-bit-per-worker synchronization-status all-gather (Alg. 1,
    /// line 12). Latency dominated; the payload is `workers-1` bits per worker.
    pub fn status_allgather_time(&self, workers: usize) -> f64 {
        if workers <= 1 {
            return 0.0;
        }
        let bits = (workers - 1) as f64;
        2.0 * self.latency_s + bits / self.bandwidth_bps
    }

    /// Seconds for an all-reduce of one small fixed-size f32 vector per worker —
    /// the δ-signal exchange (loss mean, Δ(g) aggregates, Δ-moment feed). Modeled
    /// like the status all-gather: latency dominated, with `elems` f32 values from
    /// each of the other workers crossing the link.
    pub fn vec_allreduce_time(&self, workers: usize, elems: usize) -> f64 {
        if workers <= 1 {
            return 0.0;
        }
        let bits = (32 * elems * (workers - 1)) as f64;
        2.0 * self.latency_s + bits / self.bandwidth_bps
    }

    /// Seconds for a single-scalar all-reduce across `workers` (one f32 per worker).
    pub fn scalar_allreduce_time(&self, workers: usize) -> f64 {
        self.vec_allreduce_time(workers, 1)
    }

    /// Seconds for a point-to-point transfer of `bytes` (data-injection pulls).
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.transfer_time(bytes)
    }

    /// Seconds for an asynchronous push *or* pull of `bytes` between one worker and the
    /// PS (SSP-style, not aggregated): one direction only.
    pub fn ps_one_way_time(&self, bytes: u64) -> f64 {
        self.software_overhead_s / 2.0 + self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }

    /// Seconds a worker spends discovering the PS is down at a degraded round: one
    /// tiny probe envelope that goes unanswered until the logical round-trip budget
    /// expires. Latency dominated — priced like half the per-sync software overhead
    /// plus a full round trip, independent of model size (no payload ever moves).
    pub fn ps_probe_time(&self) -> f64 {
        self.software_overhead_s / 2.0 + 2.0 * self.latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_sync_scales_linearly_with_workers() {
        let net = NetworkModel::paper_5gbps();
        let t4 = net.ps_sync_time(100 * 1024 * 1024, 4);
        let t16 = net.ps_sync_time(100 * 1024 * 1024, 16);
        assert!(t16 > 3.5 * t4 && t16 < 4.5 * t4, "t4={t4} t16={t16}");
    }

    #[test]
    fn ring_allreduce_volume_saturates_with_workers() {
        let net = NetworkModel::paper_5gbps();
        // Per-link volume approaches 2*bytes as N grows, so time grows only via latency.
        let t2 = net.ring_allreduce_time(1024 * 1024 * 1024, 2);
        let t16 = net.ring_allreduce_time(1024 * 1024 * 1024, 16);
        assert!(t16 < t2 * 2.5, "t2={t2} t16={t16}");
        assert!(net.ring_allreduce_time(1024, 1) == 0.0);
    }

    #[test]
    fn ring_beats_ps_for_large_clusters() {
        let net = NetworkModel::paper_5gbps();
        let bytes = 507 * 1024 * 1024; // VGG11
        assert!(net.ring_allreduce_time(bytes, 16) < net.ps_sync_time(bytes, 16));
    }

    #[test]
    fn status_allgather_is_milliseconds() {
        // The paper reports ~2-4 ms for the flags exchange on 16 workers.
        let net = NetworkModel::paper_5gbps();
        let t = net.status_allgather_time(16);
        assert!(t > 1.0e-3 && t < 5.0e-3, "t={t}");
        assert_eq!(net.status_allgather_time(1), 0.0);
    }

    #[test]
    fn signal_exchange_is_latency_dominated_milliseconds() {
        let net = NetworkModel::paper_5gbps();
        let scalar = net.scalar_allreduce_time(16);
        let vec2 = net.vec_allreduce_time(16, 2);
        // Same order of magnitude as the flags exchange — a couple of ms, never free.
        assert!(scalar > 1.0e-3 && scalar < 5.0e-3, "{scalar}");
        assert!(vec2 >= scalar, "{vec2} < {scalar}");
        assert_eq!(net.scalar_allreduce_time(1), 0.0);
        assert_eq!(net.vec_allreduce_time(1, 8), 0.0);
    }

    #[test]
    fn transfer_of_vgg_takes_seconds_on_5gbps() {
        // 507 MB at 5 Gbps is ~0.85 s one way; the PS round trip for 16 workers is tens of
        // seconds, which is why Fig. 1a shows VGG11 scaling so poorly.
        let net = NetworkModel::paper_5gbps();
        let one_way = net.transfer_time(507 * 1024 * 1024);
        assert!(one_way > 0.7 && one_way < 1.2, "{one_way}");
        let full = net.ps_sync_time(507 * 1024 * 1024, 16);
        assert!(full > 20.0, "{full}");
    }

    #[test]
    fn ps_probe_is_cheap_and_size_independent() {
        let net = NetworkModel::paper_5gbps();
        let probe = net.ps_probe_time();
        assert!(probe > 0.0);
        // A failed probe must cost less than any real sync, however small.
        assert!(probe < net.ps_sync_time(1, 1), "{probe}");
    }

    #[test]
    fn faster_network_is_faster() {
        let slow = NetworkModel::paper_5gbps();
        let fast = NetworkModel::datacenter_25gbps();
        let b = 200 * 1024 * 1024;
        assert!(fast.ps_sync_time(b, 16) < slow.ps_sync_time(b, 16));
    }
}

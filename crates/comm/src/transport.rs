//! Pluggable message transport with deterministic fault injection.
//!
//! The [`Transport`] trait is the seam between "what the cluster says" (the
//! length-prefixed [`crate::wire::Envelope`] frames) and "what the network does to
//! it". [`LosslessTransport`] delivers every frame intact exactly once — today's
//! shared-memory behavior, bit for bit. [`FaultyTransport`] decorates delivery with
//! the seeded per-link weather of a [`CommFaultSchedule`]: frames are dropped,
//! corrupted, duplicated or delayed as a pure function of
//! `(seed, worker, round, attempt, leg)`.
//!
//! On top of the transport sits the [`MessageLayer`]: every logical op is a
//! request/response exchange with
//!
//! * **corruption detection** — deliveries failing the envelope checksum are
//!   rejected, never handed to a handler (a corrupt leg counts as a lost leg);
//! * **idempotent dedupe** — the hub processes each `(kind, round, sender)`
//!   identity once; duplicated or replayed deliveries hit the dedupe cache, so
//!   duplicate/delay-only weather is byte-identical to lossless delivery;
//! * **bounded retry with deterministic backoff** — a failed exchange retries up to
//!   the spec's budget, each attempt re-rolling its own fates;
//! * **graceful eviction** — exhausting the budget returns [`Evicted`] instead of
//!   blocking forever. The training drivers compile these evictions into the
//!   membership schedule (exactly like a scheduled crash), so rounds complete with
//!   the survivors rather than deadlocking.
//!
//! The layer carries the *control plane*: op envelopes and acknowledgements. The
//! bulk data plane (parameter vectors) still moves through the elastic rendezvous
//! once an exchange has succeeded — the transport decides *whether* and *when* an
//! op lands, the rendezvous performs its deterministic combine.

use crate::faults::{CommFaultSchedule, Fate, Leg, PsFaultSchedule};
use crate::wire::{Envelope, EnvelopeId, MsgKind, HUB_SENDER};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet};

/// One delivered frame. `delayed` marks frames the weather held back past the
/// punctual ones (still within the logical timeout): the layer processes delayed
/// frames last, modelling reordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    pub frame: Vec<u8>,
    pub delayed: bool,
}

/// The link a frame travels on: which worker's exchange, which logical round,
/// which attempt, which leg. Fault weather is a pure function of this key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    pub worker: usize,
    pub round: u64,
    pub attempt: u32,
    pub leg: Leg,
}

/// A message transport: takes a frame bound for a link, returns what actually
/// arrives (possibly nothing, possibly twice, possibly garbage).
pub trait Transport: Send + Sync {
    fn deliver(&self, link: Link, frame: &[u8]) -> Vec<Delivery>;
}

/// The perfect network: every frame arrives intact, exactly once, on time.
#[derive(Debug, Default, Clone, Copy)]
pub struct LosslessTransport;

impl Transport for LosslessTransport {
    fn deliver(&self, _link: Link, frame: &[u8]) -> Vec<Delivery> {
        vec![Delivery {
            frame: frame.to_vec(),
            delayed: false,
        }]
    }
}

/// A decorator applying the deterministic fault schedule on top of an inner
/// transport. Over [`LosslessTransport`] this reproduces the historical
/// in-memory faulty behavior bit for bit; over a socket transport the same
/// weather perturbs real frames — dropped legs never touch the wire, corrupted
/// legs flip a byte of whatever the inner transport actually delivered.
pub struct FaultyTransport {
    schedule: CommFaultSchedule,
    inner: Box<dyn Transport>,
}

impl FaultyTransport {
    /// Weather over the perfect in-memory network.
    pub fn new(schedule: CommFaultSchedule) -> Self {
        FaultyTransport::over(schedule, Box::new(LosslessTransport))
    }

    /// Weather composed over an arbitrary inner transport.
    pub fn over(schedule: CommFaultSchedule, inner: Box<dyn Transport>) -> Self {
        FaultyTransport { schedule, inner }
    }

    /// The schedule driving this transport.
    pub fn schedule(&self) -> &CommFaultSchedule {
        &self.schedule
    }
}

impl Transport for FaultyTransport {
    fn deliver(&self, link: Link, frame: &[u8]) -> Vec<Delivery> {
        match self
            .schedule
            .leg_fate(link.worker, link.round, link.attempt, link.leg)
        {
            Fate::Deliver => self.inner.deliver(link, frame),
            Fate::Drop => vec![],
            Fate::Corrupt => {
                // Deterministic corruption: flip one byte picked by the leg hash
                // in every frame the inner transport delivered.
                let hash = self
                    .schedule
                    .leg_hash(link.worker, link.round, link.attempt, link.leg);
                let mut deliveries = self.inner.deliver(link, frame);
                for delivery in &mut deliveries {
                    if !delivery.frame.is_empty() {
                        let idx = (hash % delivery.frame.len() as u64) as usize;
                        delivery.frame[idx] ^= 0xA5;
                    }
                }
                deliveries
            }
            Fate::Duplicate => {
                let base = self.inner.deliver(link, frame);
                let copies: Vec<Delivery> = base
                    .iter()
                    .map(|d| Delivery {
                        frame: d.frame.clone(),
                        delayed: true,
                    })
                    .collect();
                base.into_iter().chain(copies).collect()
            }
            Fate::Delay => {
                let mut deliveries = self.inner.deliver(link, frame);
                for delivery in &mut deliveries {
                    delivery.delayed = true;
                }
                deliveries
            }
        }
    }
}

/// How deep the hub's dedupe memory reaches, in rounds. Identities older than the
/// newest seen round minus this depth are pruned; retries are keyed by the logical
/// round, so nothing older can legitimately reappear.
pub const DEDUPE_DEPTH_ROUNDS: u64 = 64;

/// The hub-side idempotent receiver: remembers which envelope identities it has
/// already processed, keyed by round so memory stays bounded.
#[derive(Debug)]
struct Hub {
    /// Seen identities per round (BTreeMap so pruning walks old rounds in order).
    seen: BTreeMap<u64, HashSet<(u8, u32)>>,
    max_round: u64,
    /// Prune horizon in rounds. Must cover the maximum configured delivery
    /// delay: a duplicate re-delivered `delay_rounds` late must still find its
    /// identity in the cache, or it would be processed as fresh.
    depth: u64,
}

impl Default for Hub {
    fn default() -> Self {
        Hub::with_depth(DEDUPE_DEPTH_ROUNDS)
    }
}

impl Hub {
    fn with_depth(depth: u64) -> Self {
        Hub {
            seen: BTreeMap::new(),
            max_round: 0,
            depth,
        }
    }

    /// Accept an envelope. Returns `true` the first time this identity is seen,
    /// `false` for duplicates/replays (which are acknowledged but not reprocessed).
    fn accept(&mut self, id: EnvelopeId) -> bool {
        self.max_round = self.max_round.max(id.round);
        let fresh = self
            .seen
            .entry(id.round)
            .or_default()
            .insert((id.kind.as_u8(), id.sender));
        let horizon = self.max_round.saturating_sub(self.depth);
        while let Some((&oldest, _)) = self.seen.iter().next() {
            if oldest >= horizon {
                break;
            }
            self.seen.remove(&oldest);
        }
        fresh
    }
}

/// A worker was driven past its retry budget: the op did not complete and the
/// peer must be treated as dead from this round on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    pub worker: usize,
    pub round: u64,
    pub attempts: u32,
}

impl std::fmt::Display for Evicted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} exhausted {} attempts at round {} and is evicted",
            self.worker, self.attempts, self.round
        )
    }
}

/// Outcome of a successful exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeOutcome {
    /// Attempts consumed (1 = first try landed).
    pub attempts: u32,
    /// Deliveries the hub's dedupe cache absorbed across all attempts (duplicated
    /// frames and request replays from earlier failed attempts).
    pub duplicates_absorbed: u32,
    /// Deliveries rejected by the envelope checksum across all attempts.
    pub corrupt_rejected: u32,
}

/// An op addressed to the parameter server failed: either the server was down for
/// the whole round (fail-fast, no attempts consumed) or the link weather drove the
/// worker past its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsExchangeError {
    /// The PS is unreachable at this round: the op fails fast without consuming
    /// transport attempts, and the worker must degrade to a local-only round.
    Down { worker: usize, round: u64 },
    /// The retry budget was exhausted on a reachable server (see [`Evicted`]).
    Evicted(Evicted),
}

impl std::fmt::Display for PsExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PsExchangeError::Down { worker, round } => write!(
                f,
                "parameter server down at round {round}; worker {worker} degrades to a local round"
            ),
            PsExchangeError::Evicted(e) => e.fmt(f),
        }
    }
}

/// The fault-tolerant request/response layer every comm op rides on.
pub struct MessageLayer {
    transport: Box<dyn Transport>,
    retry_budget: u32,
    hub: Mutex<Hub>,
    ps_outages: Option<PsFaultSchedule>,
}

impl MessageLayer {
    /// A layer over the perfect network (single attempt always suffices).
    pub fn lossless() -> Self {
        MessageLayer {
            transport: Box::new(LosslessTransport),
            retry_budget: 1,
            hub: Mutex::new(Hub::default()),
            ps_outages: None,
        }
    }

    /// A layer over the faulty network described by `schedule`.
    pub fn faulty(schedule: CommFaultSchedule) -> Self {
        MessageLayer::faulty_over(schedule, Box::new(LosslessTransport))
    }

    /// A layer applying `schedule`'s weather over an arbitrary inner transport
    /// (the socket backend composes the same fault decorator over real links).
    /// The dedupe horizon widens to cover the spec's `delay_rounds`, so a
    /// duplicate re-delivered that late still hits the cache.
    pub fn faulty_over(schedule: CommFaultSchedule, inner: Box<dyn Transport>) -> Self {
        let spec = *schedule.spec();
        MessageLayer {
            transport: Box::new(FaultyTransport::over(schedule, inner)),
            retry_budget: spec.retry_budget,
            hub: Mutex::new(Hub::with_depth(DEDUPE_DEPTH_ROUNDS.max(spec.delay_rounds))),
            ps_outages: None,
        }
    }

    /// A layer over an arbitrary transport — tests, and the multi-process
    /// backend's per-worker hub view over `selsync-comm::socket`.
    pub fn over(transport: Box<dyn Transport>, retry_budget: u32) -> Self {
        assert!(retry_budget >= 1, "retry budget must be at least 1");
        MessageLayer {
            transport,
            retry_budget,
            hub: Mutex::new(Hub::default()),
            ps_outages: None,
        }
    }

    /// Attach a PS availability schedule: [`Self::ps_exchange`] then fails fast at
    /// rounds where the server is down.
    pub fn with_ps_outages(mut self, schedule: PsFaultSchedule) -> Self {
        self.ps_outages = Some(schedule);
        self
    }

    /// Whether the parameter server is unreachable at `round` under the attached
    /// availability schedule (always reachable when none is attached).
    pub fn ps_down(&self, round: u64) -> bool {
        self.ps_outages.as_ref().is_some_and(|s| s.down(round))
    }

    /// Perform one logical op as a request/response exchange with bounded retry.
    ///
    /// Each attempt sends the op's envelope on the request leg; the hub
    /// checksum-validates and dedupes what arrives, then acknowledges on the
    /// response leg. An attempt succeeds when at least one intact request delivery
    /// reached the hub *and* at least one intact acknowledgement came back.
    /// Retries reuse the same envelope identity, so a late replay of an earlier
    /// attempt is absorbed by the dedupe cache, never double-processed.
    pub fn exchange(
        &self,
        worker: usize,
        round: u64,
        kind: MsgKind,
        payload: &[u8],
    ) -> Result<ExchangeOutcome, Evicted> {
        let request = Envelope {
            kind,
            round,
            sender: worker as u32,
            payload: payload.to_vec(),
        };
        let request_frame = request.encode();
        let ack = Envelope {
            kind: MsgKind::Ack,
            round,
            sender: HUB_SENDER,
            payload: request.id().round.to_le_bytes().to_vec(),
        };
        let ack_frame = ack.encode();
        let mut duplicates_absorbed = 0u32;
        let mut corrupt_rejected = 0u32;
        for attempt in 0..self.retry_budget {
            // Request leg: worker → hub. Delayed deliveries are processed after
            // punctual ones (reordering); the round-keyed identity makes the order
            // irrelevant.
            let mut deliveries = self.transport.deliver(
                Link {
                    worker,
                    round,
                    attempt,
                    leg: Leg::Request,
                },
                &request_frame,
            );
            deliveries.sort_by_key(|d| d.delayed);
            let mut request_arrived = false;
            for delivery in &deliveries {
                match Envelope::decode(&delivery.frame) {
                    Ok(env) => {
                        debug_assert_eq!(env, request, "intact frames decode to the sent envelope");
                        let fresh = self.hub.lock().accept(env.id());
                        if !fresh {
                            duplicates_absorbed += 1;
                        }
                        request_arrived = true;
                    }
                    Err(_) => corrupt_rejected += 1,
                }
            }
            if !request_arrived {
                continue; // timeout expires, deterministic backoff, retry
            }
            // Response leg: hub → worker. The ack needs no dedupe (it carries no
            // state), but it is checksum-validated like everything else.
            let mut acks = self.transport.deliver(
                Link {
                    worker,
                    round,
                    attempt,
                    leg: Leg::Response,
                },
                &ack_frame,
            );
            acks.sort_by_key(|d| d.delayed);
            let mut ack_arrived = false;
            for delivery in &acks {
                match Envelope::decode(&delivery.frame) {
                    Ok(env) => {
                        debug_assert_eq!(env, ack);
                        if ack_arrived {
                            duplicates_absorbed += 1;
                        }
                        ack_arrived = true;
                    }
                    Err(_) => corrupt_rejected += 1,
                }
            }
            if ack_arrived {
                return Ok(ExchangeOutcome {
                    attempts: attempt + 1,
                    duplicates_absorbed,
                    corrupt_rejected,
                });
            }
        }
        Err(Evicted {
            worker,
            round,
            attempts: self.retry_budget,
        })
    }

    /// [`Self::exchange`] for ops addressed to the parameter server: when the
    /// attached availability schedule says the server is down at `round`, the op
    /// fails fast with [`PsExchangeError::Down`] — no transport attempts are made
    /// and no hub state is touched, so a degraded round leaves the dedupe cache
    /// exactly as an absent round would.
    pub fn ps_exchange(
        &self,
        worker: usize,
        round: u64,
        kind: MsgKind,
        payload: &[u8],
    ) -> Result<ExchangeOutcome, PsExchangeError> {
        if self.ps_down(round) {
            return Err(PsExchangeError::Down { worker, round });
        }
        self.exchange(worker, round, kind, payload)
            .map_err(PsExchangeError::Evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::CommFaultSpec;
    use proptest::prelude::*;

    fn link(worker: usize, round: u64) -> Link {
        Link {
            worker,
            round,
            attempt: 0,
            leg: Leg::Request,
        }
    }

    #[test]
    fn lossless_transport_is_identity_delivery() {
        let t = LosslessTransport;
        let frame = vec![1, 2, 3];
        assert_eq!(
            t.deliver(link(0, 0), &frame),
            vec![Delivery {
                frame,
                delayed: false
            }]
        );
    }

    #[test]
    fn lossless_layer_always_succeeds_first_try() {
        let layer = MessageLayer::lossless();
        for worker in 0..4 {
            for round in 0..16u64 {
                let out = layer
                    .exchange(worker, round, MsgKind::Flags, &[1])
                    .expect("lossless exchange cannot fail");
                assert_eq!(out.attempts, 1);
                assert_eq!(out.duplicates_absorbed, 0);
                assert_eq!(out.corrupt_rejected, 0);
            }
        }
    }

    #[test]
    fn retried_exchange_attempts_match_the_schedule() {
        // The layer's observable attempt count must be exactly what the pure
        // schedule predicts — this is the bridge the drivers' precomputed
        // membership (evictions) relies on.
        let spec = CommFaultSpec {
            seed: 99,
            drop: 0.3,
            duplicate: 0.1,
            corrupt: 0.15,
            delay: 0.1,
            delay_rounds: 0,
            retry_budget: 5,
            timeout_s: 1e-3,
        };
        let schedule = CommFaultSchedule::new(spec);
        let layer = MessageLayer::faulty(schedule);
        let mut retried = 0;
        for worker in 0..4 {
            for round in 0..64u64 {
                match (
                    layer.exchange(worker, round, MsgKind::Flags, &[0]),
                    schedule.attempts_used(worker, round),
                ) {
                    (Ok(out), Some(expected)) => {
                        assert_eq!(out.attempts, expected, "worker {worker} round {round}");
                        if out.attempts > 1 {
                            retried += 1;
                        }
                    }
                    (Err(e), None) => {
                        assert_eq!(e.attempts, spec.retry_budget);
                    }
                    (got, want) => panic!(
                        "layer and schedule disagree at worker {worker} round {round}: {got:?} vs {want:?}"
                    ),
                }
            }
        }
        assert!(retried > 0, "a 45% lossy leg rate must retry somewhere");
    }

    #[test]
    fn corrupted_frames_are_rejected_not_processed() {
        let spec = CommFaultSpec {
            seed: 5,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 1.0,
            delay: 0.0,
            delay_rounds: 0,
            retry_budget: 3,
            timeout_s: 1e-3,
        };
        let layer = MessageLayer::faulty(CommFaultSchedule::new(spec));
        let err = layer
            .exchange(0, 0, MsgKind::ScalarReduce, &[1, 2, 3, 4])
            .expect_err("every leg corrupts, so the exchange must evict");
        assert_eq!(err.attempts, 3);
    }

    #[test]
    fn duplicates_are_absorbed_by_the_dedupe_cache() {
        let spec = CommFaultSpec {
            seed: 2,
            drop: 0.0,
            duplicate: 1.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_rounds: 0,
            retry_budget: 1,
            timeout_s: 1e-3,
        };
        let layer = MessageLayer::faulty(CommFaultSchedule::new(spec));
        let out = layer.exchange(1, 7, MsgKind::Push, &[9]).unwrap();
        assert_eq!(out.attempts, 1);
        // Request leg duplicates once (second copy hits the cache); response leg
        // duplicates once too.
        assert_eq!(out.duplicates_absorbed, 2);
    }

    #[test]
    fn hub_prunes_old_rounds_but_keeps_recent_identities() {
        let mut hub = Hub::default();
        let id = |round| EnvelopeId {
            kind: MsgKind::Flags,
            round,
            sender: 0,
        };
        assert!(hub.accept(id(0)));
        assert!(!hub.accept(id(0)), "same identity dedupes");
        assert!(hub.accept(id(DEDUPE_DEPTH_ROUNDS + 10)));
        // Round 0 is now past the horizon and was pruned: a very late replay is
        // treated as fresh, which is safe because round-keyed handlers for round 0
        // are long gone.
        assert!(hub.accept(id(0)));
        assert!(!hub.accept(id(DEDUPE_DEPTH_ROUNDS + 10)));
    }

    #[test]
    fn dedupe_depth_respects_configured_delay_rounds() {
        // Regression: with the fixed 64-round horizon, a duplicate delayed
        // longer than the horizon was pruned from the cache and re-processed as
        // fresh. The horizon must widen to the configured maximum delay.
        let late = DEDUPE_DEPTH_ROUNDS + 10;
        let id = |round| EnvelopeId {
            kind: MsgKind::Flags,
            round,
            sender: 0,
        };
        // The buggy shape: default depth forgets round 0 once round `late` lands.
        let mut narrow = Hub::with_depth(DEDUPE_DEPTH_ROUNDS);
        assert!(narrow.accept(id(0)));
        assert!(narrow.accept(id(late)));
        assert!(
            narrow.accept(id(0)),
            "a replay past the narrow horizon is (wrongly) treated as fresh"
        );
        // Widened to cover the delay, the same replay hits the cache.
        let mut wide = Hub::with_depth(late);
        assert!(wide.accept(id(0)));
        assert!(wide.accept(id(late)));
        assert!(
            !wide.accept(id(0)),
            "a horizon covering the configured delay must absorb the replay"
        );
    }

    #[test]
    fn faulty_layer_widens_dedupe_to_cover_configured_delays() {
        let mut spec = CommFaultSpec::lossless(13);
        spec.delay = 0.2;
        spec.delay_rounds = DEDUPE_DEPTH_ROUNDS + 100;
        let layer = MessageLayer::faulty(CommFaultSchedule::new(spec));
        assert_eq!(layer.hub.lock().depth, DEDUPE_DEPTH_ROUNDS + 100);
        let short = MessageLayer::faulty(CommFaultSchedule::new(CommFaultSpec::lossless(13)));
        assert_eq!(short.hub.lock().depth, DEDUPE_DEPTH_ROUNDS);
    }

    #[test]
    fn faulty_decorator_over_lossless_matches_the_direct_form() {
        let spec = CommFaultSpec {
            seed: 31,
            drop: 0.25,
            duplicate: 0.2,
            corrupt: 0.2,
            delay: 0.2,
            delay_rounds: 0,
            retry_budget: 4,
            timeout_s: 1e-3,
        };
        let direct = FaultyTransport::new(CommFaultSchedule::new(spec));
        let composed =
            FaultyTransport::over(CommFaultSchedule::new(spec), Box::new(LosslessTransport));
        let frame = Envelope {
            kind: MsgKind::Flags,
            round: 0,
            sender: 0,
            payload: vec![7; 9],
        }
        .encode();
        for worker in 0..4 {
            for round in 0..32u64 {
                for attempt in 0..4 {
                    for leg in [Leg::Request, Leg::Response] {
                        let l = Link {
                            worker,
                            round,
                            attempt,
                            leg,
                        };
                        assert_eq!(direct.deliver(l, &frame), composed.deliver(l, &frame));
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Liveness under arbitrary weather: every exchange terminates, either
        // within the budget or as a clean eviction carrying the full budget —
        // and repeating the exchange stream gives identical outcomes.
        #[test]
        fn exchanges_always_terminate_with_bounded_attempts(
            seed in 0u64..500,
            drop in 0.0f64..0.6,
            duplicate in 0.0f64..0.2,
            corrupt in 0.0f64..0.2,
            budget in 1u32..5,
        ) {
            let spec = CommFaultSpec {
                seed,
                drop,
                duplicate,
                corrupt,
                delay: 0.0,
                delay_rounds: 0,
                retry_budget: budget,
                timeout_s: 1e-3,
            };
            // Rates max out at 0.6 + 0.2 + 0.2 < 1.0, so every drawn spec is valid.
            assert!(spec.validate().is_ok());
            let layer = MessageLayer::faulty(CommFaultSchedule::new(spec));
            let replay = MessageLayer::faulty(CommFaultSchedule::new(spec));
            for worker in 0..3 {
                for round in 0..24u64 {
                    let a = layer.exchange(worker, round, MsgKind::Flags, &[1]);
                    let b = replay.exchange(worker, round, MsgKind::Flags, &[1]);
                    prop_assert_eq!(&a, &b, "worker {} round {}", worker, round);
                    match a {
                        Ok(out) => prop_assert!(out.attempts <= budget),
                        Err(e) => prop_assert_eq!(e.attempts, budget),
                    }
                }
            }
        }

        // Dedupe property: a hub fed a duplicated, reordered permutation of an
        // envelope stream accepts exactly the same identity set as a hub fed the
        // stream in order with no duplicates — duplicated/reordered delivery is
        // byte-identical to lossless delivery at the handler level.
        #[test]
        fn duplicated_reordered_delivery_equals_lossless_at_the_hub(
            ops in proptest::collection::vec(0u64..(32 * 4 * 6), 1..40),
            order_seed in 0u64..1000,
        ) {
            // Each drawn value packs (round, sender, kind) — the shim has no tuple
            // strategies.
            let envelopes: Vec<EnvelopeId> = ops
                .iter()
                .map(|&packed| EnvelopeId {
                    kind: MsgKind::from_u8((packed % 6) as u8).unwrap(),
                    round: packed / (4 * 6),
                    sender: ((packed / 6) % 4) as u32,
                })
                .collect();

            // Lossless, in order, no duplicates.
            let mut clean = Hub::default();
            let clean_accepted: Vec<EnvelopeId> = envelopes
                .iter()
                .copied()
                .filter(|&id| clean.accept(id))
                .collect();

            // Duplicated (every envelope twice) and deterministically shuffled.
            let mut noisy_stream: Vec<EnvelopeId> = envelopes
                .iter()
                .flat_map(|&id| [id, id])
                .collect();
            let n = noisy_stream.len();
            for i in (1..n).rev() {
                let j = (crate::faults::CommFaultSchedule::new(
                    CommFaultSpec::lossless(order_seed),
                )
                .leg_hash(i, i as u64, 0, Leg::Request)
                    % (i as u64 + 1)) as usize;
                noisy_stream.swap(i, j);
            }
            let mut noisy = Hub::default();
            let noisy_accepted: std::collections::HashSet<EnvelopeId> = noisy_stream
                .into_iter()
                .filter(|&id| noisy.accept(id))
                .collect();

            // Same identity set survives (ordering differs; the round-keyed
            // handlers behind the hub are order-independent by construction).
            let clean_set: std::collections::HashSet<EnvelopeId> =
                clean_accepted.into_iter().collect();
            prop_assert_eq!(clean_set, noisy_accepted);
        }
    }

    #[test]
    fn ps_exchange_fails_fast_during_outages_and_passes_through_otherwise() {
        use crate::faults::{PsFaultSchedule, PsFaultSpec};
        let layer = MessageLayer::lossless().with_ps_outages(PsFaultSchedule::new(PsFaultSpec {
            seed: 5,
            windows: vec![(2, 3)],
            flaky: 0.0,
        }));
        // Up rounds behave exactly like `exchange`.
        let ok = layer
            .ps_exchange(0, 0, MsgKind::Pull, b"pull")
            .expect("server up");
        assert_eq!(ok.attempts, 1);
        // Down rounds fail fast: no attempts, no hub state. The same identity sent
        // after recovery is still fresh (would be a dedupe hit had the hub seen it).
        for round in 2..5u64 {
            assert!(layer.ps_down(round));
            match layer.ps_exchange(1, round, MsgKind::SyncRound, b"sync") {
                Err(PsExchangeError::Down { worker, round: r }) => {
                    assert_eq!((worker, r), (1, round));
                }
                other => panic!("expected Down, got {other:?}"),
            }
        }
        let ok = layer
            .ps_exchange(1, 5, MsgKind::SyncRound, b"sync")
            .expect("server back up");
        assert_eq!(ok.duplicates_absorbed, 0, "down rounds left no hub state");
    }

    #[test]
    fn ps_exchange_without_outage_schedule_matches_exchange() {
        let layer = MessageLayer::lossless();
        assert!(!layer.ps_down(0));
        let a = layer.ps_exchange(0, 0, MsgKind::Flags, &[1]).unwrap();
        assert_eq!(a.attempts, 1);
    }

    #[test]
    fn ps_exchange_surfaces_evictions_from_the_weather() {
        use crate::faults::{PsFaultSchedule, PsFaultSpec};
        let mut spec = CommFaultSpec::lossless(11);
        spec.drop = 1.0;
        spec.retry_budget = 2;
        let layer = MessageLayer::faulty(CommFaultSchedule::new(spec))
            .with_ps_outages(PsFaultSchedule::new(PsFaultSpec::reliable(0)));
        match layer.ps_exchange(3, 7, MsgKind::Pull, b"x") {
            Err(PsExchangeError::Evicted(e)) => {
                assert_eq!(e.worker, 3);
                assert_eq!(e.attempts, 2);
            }
            other => panic!("expected Evicted, got {other:?}"),
        }
    }
}

//! Round-keyed rendezvous with elastic membership — the shared skeleton behind
//! [`crate::ps::ParameterServer::sync_round_elastic`] (sum/average combine) and
//! [`crate::collective::Collective::allgather_flags_among`] (gather combine).
//!
//! Each round is identified by an explicit round id (the training iteration), so a
//! worker that skipped earlier rounds (it was crashed) can never close or corrupt a
//! round it was not part of, and a slow waiter can never miss its result to a later
//! round overwriting it. Rounds are removed once every participant has consumed the
//! result, so memory stays bounded by the number of concurrently open rounds.
//!
//! Contributions are keyed by worker id and handed to the combine step **sorted by
//! worker id**, never in arrival order — so a deterministic combine function (e.g. an
//! in-order floating-point sum) produces bit-identical results regardless of thread
//! scheduling. This is what lets the threaded SelSync driver reproduce the simulator's
//! synchronization schedule exactly.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

/// One open round: contributions keyed by worker id, plus the combined result once the
/// expected number of participants has arrived.
struct Slot<T, R> {
    contributions: Vec<(usize, T)>,
    expected: usize,
    result: Option<R>,
    consumed: usize,
}

/// A reusable set of round-keyed elastic rendezvous, generic over the contribution
/// type `T` and the combined result type `R`.
pub struct ElasticRounds<T, R: Clone> {
    state: Mutex<HashMap<u64, Slot<T, R>>>,
    cv: Condvar,
}

impl<T, R: Clone> Default for ElasticRounds<T, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, R: Clone> ElasticRounds<T, R> {
    /// Empty rendezvous (no open rounds).
    pub fn new() -> Self {
        ElasticRounds {
            state: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }

    /// Contribute `value` for `worker` to `round` and block until the round's
    /// `expected` participants have all contributed. The last arrival closes the round
    /// by calling `combine` on the contributions **sorted by worker id** (never arrival
    /// order — deterministic combines stay deterministic under any scheduling); every
    /// participant receives a clone of the combined result.
    ///
    /// All participants of one round must pass the same `expected` count, and a worker
    /// must contribute at most once per round. `combine` runs under the rendezvous
    /// lock, exactly once per round.
    pub fn run(
        &self,
        round: u64,
        worker: usize,
        expected: usize,
        value: T,
        combine: impl FnOnce(&[(usize, T)]) -> R,
    ) -> R {
        assert!(
            expected > 0,
            "an elastic round needs at least one participant"
        );
        let mut s = self.state.lock();
        let slot = s.entry(round).or_insert_with(|| Slot {
            contributions: Vec::with_capacity(expected),
            expected,
            result: None,
            consumed: 0,
        });
        assert_eq!(
            slot.expected, expected,
            "mismatched membership in elastic round {round}"
        );
        assert!(
            slot.contributions.iter().all(|&(w, _)| w != worker),
            "worker {worker} contributed twice to elastic round {round}"
        );
        slot.contributions.push((worker, value));
        if slot.contributions.len() == slot.expected {
            // Last arrival closes the round: combine in worker-id order, publish, wake.
            slot.contributions.sort_by_key(|&(w, _)| w);
            slot.result = Some(combine(&slot.contributions));
            self.cv.notify_all();
        }
        loop {
            if let Some(slot) = s.get_mut(&round) {
                if let Some(result) = &slot.result {
                    let out = result.clone();
                    slot.consumed += 1;
                    if slot.consumed == slot.expected {
                        s.remove(&round);
                    }
                    return out;
                }
            }
            self.cv.wait(&mut s);
        }
    }

    /// Number of currently open rounds (diagnostics/tests).
    pub fn open_rounds(&self) -> usize {
        self.state.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_round_combines_immediately() {
        let rounds: ElasticRounds<f32, f32> = ElasticRounds::new();
        let r = rounds.run(0, 3, 1, 2.5, |c| {
            assert_eq!(c.len(), 1);
            assert_eq!(c[0], (3, 2.5));
            c[0].1 * 2.0
        });
        assert_eq!(r, 5.0);
        assert_eq!(rounds.open_rounds(), 0);
    }

    #[test]
    fn combine_sees_contributions_in_worker_order() {
        // Workers arrive in reverse order; combine must still see ascending ids.
        let rounds: Arc<ElasticRounds<usize, Vec<usize>>> = Arc::new(ElasticRounds::new());
        let handles: Vec<_> = [3usize, 1, 2, 0]
            .into_iter()
            .enumerate()
            .map(|(delay, w)| {
                let rounds = Arc::clone(&rounds);
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(delay as u64 * 5));
                    rounds.run(7, w, 4, w * 10, |c| {
                        c.iter().map(|&(worker, _)| worker).collect()
                    })
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    #[should_panic]
    fn double_contribution_panics() {
        // Expect 2 so the first call parks the contribution without closing the round;
        // contributing again from the same worker must assert. The first contributor
        // runs detached (its round never completes; the thread is reclaimed when the
        // test process exits) — a scoped thread would deadlock the unwinding test.
        let rounds: Arc<ElasticRounds<(), ()>> = Arc::new(ElasticRounds::new());
        let first = Arc::clone(&rounds);
        std::thread::spawn(move || first.run(0, 0, 2, (), |_| ()));
        std::thread::sleep(std::time::Duration::from_millis(50));
        rounds.run(0, 0, 2, (), |_| ());
    }

    /// Decode a membership mask for one round: bit `w` set means worker `w` is present.
    /// Forced non-empty so every round has a participant.
    fn members(mask: u8, group: usize) -> Vec<usize> {
        let mask = if mask as usize & ((1 << group) - 1) == 0 {
            1
        } else {
            mask as usize
        };
        (0..group).filter(|w| mask & (1 << w) != 0).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        // Random join/leave sequences: every worker walks only the rounds it is a
        // member of (crashed workers skip rounds entirely, exactly like the threaded
        // driver under a fault schedule). For each round the gather result must list
        // precisely the members, and the in-order sum must equal the sum computed
        // from the membership — independent of arrival order.
        #[test]
        fn random_join_leave_sequences_combine_deterministically(
            masks in proptest::collection::vec(0u8..255, 4..12),
            group in 2usize..6,
        ) {
            type Gathered = Vec<(u64, Vec<(usize, f32)>)>;
            let masks: Vec<Vec<usize>> =
                masks.iter().map(|&m| members(m, group)).collect();
            let gather: Arc<ElasticRounds<f32, Vec<(usize, f32)>>> =
                Arc::new(ElasticRounds::new());
            let masks = Arc::new(masks);

            let results: Vec<Gathered> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..group)
                    .map(|w| {
                        let gather = Arc::clone(&gather);
                        let masks = Arc::clone(&masks);
                        scope.spawn(move || {
                            let mut seen = Vec::new();
                            for (round, m) in masks.iter().enumerate() {
                                if !m.contains(&w) {
                                    continue;
                                }
                                let value = (round * 100 + w) as f32;
                                let combined = gather.run(
                                    round as u64,
                                    w,
                                    m.len(),
                                    value,
                                    |c| c.to_vec(),
                                );
                                seen.push((round as u64, combined));
                            }
                            seen
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            for (w, seen) in results.into_iter().enumerate() {
                let expected_rounds: Vec<u64> = masks
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.contains(&w))
                    .map(|(r, _)| r as u64)
                    .collect();
                prop_assert_eq!(
                    seen.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
                    expected_rounds
                );
                for (round, combined) in seen {
                    let m = &masks[round as usize];
                    let expected: Vec<(usize, f32)> = m
                        .iter()
                        .map(|&p| (p, (round as usize * 100 + p) as f32))
                        .collect();
                    prop_assert_eq!(combined, expected);
                }
            }
            prop_assert_eq!(gather.open_rounds(), 0);
        }
    }
}

//! Deterministic message-fault schedules for the transport layer.
//!
//! A [`CommFaultSpec`] describes how unreliable the cluster's links are: per-leg
//! probabilities of dropping, corrupting, duplicating and delaying a frame, plus the
//! retry budget and the logical timeout that bounds every operation. A
//! [`CommFaultSchedule`] turns the spec into a *pure function*: the fate of every
//! message leg is a hash of `(seed, worker, round, attempt, leg)` — never of wall
//! clocks, thread scheduling or message content — so a faulty run is exactly as
//! deterministic as a lossless one, and both training backends (the sequential
//! simulator and the thread-per-worker driver) derive identical fault histories
//! without coordination.
//!
//! The fate key deliberately excludes the message *kind*: all envelopes a worker
//! sends in one round share the same per-attempt "link weather". That is what makes
//! per-round outcomes (retry counts, evictions) well-defined facts of the schedule
//! rather than of how many envelopes an algorithm happens to send, and it is what
//! the eviction compiler in `selsync-core` relies on to precompute membership.

use serde::{Deserialize, Serialize};

/// Which leg of a request/response exchange a frame travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Worker → hub (the request envelope).
    Request,
    /// Hub → worker (the acknowledgement envelope).
    Response,
}

/// The deterministic fate of one frame on one leg of one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// The frame arrives intact.
    Deliver,
    /// The frame is lost entirely.
    Drop,
    /// The frame arrives with flipped bytes (the checksum rejects it).
    Corrupt,
    /// The frame arrives twice (idempotent handlers dedupe the copy).
    Duplicate,
    /// The frame arrives late but within the logical timeout (reordered after
    /// punctual frames; harmless under round-keyed, idempotent handlers).
    Delay,
}

/// Seeded description of an unreliable interconnect. All rates are per *leg* (a
/// request/response exchange rolls two fates), must lie in `[0, 1]`, and must sum to
/// at most 1 — the remainder is the clean-delivery probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommFaultSpec {
    /// Seed of the fault stream (independent of the training seed so the same run
    /// can be replayed under different weather).
    pub seed: u64,
    /// Probability a leg loses its frame.
    pub drop: f64,
    /// Probability a leg delivers its frame twice.
    pub duplicate: f64,
    /// Probability a leg delivers a corrupted frame (rejected by checksum — counts
    /// as a failed leg, like a drop, but exercises the reject path).
    pub corrupt: f64,
    /// Probability a leg delivers its frame late (still within the timeout).
    pub delay: f64,
    /// Maximum number of *rounds* a delayed frame may arrive late. `0` keeps
    /// the historical semantics (late within the round, reordered after
    /// punctual frames). The hub's dedupe horizon widens to cover this, so a
    /// stale duplicate can never outlive the window that remembers it.
    pub delay_rounds: u64,
    /// Maximum attempts per logical operation (≥ 1). A worker that exhausts the
    /// budget on every envelope of a round is declared dead and evicted.
    pub retry_budget: u32,
    /// Logical per-attempt timeout in seconds; attempt `a` backs off to
    /// `timeout_s · 2^a`, so the total retry penalty of an op is bounded by
    /// `timeout_s · (2^retry_budget − 1)`.
    pub timeout_s: f64,
}

impl CommFaultSpec {
    /// A lossless spec: every leg delivers, one attempt suffices. Useful as the
    /// do-nothing baseline in tests and sweeps.
    pub fn lossless(seed: u64) -> Self {
        CommFaultSpec {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_rounds: 0,
            retry_budget: 1,
            timeout_s: 5.0e-3,
        }
    }

    /// Validate rates, budget and timeout.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("corrupt", self.corrupt),
            ("delay", self.delay),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!(
                    "comm-fault rate `{name}` must be in [0, 1], got {rate}"
                ));
            }
        }
        let total = self.drop + self.duplicate + self.corrupt + self.delay;
        if total > 1.0 {
            return Err(format!(
                "comm-fault rates must sum to at most 1 (drop+duplicate+corrupt+delay = {total})"
            ));
        }
        if self.retry_budget == 0 {
            return Err("comm-fault retry budget must be at least 1".into());
        }
        if self.timeout_s <= 0.0 || !self.timeout_s.is_finite() {
            return Err(format!(
                "comm-fault timeout must be positive and finite, got {}",
                self.timeout_s
            ));
        }
        Ok(())
    }

    /// Whether this spec can never fail a leg (no retries, no evictions possible).
    /// Duplicates and delays still deliver, so they do not count as lossy.
    pub fn is_lossless(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0
    }

    /// One-line human summary of the weather, for scenario reports and logs.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "link weather (seed {}): drop {:.1}% / corrupt {:.1}% / duplicate {:.1}% / delay {:.1}% per leg, {} attempts, {} ms timeout",
            self.seed,
            self.drop * 100.0,
            self.corrupt * 100.0,
            self.duplicate * 100.0,
            self.delay * 100.0,
            self.retry_budget,
            self.timeout_s * 1e3,
        );
        if self.delay_rounds > 0 {
            out.push_str(&format!(
                ", delays up to {} round(s) late",
                self.delay_rounds
            ));
        }
        out
    }
}

/// Seeded description of parameter-server availability. Unlike [`CommFaultSpec`]
/// (which perturbs individual message legs), a PS fault takes the *server* down for
/// whole rounds: every envelope addressed to it fails fast, and workers degrade to
/// local-only training until the server returns. Outages come from two sources that
/// compose: scheduled windows (round-keyed, like `ClusterConditions` crash faults)
/// and a seeded per-round "flaky" probability (brownouts), both pure functions of
/// the round index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsFaultSpec {
    /// Seed of the flaky-outage stream (independent of the training seed so the same
    /// run can be replayed under different server weather).
    pub seed: u64,
    /// Scheduled outage windows as `(start_round, duration_rounds)` pairs. The PS is
    /// unreachable for rounds `start .. start + duration`.
    pub windows: Vec<(usize, usize)>,
    /// Per-round probability that the PS browns out for that round, independent of
    /// the scheduled windows. Must lie in `[0, 1]`.
    pub flaky: f64,
}

impl PsFaultSpec {
    /// A perfectly reliable server: no windows, no brownouts. Behaviorally identical
    /// to configuring no PS faults at all.
    pub fn reliable(seed: u64) -> Self {
        PsFaultSpec {
            seed,
            windows: Vec::new(),
            flaky: 0.0,
        }
    }

    /// Validate windows and the brownout rate.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.flaky) || !self.flaky.is_finite() {
            return Err(format!(
                "ps-fault flaky rate must be in [0, 1], got {}",
                self.flaky
            ));
        }
        for &(start, duration) in &self.windows {
            if duration == 0 {
                return Err(format!(
                    "ps-fault outage window at round {start} must last at least 1 round"
                ));
            }
            if start.checked_add(duration).is_none() {
                return Err(format!(
                    "ps-fault outage window at round {start} overflows (duration {duration})"
                ));
            }
        }
        Ok(())
    }

    /// Whether this spec can never take the server down.
    pub fn is_reliable(&self) -> bool {
        self.windows.is_empty() && self.flaky == 0.0
    }

    /// One-line human summary of the server weather, for scenario reports and logs.
    pub fn describe(&self) -> String {
        let scheduled: usize = self.windows.iter().map(|&(_, d)| d).sum();
        format!(
            "PS availability (seed {}): {} scheduled outage window(s) covering {} round(s), {:.1}% flaky per round",
            self.seed,
            self.windows.len(),
            scheduled,
            self.flaky * 100.0,
        )
    }
}

/// A compiled PS availability schedule: the spec plus the pure `round → down?`
/// function. Both training backends consult the same schedule, so degraded rounds
/// are facts of the configuration — never of timing.
#[derive(Debug, Clone, PartialEq)]
pub struct PsFaultSchedule {
    spec: PsFaultSpec,
}

impl PsFaultSchedule {
    /// Compile a spec (assumed validated).
    pub fn new(spec: PsFaultSpec) -> Self {
        PsFaultSchedule { spec }
    }

    /// The spec this schedule was compiled from.
    pub fn spec(&self) -> &PsFaultSpec {
        &self.spec
    }

    /// Whether `round` falls inside a scheduled outage window.
    pub fn in_window(&self, round: u64) -> bool {
        self.spec.windows.iter().any(|&(start, duration)| {
            round >= start as u64 && round < start as u64 + duration as u64
        })
    }

    /// Whether the PS is unreachable at `round` — a pure function of
    /// `(spec, round)`: scheduled windows OR'd with the seeded brownout draw.
    pub fn down(&self, round: u64) -> bool {
        if self.in_window(round) {
            return true;
        }
        if self.spec.flaky <= 0.0 {
            return false;
        }
        let h = splitmix64(
            splitmix64(self.spec.seed ^ 0x95D0_FFA7_5EED_0002)
                ^ round.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.spec.flaky
    }

    /// Whether `round` is the first round of an outage (the `ps_down` edge).
    pub fn outage_starts(&self, round: u64) -> bool {
        self.down(round) && (round == 0 || !self.down(round - 1))
    }

    /// Whether `round` is the first round after an outage (the `ps_up` edge — the
    /// catch-up sync round).
    pub fn outage_ends(&self, round: u64) -> bool {
        !self.down(round) && round > 0 && self.down(round - 1)
    }

    /// Number of consecutive degraded rounds immediately before `round` — the
    /// backlog a catch-up sync reconciles.
    pub fn rounds_behind(&self, round: u64) -> u64 {
        let mut behind = 0;
        let mut r = round;
        while r > 0 && self.down(r - 1) {
            behind += 1;
            r -= 1;
        }
        behind
    }
}

/// SplitMix64: the standard 64-bit finalizer — high avalanche, cheap, and stable
/// across platforms (pure integer arithmetic).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A compiled fault schedule: the spec plus the fate function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommFaultSchedule {
    spec: CommFaultSpec,
}

impl CommFaultSchedule {
    /// Compile a spec (assumed validated).
    pub fn new(spec: CommFaultSpec) -> Self {
        CommFaultSchedule { spec }
    }

    /// The spec this schedule was compiled from.
    pub fn spec(&self) -> &CommFaultSpec {
        &self.spec
    }

    /// The raw hash of one leg (also used to pick deterministic corruption offsets).
    pub fn leg_hash(&self, worker: usize, round: u64, attempt: u32, leg: Leg) -> u64 {
        let leg_tag = match leg {
            Leg::Request => 0u64,
            Leg::Response => 1u64,
        };
        let mut h = splitmix64(self.spec.seed ^ 0xC0A1_F00D_5EED_0001);
        h = splitmix64(h ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = splitmix64(h ^ round.wrapping_mul(0xD1B5_4A32_D192_ED03));
        h = splitmix64(h ^ (attempt as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7));
        splitmix64(h ^ leg_tag)
    }

    /// The fate of one leg: a threshold lookup on the hash, mapped to a uniform
    /// value in `[0, 1)` with 53 bits of precision.
    pub fn leg_fate(&self, worker: usize, round: u64, attempt: u32, leg: Leg) -> Fate {
        let h = self.leg_hash(worker, round, attempt, leg);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let s = &self.spec;
        if u < s.drop {
            Fate::Drop
        } else if u < s.drop + s.corrupt {
            Fate::Corrupt
        } else if u < s.drop + s.corrupt + s.duplicate {
            Fate::Duplicate
        } else if u < s.drop + s.corrupt + s.duplicate + s.delay {
            Fate::Delay
        } else {
            Fate::Deliver
        }
    }

    /// Whether attempt `attempt` of `(worker, round)` completes: both legs must
    /// deliver (duplicated and delayed frames still deliver; drops and corruptions
    /// do not).
    pub fn attempt_succeeds(&self, worker: usize, round: u64, attempt: u32) -> bool {
        [Leg::Request, Leg::Response].iter().all(|&leg| {
            !matches!(
                self.leg_fate(worker, round, attempt, leg),
                Fate::Drop | Fate::Corrupt
            )
        })
    }

    /// The first attempt index (0-based) at which `(worker, round)` completes, or
    /// `None` if the whole retry budget fails — the eviction condition.
    pub fn first_success_attempt(&self, worker: usize, round: u64) -> Option<u32> {
        (0..self.spec.retry_budget).find(|&a| self.attempt_succeeds(worker, round, a))
    }

    /// Attempts consumed by a completing op (`first success + 1`), or `None` when
    /// the budget is exhausted.
    pub fn attempts_used(&self, worker: usize, round: u64) -> Option<u32> {
        self.first_success_attempt(worker, round).map(|a| a + 1)
    }

    /// Deterministic backoff before retrying attempt `attempt` (the timeout that
    /// expired on it): `timeout_s · 2^attempt`.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        self.spec.timeout_s * (1u64 << attempt.min(62)) as f64
    }

    /// Total timeout/backoff seconds wasted by `(worker, round)` before its first
    /// success (0.0 when the first attempt lands).
    pub fn retry_penalty_s(&self, worker: usize, round: u64) -> f64 {
        match self.first_success_attempt(worker, round) {
            Some(k) => (0..k).map(|a| self.backoff_s(a)).sum(),
            None => (0..self.spec.retry_budget).map(|a| self.backoff_s(a)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lossy(seed: u64) -> CommFaultSpec {
        CommFaultSpec {
            seed,
            drop: 0.2,
            duplicate: 0.1,
            corrupt: 0.1,
            delay: 0.1,
            delay_rounds: 0,
            retry_budget: 4,
            timeout_s: 1.0e-2,
        }
    }

    #[test]
    fn validation_accepts_sane_specs_and_rejects_bad_ones() {
        assert!(CommFaultSpec::lossless(0).validate().is_ok());
        assert!(lossy(1).validate().is_ok());
        let mut bad = lossy(1);
        bad.drop = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = lossy(1);
        bad.drop = 0.5;
        bad.duplicate = 0.6;
        assert!(bad.validate().is_err(), "rates summing past 1 are rejected");
        let mut bad = lossy(1);
        bad.retry_budget = 0;
        assert!(bad.validate().is_err());
        let mut bad = lossy(1);
        bad.timeout_s = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fates_are_pure_functions_of_the_key() {
        let s = CommFaultSchedule::new(lossy(42));
        for worker in 0..4 {
            for round in 0..16u64 {
                for attempt in 0..4 {
                    for leg in [Leg::Request, Leg::Response] {
                        assert_eq!(
                            s.leg_fate(worker, round, attempt, leg),
                            s.leg_fate(worker, round, attempt, leg)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lossless_spec_always_succeeds_on_the_first_attempt() {
        let s = CommFaultSchedule::new(CommFaultSpec::lossless(7));
        for worker in 0..8 {
            for round in 0..64u64 {
                assert_eq!(s.first_success_attempt(worker, round), Some(0));
                assert_eq!(s.attempts_used(worker, round), Some(1));
                assert_eq!(s.retry_penalty_s(worker, round), 0.0);
            }
        }
    }

    #[test]
    fn duplicate_and_delay_only_weather_never_retries() {
        let mut spec = CommFaultSpec::lossless(3);
        spec.duplicate = 0.5;
        spec.delay = 0.4;
        spec.retry_budget = 3;
        let s = CommFaultSchedule::new(spec);
        for worker in 0..4 {
            for round in 0..128u64 {
                assert_eq!(s.attempts_used(worker, round), Some(1));
            }
        }
    }

    #[test]
    fn heavy_drops_exhaust_small_budgets_somewhere() {
        let mut spec = lossy(11);
        spec.drop = 0.8;
        spec.retry_budget = 2;
        let s = CommFaultSchedule::new(spec);
        let evicted = (0..4)
            .flat_map(|w| (0..64u64).map(move |r| (w, r)))
            .any(|(w, r)| s.first_success_attempt(w, r).is_none());
        assert!(
            evicted,
            "an 80% drop rate must defeat a 2-attempt budget somewhere"
        );
    }

    #[test]
    fn backoff_doubles_and_penalty_sums_the_failed_timeouts() {
        let s = CommFaultSchedule::new(lossy(5));
        assert_eq!(s.backoff_s(0), 1.0e-2);
        assert_eq!(s.backoff_s(1), 2.0e-2);
        assert_eq!(s.backoff_s(2), 4.0e-2);
        // Find a key that needed exactly one retry and check its penalty.
        let mut checked = false;
        for w in 0..4 {
            for r in 0..256u64 {
                if s.first_success_attempt(w, r) == Some(1) {
                    assert_eq!(s.retry_penalty_s(w, r), s.backoff_s(0));
                    checked = true;
                }
            }
        }
        assert!(checked, "the lossy spec must retry somewhere in 1024 ops");
    }

    #[test]
    fn ps_fault_validation_accepts_sane_specs_and_rejects_bad_ones() {
        assert!(PsFaultSpec::reliable(0).validate().is_ok());
        let spec = PsFaultSpec {
            seed: 9,
            windows: vec![(3, 2), (10, 1)],
            flaky: 0.1,
        };
        assert!(spec.validate().is_ok());
        let mut bad = spec.clone();
        bad.flaky = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = spec.clone();
        bad.windows.push((7, 0));
        assert!(bad.validate().is_err(), "zero-length windows are rejected");
        let mut bad = spec;
        bad.windows.push((usize::MAX, 2));
        assert!(bad.validate().is_err(), "overflowing windows are rejected");
    }

    #[test]
    fn ps_windows_pin_down_rounds_exactly() {
        let s = PsFaultSchedule::new(PsFaultSpec {
            seed: 1,
            windows: vec![(3, 2), (10, 1)],
            flaky: 0.0,
        });
        let down: Vec<u64> = (0..16u64).filter(|&r| s.down(r)).collect();
        assert_eq!(down, vec![3, 4, 10]);
        assert!(s.outage_starts(3) && !s.outage_starts(4));
        assert!(s.outage_ends(5) && s.outage_ends(11));
        assert!(!s.outage_ends(4), "still inside the window");
        assert_eq!(s.rounds_behind(5), 2);
        assert_eq!(s.rounds_behind(11), 1);
        assert_eq!(s.rounds_behind(3), 0);
    }

    #[test]
    fn reliable_ps_spec_is_never_down() {
        let s = PsFaultSchedule::new(PsFaultSpec::reliable(77));
        assert!(s.spec().is_reliable());
        assert!((0..512u64).all(|r| !s.down(r)));
    }

    #[test]
    fn flaky_ps_brownouts_are_seeded_and_roughly_calibrated() {
        let spec = PsFaultSpec {
            seed: 21,
            windows: Vec::new(),
            flaky: 0.3,
        };
        let a = PsFaultSchedule::new(spec.clone());
        let b = PsFaultSchedule::new(spec);
        let downs = (0..1000u64).filter(|&r| a.down(r)).count();
        assert!(
            (200..400).contains(&downs),
            "30% flaky rate should brown out ~300/1000 rounds, saw {downs}"
        );
        for r in 0..1000u64 {
            assert_eq!(a.down(r), b.down(r), "brownouts are pure functions");
        }
        let other = PsFaultSchedule::new(PsFaultSpec {
            seed: 22,
            windows: Vec::new(),
            flaky: 0.3,
        });
        assert!(
            (0..1000u64).any(|r| a.down(r) != other.down(r)),
            "different seeds draw different brownouts"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // Scheduled windows always imply downtime, edges are consistent with the
        // down function, and the backlog counter matches a naive recount.
        #[test]
        fn ps_schedule_edges_and_backlog_are_consistent(
            seed in 0u64..1000,
            start in 0usize..20,
            duration in 1usize..6,
            flaky in 0.0f64..0.5,
        ) {
            let spec = PsFaultSpec { seed, windows: vec![(start, duration)], flaky };
            prop_assert!(spec.validate().is_ok());
            let s = PsFaultSchedule::new(spec);
            for r in start as u64..(start + duration) as u64 {
                prop_assert!(s.down(r));
            }
            for r in 0..40u64 {
                prop_assert_eq!(s.down(r), s.down(r), "pure function");
                prop_assert_eq!(s.outage_starts(r), s.down(r) && (r == 0 || !s.down(r - 1)));
                prop_assert_eq!(s.outage_ends(r), !s.down(r) && r > 0 && s.down(r - 1));
                let naive = (0..r).rev().take_while(|&p| s.down(p)).count() as u64;
                prop_assert_eq!(s.rounds_behind(r), naive);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // Retries are always bounded: every (worker, round) either completes within
        // the budget or is marked evictable — and the answer is stable.
        #[test]
        fn retries_are_bounded_and_deterministic(
            seed in 0u64..1000,
            drop in 0.0f64..0.9,
            corrupt in 0.0f64..0.1,
            budget in 1u32..6,
        ) {
            let spec = CommFaultSpec {
                seed,
                drop,
                duplicate: 0.0,
                corrupt,
                delay: 0.0,
                delay_rounds: 0,
                retry_budget: budget,
                timeout_s: 1.0e-3,
            };
            // Rates max out at 0.9 + 0.1 = 1.0 (exclusive ends), so every drawn
            // spec is valid.
            assert!(spec.validate().is_ok());
            let s = CommFaultSchedule::new(spec);
            for w in 0..3 {
                for r in 0..32u64 {
                    let a = s.first_success_attempt(w, r);
                    prop_assert_eq!(a, s.first_success_attempt(w, r));
                    if let Some(k) = a {
                        prop_assert!(k < budget);
                        prop_assert!(s.attempt_succeeds(w, r, k));
                        for early in 0..k {
                            prop_assert!(!s.attempt_succeeds(w, r, early));
                        }
                    }
                }
            }
        }
    }
}

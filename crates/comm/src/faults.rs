//! Deterministic message-fault schedules for the transport layer.
//!
//! A [`CommFaultSpec`] describes how unreliable the cluster's links are: per-leg
//! probabilities of dropping, corrupting, duplicating and delaying a frame, plus the
//! retry budget and the logical timeout that bounds every operation. A
//! [`CommFaultSchedule`] turns the spec into a *pure function*: the fate of every
//! message leg is a hash of `(seed, worker, round, attempt, leg)` — never of wall
//! clocks, thread scheduling or message content — so a faulty run is exactly as
//! deterministic as a lossless one, and both training backends (the sequential
//! simulator and the thread-per-worker driver) derive identical fault histories
//! without coordination.
//!
//! The fate key deliberately excludes the message *kind*: all envelopes a worker
//! sends in one round share the same per-attempt "link weather". That is what makes
//! per-round outcomes (retry counts, evictions) well-defined facts of the schedule
//! rather than of how many envelopes an algorithm happens to send, and it is what
//! the eviction compiler in `selsync-core` relies on to precompute membership.

use serde::{Deserialize, Serialize};

/// Which leg of a request/response exchange a frame travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Worker → hub (the request envelope).
    Request,
    /// Hub → worker (the acknowledgement envelope).
    Response,
}

/// The deterministic fate of one frame on one leg of one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// The frame arrives intact.
    Deliver,
    /// The frame is lost entirely.
    Drop,
    /// The frame arrives with flipped bytes (the checksum rejects it).
    Corrupt,
    /// The frame arrives twice (idempotent handlers dedupe the copy).
    Duplicate,
    /// The frame arrives late but within the logical timeout (reordered after
    /// punctual frames; harmless under round-keyed, idempotent handlers).
    Delay,
}

/// Seeded description of an unreliable interconnect. All rates are per *leg* (a
/// request/response exchange rolls two fates), must lie in `[0, 1]`, and must sum to
/// at most 1 — the remainder is the clean-delivery probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommFaultSpec {
    /// Seed of the fault stream (independent of the training seed so the same run
    /// can be replayed under different weather).
    pub seed: u64,
    /// Probability a leg loses its frame.
    pub drop: f64,
    /// Probability a leg delivers its frame twice.
    pub duplicate: f64,
    /// Probability a leg delivers a corrupted frame (rejected by checksum — counts
    /// as a failed leg, like a drop, but exercises the reject path).
    pub corrupt: f64,
    /// Probability a leg delivers its frame late (still within the timeout).
    pub delay: f64,
    /// Maximum attempts per logical operation (≥ 1). A worker that exhausts the
    /// budget on every envelope of a round is declared dead and evicted.
    pub retry_budget: u32,
    /// Logical per-attempt timeout in seconds; attempt `a` backs off to
    /// `timeout_s · 2^a`, so the total retry penalty of an op is bounded by
    /// `timeout_s · (2^retry_budget − 1)`.
    pub timeout_s: f64,
}

impl CommFaultSpec {
    /// A lossless spec: every leg delivers, one attempt suffices. Useful as the
    /// do-nothing baseline in tests and sweeps.
    pub fn lossless(seed: u64) -> Self {
        CommFaultSpec {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            retry_budget: 1,
            timeout_s: 5.0e-3,
        }
    }

    /// Validate rates, budget and timeout.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("corrupt", self.corrupt),
            ("delay", self.delay),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!(
                    "comm-fault rate `{name}` must be in [0, 1], got {rate}"
                ));
            }
        }
        let total = self.drop + self.duplicate + self.corrupt + self.delay;
        if total > 1.0 {
            return Err(format!(
                "comm-fault rates must sum to at most 1 (drop+duplicate+corrupt+delay = {total})"
            ));
        }
        if self.retry_budget == 0 {
            return Err("comm-fault retry budget must be at least 1".into());
        }
        if self.timeout_s <= 0.0 || !self.timeout_s.is_finite() {
            return Err(format!(
                "comm-fault timeout must be positive and finite, got {}",
                self.timeout_s
            ));
        }
        Ok(())
    }

    /// Whether this spec can never fail a leg (no retries, no evictions possible).
    /// Duplicates and delays still deliver, so they do not count as lossy.
    pub fn is_lossless(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0
    }

    /// One-line human summary of the weather, for scenario reports and logs.
    pub fn describe(&self) -> String {
        format!(
            "link weather (seed {}): drop {:.1}% / corrupt {:.1}% / duplicate {:.1}% / delay {:.1}% per leg, {} attempts, {} ms timeout",
            self.seed,
            self.drop * 100.0,
            self.corrupt * 100.0,
            self.duplicate * 100.0,
            self.delay * 100.0,
            self.retry_budget,
            self.timeout_s * 1e3,
        )
    }
}

/// SplitMix64: the standard 64-bit finalizer — high avalanche, cheap, and stable
/// across platforms (pure integer arithmetic).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A compiled fault schedule: the spec plus the fate function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommFaultSchedule {
    spec: CommFaultSpec,
}

impl CommFaultSchedule {
    /// Compile a spec (assumed validated).
    pub fn new(spec: CommFaultSpec) -> Self {
        CommFaultSchedule { spec }
    }

    /// The spec this schedule was compiled from.
    pub fn spec(&self) -> &CommFaultSpec {
        &self.spec
    }

    /// The raw hash of one leg (also used to pick deterministic corruption offsets).
    pub fn leg_hash(&self, worker: usize, round: u64, attempt: u32, leg: Leg) -> u64 {
        let leg_tag = match leg {
            Leg::Request => 0u64,
            Leg::Response => 1u64,
        };
        let mut h = splitmix64(self.spec.seed ^ 0xC0A1_F00D_5EED_0001);
        h = splitmix64(h ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = splitmix64(h ^ round.wrapping_mul(0xD1B5_4A32_D192_ED03));
        h = splitmix64(h ^ (attempt as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7));
        splitmix64(h ^ leg_tag)
    }

    /// The fate of one leg: a threshold lookup on the hash, mapped to a uniform
    /// value in `[0, 1)` with 53 bits of precision.
    pub fn leg_fate(&self, worker: usize, round: u64, attempt: u32, leg: Leg) -> Fate {
        let h = self.leg_hash(worker, round, attempt, leg);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let s = &self.spec;
        if u < s.drop {
            Fate::Drop
        } else if u < s.drop + s.corrupt {
            Fate::Corrupt
        } else if u < s.drop + s.corrupt + s.duplicate {
            Fate::Duplicate
        } else if u < s.drop + s.corrupt + s.duplicate + s.delay {
            Fate::Delay
        } else {
            Fate::Deliver
        }
    }

    /// Whether attempt `attempt` of `(worker, round)` completes: both legs must
    /// deliver (duplicated and delayed frames still deliver; drops and corruptions
    /// do not).
    pub fn attempt_succeeds(&self, worker: usize, round: u64, attempt: u32) -> bool {
        [Leg::Request, Leg::Response].iter().all(|&leg| {
            !matches!(
                self.leg_fate(worker, round, attempt, leg),
                Fate::Drop | Fate::Corrupt
            )
        })
    }

    /// The first attempt index (0-based) at which `(worker, round)` completes, or
    /// `None` if the whole retry budget fails — the eviction condition.
    pub fn first_success_attempt(&self, worker: usize, round: u64) -> Option<u32> {
        (0..self.spec.retry_budget).find(|&a| self.attempt_succeeds(worker, round, a))
    }

    /// Attempts consumed by a completing op (`first success + 1`), or `None` when
    /// the budget is exhausted.
    pub fn attempts_used(&self, worker: usize, round: u64) -> Option<u32> {
        self.first_success_attempt(worker, round).map(|a| a + 1)
    }

    /// Deterministic backoff before retrying attempt `attempt` (the timeout that
    /// expired on it): `timeout_s · 2^attempt`.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        self.spec.timeout_s * (1u64 << attempt.min(62)) as f64
    }

    /// Total timeout/backoff seconds wasted by `(worker, round)` before its first
    /// success (0.0 when the first attempt lands).
    pub fn retry_penalty_s(&self, worker: usize, round: u64) -> f64 {
        match self.first_success_attempt(worker, round) {
            Some(k) => (0..k).map(|a| self.backoff_s(a)).sum(),
            None => (0..self.spec.retry_budget).map(|a| self.backoff_s(a)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lossy(seed: u64) -> CommFaultSpec {
        CommFaultSpec {
            seed,
            drop: 0.2,
            duplicate: 0.1,
            corrupt: 0.1,
            delay: 0.1,
            retry_budget: 4,
            timeout_s: 1.0e-2,
        }
    }

    #[test]
    fn validation_accepts_sane_specs_and_rejects_bad_ones() {
        assert!(CommFaultSpec::lossless(0).validate().is_ok());
        assert!(lossy(1).validate().is_ok());
        let mut bad = lossy(1);
        bad.drop = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = lossy(1);
        bad.drop = 0.5;
        bad.duplicate = 0.6;
        assert!(bad.validate().is_err(), "rates summing past 1 are rejected");
        let mut bad = lossy(1);
        bad.retry_budget = 0;
        assert!(bad.validate().is_err());
        let mut bad = lossy(1);
        bad.timeout_s = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fates_are_pure_functions_of_the_key() {
        let s = CommFaultSchedule::new(lossy(42));
        for worker in 0..4 {
            for round in 0..16u64 {
                for attempt in 0..4 {
                    for leg in [Leg::Request, Leg::Response] {
                        assert_eq!(
                            s.leg_fate(worker, round, attempt, leg),
                            s.leg_fate(worker, round, attempt, leg)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lossless_spec_always_succeeds_on_the_first_attempt() {
        let s = CommFaultSchedule::new(CommFaultSpec::lossless(7));
        for worker in 0..8 {
            for round in 0..64u64 {
                assert_eq!(s.first_success_attempt(worker, round), Some(0));
                assert_eq!(s.attempts_used(worker, round), Some(1));
                assert_eq!(s.retry_penalty_s(worker, round), 0.0);
            }
        }
    }

    #[test]
    fn duplicate_and_delay_only_weather_never_retries() {
        let mut spec = CommFaultSpec::lossless(3);
        spec.duplicate = 0.5;
        spec.delay = 0.4;
        spec.retry_budget = 3;
        let s = CommFaultSchedule::new(spec);
        for worker in 0..4 {
            for round in 0..128u64 {
                assert_eq!(s.attempts_used(worker, round), Some(1));
            }
        }
    }

    #[test]
    fn heavy_drops_exhaust_small_budgets_somewhere() {
        let mut spec = lossy(11);
        spec.drop = 0.8;
        spec.retry_budget = 2;
        let s = CommFaultSchedule::new(spec);
        let evicted = (0..4)
            .flat_map(|w| (0..64u64).map(move |r| (w, r)))
            .any(|(w, r)| s.first_success_attempt(w, r).is_none());
        assert!(
            evicted,
            "an 80% drop rate must defeat a 2-attempt budget somewhere"
        );
    }

    #[test]
    fn backoff_doubles_and_penalty_sums_the_failed_timeouts() {
        let s = CommFaultSchedule::new(lossy(5));
        assert_eq!(s.backoff_s(0), 1.0e-2);
        assert_eq!(s.backoff_s(1), 2.0e-2);
        assert_eq!(s.backoff_s(2), 4.0e-2);
        // Find a key that needed exactly one retry and check its penalty.
        let mut checked = false;
        for w in 0..4 {
            for r in 0..256u64 {
                if s.first_success_attempt(w, r) == Some(1) {
                    assert_eq!(s.retry_penalty_s(w, r), s.backoff_s(0));
                    checked = true;
                }
            }
        }
        assert!(checked, "the lossy spec must retry somewhere in 1024 ops");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // Retries are always bounded: every (worker, round) either completes within
        // the budget or is marked evictable — and the answer is stable.
        #[test]
        fn retries_are_bounded_and_deterministic(
            seed in 0u64..1000,
            drop in 0.0f64..0.9,
            corrupt in 0.0f64..0.1,
            budget in 1u32..6,
        ) {
            let spec = CommFaultSpec {
                seed,
                drop,
                duplicate: 0.0,
                corrupt,
                delay: 0.0,
                retry_budget: budget,
                timeout_s: 1.0e-3,
            };
            // Rates max out at 0.9 + 0.1 = 1.0 (exclusive ends), so every drawn
            // spec is valid.
            assert!(spec.validate().is_ok());
            let s = CommFaultSchedule::new(spec);
            for w in 0..3 {
                for r in 0..32u64 {
                    let a = s.first_success_attempt(w, r);
                    prop_assert_eq!(a, s.first_success_attempt(w, r));
                    if let Some(k) = a {
                        prop_assert!(k < budget);
                        prop_assert!(s.attempt_succeeds(w, r, k));
                        for early in 0..k {
                            prop_assert!(!s.attempt_succeeds(w, r, early));
                        }
                    }
                }
            }
        }
    }
}

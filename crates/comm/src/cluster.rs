//! Worker-thread cluster harness.
//!
//! Spawns one OS thread per worker, hands each a worker id plus shared handles (the
//! parameter server and the collectives group), and collects the per-worker results.
//! The threaded algorithm drivers in the `selsync` crate and the integration tests use
//! this to exercise the real blocking/rendezvous code paths.

use crate::collective::Collective;
use crate::ps::ParameterServer;
use std::sync::Arc;

/// Shared handles every worker thread receives.
#[derive(Clone)]
pub struct ClusterHandles {
    /// The parameter server shared by all workers.
    pub ps: Arc<ParameterServer>,
    /// The collectives group (status all-gather, all-reduce, barrier).
    pub collective: Arc<Collective>,
    /// Total number of workers.
    pub world_size: usize,
}

/// Build cluster handles for `world_size` workers around an initial global vector.
pub fn make_handles(world_size: usize, initial_global: Vec<f32>) -> ClusterHandles {
    ClusterHandles {
        ps: Arc::new(ParameterServer::new(initial_global)),
        collective: Arc::new(Collective::new(world_size)),
        world_size,
    }
}

/// Run `f(worker_id, handles)` on `world_size` OS threads and return the results in
/// worker order. Panics in any worker propagate to the caller.
pub fn run_cluster<T, F>(world_size: usize, initial_global: Vec<f32>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, ClusterHandles) -> T + Send + Sync,
{
    run_cluster_with(make_handles(world_size, initial_global), f)
}

/// [`run_cluster`] over pre-built handles — for drivers that need to configure the
/// shared parameter server (e.g. enable the scheduled-snapshot ring for deterministic
/// rejoin pulls) before the worker threads start.
pub fn run_cluster_with<T, F>(handles: ClusterHandles, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, ClusterHandles) -> T + Send + Sync,
{
    let world_size = handles.world_size;
    std::thread::scope(|scope| {
        let joins: Vec<_> = (0..world_size)
            .map(|w| {
                let h = handles.clone();
                let f = &f;
                scope.spawn(move || f(w, h))
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cluster_returns_results_in_worker_order() {
        let out = run_cluster(4, vec![0.0; 1], |w, _| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn workers_share_the_parameter_server() {
        let out = run_cluster(4, vec![0.0; 2], |w, h| {
            let avg = h.ps.sync_round(&[w as f32, 1.0], h.world_size);
            avg[0]
        });
        assert!(out.iter().all(|&x| (x - 1.5).abs() < 1e-6));
    }

    #[test]
    fn workers_share_the_collective() {
        let out = run_cluster(3, vec![], |w, h| h.collective.allgather_flags(w, w == 1));
        for flags in out {
            assert_eq!(flags, vec![false, true, false]);
        }
    }
}

//! Serialized, length-prefixed wire messages for the transport layer.
//!
//! Every communication op a worker performs in a round is described by an
//! [`Envelope`]: a message kind, the logical round id, the sender id and an opaque
//! payload. Envelopes encode to a rigid little-endian frame with a length prefix and
//! a trailing checksum, so a receiver can (a) detect truncation, (b) detect
//! corruption without trusting the content, and (c) dedupe replays by the
//! `(kind, round, sender)` identity — the three properties the fault-tolerant
//! message layer in [`crate::transport`] is built on.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [len: u32]            length of everything after this prefix
//! [kind: u8]            message kind tag
//! [round: u64]          logical round id
//! [sender: u32]         worker id (or HUB_SENDER for acknowledgements)
//! [payload_len: u32]    payload byte count
//! [payload: ...]        opaque op payload
//! [checksum: u64]       FNV-1a over every preceding byte of the frame
//! ```

/// Sender id used by the hub (parameter-server side) on response envelopes.
pub const HUB_SENDER: u32 = u32::MAX;

/// Fixed frame overhead in bytes: length prefix + kind + round + sender +
/// payload length + checksum.
pub const FRAME_OVERHEAD_BYTES: usize = 4 + 1 + 8 + 4 + 4 + 8;

/// The kind of operation an envelope describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Pull the global model (initial pull or rejoin pull).
    Pull,
    /// Push local parameters to the PS.
    Push,
    /// A blocking synchronization round (push + averaged pull).
    SyncRound,
    /// The 1-bit sync-status contribution to the flags all-gather.
    Flags,
    /// A scalar contribution to the round-signal all-reduce (loss, Δ(g)).
    ScalarReduce,
    /// A fixed-size vector contribution to the round-signal all-reduce (Δ moments).
    VecReduce,
    /// Hub acknowledgement of a received envelope.
    Ack,
}

impl MsgKind {
    /// Wire tag.
    pub fn as_u8(&self) -> u8 {
        match self {
            MsgKind::Pull => 0,
            MsgKind::Push => 1,
            MsgKind::SyncRound => 2,
            MsgKind::Flags => 3,
            MsgKind::ScalarReduce => 4,
            MsgKind::VecReduce => 5,
            MsgKind::Ack => 6,
        }
    }

    /// Parse a wire tag.
    pub fn from_u8(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => MsgKind::Pull,
            1 => MsgKind::Push,
            2 => MsgKind::SyncRound,
            3 => MsgKind::Flags,
            4 => MsgKind::ScalarReduce,
            5 => MsgKind::VecReduce,
            6 => MsgKind::Ack,
            other => return Err(WireError::UnknownKind(other)),
        })
    }
}

/// Decode failure modes. Corruption anywhere in the frame surfaces as one of these
/// (usually `BadChecksum`); the message layer treats them all as "the leg failed".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the header or the length prefix promises.
    Truncated,
    /// The length prefix disagrees with the actual frame size.
    LengthMismatch { expected: usize, got: usize },
    /// Unknown kind tag.
    UnknownKind(u8),
    /// The trailing checksum does not match the frame content.
    BadChecksum { expected: u64, got: u64 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::LengthMismatch { expected, got } => {
                write!(f, "length prefix {expected} but frame carries {got}")
            }
            WireError::UnknownKind(tag) => write!(f, "unknown message kind tag {tag}"),
            WireError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: frame says {expected:#x}, computed {got:#x}"
                )
            }
        }
    }
}

/// Identity of an envelope for dedupe purposes: retries and duplicated deliveries of
/// the same logical op share this key, so idempotent handlers process it once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnvelopeId {
    pub kind: MsgKind,
    pub round: u64,
    pub sender: u32,
}

/// One wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    pub kind: MsgKind,
    pub round: u64,
    pub sender: u32,
    pub payload: Vec<u8>,
}

/// FNV-1a 64-bit over a byte slice — cheap, well-distributed, dependency-free.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Total frame size for a payload of `payload_len` bytes (the number the cost model
/// charges per (re)transmission).
pub fn frame_len(payload_len: usize) -> usize {
    FRAME_OVERHEAD_BYTES + payload_len
}

impl Envelope {
    /// The dedupe identity.
    pub fn id(&self) -> EnvelopeId {
        EnvelopeId {
            kind: self.kind,
            round: self.round,
            sender: self.sender,
        }
    }

    /// Encode to the canonical length-prefixed frame.
    pub fn encode(&self) -> Vec<u8> {
        let body_len = 1 + 8 + 4 + 4 + self.payload.len() + 8;
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.push(self.kind.as_u8());
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.sender.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode a frame, verifying the length prefix and the checksum. Any corruption
    /// fails here — the message layer never hands garbage to a handler.
    pub fn decode(frame: &[u8]) -> Result<Envelope, WireError> {
        if frame.len() < FRAME_OVERHEAD_BYTES {
            return Err(WireError::Truncated);
        }
        let body_len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        if frame.len() != 4 + body_len {
            return Err(WireError::LengthMismatch {
                expected: body_len,
                got: frame.len().saturating_sub(4),
            });
        }
        let sum_offset = frame.len() - 8;
        let got = checksum(&frame[..sum_offset]);
        let expected = u64::from_le_bytes(frame[sum_offset..].try_into().unwrap());
        if got != expected {
            return Err(WireError::BadChecksum { expected, got });
        }
        let kind = MsgKind::from_u8(frame[4])?;
        let round = u64::from_le_bytes(frame[5..13].try_into().unwrap());
        let sender = u32::from_le_bytes(frame[13..17].try_into().unwrap());
        let payload_len = u32::from_le_bytes(frame[17..21].try_into().unwrap()) as usize;
        if 21 + payload_len + 8 != frame.len() {
            return Err(WireError::LengthMismatch {
                expected: payload_len,
                got: frame.len().saturating_sub(21 + 8),
            });
        }
        Ok(Envelope {
            kind,
            round,
            sender,
            payload: frame[21..21 + payload_len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Envelope {
        Envelope {
            kind: MsgKind::Flags,
            round: 17,
            sender: 3,
            payload: vec![1],
        }
    }

    #[test]
    fn every_kind_round_trips_through_the_tag() {
        for kind in [
            MsgKind::Pull,
            MsgKind::Push,
            MsgKind::SyncRound,
            MsgKind::Flags,
            MsgKind::ScalarReduce,
            MsgKind::VecReduce,
            MsgKind::Ack,
        ] {
            assert_eq!(MsgKind::from_u8(kind.as_u8()), Ok(kind));
        }
        assert_eq!(MsgKind::from_u8(9), Err(WireError::UnknownKind(9)));
    }

    #[test]
    fn encode_decode_round_trips() {
        let env = sample();
        let frame = env.encode();
        assert_eq!(frame.len(), frame_len(env.payload.len()));
        assert_eq!(Envelope::decode(&frame), Ok(env));
    }

    #[test]
    fn empty_payload_round_trips() {
        let env = Envelope {
            kind: MsgKind::Ack,
            round: 0,
            sender: HUB_SENDER,
            payload: vec![],
        };
        assert_eq!(Envelope::decode(&env.encode()), Ok(env));
    }

    #[test]
    fn any_single_byte_corruption_is_rejected() {
        let frame = sample().encode();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0xFF;
            assert!(
                Envelope::decode(&bad).is_err(),
                "flipping byte {i} must not decode cleanly"
            );
        }
    }

    #[test]
    fn truncation_and_length_lies_are_rejected() {
        let frame = sample().encode();
        assert_eq!(Envelope::decode(&frame[..5]), Err(WireError::Truncated));
        assert!(matches!(
            Envelope::decode(&frame[..frame.len() - 1]),
            Err(WireError::LengthMismatch { .. })
        ));
        let mut padded = frame.clone();
        padded.push(0);
        assert!(matches!(
            Envelope::decode(&padded),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn dedupe_id_ignores_payload() {
        let a = sample();
        let mut b = sample();
        b.payload = vec![9, 9, 9];
        assert_eq!(a.id(), b.id());
        let mut c = sample();
        c.round += 1;
        assert_ne!(a.id(), c.id());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_envelopes_round_trip_exactly(
            kind_tag in 0u8..7,
            round in 0u64..u64::MAX,
            sender in 0u32..u32::MAX,
            payload in proptest::collection::vec(0u8..255, 0..64),
        ) {
            let env = Envelope {
                kind: MsgKind::from_u8(kind_tag).unwrap(),
                round,
                sender,
                payload,
            };
            let frame = env.encode();
            prop_assert_eq!(frame.len(), frame_len(env.payload.len()));
            prop_assert_eq!(Envelope::decode(&frame), Ok(env));
        }
    }
}

//! Serialized, length-prefixed wire messages for the transport layer.
//!
//! Every communication op a worker performs in a round is described by an
//! [`Envelope`]: a message kind, the logical round id, the sender id and an opaque
//! payload. Envelopes encode to a rigid little-endian frame with a length prefix and
//! a trailing checksum, so a receiver can (a) detect truncation, (b) detect
//! corruption without trusting the content, and (c) dedupe replays by the
//! `(kind, round, sender)` identity — the three properties the fault-tolerant
//! message layer in [`crate::transport`] is built on.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [len: u32]            length of everything after this prefix
//! [kind: u8]            message kind tag
//! [round: u64]          logical round id
//! [sender: u32]         worker id (or HUB_SENDER for acknowledgements)
//! [payload_len: u32]    payload byte count
//! [payload: ...]        opaque op payload
//! [checksum: u64]       FNV-1a over every preceding byte of the frame
//! ```

/// Sender id used by the hub (parameter-server side) on response envelopes.
pub const HUB_SENDER: u32 = u32::MAX;

/// Fixed frame overhead in bytes: length prefix + kind + round + sender +
/// payload length + checksum.
pub const FRAME_OVERHEAD_BYTES: usize = 4 + 1 + 8 + 4 + 4 + 8;

/// The kind of operation an envelope describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Pull the global model (initial pull or rejoin pull).
    Pull,
    /// Push local parameters to the PS.
    Push,
    /// A blocking synchronization round (push + averaged pull).
    SyncRound,
    /// The 1-bit sync-status contribution to the flags all-gather.
    Flags,
    /// A scalar contribution to the round-signal all-reduce (loss, Δ(g)).
    ScalarReduce,
    /// A fixed-size vector contribution to the round-signal all-reduce (Δ moments).
    VecReduce,
    /// Hub acknowledgement of a received envelope.
    Ack,
    /// A blocking remote-procedure call to the hub process (socket backend):
    /// the payload carries an op tag plus its arguments, and the hub answers
    /// with an `Rpc` envelope carrying the result.
    Rpc,
}

impl MsgKind {
    /// Wire tag.
    pub fn as_u8(&self) -> u8 {
        match self {
            MsgKind::Pull => 0,
            MsgKind::Push => 1,
            MsgKind::SyncRound => 2,
            MsgKind::Flags => 3,
            MsgKind::ScalarReduce => 4,
            MsgKind::VecReduce => 5,
            MsgKind::Ack => 6,
            MsgKind::Rpc => 7,
        }
    }

    /// Parse a wire tag.
    pub fn from_u8(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => MsgKind::Pull,
            1 => MsgKind::Push,
            2 => MsgKind::SyncRound,
            3 => MsgKind::Flags,
            4 => MsgKind::ScalarReduce,
            5 => MsgKind::VecReduce,
            6 => MsgKind::Ack,
            7 => MsgKind::Rpc,
            other => return Err(WireError::UnknownKind(other)),
        })
    }
}

/// Decode failure modes. Corruption anywhere in the frame surfaces as one of these
/// (usually `BadChecksum`); the message layer treats them all as "the leg failed".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the header or the length prefix promises.
    Truncated,
    /// The length prefix disagrees with the actual frame size.
    LengthMismatch { expected: usize, got: usize },
    /// Unknown kind tag.
    UnknownKind(u8),
    /// The trailing checksum does not match the frame content.
    BadChecksum { expected: u64, got: u64 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::LengthMismatch { expected, got } => {
                write!(f, "length prefix {expected} but frame carries {got}")
            }
            WireError::UnknownKind(tag) => write!(f, "unknown message kind tag {tag}"),
            WireError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: frame says {expected:#x}, computed {got:#x}"
                )
            }
        }
    }
}

/// Identity of an envelope for dedupe purposes: retries and duplicated deliveries of
/// the same logical op share this key, so idempotent handlers process it once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnvelopeId {
    pub kind: MsgKind,
    pub round: u64,
    pub sender: u32,
}

/// One wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    pub kind: MsgKind,
    pub round: u64,
    pub sender: u32,
    pub payload: Vec<u8>,
}

/// FNV-1a 64-bit over a byte slice — cheap, well-distributed, dependency-free.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Total frame size for a payload of `payload_len` bytes (the number the cost model
/// charges per (re)transmission).
pub fn frame_len(payload_len: usize) -> usize {
    FRAME_OVERHEAD_BYTES + payload_len
}

impl Envelope {
    /// The dedupe identity.
    pub fn id(&self) -> EnvelopeId {
        EnvelopeId {
            kind: self.kind,
            round: self.round,
            sender: self.sender,
        }
    }

    /// Encode to the canonical length-prefixed frame.
    pub fn encode(&self) -> Vec<u8> {
        let body_len = 1 + 8 + 4 + 4 + self.payload.len() + 8;
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.push(self.kind.as_u8());
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.sender.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode a frame, verifying the length prefix and the checksum. Any corruption
    /// fails here — the message layer never hands garbage to a handler.
    pub fn decode(frame: &[u8]) -> Result<Envelope, WireError> {
        if frame.len() < FRAME_OVERHEAD_BYTES {
            return Err(WireError::Truncated);
        }
        let body_len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        if frame.len() != 4 + body_len {
            return Err(WireError::LengthMismatch {
                expected: body_len,
                got: frame.len().saturating_sub(4),
            });
        }
        let sum_offset = frame.len() - 8;
        let got = checksum(&frame[..sum_offset]);
        let expected = u64::from_le_bytes(frame[sum_offset..].try_into().unwrap());
        if got != expected {
            return Err(WireError::BadChecksum { expected, got });
        }
        let kind = MsgKind::from_u8(frame[4])?;
        let round = u64::from_le_bytes(frame[5..13].try_into().unwrap());
        let sender = u32::from_le_bytes(frame[13..17].try_into().unwrap());
        let payload_len = u32::from_le_bytes(frame[17..21].try_into().unwrap()) as usize;
        if 21 + payload_len + 8 != frame.len() {
            return Err(WireError::LengthMismatch {
                expected: payload_len,
                got: frame.len().saturating_sub(21 + 8),
            });
        }
        Ok(Envelope {
            kind,
            round,
            sender,
            payload: frame[21..21 + payload_len].to_vec(),
        })
    }
}

/// Upper bound on a single frame's body length. Byte-stream corruption of the
/// length prefix must not make the decoder buffer gigabytes waiting for a frame
/// that will never complete; the largest legitimate frame is a full parameter
/// vector, orders of magnitude below this.
pub const MAX_FRAME_BODY_BYTES: usize = 1 << 30;

/// Incremental frame decoder for byte streams (TCP/UDS), where a single `read`
/// may return part of a frame or several coalesced frames. Feed arbitrary
/// chunks with [`push`](FrameDecoder::push) and drain complete raw frames with
/// [`next_frame`](FrameDecoder::next_frame); frame *content* is still validated
/// by [`Envelope::decode`] — this type only reassembles the length-prefixed
/// framing.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    cursor: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append bytes read from the stream, in arrival order.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame (length prefix included), `Ok(None)` if the
    /// buffered bytes do not yet form one, or an error if the length prefix is
    /// implausibly large (a corrupted stream that would otherwise buffer
    /// forever).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.cursor..];
        if avail.len() < 4 {
            self.compact();
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(avail[0..4].try_into().unwrap()) as usize;
        if body_len > MAX_FRAME_BODY_BYTES {
            return Err(WireError::LengthMismatch {
                expected: body_len,
                got: avail.len().saturating_sub(4),
            });
        }
        if avail.len() < 4 + body_len {
            self.compact();
            return Ok(None);
        }
        let frame = avail[..4 + body_len].to_vec();
        self.cursor += 4 + body_len;
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed as a complete frame — nonzero after
    /// EOF means the stream ended mid-frame (a truncated tail).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.cursor
    }

    fn compact(&mut self) {
        if self.cursor > 0 {
            self.buf.drain(..self.cursor);
            self.cursor = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Envelope {
        Envelope {
            kind: MsgKind::Flags,
            round: 17,
            sender: 3,
            payload: vec![1],
        }
    }

    #[test]
    fn every_kind_round_trips_through_the_tag() {
        for kind in [
            MsgKind::Pull,
            MsgKind::Push,
            MsgKind::SyncRound,
            MsgKind::Flags,
            MsgKind::ScalarReduce,
            MsgKind::VecReduce,
            MsgKind::Ack,
            MsgKind::Rpc,
        ] {
            assert_eq!(MsgKind::from_u8(kind.as_u8()), Ok(kind));
        }
        assert_eq!(MsgKind::from_u8(9), Err(WireError::UnknownKind(9)));
    }

    #[test]
    fn encode_decode_round_trips() {
        let env = sample();
        let frame = env.encode();
        assert_eq!(frame.len(), frame_len(env.payload.len()));
        assert_eq!(Envelope::decode(&frame), Ok(env));
    }

    #[test]
    fn empty_payload_round_trips() {
        let env = Envelope {
            kind: MsgKind::Ack,
            round: 0,
            sender: HUB_SENDER,
            payload: vec![],
        };
        assert_eq!(Envelope::decode(&env.encode()), Ok(env));
    }

    #[test]
    fn any_single_byte_corruption_is_rejected() {
        let frame = sample().encode();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0xFF;
            assert!(
                Envelope::decode(&bad).is_err(),
                "flipping byte {i} must not decode cleanly"
            );
        }
    }

    #[test]
    fn truncation_and_length_lies_are_rejected() {
        let frame = sample().encode();
        assert_eq!(Envelope::decode(&frame[..5]), Err(WireError::Truncated));
        assert!(matches!(
            Envelope::decode(&frame[..frame.len() - 1]),
            Err(WireError::LengthMismatch { .. })
        ));
        let mut padded = frame.clone();
        padded.push(0);
        assert!(matches!(
            Envelope::decode(&padded),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn decoder_reassembles_frames_fed_one_byte_at_a_time() {
        let envs = vec![
            sample(),
            Envelope {
                kind: MsgKind::Ack,
                round: 18,
                sender: HUB_SENDER,
                payload: vec![],
            },
            Envelope {
                kind: MsgKind::Rpc,
                round: 19,
                sender: 2,
                payload: (0u8..37).collect(),
            },
        ];
        let stream: Vec<u8> = envs.iter().flat_map(|e| e.encode()).collect();
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for &b in &stream {
            dec.push(&[b]);
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(Envelope::decode(&frame).unwrap());
            }
        }
        assert_eq!(out, envs);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn decoder_handles_arbitrary_split_points_and_coalesced_reads() {
        let envs: Vec<Envelope> = (0..5)
            .map(|i| Envelope {
                kind: MsgKind::Flags,
                round: i,
                sender: i as u32,
                payload: vec![i as u8; i as usize * 3],
            })
            .collect();
        let stream: Vec<u8> = envs.iter().flat_map(|e| e.encode()).collect();
        // Try every single split point of the whole multi-frame stream: the
        // two chunks cover "partial frame then the rest" and "several frames
        // coalesced into one read" at once.
        for split in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            let mut out = Vec::new();
            for chunk in [&stream[..split], &stream[split..]] {
                dec.push(chunk);
                while let Some(frame) = dec.next_frame().unwrap() {
                    out.push(Envelope::decode(&frame).unwrap());
                }
            }
            assert_eq!(out, envs, "split at byte {split}");
            assert_eq!(dec.pending(), 0, "split at byte {split}");
        }
    }

    #[test]
    fn decoder_reports_truncated_tails_as_pending_bytes() {
        let frame = sample().encode();
        let mut dec = FrameDecoder::new();
        dec.push(&frame[..frame.len() - 1]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), frame.len() - 1);
    }

    #[test]
    fn decoder_rejects_implausible_length_prefixes() {
        let mut dec = FrameDecoder::new();
        dec.push(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn dedupe_id_ignores_payload() {
        let a = sample();
        let mut b = sample();
        b.payload = vec![9, 9, 9];
        assert_eq!(a.id(), b.id());
        let mut c = sample();
        c.round += 1;
        assert_ne!(a.id(), c.id());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_envelopes_round_trip_exactly(
            kind_tag in 0u8..8,
            round in 0u64..u64::MAX,
            sender in 0u32..u32::MAX,
            payload in proptest::collection::vec(0u8..255, 0..64),
        ) {
            let env = Envelope {
                kind: MsgKind::from_u8(kind_tag).unwrap(),
                round,
                sender,
                payload,
            };
            let frame = env.encode();
            prop_assert_eq!(frame.len(), frame_len(env.payload.len()));
            prop_assert_eq!(Envelope::decode(&frame), Ok(env));
        }

        // The incremental decoder must agree with the one-shot codec on any
        // frame sequence chopped at any points: same envelope stream out, and
        // a truncated tail is never silently swallowed.
        #[test]
        fn incremental_decoder_matches_one_shot_codec_under_any_chunking(
            tags in proptest::collection::vec(0u8..8, 1..8),
            rounds in proptest::collection::vec(0u64..1000, 1..8),
            senders in proptest::collection::vec(0u32..64, 1..8),
            pool in proptest::collection::vec(0u8..255, 0..64),
            payload_lens in proptest::collection::vec(0usize..48, 1..8),
            cuts in proptest::collection::vec(0usize..usize::MAX, 0..12),
            truncate in 0usize..8,
        ) {
            // Parallel draws stand in for a vec-of-structs strategy; fields
            // beyond the first are indexed cyclically.
            let envs: Vec<Envelope> = (0..tags.len())
                .map(|i| {
                    let len = payload_lens[i % payload_lens.len()].min(pool.len());
                    Envelope {
                        kind: MsgKind::from_u8(tags[i]).unwrap(),
                        round: rounds[i % rounds.len()],
                        sender: senders[i % senders.len()],
                        payload: pool[..len].to_vec(),
                    }
                })
                .collect();
            let mut stream: Vec<u8> = envs.iter().flat_map(|e| e.encode()).collect();
            let dropped = truncate.min(stream.len());
            stream.truncate(stream.len() - dropped);
            let expected: Vec<Envelope> = {
                // One-shot reference: walk whole frames off the byte string.
                let mut out = Vec::new();
                let mut rest = &stream[..];
                while rest.len() >= 4 {
                    let body = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
                    if rest.len() < 4 + body {
                        break;
                    }
                    out.push(Envelope::decode(&rest[..4 + body]).unwrap());
                    rest = &rest[4 + body..];
                }
                out
            };
            // Chop the stream at the drawn cut points (mapped into range).
            let mut points: Vec<usize> =
                cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
            points.push(stream.len());
            points.sort_unstable();
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            let mut start = 0;
            for &end in &points {
                dec.push(&stream[start..end]);
                start = end;
                while let Some(frame) = dec.next_frame().unwrap() {
                    got.push(Envelope::decode(&frame).unwrap());
                }
            }
            prop_assert_eq!(&got, &expected);
            // Whatever the one-shot walk left over is exactly what the
            // incremental decoder reports as a truncated tail.
            let consumed: usize = expected.iter().map(|e| frame_len(e.payload.len())).sum();
            prop_assert_eq!(dec.pending(), stream.len() - consumed);
        }
    }
}

//! Layers with hand-written forward/backward passes.
//!
//! Each layer caches whatever it needs from the forward pass to compute gradients in the
//! backward pass (the usual tape-free, layer-local autodiff used before general autograd
//! engines). Correctness of every backward pass is certified by the finite-difference
//! checks in [`crate::gradcheck`] and the unit tests below.

use selsync_tensor::{ops, rng, Tensor};

/// Write `f(src)` elementwise into `slot`, reusing the slot's buffer when the shape
/// matches — the per-step cache path of the layers allocates nothing in steady state.
fn map_into_slot(slot: &mut Option<Tensor>, src: &Tensor, f: impl Fn(f32) -> f32) {
    match slot {
        Some(t) if t.shape() == src.shape() => {
            for (d, &s) in t.data_mut().iter_mut().zip(src.data().iter()) {
                *d = f(s);
            }
        }
        _ => *slot = Some(src.map(&f)),
    }
}

/// Move `value` into `slot`, recycling the buffer the slot previously held.
fn replace_recycling(slot: &mut Option<Tensor>, value: Tensor) {
    if let Some(prev) = slot.replace(value) {
        prev.recycle();
    }
}

/// A differentiable network layer.
///
/// Layers own their parameters and their parameter gradients. Gradients are accumulated
/// by [`Layer::backward`] and reset with [`Layer::zero_grads`]. The distributed training
/// algorithms never touch layers directly; they use the flattened vector interface on
/// [`crate::model::Sequential`].
pub trait Layer: Send {
    /// Short human-readable layer name (used in gradient KDE plots, Fig. 3/11).
    fn name(&self) -> &'static str;

    /// Forward pass. `train` enables training-only behaviour (e.g. dropout).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass: given `dL/d output`, accumulate parameter gradients and return
    /// `dL/d input`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Immutable references to this layer's parameter tensors (possibly empty).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable references to this layer's parameter tensors (same order as [`Layer::params`]).
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Immutable references to this layer's gradient tensors (same order as [`Layer::params`]).
    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Reset all accumulated gradients to zero.
    fn zero_grads(&mut self) {}

    /// Total number of scalar parameters in this layer.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Position every stochastic layer's RNG for the `forward_index`-th *training*
    /// forward pass of a canonical shared stream (a no-op for deterministic layers).
    ///
    /// The simulator's worker-parallel rounds run each worker on its own model
    /// replica, but the sequential baseline fed every worker through one shared
    /// engine whose dropout RNG advanced worker by worker. Seeking before each
    /// training forward lets independent replicas reproduce that single shared
    /// stream bit-for-bit, so results do not depend on which engine ran which
    /// worker. Callers that never seek get the classic stateful stream.
    fn seek_dropout(&mut self, forward_index: u64) {
        let _ = forward_index;
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully-connected layer: `Y = X W + b` with `W` of shape `(in_dim, out_dim)`.
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Create a Linear layer with He-normal weights and zero bias.
    pub fn new(rng_: &mut rng::SelRng, in_dim: usize, out_dim: usize) -> Self {
        Linear {
            weight: selsync_tensor::init::he_normal(rng_, in_dim, out_dim),
            bias: Tensor::zeros(1, out_dim),
            grad_weight: Tensor::zeros(in_dim, out_dim),
            grad_bias: Tensor::zeros(1, out_dim),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        // Zero-alloc hot path: X*W into a scratch tensor, bias added in place.
        let mut out = Tensor::scratch_zeros(input.rows(), self.out_dim());
        ops::matmul_acc(input, &self.weight, &mut out).expect("linear forward shape");
        let bias = self.bias.row(0);
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        if train {
            input.clone_into_slot(&mut self.cached_input);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW += X^T dY ; db += column sums of dY ; dX = dY W^T — the first two
        // accumulate straight into the gradient tensors, no temporaries.
        ops::matmul_at_acc(input, grad_output, &mut self.grad_weight).expect("linear dW");
        ops::sum_rows_acc(grad_output, &mut self.grad_bias).expect("accumulate db");
        ops::matmul_bt(grad_output, &self.weight).expect("linear dX")
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }
}

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Create a ReLU activation.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::scratch_copy(input);
        out.map_inplace(|x| x.max(0.0));
        if train {
            map_into_slot(&mut self.mask, input, |x| if x > 0.0 { 1.0 } else { 0.0 });
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward called before forward");
        let mut out = Tensor::scratch_copy(grad_output);
        out.zip_mut_with(mask, |g, m| g * m)
            .expect("relu backward shape");
        out
    }
}

/// Hyperbolic tangent activation.
#[derive(Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Create a Tanh activation.
    pub fn new() -> Self {
        Tanh {
            cached_output: None,
        }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::scratch_copy(input);
        out.map_inplace(|x| x.tanh());
        if train {
            out.clone_into_slot(&mut self.cached_output);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        let mut dx = Tensor::scratch_copy(grad_output);
        dx.zip_mut_with(out, |g, y| g * (1.0 - y * y))
            .expect("tanh backward shape");
        dx
    }
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

/// Inverted dropout: during training, zeroes activations with probability `p` and scales
/// the survivors by `1/(1-p)`; a no-op at evaluation time.
pub struct Dropout {
    p: f32,
    rng: rng::SelRng,
    mask: Option<Tensor>,
    /// Pending absolute stream position (in training forwards) set by
    /// [`Layer::seek_dropout`]; consumed by the next training forward.
    pending_seek: Option<u64>,
    /// Mask length of the first *seeked* training forward. The seek formula
    /// `j * input.len()` assumes every training forward draws the same number of
    /// keystream words; this records the length so a ragged batch panics in debug
    /// builds instead of silently desynchronising replica streams.
    seeked_len: Option<usize>,
}

impl Dropout {
    /// Create a dropout layer with drop probability `p` and its own deterministic RNG.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Dropout {
            p,
            rng: rng::seeded(seed),
            mask: None,
            pending_seek: None,
            seeked_len: None,
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        // A mask draws exactly `input.len()` keystream words, so the j-th training
        // forward of the canonical shared stream starts at word j * input.len(); the
        // O(1) ChaCha seek positions this replica's RNG there. This requires every
        // training forward to use the same mask length — assert it rather than let a
        // ragged batch silently desynchronise replica streams.
        if let Some(j) = self.pending_seek.take() {
            let len = self.seeked_len.get_or_insert(input.len());
            debug_assert_eq!(
                *len,
                input.len(),
                "seeked dropout requires a constant batch shape across training forwards"
            );
            self.rng.set_word_pos(j.wrapping_mul(input.len() as u64));
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        // Regenerate the mask into the cached buffer (same RNG stream as before).
        if !matches!(&self.mask, Some(m) if m.shape() == input.shape()) {
            self.mask = Some(Tensor::zeros(input.rows(), input.cols()));
        }
        let mask = self.mask.as_mut().expect("mask just ensured");
        {
            use rand::Rng;
            for m in mask.data_mut() {
                *m = if self.rng.gen::<f32>() < keep {
                    scale
                } else {
                    0.0
                };
            }
        }
        let mut out = Tensor::scratch_copy(input);
        out.zip_mut_with(mask, |x, m| x * m)
            .expect("dropout forward shape");
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => {
                let mut out = Tensor::scratch_copy(grad_output);
                out.zip_mut_with(mask, |g, m| g * m)
                    .expect("dropout backward shape");
                out
            }
            None => grad_output.clone(),
        }
    }

    fn seek_dropout(&mut self, forward_index: u64) {
        self.pending_seek = Some(forward_index);
    }
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

/// Layer normalisation over the feature dimension of each row, with learnable scale
/// (`gamma`) and shift (`beta`).
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    eps: f32,
    cached_normed: Option<Tensor>,
    cached_inv_std: Option<Vec<f32>>,
}

impl LayerNorm {
    /// Create a LayerNorm over `dim` features.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::ones(1, dim),
            beta: Tensor::zeros(1, dim),
            grad_gamma: Tensor::zeros(1, dim),
            grad_beta: Tensor::zeros(1, dim),
            eps: 1e-5,
            cached_normed: None,
            cached_inv_std: None,
        }
    }
}

impl Layer for LayerNorm {
    fn name(&self) -> &'static str {
        "layernorm"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (rows, cols) = input.shape();
        let mut normed = Tensor::scratch_zeros(rows, cols);
        // Only a training forward may consume the cached workspace: an eval-mode
        // forward must leave the caches of a preceding training forward intact (a
        // mid-step evaluation must not break the next backward).
        let mut inv_stds = if train {
            self.cached_inv_std.take().map_or_else(
                || Vec::with_capacity(rows),
                |mut v| {
                    v.clear();
                    v
                },
            )
        } else {
            let mut v = selsync_tensor::scratch::take_zeroed(rows);
            v.clear();
            v
        };
        for r in 0..rows {
            let row = input.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            for (c, &x) in row.iter().enumerate() {
                normed.set(r, c, (x - mean) * inv_std);
            }
        }
        let mut out = Tensor::scratch_zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                out.set(
                    r,
                    c,
                    normed.get(r, c) * self.gamma.get(0, c) + self.beta.get(0, c),
                );
            }
        }
        if train {
            replace_recycling(&mut self.cached_normed, normed);
            self.cached_inv_std = Some(inv_stds);
        } else {
            normed.recycle();
            selsync_tensor::scratch::recycle(inv_stds);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let normed = self
            .cached_normed
            .as_ref()
            .expect("backward called before forward");
        let inv_stds = self
            .cached_inv_std
            .as_ref()
            .expect("backward called before forward");
        let (rows, cols) = grad_output.shape();
        let n = cols as f32;
        let mut grad_input = Tensor::scratch_zeros(rows, cols);

        for c in 0..cols {
            let mut gg = 0.0f32;
            let mut gb = 0.0f32;
            for r in 0..rows {
                gg += grad_output.get(r, c) * normed.get(r, c);
                gb += grad_output.get(r, c);
            }
            self.grad_gamma.set(0, c, self.grad_gamma.get(0, c) + gg);
            self.grad_beta.set(0, c, self.grad_beta.get(0, c) + gb);
        }

        // Standard layer-norm backward: for each row,
        //   dx = inv_std/N * (N*dxhat - sum(dxhat) - xhat * sum(dxhat * xhat))
        // where dxhat = dy * gamma.
        for (r, &inv_std) in inv_stds.iter().enumerate().take(rows) {
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for c in 0..cols {
                let dxhat = grad_output.get(r, c) * self.gamma.get(0, c);
                sum_dxhat += dxhat;
                sum_dxhat_xhat += dxhat * normed.get(r, c);
            }
            for c in 0..cols {
                let dxhat = grad_output.get(r, c) * self.gamma.get(0, c);
                let dx =
                    (inv_std / n) * (n * dxhat - sum_dxhat - normed.get(r, c) * sum_dxhat_xhat);
                grad_input.set(r, c, dx);
            }
        }
        grad_input
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_gamma, &self.grad_beta]
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }
}

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

/// Token-embedding lookup.
///
/// Input is a `(batch, tokens)` tensor whose entries are token ids stored as `f32`;
/// output is `(batch, tokens * dim)` with per-token embeddings concatenated along the
/// feature axis. The gradient is scatter-added into the embedding table.
pub struct Embedding {
    table: Tensor,
    grad_table: Tensor,
    dim: usize,
    cached_ids: Option<Vec<Vec<usize>>>,
}

impl Embedding {
    /// Create an embedding table of shape `(vocab, dim)` with small normal init.
    pub fn new(rng_: &mut rng::SelRng, vocab: usize, dim: usize) -> Self {
        Embedding {
            table: selsync_tensor::init::normal(rng_, vocab, dim, 0.0, 0.1),
            grad_table: Tensor::zeros(vocab, dim),
            dim,
            cached_ids: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Layer for Embedding {
    fn name(&self) -> &'static str {
        "embedding"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (batch, tokens) = input.shape();
        let vocab = self.table.rows();
        let mut out = Tensor::scratch_zeros(batch, tokens * self.dim);
        // Reuse the cached id rows (inner vectors keep their capacity) — but only in
        // training mode: an eval forward must leave a previous training forward's
        // cache intact for the next backward.
        let mut ids = if train {
            self.cached_ids.take().unwrap_or_default()
        } else {
            Vec::new()
        };
        ids.resize_with(batch, Vec::new);
        for (b, row_ids) in ids.iter_mut().enumerate() {
            row_ids.clear();
            for t in 0..tokens {
                let id = (input.get(b, t).round().max(0.0) as usize).min(vocab - 1);
                row_ids.push(id);
                let emb = self.table.row(id);
                out.row_mut(b)[t * self.dim..(t + 1) * self.dim].copy_from_slice(emb);
            }
        }
        if train {
            self.cached_ids = Some(ids);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let ids = self
            .cached_ids
            .as_ref()
            .expect("backward called before forward");
        let batch = ids.len();
        let tokens = if batch > 0 { ids[0].len() } else { 0 };
        for (b, row_ids) in ids.iter().enumerate() {
            for (t, &id) in row_ids.iter().enumerate() {
                let slice = &grad_output.row(b)[t * self.dim..(t + 1) * self.dim];
                let dst = self.grad_table.row_mut(id);
                for (d, &g) in dst.iter_mut().zip(slice.iter()) {
                    *d += g;
                }
            }
        }
        // Token ids are not differentiable; return a zero gradient of the input shape.
        Tensor::scratch_zeros(batch, tokens)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.table]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.table]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_table]
    }

    fn zero_grads(&mut self) {
        self.grad_table.fill(0.0);
    }
}

// ---------------------------------------------------------------------------
// Attention pooling
// ---------------------------------------------------------------------------

/// Single-head additive attention pooling over a token sequence.
///
/// Input is the `(batch, tokens * dim)` output of an [`Embedding`] layer. Each row is
/// interpreted as `tokens` vectors of size `dim`; a learned query vector `q` scores each
/// token (`s_t = q · e_t`), scores are soft-maxed into attention weights `α`, and the
/// output is the attention-weighted sum `Σ α_t e_t` of shape `(batch, dim)`. This is the
/// attention mechanism of the paper's Transformer encoder reduced to a pooling head —
/// small enough for hand-written gradients, but it preserves the softmax-attention
/// training dynamics (sharp early perplexity drop, §IV of the paper).
pub struct AttentionPool {
    query: Tensor,
    grad_query: Tensor,
    /// Learnable per-position score bias (1 x tokens). Content scores alone cannot
    /// distinguish *where* a token sits in the context, which makes next-token
    /// prediction on Markov data impossible beyond the unigram floor; the bias is
    /// initialised as a recency ramp (ALiBi-style) so the pool starts out focused on
    /// the most recent tokens and can sharpen or flatten that focus during training.
    pos_bias: Tensor,
    grad_pos_bias: Tensor,
    dim: usize,
    tokens: usize,
    cached_input: Option<Tensor>,
    cached_alpha: Option<Tensor>,
}

impl AttentionPool {
    /// Create an attention-pooling head over `tokens` vectors of size `dim`.
    pub fn new(rng_: &mut rng::SelRng, tokens: usize, dim: usize) -> Self {
        let pos_bias = Tensor::from_fn(1, tokens, |_, t| (t as f32 - (tokens - 1) as f32) * 2.0);
        AttentionPool {
            query: selsync_tensor::init::normal(rng_, 1, dim, 0.0, 0.2),
            grad_query: Tensor::zeros(1, dim),
            pos_bias,
            grad_pos_bias: Tensor::zeros(1, tokens),
            dim,
            tokens,
            cached_input: None,
            cached_alpha: None,
        }
    }
}

impl Layer for AttentionPool {
    fn name(&self) -> &'static str {
        "attention_pool"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let batch = input.rows();
        assert_eq!(
            input.cols(),
            self.tokens * self.dim,
            "attention pool input width"
        );
        let q = self.query.row(0);
        let mut alpha = Tensor::scratch_zeros(batch, self.tokens);
        let mut out = Tensor::scratch_zeros(batch, self.dim);
        // One scratch score buffer reused across the whole batch.
        let mut scores = selsync_tensor::scratch::take_zeroed(self.tokens);
        for b in 0..batch {
            let row = input.row(b);
            // scores
            scores.fill(0.0);
            for t in 0..self.tokens {
                let e = &row[t * self.dim..(t + 1) * self.dim];
                let content: f32 = e.iter().zip(q.iter()).map(|(x, y)| x * y).sum();
                scores[t] = content + self.pos_bias.get(0, t);
            }
            // softmax
            let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for s in scores.iter_mut() {
                *s = (*s - max).exp();
                denom += *s;
            }
            for (t, s) in scores.iter().enumerate() {
                alpha.set(b, t, s / denom);
            }
            // weighted sum
            for t in 0..self.tokens {
                let a = alpha.get(b, t);
                let e = &row[t * self.dim..(t + 1) * self.dim];
                for (o, &x) in out.row_mut(b).iter_mut().zip(e.iter()) {
                    *o += a * x;
                }
            }
        }
        selsync_tensor::scratch::recycle(scores);
        if train {
            input.clone_into_slot(&mut self.cached_input);
            replace_recycling(&mut self.cached_alpha, alpha);
        } else {
            alpha.recycle();
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let alpha = self
            .cached_alpha
            .as_ref()
            .expect("backward called before forward");
        let batch = input.rows();
        let q = self.query.row(0).to_vec();
        let mut grad_input = Tensor::scratch_zeros(batch, self.tokens * self.dim);
        // Scratch buffers reused across the batch.
        let mut dalpha = selsync_tensor::scratch::take_zeroed(self.tokens);
        let mut ds = selsync_tensor::scratch::take_zeroed(self.tokens);

        for b in 0..batch {
            let row = input.row(b);
            let dout = grad_output.row(b);
            // dα_t = dout · e_t
            for (t, d) in dalpha.iter_mut().enumerate() {
                let e = &row[t * self.dim..(t + 1) * self.dim];
                *d = e.iter().zip(dout.iter()).map(|(x, y)| x * y).sum();
            }
            // softmax backward: ds_t = α_t (dα_t - Σ_j α_j dα_j)
            let dot: f32 = (0..self.tokens).map(|t| alpha.get(b, t) * dalpha[t]).sum();
            for (t, s) in ds.iter_mut().enumerate() {
                *s = alpha.get(b, t) * (dalpha[t] - dot);
            }
            // dq += Σ_t ds_t e_t ; db_t += ds_t ; de_t = α_t dout + ds_t q
            for t in 0..self.tokens {
                let e = &row[t * self.dim..(t + 1) * self.dim];
                for (d, &ed) in e.iter().enumerate() {
                    self.grad_query
                        .set(0, d, self.grad_query.get(0, d) + ds[t] * ed);
                }
                self.grad_pos_bias
                    .set(0, t, self.grad_pos_bias.get(0, t) + ds[t]);
                let gi = &mut grad_input.row_mut(b)[t * self.dim..(t + 1) * self.dim];
                for (d, g) in gi.iter_mut().enumerate() {
                    *g = alpha.get(b, t) * dout[d] + ds[t] * q[d];
                }
            }
        }
        selsync_tensor::scratch::recycle(dalpha);
        selsync_tensor::scratch::recycle(ds);
        grad_input
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.query, &self.pos_bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.query, &mut self.pos_bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_query, &self.grad_pos_bias]
    }

    fn zero_grads(&mut self) {
        self.grad_query.fill(0.0);
        self.grad_pos_bias.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_tensor::rng::seeded;

    #[test]
    fn linear_forward_shapes_and_bias() {
        let mut rng = seeded(1);
        let mut l = Linear::new(&mut rng, 4, 3);
        // Force known weights.
        l.params_mut()[0].map_inplace(|_| 0.0);
        l.params_mut()[1].map_inplace(|_| 1.5);
        let x = Tensor::ones(2, 4);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), (2, 3));
        assert!(y.data().iter().all(|&v| (v - 1.5).abs() < 1e-6));
    }

    #[test]
    fn linear_backward_accumulates() {
        let mut rng = seeded(2);
        let mut l = Linear::new(&mut rng, 3, 2);
        let x = Tensor::ones(4, 3);
        let _ = l.forward(&x, true);
        let dy = Tensor::ones(4, 2);
        let _ = l.backward(&dy);
        // dW = X^T dY = all 4s, db = 4
        assert!(l.grads()[0].data().iter().all(|&v| (v - 4.0).abs() < 1e-6));
        assert!(l.grads()[1].data().iter().all(|&v| (v - 4.0).abs() < 1e-6));
        // Second backward accumulates.
        let _ = l.forward(&x, true);
        let _ = l.backward(&dy);
        assert!(l.grads()[0].data().iter().all(|&v| (v - 8.0).abs() < 1e-6));
        l.zero_grads();
        assert!(l.grads()[0].data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Tensor::ones(1, 4);
        let dx = r.backward(&dy);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_derivative_matches_identity() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(1, 2, vec![0.0, 0.5]).unwrap();
        let y = t.forward(&x, true);
        assert!((y.get(0, 0)).abs() < 1e-6);
        let dx = t.backward(&Tensor::ones(1, 2));
        assert!((dx.get(0, 0) - 1.0).abs() < 1e-6); // tanh'(0) = 1
        assert!(dx.get(0, 1) < 1.0);
    }

    #[test]
    fn dropout_eval_is_identity_and_train_scales() {
        let mut d = Dropout::new(0.5, 99);
        let x = Tensor::ones(8, 16);
        let y_eval = d.forward(&x, false);
        assert_eq!(y_eval, x);
        let y_train = d.forward(&x, true);
        // Every surviving activation is scaled by 2.
        assert!(y_train
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        let kept = y_train.data().iter().filter(|&&v| v > 0.0).count();
        assert!(kept > 0 && kept < y_train.len());
    }

    #[test]
    fn seeked_replicas_reproduce_a_shared_dropout_stream() {
        // One stateful layer running 6 training forwards in sequence is the baseline.
        let x = Tensor::ones(4, 16);
        let mut shared = Dropout::new(0.4, 123);
        let baseline: Vec<Tensor> = (0..6).map(|_| shared.forward(&x, true)).collect();
        // Two independent replicas split the same forwards (even/odd), each seeking to
        // the global forward index first — every mask must match the shared stream.
        let mut even = Dropout::new(0.4, 123);
        let mut odd = Dropout::new(0.4, 123);
        for (j, expect) in baseline.iter().enumerate() {
            let replica = if j % 2 == 0 { &mut even } else { &mut odd };
            replica.seek_dropout(j as u64);
            assert_eq!(&replica.forward(&x, true), expect, "forward {j}");
        }
        // An eval forward between seeks neither draws nor consumes the pending seek.
        let mut r = Dropout::new(0.4, 123);
        r.seek_dropout(3);
        assert_eq!(r.forward(&x, false), x);
        assert_eq!(r.forward(&x, true), baseline[3]);
    }

    #[test]
    fn layernorm_rows_are_normalised() {
        let mut ln = LayerNorm::new(6);
        let x = Tensor::from_fn(3, 6, |r, c| (r * 6 + c) as f32);
        let y = ln.forward(&x, true);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 6.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn embedding_lookup_and_scatter_grad() {
        let mut rng = seeded(3);
        let mut e = Embedding::new(&mut rng, 10, 4);
        let ids = Tensor::from_vec(2, 3, vec![0.0, 1.0, 2.0, 2.0, 2.0, 9.0]).unwrap();
        let out = e.forward(&ids, true);
        assert_eq!(out.shape(), (2, 12));
        // Row 0 token 1 equals table row 1.
        assert_eq!(&out.row(0)[4..8], e.params()[0].row(1));
        let dy = Tensor::ones(2, 12);
        let dx = e.backward(&dy);
        assert_eq!(dx.shape(), (2, 3));
        // Token 2 appears three times, so its grad row sums to 3 per dim.
        assert!(e.grads()[0].row(2).iter().all(|&v| (v - 3.0).abs() < 1e-6));
        assert!(e.grads()[0].row(5).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn attention_pool_outputs_convex_combination() {
        let mut rng = seeded(4);
        let mut a = AttentionPool::new(&mut rng, 3, 2);
        // Tokens: (1,0), (0,1), (1,1)
        let x = Tensor::from_vec(1, 6, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let y = a.forward(&x, true);
        assert_eq!(y.shape(), (1, 2));
        // Output coordinates lie within the convex hull of token coordinates: [0, 1].
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let dx = a.backward(&Tensor::ones(1, 2));
        assert_eq!(dx.shape(), (1, 6));
        assert!(dx.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn eval_forward_does_not_destroy_training_caches() {
        // A mid-step evaluation (train forward -> eval forward -> backward) must use
        // the *training* forward's caches; the eval pass must leave them intact.
        let mut rng = seeded(8);
        let mut ln = LayerNorm::new(4);
        let train_x = Tensor::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        let eval_x = Tensor::from_fn(3, 4, |r, c| -((r + c) as f32));
        let _ = ln.forward(&train_x, true);
        let _ = ln.forward(&eval_x, false);
        let dx = ln.backward(&Tensor::ones(2, 4));
        assert_eq!(dx.shape(), (2, 4));
        assert!(dx.data().iter().all(|v| v.is_finite()));

        let mut e = Embedding::new(&mut rng, 10, 4);
        let train_ids = Tensor::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let eval_ids = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let _ = e.forward(&train_ids, true);
        let _ = e.forward(&eval_ids, false);
        let dx = e.backward(&Tensor::ones(1, 8));
        assert_eq!(dx.shape(), (1, 2));
        // The gradient landed on the *training* batch's ids.
        assert!(e.grads()[0].row(1).iter().any(|&v| v != 0.0));
        assert!(e.grads()[0].row(3).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn param_counts() {
        let mut rng = seeded(5);
        let l = Linear::new(&mut rng, 10, 20);
        assert_eq!(l.param_count(), 10 * 20 + 20);
        let e = Embedding::new(&mut rng, 50, 8);
        assert_eq!(e.param_count(), 400);
        assert_eq!(Relu::new().param_count(), 0);
    }
}

//! Learning-rate schedules used in the paper's experimental setup (§IV-A).
//!
//! * ResNet101: lr 0.1 decayed ×0.1 after epochs 110 and 150,
//! * VGG11: lr 0.01 decayed ×0.1 after epochs 50 and 75,
//! * AlexNet: fixed lr 1e-4 (Adam),
//! * Transformer: lr 2.0 decayed ×0.8 every 2000 iterations.
//!
//! The learning-rate decay points are where the paper observes spikes in `Δ(g_i)`
//! (Fig. 5), so the schedules matter for reproducing the shape of those curves.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule evaluated per iteration (with the epoch supplied by the caller).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The learning rate.
        lr: f32,
    },
    /// Multiply the base lr by `factor` after each listed epoch milestone.
    StepEpochDecay {
        /// Base learning rate.
        base_lr: f32,
        /// Epochs after which the lr is multiplied by `factor` (ascending).
        milestones: Vec<usize>,
        /// Multiplicative decay factor applied at each milestone.
        factor: f32,
    },
    /// Multiply the base lr by `factor` every `every_iters` iterations.
    StepIterDecay {
        /// Base learning rate.
        base_lr: f32,
        /// Decay period in iterations.
        every_iters: usize,
        /// Multiplicative decay factor.
        factor: f32,
    },
}

impl LrSchedule {
    /// Learning rate at a given `epoch` and global `iteration`.
    pub fn lr_at(&self, epoch: usize, iteration: usize) -> f32 {
        match self {
            LrSchedule::Constant { lr } => *lr,
            LrSchedule::StepEpochDecay {
                base_lr,
                milestones,
                factor,
            } => {
                let decays = milestones.iter().filter(|&&m| epoch >= m).count() as i32;
                base_lr * factor.powi(decays)
            }
            LrSchedule::StepIterDecay {
                base_lr,
                every_iters,
                factor,
            } => {
                if *every_iters == 0 {
                    return *base_lr;
                }
                let decays = (iteration / every_iters) as i32;
                base_lr * factor.powi(decays)
            }
        }
    }

    /// Base learning rate before any decay.
    pub fn base_lr(&self) -> f32 {
        match self {
            LrSchedule::Constant { lr } => *lr,
            LrSchedule::StepEpochDecay { base_lr, .. } => *base_lr,
            LrSchedule::StepIterDecay { base_lr, .. } => *base_lr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant { lr: 0.01 };
        assert_eq!(s.lr_at(0, 0), 0.01);
        assert_eq!(s.lr_at(500, 1_000_000), 0.01);
    }

    #[test]
    fn epoch_decay_applies_at_milestones() {
        let s = LrSchedule::StepEpochDecay {
            base_lr: 0.1,
            milestones: vec![110, 150],
            factor: 0.1,
        };
        assert!((s.lr_at(0, 0) - 0.1).abs() < 1e-8);
        assert!((s.lr_at(109, 0) - 0.1).abs() < 1e-8);
        assert!((s.lr_at(110, 0) - 0.01).abs() < 1e-8);
        assert!((s.lr_at(150, 0) - 0.001).abs() < 1e-8);
        assert!((s.lr_at(200, 0) - 0.001).abs() < 1e-8);
    }

    #[test]
    fn iter_decay_applies_every_period() {
        let s = LrSchedule::StepIterDecay {
            base_lr: 2.0,
            every_iters: 2000,
            factor: 0.8,
        };
        assert!((s.lr_at(0, 0) - 2.0).abs() < 1e-6);
        assert!((s.lr_at(0, 1999) - 2.0).abs() < 1e-6);
        assert!((s.lr_at(0, 2000) - 1.6).abs() < 1e-6);
        assert!((s.lr_at(0, 4000) - 1.28).abs() < 1e-6);
    }

    #[test]
    fn zero_period_is_constant() {
        let s = LrSchedule::StepIterDecay {
            base_lr: 1.0,
            every_iters: 0,
            factor: 0.5,
        };
        assert_eq!(s.lr_at(3, 123), 1.0);
    }

    #[test]
    fn base_lr_accessor() {
        assert_eq!(LrSchedule::Constant { lr: 0.3 }.base_lr(), 0.3);
        assert_eq!(
            LrSchedule::StepEpochDecay {
                base_lr: 0.1,
                milestones: vec![],
                factor: 0.5
            }
            .base_lr(),
            0.1
        );
    }
}

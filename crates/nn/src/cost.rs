//! Analytical compute/memory cost model for the paper-scale workloads.
//!
//! Fig. 2 of the paper measures per-iteration compute time and GPU memory as the
//! per-worker batch size grows (the argument against scaling SSP's batch to `N·b`).
//! We have no K80 GPU, so we reproduce the *shape* of those curves from the nominal
//! per-sample FLOP and activation-byte footprints carried by each
//! [`crate::model::PaperModel`], evaluated against a configurable [`DeviceProfile`].

use crate::model::NominalFootprint;
use serde::{Deserialize, Serialize};

/// A simple accelerator profile (sustained throughput and memory capacity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Sustained single-precision throughput in FLOP/s.
    pub flops_per_sec: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Human-readable device name.
    pub name: String,
}

impl DeviceProfile {
    /// NVIDIA Tesla K80 (the device of Fig. 2): ~4.1 TFLOP/s FP32 (one GK210), 12 GB.
    pub fn tesla_k80() -> Self {
        DeviceProfile {
            flops_per_sec: 4.1e12 * 0.35,
            memory_bytes: 12 * 1024 * 1024 * 1024,
            name: "Tesla K80".to_string(),
        }
    }

    /// NVIDIA V100 (the training cluster of §IV-A): ~14 TFLOP/s FP32, 16 GB.
    pub fn v100() -> Self {
        DeviceProfile {
            flops_per_sec: 14.0e12 * 0.4,
            memory_bytes: 16 * 1024 * 1024 * 1024,
            name: "V100".to_string(),
        }
    }
}

/// Estimated compute time, in milliseconds, for one training iteration over `batch`
/// samples (forward + backward).
pub fn compute_time_ms(nominal: &NominalFootprint, batch: usize, device: &DeviceProfile) -> f64 {
    let flops = nominal.flops_per_sample as f64 * batch as f64;
    // A fixed per-iteration launch/framework overhead keeps small batches from looking free.
    let overhead_ms = 2.0;
    overhead_ms + flops / device.flops_per_sec * 1e3
}

/// Estimated training-time memory footprint, in bytes, for one iteration over `batch`
/// samples: parameters + gradients + optimizer state (3× wire size) plus activations.
pub fn memory_bytes(nominal: &NominalFootprint, batch: usize) -> u64 {
    nominal.wire_bytes * 3 + nominal.activation_bytes_per_sample * batch as u64
}

/// Whether a batch of the given size fits in device memory (the Transformer in Fig. 2
/// fails with OOM beyond batch 64 on the 12 GB K80).
pub fn fits_in_memory(nominal: &NominalFootprint, batch: usize, device: &DeviceProfile) -> bool {
    memory_bytes(nominal, batch) <= device.memory_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelKind, PaperModel};

    #[test]
    fn compute_time_grows_with_batch() {
        let m = PaperModel::build(ModelKind::ResNetLike, 1);
        let dev = DeviceProfile::tesla_k80();
        let t32 = compute_time_ms(&m.nominal, 32, &dev);
        let t1024 = compute_time_ms(&m.nominal, 1024, &dev);
        assert!(t1024 > t32 * 10.0, "{t32} vs {t1024}");
    }

    #[test]
    fn resnet_is_the_most_compute_heavy() {
        let dev = DeviceProfile::tesla_k80();
        let times: Vec<f64> = ModelKind::all()
            .iter()
            .map(|&k| compute_time_ms(&PaperModel::build(k, 1).nominal, 256, &dev))
            .collect();
        // ResNet101 (index 0) is the deepest / slowest per sample in Fig. 2a.
        assert!(times[0] >= times[1] && times[0] >= times[2]);
    }

    #[test]
    fn transformer_ooms_beyond_batch_64_on_k80() {
        let m = PaperModel::build(ModelKind::TransformerLike, 1);
        let dev = DeviceProfile::tesla_k80();
        assert!(fits_in_memory(&m.nominal, 64, &dev));
        assert!(!fits_in_memory(&m.nominal, 128, &dev));
    }

    #[test]
    fn memory_grows_linearly_with_batch() {
        let m = PaperModel::build(ModelKind::AlexLike, 1);
        let m64 = memory_bytes(&m.nominal, 64);
        let m128 = memory_bytes(&m.nominal, 128);
        assert_eq!(m128 - m64, m.nominal.activation_bytes_per_sample * 64);
    }
}

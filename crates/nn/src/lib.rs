//! # selsync-nn
//!
//! Neural-network substrate for the SelSync reproduction.
//!
//! The paper trains four PyTorch models (ResNet101, VGG11, AlexNet and a small
//! Transformer LM). This crate provides the equivalent *from-scratch* substrate:
//!
//! * [`layer`] — layers with hand-written forward/backward passes (Linear, ReLU, Tanh,
//!   Dropout, LayerNorm, Embedding, attention pooling),
//! * [`model`] — [`model::Sequential`] networks, residual blocks, and the four
//!   paper-model analogues ([`model::PaperModel`]) together with their *nominal*
//!   communication sizes and compute/memory cost estimates used by the network model,
//! * [`loss`] — softmax cross-entropy, accuracy (top-1/top-k) and perplexity,
//! * [`optim`] — SGD (momentum + weight decay) and Adam operating on flattened
//!   parameter/gradient vectors, exactly the representation the distributed algorithms
//!   exchange,
//! * [`schedule`] — the learning-rate schedules used in the paper's §IV-A,
//! * [`gradcheck`] — finite-difference gradient verification used heavily by the test
//!   suite to certify that the hand-written backward passes are correct.
//!
//! The substrate is intentionally small but *correct*: gradient-checking tests cover
//! every layer, and the distributed algorithms in the `selsync` crate treat models only
//! through the flat parameter/gradient interface, so they are independent of which model
//! is being trained.

pub mod cost;
pub mod gradcheck;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod schedule;

pub use layer::Layer;
pub use model::{ModelKind, PaperModel, Sequential};
pub use optim::{Adam, Optimizer, OptimizerState, Sgd};
pub use schedule::LrSchedule;

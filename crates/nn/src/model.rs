//! Networks: [`Sequential`] containers, residual blocks, and the four paper-model
//! analogues wrapped as [`PaperModel`].
//!
//! The paper evaluates ResNet101 (CIFAR10), VGG11 (CIFAR100), AlexNet (ImageNet-1K) and
//! a 2-layer Transformer LM (WikiText-103). We cannot train those exact networks here
//! (no GPUs, no datasets, no tch), so each is substituted by a *small analogue that
//! keeps the property the paper relies on*:
//!
//! * `ResNetLike` — residual (skip-connection) MLP: generalises well, robust to local
//!   training, matches the paper's observation that ResNet101 tolerates high LSSR.
//! * `VggLike` — deep plain MLP on a 100-class task: the fragile architecture that
//!   degrades badly under DefDP / FedAvg in the paper.
//! * `AlexLike` — wide, shallow MLP with dropout on a many-class task, trained with Adam
//!   and a fixed learning rate (the one model where GA ≈ PA in Fig. 10).
//! * `TransformerLike` — embedding + attention-pooling language model reporting
//!   perplexity, with the LR decaying every 2000 iterations.
//!
//! Each analogue also carries the *nominal* communication/computation footprint of the
//! original network (wire size in bytes, FLOPs and activation bytes per sample). The
//! network cost model uses the nominal numbers, so throughput and speedup experiments
//! see paper-scale communication even though the in-memory models are small.

use crate::layer::{AttentionPool, Dropout, Embedding, Layer, LayerNorm, Linear, Relu};
use crate::loss;
use selsync_tensor::{rng, Tensor};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

/// An ordered stack of layers.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Create an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Builder-style append.
    pub fn with(mut self, layer: Box<dyn Layer>) -> Self {
        self.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Access the layer stack (read-only), e.g. to inspect a specific layer's weights for
    /// the weight-distribution figure (Fig. 11).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Flatten all parameters into a single vector (layer order, then tensor order).
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.params_flat_into(&mut out);
        out
    }

    /// Flatten all parameters into a caller-owned buffer (cleared first), so repeated
    /// snapshots reuse one allocation.
    pub fn params_flat_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.param_count());
        for layer in &self.layers {
            for p in layer.params() {
                out.extend_from_slice(p.data());
            }
        }
    }

    /// Flatten all gradients into a single vector (same ordering as [`Self::params_flat`]).
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.grads_flat_into(&mut out);
        out
    }

    /// Flatten all gradients into a caller-owned buffer (cleared first).
    pub fn grads_flat_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.param_count());
        for layer in &self.layers {
            for g in layer.grads() {
                out.extend_from_slice(g.data());
            }
        }
    }

    /// Overwrite all parameters from a flat vector produced by [`Self::params_flat`].
    ///
    /// Panics if the length does not match the model's parameter count.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                let n = p.len();
                p.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            }
        }
    }

    /// Zero every layer's accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }
}

impl Layer for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        // Ping-pong through the layers, recycling every intermediate activation into
        // the scratch arena — steady-state forward allocates nothing.
        let mut x: Option<Tensor> = None;
        for layer in &mut self.layers {
            let next = layer.forward(x.as_ref().unwrap_or(input), train);
            if let Some(prev) = x.replace(next) {
                prev.recycle();
            }
        }
        x.unwrap_or_else(|| input.clone())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g: Option<Tensor> = None;
        for layer in self.layers.iter_mut().rev() {
            let next = layer.backward(g.as_ref().unwrap_or(grad_output));
            if let Some(prev) = g.replace(next) {
                prev.recycle();
            }
        }
        g.unwrap_or_else(|| grad_output.clone())
    }

    fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.grads()).collect()
    }

    fn zero_grads(&mut self) {
        Sequential::zero_grads(self);
    }

    fn seek_dropout(&mut self, forward_index: u64) {
        for layer in &mut self.layers {
            layer.seek_dropout(forward_index);
        }
    }
}

/// A residual block: `y = x + f(x)` where `f` is an inner [`Sequential`] whose output
/// shape equals its input shape. This is the skip connection that makes the
/// `ResNetLike` analogue generalise like the paper's ResNet101.
pub struct Residual {
    inner: Sequential,
}

impl Residual {
    /// Wrap an inner network with a skip connection.
    pub fn new(inner: Sequential) -> Self {
        Residual { inner }
    }
}

impl Layer for Residual {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut fx = self.inner.forward(input, train);
        // Reuse the inner network's output buffer for the skip addition:
        // out = f(x) + x has the same value as x + f(x) written into a clone of x.
        fx.zip_mut_with(input, |y, x| y + x)
            .expect("residual shapes must match");
        fx
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut through = self.inner.backward(grad_output);
        through
            .zip_mut_with(grad_output, |y, g| y + g)
            .expect("residual backward shapes");
        through
    }

    fn params(&self) -> Vec<&Tensor> {
        self.inner.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.inner.params_mut()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.inner.grads()
    }

    fn zero_grads(&mut self) {
        self.inner.zero_grads();
    }

    fn seek_dropout(&mut self, forward_index: u64) {
        Layer::seek_dropout(&mut self.inner, forward_index);
    }
}

// ---------------------------------------------------------------------------
// Paper models
// ---------------------------------------------------------------------------

/// Which of the paper's four workloads a model corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// ResNet101 on CIFAR10 analogue (residual MLP, 10 classes, top-1 accuracy).
    ResNetLike,
    /// VGG11 on CIFAR100 analogue (plain deep MLP, 100 classes, top-1 accuracy).
    VggLike,
    /// AlexNet on ImageNet-1K analogue (wide MLP + dropout, 200 classes, top-5 accuracy).
    AlexLike,
    /// Transformer LM on WikiText-103 analogue (embedding + attention pooling, perplexity).
    TransformerLike,
}

impl ModelKind {
    /// All four workloads, in the order the paper lists them.
    pub fn all() -> [ModelKind; 4] {
        [
            ModelKind::ResNetLike,
            ModelKind::VggLike,
            ModelKind::AlexLike,
            ModelKind::TransformerLike,
        ]
    }

    /// Paper-facing display name.
    pub fn paper_name(&self) -> &'static str {
        match self {
            ModelKind::ResNetLike => "ResNet101",
            ModelKind::VggLike => "VGG11",
            ModelKind::AlexLike => "AlexNet",
            ModelKind::TransformerLike => "Transformer",
        }
    }
}

/// The task a model is trained on, which determines the evaluation metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Classification with `classes` labels, reporting top-`topk` accuracy (percent).
    Classification {
        /// Number of classes.
        classes: usize,
        /// k for the reported top-k accuracy (1 or 5 in the paper).
        topk: usize,
    },
    /// Next-token language modelling over `vocab` tokens, reporting perplexity.
    LanguageModel {
        /// Vocabulary size.
        vocab: usize,
        /// Context length in tokens.
        context: usize,
    },
}

impl TaskKind {
    /// Name of the evaluation metric.
    pub fn metric_name(&self) -> &'static str {
        match self {
            TaskKind::Classification { topk: 1, .. } => "top1_accuracy_%",
            TaskKind::Classification { .. } => "topk_accuracy_%",
            TaskKind::LanguageModel { .. } => "perplexity",
        }
    }

    /// Whether larger metric values are better (accuracy) or worse (perplexity).
    pub fn higher_is_better(&self) -> bool {
        matches!(self, TaskKind::Classification { .. })
    }
}

/// Nominal (paper-scale) resource footprint of a model, used by the network cost model
/// and the batch-size cost figures. These numbers describe the *original* network
/// (ResNet101, VGG11, ...), not the small in-memory analogue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NominalFootprint {
    /// Bytes on the wire for a full parameter or gradient exchange.
    pub wire_bytes: u64,
    /// Forward+backward FLOPs per training sample.
    pub flops_per_sample: u64,
    /// Activation (working-set) bytes per sample during training.
    pub activation_bytes_per_sample: u64,
}

/// One of the four paper workloads: a trainable network plus task and nominal footprint.
pub struct PaperModel {
    /// Which paper workload this is.
    pub kind: ModelKind,
    /// Task and evaluation metric.
    pub task: TaskKind,
    /// Nominal paper-scale footprint used by the cost model.
    pub nominal: NominalFootprint,
    net: Sequential,
}

/// Outcome of one forward/backward (or evaluation) pass over a batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Task metric (accuracy in percent, or perplexity).
    pub metric: f32,
}

impl PaperModel {
    /// Build the analogue for `kind` with deterministic initialisation from `seed`.
    pub fn build(kind: ModelKind, seed: u64) -> Self {
        let mut r = rng::seeded(seed);
        match kind {
            ModelKind::ResNetLike => {
                let hidden = 64;
                let mut net = Sequential::new()
                    .with(Box::new(Linear::new(&mut r, 32, hidden)))
                    .with(Box::new(Relu::new()));
                for _ in 0..3 {
                    let block = Sequential::new()
                        .with(Box::new(Linear::new(&mut r, hidden, hidden)))
                        .with(Box::new(Relu::new()))
                        .with(Box::new(Linear::new(&mut r, hidden, hidden)));
                    net.push(Box::new(Residual::new(block)));
                    net.push(Box::new(Relu::new()));
                }
                net.push(Box::new(Linear::new(&mut r, hidden, 10)));
                PaperModel {
                    kind,
                    task: TaskKind::Classification {
                        classes: 10,
                        topk: 1,
                    },
                    nominal: NominalFootprint {
                        wire_bytes: 170 * 1024 * 1024, // ~44.5M params ≈ 170 MB
                        flops_per_sample: 7_800_000_000,
                        activation_bytes_per_sample: 9 * 1024 * 1024,
                    },
                    net,
                }
            }
            ModelKind::VggLike => {
                let hidden = 128;
                let mut net = Sequential::new()
                    .with(Box::new(Linear::new(&mut r, 32, hidden)))
                    .with(Box::new(Relu::new()));
                for _ in 0..5 {
                    net.push(Box::new(Linear::new(&mut r, hidden, hidden)));
                    net.push(Box::new(Relu::new()));
                }
                net.push(Box::new(Linear::new(&mut r, hidden, 100)));
                PaperModel {
                    kind,
                    task: TaskKind::Classification {
                        classes: 100,
                        topk: 1,
                    },
                    nominal: NominalFootprint {
                        wire_bytes: 507 * 1024 * 1024, // paper: 507 MB VGG11
                        flops_per_sample: 900_000_000,
                        activation_bytes_per_sample: 2 * 1024 * 1024,
                    },
                    net,
                }
            }
            ModelKind::AlexLike => {
                let hidden = 256;
                let net = Sequential::new()
                    .with(Box::new(Linear::new(&mut r, 64, hidden)))
                    .with(Box::new(Relu::new()))
                    .with(Box::new(Dropout::new(0.2, seed ^ 0xD06)))
                    .with(Box::new(Linear::new(&mut r, hidden, hidden)))
                    .with(Box::new(Relu::new()))
                    .with(Box::new(Linear::new(&mut r, hidden, 200)));
                PaperModel {
                    kind,
                    task: TaskKind::Classification {
                        classes: 200,
                        topk: 5,
                    },
                    nominal: NominalFootprint {
                        wire_bytes: 244 * 1024 * 1024, // ~61M params ≈ 244 MB
                        flops_per_sample: 1_400_000_000,
                        activation_bytes_per_sample: 10 * 1024 * 1024,
                    },
                    net,
                }
            }
            ModelKind::TransformerLike => {
                let vocab = 1000;
                let context = 16;
                let dim = 32;
                let hidden = 128;
                let net = Sequential::new()
                    .with(Box::new(Embedding::new(&mut r, vocab, dim)))
                    .with(Box::new(AttentionPool::new(&mut r, context, dim)))
                    .with(Box::new(LayerNorm::new(dim)))
                    .with(Box::new(Linear::new(&mut r, dim, hidden)))
                    .with(Box::new(Relu::new()))
                    .with(Box::new(Dropout::new(0.2, seed ^ 0x7F0)))
                    .with(Box::new(Linear::new(&mut r, hidden, vocab)));
                PaperModel {
                    kind,
                    task: TaskKind::LanguageModel { vocab, context },
                    nominal: NominalFootprint {
                        wire_bytes: 213 * 1024 * 1024, // embedding-dominated small Transformer
                        flops_per_sample: 2_600_000_000,
                        activation_bytes_per_sample: 170 * 1024 * 1024,
                    },
                    net,
                }
            }
        }
    }

    /// Dimensionality of one input sample (feature count, or context length for the LM).
    pub fn input_dim(&self) -> usize {
        match self.task {
            TaskKind::Classification { .. } => match self.kind {
                ModelKind::AlexLike => 64,
                _ => 32,
            },
            TaskKind::LanguageModel { context, .. } => context,
        }
    }

    /// Number of output classes / vocabulary size.
    pub fn output_dim(&self) -> usize {
        match self.task {
            TaskKind::Classification { classes, .. } => classes,
            TaskKind::LanguageModel { vocab, .. } => vocab,
        }
    }

    /// Total scalar parameter count of the in-memory analogue.
    pub fn param_count(&self) -> usize {
        self.net.param_count()
    }

    /// Flattened parameters.
    pub fn params_flat(&self) -> Vec<f32> {
        self.net.params_flat()
    }

    /// Flattened gradients (accumulated since the last [`Self::zero_grads`]).
    pub fn grads_flat(&self) -> Vec<f32> {
        self.net.grads_flat()
    }

    /// Flattened gradients into a caller-owned buffer (cleared first) — the zero-alloc
    /// per-step gradient export used by the worker-parallel simulator rounds.
    pub fn grads_flat_into(&self, out: &mut Vec<f32>) {
        self.net.grads_flat_into(out);
    }

    /// Overwrite parameters from a flat vector.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        self.net.set_params_flat(flat);
    }

    /// Zero accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.net.zero_grads();
    }

    /// Position the model's stochastic layers (dropout) for the `forward_index`-th
    /// training forward of the canonical shared stream (see [`Layer::seek_dropout`]).
    /// Call before [`Self::forward_backward`] when several replica engines must
    /// reproduce one sequential engine's RNG stream bit-for-bit.
    pub fn seek_dropout(&mut self, forward_index: u64) {
        Layer::seek_dropout(&mut self.net, forward_index);
    }

    /// Read-only access to the underlying network (e.g. for per-layer weight inspection).
    pub fn network(&self) -> &Sequential {
        &self.net
    }

    /// Mutable access to the underlying network (used by the Hessian diagnostics).
    pub fn network_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// One training pass: zero grads, forward in train mode, compute loss, backpropagate.
    /// Gradients are left accumulated in the model; read them with [`Self::grads_flat`].
    pub fn forward_backward(&mut self, inputs: &Tensor, targets: &[usize]) -> BatchStats {
        self.net.zero_grads();
        let logits = self.net.forward(inputs, true);
        let (loss, grad) = loss::softmax_cross_entropy(&logits, targets);
        let metric = self.metric_from_logits(&logits, targets, loss);
        logits.recycle();
        let dx = self.net.backward(&grad);
        dx.recycle();
        grad.recycle();
        BatchStats { loss, metric }
    }

    /// Evaluation pass (no dropout, no gradients).
    pub fn evaluate(&mut self, inputs: &Tensor, targets: &[usize]) -> BatchStats {
        let logits = self.net.forward(inputs, false);
        let (loss, grad) = loss::softmax_cross_entropy(&logits, targets);
        let metric = self.metric_from_logits(&logits, targets, loss);
        logits.recycle();
        grad.recycle();
        BatchStats { loss, metric }
    }

    fn metric_from_logits(&self, logits: &Tensor, targets: &[usize], loss_value: f32) -> f32 {
        match self.task {
            TaskKind::Classification { topk: 1, .. } => loss::top1_accuracy(logits, targets),
            TaskKind::Classification { topk, .. } => loss::topk_accuracy(logits, targets, topk),
            TaskKind::LanguageModel { .. } => loss::perplexity(loss_value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_flat_roundtrip() {
        let mut r = rng::seeded(11);
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(&mut r, 8, 16)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(&mut r, 16, 4)));
        let flat = net.params_flat();
        assert_eq!(flat.len(), net.param_count());
        let mut doubled = flat.clone();
        for x in &mut doubled {
            *x *= 2.0;
        }
        net.set_params_flat(&doubled);
        assert_eq!(net.params_flat(), doubled);
        net.set_params_flat(&flat);
        assert_eq!(net.params_flat(), flat);
    }

    #[test]
    #[should_panic]
    fn set_params_flat_length_checked() {
        let mut r = rng::seeded(1);
        let mut net = Sequential::new().with(Box::new(Linear::new(&mut r, 2, 2)));
        net.set_params_flat(&[0.0; 3]);
    }

    #[test]
    fn residual_is_identity_plus_block() {
        let mut r = rng::seeded(3);
        let mut block = Sequential::new().with(Box::new(Linear::new(&mut r, 4, 4)));
        // Zero the block so the residual reduces to the identity.
        let zeros = vec![0.0; block.param_count()];
        block.set_params_flat(&zeros);
        let mut res = Residual::new(block);
        let x = Tensor::from_fn(2, 4, |r, c| (r + c) as f32);
        let y = res.forward(&x, true);
        assert_eq!(y, x);
        let dy = Tensor::ones(2, 4);
        let dx = res.backward(&dy);
        assert_eq!(dx, dy);
    }

    #[test]
    fn all_paper_models_build_and_run() {
        for kind in ModelKind::all() {
            let mut m = PaperModel::build(kind, 42);
            assert!(m.param_count() > 0);
            let batch = 4;
            let x = match m.task {
                TaskKind::Classification { .. } => {
                    Tensor::from_fn(batch, m.input_dim(), |r, c| ((r * 7 + c) % 5) as f32 * 0.1)
                }
                TaskKind::LanguageModel { vocab, context } => {
                    Tensor::from_fn(batch, context, |r, c| ((r * 13 + c * 7) % vocab) as f32)
                }
            };
            let targets: Vec<usize> = (0..batch).map(|i| i % m.output_dim()).collect();
            let stats = m.forward_backward(&x, &targets);
            assert!(stats.loss.is_finite(), "{kind:?} loss");
            let grads = m.grads_flat();
            assert_eq!(grads.len(), m.param_count());
            assert!(
                grads.iter().any(|&g| g != 0.0),
                "{kind:?} should produce nonzero grads"
            );
            let eval = m.evaluate(&x, &targets);
            assert!(eval.loss.is_finite());
        }
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        // A few SGD steps on a fixed batch must reduce the loss for every model family.
        use crate::optim::{Optimizer, Sgd};
        for kind in [
            ModelKind::ResNetLike,
            ModelKind::VggLike,
            ModelKind::AlexLike,
        ] {
            let mut m = PaperModel::build(kind, 7);
            let batch = 16;
            let x = Tensor::from_fn(batch, m.input_dim(), |r, c| {
                ((r * 31 + c * 17) % 11) as f32 * 0.2 - 1.0
            });
            let targets: Vec<usize> = (0..batch).map(|i| (i * 3) % m.output_dim()).collect();
            let first = m.forward_backward(&x, &targets).loss;
            let mut opt = Sgd::new(0.9, 0.0);
            for _ in 0..30 {
                let mut params = m.params_flat();
                let grads = m.grads_flat();
                opt.step(&mut params, &grads, 0.05);
                m.set_params_flat(&params);
                m.forward_backward(&x, &targets);
            }
            let last = m.evaluate(&x, &targets).loss;
            assert!(last < first, "{kind:?}: {last} !< {first}");
        }
    }

    #[test]
    fn metric_names_and_direction() {
        assert_eq!(
            PaperModel::build(ModelKind::ResNetLike, 1)
                .task
                .metric_name(),
            "top1_accuracy_%"
        );
        assert_eq!(
            PaperModel::build(ModelKind::AlexLike, 1).task.metric_name(),
            "topk_accuracy_%"
        );
        let lm = PaperModel::build(ModelKind::TransformerLike, 1);
        assert_eq!(lm.task.metric_name(), "perplexity");
        assert!(!lm.task.higher_is_better());
    }

    #[test]
    fn paper_names() {
        assert_eq!(ModelKind::ResNetLike.paper_name(), "ResNet101");
        assert_eq!(ModelKind::VggLike.paper_name(), "VGG11");
        assert_eq!(ModelKind::AlexLike.paper_name(), "AlexNet");
        assert_eq!(ModelKind::TransformerLike.paper_name(), "Transformer");
    }

    #[test]
    fn nominal_footprints_match_paper_scale() {
        let vgg = PaperModel::build(ModelKind::VggLike, 1);
        assert_eq!(vgg.nominal.wire_bytes, 507 * 1024 * 1024);
        let resnet = PaperModel::build(ModelKind::ResNetLike, 1);
        assert!(resnet.nominal.wire_bytes < vgg.nominal.wire_bytes);
        // ResNet101 is the most compute-intensive per sample (deepest network).
        assert!(resnet.nominal.flops_per_sample > vgg.nominal.flops_per_sample);
    }
}

//! Loss functions and evaluation metrics.
//!
//! The paper reports top-1 accuracy (ResNet101/VGG11), top-5 accuracy (AlexNet) and test
//! perplexity (Transformer). All of them derive from softmax cross-entropy, which is the
//! only training loss we need.

use selsync_tensor::{ops, Tensor};

/// Softmax cross-entropy over logits.
///
/// Returns `(mean loss, dL/dlogits)` for a batch. Targets are class indices.
/// The gradient is the standard `(softmax - one_hot) / batch`.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(
        logits.rows(),
        targets.len(),
        "batch size mismatch between logits and targets"
    );
    let probs = ops::softmax_rows(logits);
    let batch = logits.rows() as f32;
    let mut loss = 0.0f32;
    let mut grad = Tensor::scratch_copy(&probs);
    for (r, &t) in targets.iter().enumerate() {
        let p = probs.get(r, t).max(1e-12);
        loss -= p.ln();
        grad.set(r, t, grad.get(r, t) - 1.0);
    }
    probs.recycle();
    grad.map_inplace(|x| x / batch);
    (loss / batch, grad)
}

/// Mean-squared-error loss. Returns `(mean loss, dL/dpred)`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "MSE shape mismatch");
    let n = pred.len() as f32;
    let diff = ops::sub(pred, target).expect("mse diff");
    let loss = ops::sq_norm(&diff) / n;
    let grad = ops::scale(&diff, 2.0 / n);
    (loss, grad)
}

/// Fraction of rows whose arg-max prediction equals the target (top-1 accuracy, in %).
pub fn top1_accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    if targets.is_empty() {
        return 0.0;
    }
    let preds = ops::argmax_rows(logits);
    let correct = preds
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| p == t)
        .count();
    100.0 * correct as f32 / targets.len() as f32
}

/// Fraction of rows whose target appears among the `k` highest logits (top-k accuracy, in %).
pub fn topk_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> f32 {
    if targets.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        let row = logits.row(r);
        let target_score = row[t];
        // Count how many classes strictly beat the target; ties resolved in the target's favour.
        let better = row.iter().filter(|&&x| x > target_score).count();
        if better < k {
            correct += 1;
        }
    }
    100.0 * correct as f32 / targets.len() as f32
}

/// Perplexity corresponding to a mean cross-entropy `loss` (`exp(loss)`), the metric the
/// paper reports for the Transformer on WikiText-103.
pub fn perplexity(loss: f32) -> f32 {
    loss.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        // Very confident, correct logits.
        let logits = Tensor::from_vec(2, 3, vec![10.0, -10.0, -10.0, -10.0, 10.0, -10.0]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3, "loss {loss}");
        assert!(grad.data().iter().all(|g| g.abs() < 1e-3));
    }

    #[test]
    fn cross_entropy_of_uniform_prediction_is_log_classes() {
        let logits = Tensor::zeros(4, 10);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits = Tensor::from_fn(3, 5, |r, c| (r as f32) * 0.3 - (c as f32) * 0.1);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 2, 4]);
        for r in 0..3 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let base = Tensor::from_fn(2, 4, |r, c| 0.25 * (r as f32 + 1.0) * (c as f32 - 1.5));
        let targets = [2usize, 0usize];
        let (_, grad) = softmax_cross_entropy(&base, &targets);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..4 {
                let mut plus = base.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = base.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let (lp, _) = softmax_cross_entropy(&plus, &targets);
                let (lm, _) = softmax_cross_entropy(&minus, &targets);
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - grad.get(r, c)).abs() < 1e-3,
                    "({r},{c}): {num} vs {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn mse_basic() {
        let pred = Tensor::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let target = Tensor::from_vec(1, 2, vec![0.0, 0.0]).unwrap();
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn accuracy_metrics() {
        let logits =
            Tensor::from_vec(3, 3, vec![3.0, 2.0, 1.0, 1.0, 3.0, 2.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(top1_accuracy(&logits, &[0, 1, 2]), 100.0);
        assert!((top1_accuracy(&logits, &[1, 1, 2]) - 66.666_664).abs() < 1e-3);
        // Target is 2nd-highest everywhere -> top-2 accuracy is 100%.
        assert_eq!(topk_accuracy(&logits, &[1, 2, 1], 2), 100.0);
        assert_eq!(topk_accuracy(&logits, &[2, 0, 0], 2), 0.0);
    }

    #[test]
    fn perplexity_is_exp_of_loss() {
        assert!((perplexity(0.0) - 1.0).abs() < 1e-6);
        assert!((perplexity(2.0) - 2.0f32.exp()).abs() < 1e-4);
    }
}

//! Optimizers operating on flattened parameter/gradient vectors.
//!
//! The distributed algorithms exchange *flat* `Vec<f32>` parameter and gradient vectors
//! (that is what the parameter server stores and what collectives reduce), so the
//! optimizers work directly on those vectors rather than on per-layer tensors. The
//! paper's configurations need SGD with momentum + weight decay (ResNet101, VGG11,
//! Transformer) and Adam (AlexNet).
//!
//! Updates run in parallel over fixed element chunks ([`selsync_tensor::par`]); the
//! per-element arithmetic is unchanged, so the update is bit-identical to the serial
//! loop for every thread count.

use selsync_tensor::par;
use serde::{Deserialize, Serialize};

/// The checkpointable portion of an optimizer: the step counter and each internal
/// per-parameter buffer (hyperparameters are rebuilt from configuration on restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct OptimizerState {
    /// Step counter (Adam's bias-correction `t`; 0 for SGD).
    pub t: u64,
    /// Internal buffers in a fixed per-optimizer order (SGD: `[velocity]`,
    /// Adam: `[m, v]`). Buffers may be empty before the first step.
    pub buffers: Vec<Vec<f32>>,
}

/// A first-order optimizer over flat parameter vectors.
pub trait Optimizer: Send {
    /// Apply one update step: `params` are modified in place using `grads` and the
    /// supplied learning rate.
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32);

    /// Reset internal state (momentum / moment estimates).
    fn reset(&mut self);

    /// Name for reporting.
    fn name(&self) -> &'static str;

    /// Capture internal state for a checkpoint.
    fn export_state(&self) -> OptimizerState;

    /// Restore state captured by [`Self::export_state`] onto a same-configured
    /// optimizer. Panics when the buffer count does not match the optimizer kind.
    fn load_state(&mut self, state: &OptimizerState);
}

/// Stochastic gradient descent with classical momentum and decoupled L2 weight decay.
///
/// Update: `v = momentum * v + (g + weight_decay * w)`, `w -= lr * v`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Create an SGD optimizer.
    pub fn new(momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        par::zip3_mut(params, &mut self.velocity, grads, |p, v, g| {
            let g = g + weight_decay * *p;
            *v = momentum * *v + g;
            *p -= lr * *v;
        });
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn name(&self) -> &'static str {
        "sgd"
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            t: 0,
            buffers: vec![self.velocity.clone()],
        }
    }

    fn load_state(&mut self, state: &OptimizerState) {
        assert_eq!(state.buffers.len(), 1, "SGD state holds one buffer");
        self.velocity = state.buffers[0].clone();
    }
}

/// Adam optimizer (Kingma & Ba, 2014), used by the paper for AlexNet on ImageNet-1K.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Exponential decay rate for the first moment.
    pub beta1: f32,
    /// Exponential decay rate for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Create an Adam optimizer with the conventional defaults (β1=0.9, β2=0.999).
    pub fn new(weight_decay: f32) -> Self {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (beta1, beta2) = (self.beta1, self.beta2);
        let (eps, weight_decay) = (self.eps, self.weight_decay);
        par::zip4_mut(params, &mut self.m, &mut self.v, grads, |p, m, v, g| {
            let g = g + weight_decay * *p;
            *m = beta1 * *m + (1.0 - beta1) * g;
            *v = beta2 * *v + (1.0 - beta2) * g * g;
            let m_hat = *m / b1t;
            let v_hat = *v / b2t;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        });
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn name(&self) -> &'static str {
        "adam"
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            t: self.t,
            buffers: vec![self.m.clone(), self.v.clone()],
        }
    }

    fn load_state(&mut self, state: &OptimizerState) {
        assert_eq!(state.buffers.len(), 2, "Adam state holds two buffers");
        self.m = state.buffers[0].clone();
        self.v = state.buffers[1].clone();
        self.t = state.t;
    }
}

/// Construct the optimizer named by `spec` ("sgd" / "adam"), used by experiment configs.
pub fn by_name(spec: &str, momentum: f32, weight_decay: f32) -> Box<dyn Optimizer> {
    match spec {
        "adam" => Box::new(Adam::new(weight_decay)),
        _ => Box::new(Sgd::new(momentum, weight_decay)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_without_momentum_is_plain_descent() {
        let mut opt = Sgd::new(0.0, 0.0);
        let mut params = vec![1.0, 2.0];
        opt.step(&mut params, &[0.5, -0.5], 0.1);
        assert!((params[0] - 0.95).abs() < 1e-6);
        assert!((params[1] - 2.05).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accumulates_velocity() {
        let mut opt = Sgd::new(0.9, 0.0);
        let mut params = vec![0.0];
        opt.step(&mut params, &[1.0], 1.0);
        assert!((params[0] + 1.0).abs() < 1e-6); // v = 1
        opt.step(&mut params, &[1.0], 1.0);
        assert!((params[0] + 2.9).abs() < 1e-6); // v = 1.9
    }

    #[test]
    fn sgd_weight_decay_shrinks_params_with_zero_grad() {
        let mut opt = Sgd::new(0.0, 0.1);
        let mut params = vec![10.0];
        opt.step(&mut params, &[0.0], 0.5);
        assert!((params[0] - 9.5).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise f(w) = (w - 3)^2 with Adam.
        let mut opt = Adam::new(0.0);
        let mut w = vec![0.0f32];
        for _ in 0..2000 {
            let g = 2.0 * (w[0] - 3.0);
            opt.step(&mut w, &[g], 0.05);
        }
        assert!((w[0] - 3.0).abs() < 0.05, "w = {}", w[0]);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.9, 0.0);
        let mut w = vec![-5.0f32];
        for _ in 0..500 {
            let g = 2.0 * (w[0] - 3.0);
            opt.step(&mut w, &[g], 0.01);
        }
        assert!((w[0] - 3.0).abs() < 0.05, "w = {}", w[0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Sgd::new(0.9, 0.0);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0], 1.0);
        opt.reset();
        let mut p2 = vec![0.0];
        opt.step(&mut p2, &[1.0], 1.0);
        assert!((p2[0] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn by_name_selects_optimizer() {
        assert_eq!(by_name("adam", 0.0, 0.0).name(), "adam");
        assert_eq!(by_name("sgd", 0.9, 0.0).name(), "sgd");
        assert_eq!(by_name("anything-else", 0.9, 0.0).name(), "sgd");
    }

    #[test]
    fn export_load_continues_bit_identically() {
        for name in ["sgd", "adam"] {
            let mut a = by_name(name, 0.9, 0.01);
            let mut pa = vec![0.4f32, -1.2, 2.5, 0.0];
            for i in 0..5 {
                let g: Vec<f32> = pa.iter().map(|p| 0.3 * p + i as f32 * 0.01).collect();
                a.step(&mut pa, &g, 0.05);
            }
            let state = a.export_state();
            let mut b = by_name(name, 0.9, 0.01);
            let mut pb = pa.clone();
            b.load_state(&state);
            assert_eq!(b.export_state(), state);
            for _ in 0..4 {
                let g: Vec<f32> = pa.iter().map(|p| 0.3 * p - 0.02).collect();
                a.step(&mut pa, &g, 0.05);
                b.step(&mut pb, &g, 0.05);
            }
            for (x, y) in pa.iter().zip(&pb) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name} diverged after restore");
            }
        }
    }

    #[test]
    fn fresh_optimizer_state_is_loadable_before_any_step() {
        let mut opt = Adam::new(0.0);
        let state = opt.export_state();
        assert_eq!(state.t, 0);
        opt.load_state(&state);
        let mut p = vec![1.0f32];
        opt.step(&mut p, &[0.5], 0.1); // lazy init still works
        assert!(p[0] < 1.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.0, 0.0);
        let mut p = vec![0.0, 1.0];
        opt.step(&mut p, &[1.0], 0.1);
    }
}

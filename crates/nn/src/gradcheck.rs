//! Finite-difference gradient verification.
//!
//! The layers in this crate have hand-written backward passes; this module certifies
//! them against central finite differences of the loss. It is used by the test suites of
//! both `selsync-nn` and `selsync-hessian`, and is exposed publicly so downstream users
//! can validate custom layer stacks.

use crate::loss::softmax_cross_entropy;
use crate::model::Sequential;
use selsync_tensor::Tensor;

/// Result of a gradient check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numerical gradients over the
    /// checked coordinates.
    pub max_abs_err: f32,
    /// Maximum relative difference (`|a - n| / max(1, |a|, |n|)`).
    pub max_rel_err: f32,
    /// Number of parameter coordinates checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the check passed at tolerance `tol` (on the relative error).
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Loss of `net` on `(inputs, targets)` without touching gradients.
fn loss_of(net: &mut Sequential, inputs: &Tensor, targets: &[usize]) -> f32 {
    use crate::layer::Layer;
    let logits = net.forward(inputs, true);
    softmax_cross_entropy(&logits, targets).0
}

/// Compare the analytic gradient of the softmax cross-entropy loss with central finite
/// differences, for up to `max_coords` parameter coordinates spread evenly across the
/// parameter vector.
///
/// Dropout layers must be disabled (probability 0) for the check to be meaningful, since
/// the finite-difference evaluations would otherwise sample different masks.
pub fn check_gradients(
    net: &mut Sequential,
    inputs: &Tensor,
    targets: &[usize],
    eps: f32,
    max_coords: usize,
) -> GradCheckReport {
    use crate::layer::Layer;

    // Analytic gradient.
    net.zero_grads();
    let logits = net.forward(inputs, true);
    let (_, dlogits) = softmax_cross_entropy(&logits, targets);
    let _ = net.backward(&dlogits);
    let analytic = net.grads_flat();
    let base_params = net.params_flat();
    let n = base_params.len();
    assert!(n > 0, "gradient check requires a parameterised network");

    let coords = max_coords.min(n).max(1);
    let stride = (n / coords).max(1);

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let mut checked = 0usize;

    for idx in (0..n).step_by(stride).take(coords) {
        let mut plus = base_params.clone();
        plus[idx] += eps;
        net.set_params_flat(&plus);
        let lp = loss_of(net, inputs, targets);

        let mut minus = base_params.clone();
        minus[idx] -= eps;
        net.set_params_flat(&minus);
        let lm = loss_of(net, inputs, targets);

        let numeric = (lp - lm) / (2.0 * eps);
        let a = analytic[idx];
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
        checked += 1;
    }

    // Restore original parameters.
    net.set_params_flat(&base_params);
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{AttentionPool, Embedding, LayerNorm, Linear, Relu, Tanh};
    use selsync_tensor::rng::seeded;

    fn class_batch(dim: usize, classes: usize, batch: usize) -> (Tensor, Vec<usize>) {
        let x = Tensor::from_fn(batch, dim, |r, c| {
            (((r * 13 + c * 7) % 9) as f32 - 4.0) * 0.25
        });
        let y = (0..batch).map(|i| (i * 5 + 1) % classes).collect();
        (x, y)
    }

    #[test]
    fn linear_relu_stack_gradients_are_correct() {
        let mut r = seeded(21);
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(&mut r, 6, 10)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(&mut r, 10, 4)));
        let (x, y) = class_batch(6, 4, 5);
        let report = check_gradients(&mut net, &x, &y, 1e-2, 60);
        assert!(report.passes(2e-2), "{report:?}");
        assert!(report.checked >= 50);
    }

    #[test]
    fn tanh_and_layernorm_gradients_are_correct() {
        let mut r = seeded(22);
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(&mut r, 5, 8)))
            .with(Box::new(Tanh::new()))
            .with(Box::new(LayerNorm::new(8)))
            .with(Box::new(Linear::new(&mut r, 8, 3)));
        let (x, y) = class_batch(5, 3, 4);
        let report = check_gradients(&mut net, &x, &y, 1e-2, 60);
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn residual_block_gradients_are_correct() {
        use crate::model::Residual;
        let mut r = seeded(23);
        let block = Sequential::new()
            .with(Box::new(Linear::new(&mut r, 6, 6)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(&mut r, 6, 6)));
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(&mut r, 4, 6)))
            .with(Box::new(Residual::new(block)))
            .with(Box::new(Linear::new(&mut r, 6, 3)));
        let (x, y) = class_batch(4, 3, 5);
        let report = check_gradients(&mut net, &x, &y, 1e-2, 80);
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn embedding_attention_lm_gradients_are_correct() {
        let mut r = seeded(24);
        let vocab = 12;
        let context = 4;
        let dim = 5;
        let mut net = Sequential::new()
            .with(Box::new(Embedding::new(&mut r, vocab, dim)))
            .with(Box::new(AttentionPool::new(&mut r, context, dim)))
            .with(Box::new(Linear::new(&mut r, dim, vocab)));
        let x = Tensor::from_fn(6, context, |r, c| ((r * 3 + c * 5) % vocab) as f32);
        let y: Vec<usize> = (0..6).map(|i| (i * 7 + 2) % vocab).collect();
        let report = check_gradients(&mut net, &x, &y, 1e-2, 80);
        assert!(report.passes(3e-2), "{report:?}");
    }
}

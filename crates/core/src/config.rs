//! Experiment configuration.
//!
//! A [`TrainConfig`] fully describes one training run: the model analogue, the cluster
//! size, the data partitioning, the algorithm (BSP / FedAvg / SSP / local-SGD /
//! SelSync), optimizer and learning-rate schedule, and the network/device cost models
//! used for simulated timing. Every run is deterministic given its `seed`.

use crate::aggregation::AggregationMode;
use crate::conditions::{ClusterConditions, FaultEvent};
use crate::policy::PolicySpec;
use selsync_comm::faults::{CommFaultSchedule, CommFaultSpec, PsFaultSchedule, PsFaultSpec};
use selsync_comm::netmodel::NetworkModel;
use selsync_data::injection::DataInjection;
use selsync_data::partition::PartitionScheme;
use selsync_nn::cost::DeviceProfile;
use selsync_nn::model::ModelKind;
use selsync_nn::schedule::LrSchedule;
use selsync_tracelog::TraceSink;
use serde::{Deserialize, Serialize};

/// Which first-order optimizer to instantiate per worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerSpec {
    /// `"sgd"` or `"adam"` semantics.
    pub adam: bool,
    /// Momentum (SGD only).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl OptimizerSpec {
    /// SGD with momentum and weight decay.
    pub fn sgd(momentum: f32, weight_decay: f32) -> Self {
        OptimizerSpec {
            adam: false,
            momentum,
            weight_decay,
        }
    }

    /// Adam with weight decay.
    pub fn adam(weight_decay: f32) -> Self {
        OptimizerSpec {
            adam: true,
            momentum: 0.0,
            weight_decay,
        }
    }

    /// Instantiate the optimizer.
    pub fn build(&self) -> Box<dyn selsync_nn::optim::Optimizer> {
        if self.adam {
            Box::new(selsync_nn::optim::Adam::new(self.weight_decay))
        } else {
            Box::new(selsync_nn::optim::Sgd::new(
                self.momentum,
                self.weight_decay,
            ))
        }
    }
}

/// How a rejoining worker obtains its parameters in the thread-per-worker driver
/// ([`crate::threaded`]). The simulator always behaves like [`Self::Scheduled`] (its
/// rejoin pull reads the last synchronized global, a pure function of the schedule);
/// this knob selects which semantics the threaded driver mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RejoinPull {
    /// Real-cluster semantics: the rejoiner pulls whatever the parameter server holds
    /// at that wall-clock moment. Not deterministic — the pulled snapshot depends on
    /// how far the live workers have raced ahead — so simulator parity covers
    /// crash-free schedules only.
    #[default]
    WallClock,
    /// Deterministic semantics: the rejoiner pulls the global produced by the last
    /// *scheduled* synchronization before its rejoin round (the parameter server's
    /// round-keyed snapshot ring), exactly matching the simulator. Extends the
    /// threaded↔simulator parity contract to crash/rejoin schedules.
    Scheduled,
}

/// Durable-checkpoint policy: where and how often both SelSync backends persist a
/// full recovery image (see `crate::checkpoint`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointSpec {
    /// Write a checkpoint after every `every`-th completed round (1 = every round).
    pub every: usize,
    /// Directory checkpoint files land in (`<dir>/ckpt-<round>`).
    pub dir: String,
    /// Simulated kill switch: stop the run right after the checkpoint at the end of
    /// this round is written (the crash/resume tests and the CI smoke use it).
    /// Runtime-only — never part of a scenario file.
    pub halt_after: Option<usize>,
    /// Retention: keep only the newest `keep` images, pruning older `ckpt-<round>`
    /// files after each newer one is durably written. `None` keeps everything.
    /// The image a resume started from is never pruned.
    pub keep: Option<usize>,
}

impl CheckpointSpec {
    /// Checkpoint every `every` rounds into `dir`, running to completion.
    pub fn new(every: usize, dir: impl Into<String>) -> Self {
        CheckpointSpec {
            every,
            dir: dir.into(),
            halt_after: None,
            keep: None,
        }
    }

    /// Validate the cadence.
    pub fn validate(&self) -> Result<(), String> {
        if self.every == 0 {
            return Err("checkpoint cadence `every` must be at least 1".into());
        }
        if self.dir.is_empty() {
            return Err("checkpoint `dir` must not be empty".into());
        }
        if self.keep == Some(0) {
            return Err("checkpoint retention `keep` must be at least 1".into());
        }
        Ok(())
    }

    /// Apply the retention policy after the image for `just_written` landed
    /// durably: prune the oldest `ckpt-<round>` files in `dir` beyond the newest
    /// `keep`, never touching `just_written` itself or the `protect`ed round a
    /// resume is reading from. Unparseable file names are left alone. I/O errors
    /// are ignored — retention is best-effort and must never fail a run.
    pub fn prune(&self, just_written: usize, protect: Option<usize>) {
        let Some(keep) = self.keep else { return };
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut rounds: Vec<usize> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str()?.strip_prefix("ckpt-")?.parse().ok())
            .collect();
        rounds.sort_unstable();
        let cut = rounds.len().saturating_sub(keep.max(1));
        for &round in &rounds[..cut] {
            if round == just_written || protect == Some(round) {
                continue;
            }
            let _ = std::fs::remove_file(self.path_for(round));
        }
    }

    /// Whether a checkpoint is due after completing `iteration`.
    pub fn due(&self, iteration: usize) -> bool {
        (iteration + 1).is_multiple_of(self.every.max(1))
    }

    /// The file path of the checkpoint written after `iteration`.
    pub fn path_for(&self, iteration: usize) -> std::path::PathBuf {
        std::path::Path::new(&self.dir).join(format!("ckpt-{iteration}"))
    }
}

/// The distributed training algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AlgorithmSpec {
    /// Bulk-synchronous parallel: aggregate every step.
    Bsp,
    /// Pure local SGD: never aggregate.
    LocalSgd,
    /// Federated averaging with participation fraction `c` and synchronization factor
    /// `e` (updates are aggregated `1/e` times per epoch from `c·N` randomly chosen
    /// workers).
    FedAvg {
        /// Fraction of workers participating in each aggregation.
        c: f32,
        /// Synchronization factor E (aggregation happens every `E · steps_per_epoch` steps).
        e: f32,
    },
    /// Stale-synchronous parallel with the given staleness bound (in iterations).
    Ssp {
        /// Maximum allowed lead of the fastest worker over the slowest.
        staleness: usize,
    },
    /// SelSync with threshold `delta`, aggregation mode and optional data-injection for
    /// non-IID data.
    SelSync {
        /// Relative-gradient-change threshold δ.
        delta: f32,
        /// Parameter vs gradient aggregation during synchronization steps.
        aggregation: AggregationMode,
        /// Optional randomized data-injection (α, β) for non-IID data.
        injection: Option<DataInjection>,
    },
}

impl AlgorithmSpec {
    /// SelSync with parameter aggregation and no data-injection (the paper's default).
    pub fn selsync(delta: f32) -> Self {
        AlgorithmSpec::SelSync {
            delta,
            aggregation: AggregationMode::Parameter,
            injection: None,
        }
    }

    /// SelSync with gradient aggregation (for the GA-vs-PA comparison, Fig. 10).
    pub fn selsync_ga(delta: f32) -> Self {
        AlgorithmSpec::SelSync {
            delta,
            aggregation: AggregationMode::Gradient,
            injection: None,
        }
    }

    /// SelSync with data-injection `(α, β, δ)` (the paper's non-IID configuration).
    pub fn selsync_injected(alpha: f32, beta: f32, delta: f32) -> Self {
        AlgorithmSpec::SelSync {
            delta,
            aggregation: AggregationMode::Parameter,
            injection: Some(DataInjection::new(alpha, beta)),
        }
    }

    /// Human-readable name used in reports (matches the paper's table labels).
    pub fn name(&self) -> String {
        match self {
            AlgorithmSpec::Bsp => "BSP".to_string(),
            AlgorithmSpec::LocalSgd => "LocalSGD".to_string(),
            AlgorithmSpec::FedAvg { c, e } => format!("FedAvg({c},{e})"),
            AlgorithmSpec::Ssp { staleness } => format!("SSP(s={staleness})"),
            AlgorithmSpec::SelSync {
                delta,
                aggregation,
                injection,
            } => {
                let agg = match aggregation {
                    AggregationMode::Parameter => "PA",
                    AggregationMode::Gradient => "GA",
                };
                match injection {
                    Some(inj) => format!("SelSync({},{},{delta},{agg})", inj.alpha, inj.beta),
                    None => format!("SelSync(d={delta},{agg})"),
                }
            }
        }
    }
}

/// Full description of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Which paper workload to train.
    pub model: ModelKind,
    /// Number of workers in the cluster.
    pub workers: usize,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Number of training iterations to run.
    pub iterations: usize,
    /// Evaluate on the held-out set every this many iterations.
    pub eval_every: usize,
    /// Maximum number of test samples used per evaluation (caps evaluation cost).
    pub eval_samples: usize,
    /// Number of training samples to synthesise.
    pub train_samples: usize,
    /// Number of held-out test samples to synthesise.
    pub test_samples: usize,
    /// RNG seed controlling data, initialisation and all stochastic decisions.
    pub seed: u64,
    /// IID partitioning scheme (DefDP or SelDP).
    pub partition: PartitionScheme,
    /// If set, data is split non-IID with this many labels per worker instead of IID
    /// partitioning.
    pub non_iid_labels_per_worker: Option<usize>,
    /// The training algorithm.
    pub algorithm: AlgorithmSpec,
    /// Per-worker optimizer.
    pub optimizer: OptimizerSpec,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// EWMA window for the gradient tracker (Fig. 8a sweeps this).
    pub ewma_window: usize,
    /// Network cost model used for simulated communication time.
    pub network: NetworkModel,
    /// Device profile used for simulated compute time.
    pub device: DeviceProfile,
    /// Cluster imperfections: device heterogeneity and the timed fault schedule.
    /// Uniform (homogeneous, fault-free) by default; scenario files populate it.
    pub conditions: ClusterConditions,
    /// Optional δ policy for SelSync runs. `None` (the default) keeps the paper's fixed
    /// threshold from [`AlgorithmSpec::SelSync`]; `Some` overrides it with a scheduled
    /// or adaptive policy (the sweep harness's policy arms). Ignored by the other
    /// algorithms.
    pub delta_policy: Option<PolicySpec>,
    /// Rejoin-pull semantics of the thread-per-worker driver (wall-clock by default;
    /// the simulator is unaffected — it is always schedule-deterministic).
    pub rejoin_pull: RejoinPull,
    /// Optional deterministic message-fault schedule (`[comm_faults]`). `None` (the
    /// default) routes all comm ops through the lossless transport, preserving
    /// historical behavior bit-for-bit. `Some` drives every op through the
    /// retry/timeout message layer; a worker that exhausts its retry budget is
    /// evicted from membership exactly like a scheduled crash with no rejoin (see
    /// [`TrainConfig::effective_conditions`]).
    pub comm_faults: Option<CommFaultSpec>,
    /// Optional deterministic parameter-server availability schedule
    /// (`[ps_faults]`). `None` (the default) keeps the server perfectly reliable.
    /// `Some` takes the PS down for whole rounds (scheduled windows plus seeded
    /// brownouts): the SelSync drivers degrade those rounds to forced-local rounds
    /// and run a catch-up sync on recovery (see `docs/RECOVERY.md`). Only the
    /// SelSync drivers honor this; the other algorithm arms ignore it.
    pub ps_faults: Option<PsFaultSpec>,
    /// Optional durable-checkpoint policy. `None` (the default) writes nothing.
    /// Only the SelSync drivers honor this.
    pub checkpoint: Option<CheckpointSpec>,
    /// Run-trace capture hook (disabled by default; zero-cost when disabled). Both
    /// SelSync drivers emit the canonical event stream into it. Clones of a config
    /// share one sink — give each *run* a fresh `TraceSink::capture(..)` so two runs
    /// never interleave events in one buffer. Not part of the serialized config.
    pub trace: TraceSink,
}

impl TrainConfig {
    /// Per-model default optimizer and learning-rate schedule for the *small analogue*
    /// models. The shapes follow the paper's §IV-A setup (SGD+momentum with step decay
    /// for ResNet/VGG/Transformer, Adam with a fixed LR for AlexNet); the absolute
    /// values are re-tuned for the small substitute models.
    pub fn default_hyper(model: ModelKind) -> (OptimizerSpec, LrSchedule) {
        match model {
            ModelKind::ResNetLike => (
                OptimizerSpec::sgd(0.9, 4e-4),
                LrSchedule::StepIterDecay {
                    base_lr: 0.05,
                    every_iters: 1500,
                    factor: 0.5,
                },
            ),
            ModelKind::VggLike => (
                OptimizerSpec::sgd(0.9, 5e-4),
                LrSchedule::StepIterDecay {
                    base_lr: 0.05,
                    every_iters: 1500,
                    factor: 0.5,
                },
            ),
            ModelKind::AlexLike => (OptimizerSpec::adam(0.0), LrSchedule::Constant { lr: 1e-3 }),
            // Adam with a flat LR: the attention-pooling LM analogue underfits badly
            // under SGD+momentum (the embedding table receives sparse, attention-scaled
            // gradients), matching the common practice of training Transformers with
            // adaptive optimizers.
            ModelKind::TransformerLike => {
                (OptimizerSpec::adam(0.0), LrSchedule::Constant { lr: 3e-3 })
            }
        }
    }

    /// A small, fast configuration suitable for tests, examples and doc-tests.
    pub fn small(model: ModelKind, workers: usize) -> Self {
        let (optimizer, lr) = Self::default_hyper(model);
        TrainConfig {
            model,
            workers,
            batch_size: 16,
            iterations: 300,
            eval_every: 50,
            eval_samples: 256,
            train_samples: 2048,
            test_samples: 512,
            seed: 42,
            partition: PartitionScheme::SelDp,
            non_iid_labels_per_worker: None,
            algorithm: AlgorithmSpec::Bsp,
            optimizer,
            lr,
            ewma_window: 25,
            network: NetworkModel::paper_5gbps(),
            device: DeviceProfile::v100(),
            conditions: ClusterConditions::uniform(),
            delta_policy: None,
            rejoin_pull: RejoinPull::WallClock,
            comm_faults: None,
            ps_faults: None,
            checkpoint: None,
            trace: TraceSink::disabled(),
        }
    }

    /// The configuration used by the benchmark harness: the paper's 16-worker cluster,
    /// batch 32, larger synthetic datasets and more iterations.
    pub fn paper(model: ModelKind) -> Self {
        let mut cfg = Self::small(model, 16);
        cfg.batch_size = 32;
        cfg.iterations = 3000;
        cfg.eval_every = 100;
        cfg.train_samples = 16_384;
        cfg.test_samples = 2_048;
        cfg.eval_samples = 1_024;
        cfg
    }

    /// The comm-fault evictions this config's schedule implies: `(worker, round)`
    /// pairs where a worker present under the scheduled conditions exhausts its
    /// retry budget and is permanently removed from membership. Pure function of
    /// the config — both backends (and scenario validation) derive membership from
    /// the same list. Empty when `comm_faults` is `None` or the schedule is mild
    /// enough that every exchange lands within budget.
    pub fn comm_fault_evictions(&self) -> Vec<(usize, usize)> {
        let Some(spec) = self.comm_faults else {
            return Vec::new();
        };
        let schedule = CommFaultSchedule::new(spec);
        let ps_schedule = self.ps_fault_schedule();
        let mut evictions = Vec::new();
        for worker in 0..self.workers {
            for iter in 0..self.iterations {
                // Weather is only experienced at rounds the worker actually runs
                // under the scheduled (crash/rejoin) conditions — and at rounds
                // where the PS is reachable at all: a degraded round sends no
                // envelopes, so the link weather cannot evict anyone there.
                if !self.conditions.is_present(worker, iter) {
                    continue;
                }
                if ps_schedule.as_ref().is_some_and(|s| s.down(iter as u64)) {
                    continue;
                }
                if schedule
                    .first_success_attempt(worker, iter as u64)
                    .is_none()
                {
                    evictions.push((worker, iter));
                    break; // eviction is permanent — no rejoin
                }
            }
        }
        evictions
    }

    /// The membership-effective cluster conditions: the scheduled conditions plus
    /// one no-rejoin crash per comm-fault eviction. Idempotent — a crash window
    /// starting at the eviction round makes the worker absent there, so
    /// recomputing evictions on the result yields the same set. Both drivers (and
    /// anything deriving presence, e.g. trace round-context) must use this, not
    /// `self.conditions`, so fault-driven evictions look exactly like scheduled
    /// crashes.
    pub fn effective_conditions(&self) -> ClusterConditions {
        let mut conditions = self.conditions.clone();
        for (worker, round) in self.comm_fault_evictions() {
            conditions = conditions.with_fault(FaultEvent::Crash {
                worker,
                start: round,
                rejoin: None,
            });
        }
        conditions
    }

    /// The compiled PS availability schedule, when `[ps_faults]` is configured.
    pub fn ps_fault_schedule(&self) -> Option<PsFaultSchedule> {
        self.ps_faults.clone().map(PsFaultSchedule::new)
    }

    /// Steps per (global) epoch: one pass of the cluster over the training set.
    pub fn steps_per_epoch(&self) -> usize {
        let global_batch = self.batch_size * self.workers.max(1);
        (self.train_samples / global_batch.max(1)).max(1)
    }

    /// Epoch index of a given iteration.
    pub fn epoch_of(&self, iteration: usize) -> usize {
        iteration / self.steps_per_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_match_paper_labels() {
        assert_eq!(AlgorithmSpec::Bsp.name(), "BSP");
        assert_eq!(
            AlgorithmSpec::FedAvg { c: 1.0, e: 0.25 }.name(),
            "FedAvg(1,0.25)"
        );
        assert_eq!(AlgorithmSpec::Ssp { staleness: 100 }.name(), "SSP(s=100)");
        assert_eq!(AlgorithmSpec::selsync(0.3).name(), "SelSync(d=0.3,PA)");
        assert_eq!(AlgorithmSpec::selsync_ga(0.25).name(), "SelSync(d=0.25,GA)");
        assert_eq!(
            AlgorithmSpec::selsync_injected(0.5, 0.5, 0.3).name(),
            "SelSync(0.5,0.5,0.3,PA)"
        );
    }

    #[test]
    fn small_config_is_consistent() {
        let cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
        assert_eq!(cfg.workers, 4);
        assert!(cfg.steps_per_epoch() > 0);
        assert_eq!(cfg.epoch_of(0), 0);
        assert!(cfg.epoch_of(cfg.steps_per_epoch()) == 1);
    }

    #[test]
    fn paper_config_uses_16_workers_and_batch_32() {
        let cfg = TrainConfig::paper(ModelKind::VggLike);
        assert_eq!(cfg.workers, 16);
        assert_eq!(cfg.batch_size, 32);
        assert!(cfg.iterations >= 1000);
    }

    #[test]
    fn alexnet_uses_adam_with_constant_lr() {
        let (opt, lr) = TrainConfig::default_hyper(ModelKind::AlexLike);
        assert!(opt.adam);
        assert_eq!(lr, LrSchedule::Constant { lr: 1e-3 });
    }

    #[test]
    fn comm_fault_evictions_default_to_empty_and_lossless_conditions() {
        let cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
        assert!(cfg.comm_fault_evictions().is_empty());
        assert_eq!(cfg.effective_conditions(), cfg.conditions);
    }

    #[test]
    fn brutal_fault_schedules_evict_and_compilation_is_idempotent() {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
        cfg.iterations = 40;
        cfg.comm_faults = Some(CommFaultSpec {
            seed: 7,
            drop: 0.75,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_rounds: 0,
            retry_budget: 2,
            timeout_s: 1e-3,
        });
        let evictions = cfg.comm_fault_evictions();
        assert!(
            !evictions.is_empty(),
            "a 75% drop rate with budget 2 must evict someone in 4x40 rounds"
        );
        // At most one eviction per worker, at a round where the worker was present.
        let mut workers_seen = std::collections::HashSet::new();
        for &(w, r) in &evictions {
            assert!(workers_seen.insert(w), "worker {w} evicted twice");
            assert!(cfg.conditions.is_present(w, r));
        }
        // Effective conditions make the evicted workers absent from their eviction
        // round on, and recompiling against them changes nothing (idempotence).
        let effective = cfg.effective_conditions();
        for &(w, r) in &evictions {
            assert!(!effective.is_present(w, r));
            assert!(!effective.is_present(w, cfg.iterations - 1));
        }
        let mut recompiled = cfg.clone();
        recompiled.conditions = effective.clone();
        assert!(recompiled.comm_fault_evictions().is_empty());
        assert_eq!(recompiled.effective_conditions(), effective);
    }

    #[test]
    fn mild_fault_schedules_keep_everyone_alive() {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
        cfg.iterations = 60;
        cfg.comm_faults = Some(CommFaultSpec {
            seed: 11,
            drop: 0.05,
            duplicate: 0.05,
            corrupt: 0.02,
            delay: 0.05,
            delay_rounds: 0,
            retry_budget: 6,
            timeout_s: 1e-3,
        });
        assert!(cfg.comm_fault_evictions().is_empty());
        assert_eq!(cfg.effective_conditions(), cfg.conditions);
    }

    #[test]
    fn optimizer_spec_builds_the_right_optimizer() {
        assert_eq!(OptimizerSpec::adam(0.0).build().name(), "adam");
        assert_eq!(OptimizerSpec::sgd(0.9, 0.0).build().name(), "sgd");
    }

    #[test]
    fn checkpoint_spec_cadence_and_paths() {
        let spec = CheckpointSpec::new(5, "/tmp/ckpts");
        assert!(spec.validate().is_ok());
        assert!(!spec.due(0) && spec.due(4) && spec.due(9));
        assert_eq!(
            spec.path_for(4),
            std::path::PathBuf::from("/tmp/ckpts/ckpt-4")
        );
        assert!(CheckpointSpec::new(0, "x").validate().is_err());
        assert!(CheckpointSpec::new(1, "").validate().is_err());
    }

    #[test]
    fn ps_outages_suppress_comm_fault_evictions_on_down_rounds() {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
        cfg.iterations = 40;
        cfg.comm_faults = Some(CommFaultSpec {
            seed: 7,
            drop: 0.75,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_rounds: 0,
            retry_budget: 2,
            timeout_s: 1e-3,
        });
        let baseline = cfg.comm_fault_evictions();
        assert!(!baseline.is_empty());
        // Take the PS down exactly at the first eviction round: that worker sends no
        // envelopes there, so its eviction moves later (or disappears).
        let (victim, round) = baseline[0];
        cfg.ps_faults = Some(PsFaultSpec {
            seed: 0,
            windows: vec![(round, 1)],
            flaky: 0.0,
        });
        let shifted = cfg.comm_fault_evictions();
        assert!(
            !shifted.contains(&(victim, round)),
            "no eviction can happen at a ps-down round"
        );
        assert!(shifted.iter().all(|&(_, r)| r != round));
    }
}

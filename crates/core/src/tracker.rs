//! The relative-gradient-change tracker (`RelativeGradChange` of Alg. 1).
//!
//! Each worker tracks a scalar statistic of its per-iteration gradient — the paper uses
//! the gradient's L2 norm / variance, both cheap by-products of backpropagation —
//! smooths it with an EWMA (window 25, factor `N/100` by default), and reports the
//! relative change between consecutive smoothed values:
//!
//! ```text
//! Δ(g_i) = | E[s_i] − E[s_{i−1}] | / E[s_{i−1}]          (Eqn. 2)
//! ```
//!
//! Large `Δ(g_i)` means the gradients are changing quickly (early training, learning-rate
//! decays, critical periods) and the step is worth synchronizing.

use selsync_metrics::Ewma;
use serde::{Deserialize, Serialize};

/// Which scalar statistic of the gradient to track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GradStatistic {
    /// Squared L2 norm of the gradient (`E[||∇F||²]` in Eqn. 2). Paper default.
    #[default]
    SqNorm,
    /// Population variance of the gradient coordinates.
    Variance,
    /// Plain L2 norm.
    Norm,
}

impl GradStatistic {
    /// Evaluate the statistic on a flat gradient.
    pub fn evaluate(&self, grad: &[f32]) -> f32 {
        match self {
            GradStatistic::SqNorm => grad.iter().map(|g| g * g).sum(),
            GradStatistic::Norm => grad.iter().map(|g| g * g).sum::<f32>().sqrt(),
            GradStatistic::Variance => {
                if grad.is_empty() {
                    return 0.0;
                }
                let n = grad.len() as f32;
                let mean = grad.iter().sum::<f32>() / n;
                grad.iter().map(|g| (g - mean).powi(2)).sum::<f32>() / n
            }
        }
    }
}

/// Per-worker tracker producing `Δ(g_i)` each iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientTracker {
    statistic: GradStatistic,
    ewma: Ewma,
    previous_smoothed: Option<f32>,
    last_delta: f32,
    max_delta: f32,
    steps: u64,
}

impl GradientTracker {
    /// Create a tracker with an explicit EWMA configuration.
    pub fn new(statistic: GradStatistic, ewma_factor: f32, window: usize) -> Self {
        GradientTracker {
            statistic,
            ewma: Ewma::new(ewma_factor, window),
            previous_smoothed: None,
            last_delta: 0.0,
            max_delta: 0.0,
            steps: 0,
        }
    }

    /// The paper's default tracker for an `n_workers` cluster: squared-norm statistic,
    /// EWMA window 25, smoothing factor `n_workers / 100`.
    pub fn paper_default(n_workers: usize) -> Self {
        let ewma = Ewma::paper_default(n_workers);
        GradientTracker {
            statistic: GradStatistic::SqNorm,
            ewma,
            previous_smoothed: None,
            last_delta: 0.0,
            max_delta: 0.0,
            steps: 0,
        }
    }

    /// Ingest this iteration's gradient and return `Δ(g_i)`.
    ///
    /// The first iteration returns 0 (there is no previous smoothed value to compare
    /// against), matching the behaviour of starting in the "synchronize because δ=0 ≤ Δ"
    /// regime only when the caller chooses δ = 0.
    pub fn update(&mut self, grad: &[f32]) -> f32 {
        let raw = self.statistic.evaluate(grad);
        self.update_with_statistic(raw)
    }

    /// Ingest a pre-computed statistic value (used when the gradient statistic is
    /// produced elsewhere, e.g. fused into the backward pass).
    pub fn update_with_statistic(&mut self, raw: f32) -> f32 {
        self.steps += 1;
        let smoothed = self.ewma.update(raw);
        let delta = match self.previous_smoothed {
            None => 0.0,
            Some(prev) => {
                if prev.abs() < f32::EPSILON {
                    0.0
                } else {
                    ((smoothed - prev) / prev).abs()
                }
            }
        };
        self.previous_smoothed = Some(smoothed);
        self.last_delta = delta;
        self.max_delta = self.max_delta.max(delta);
        delta
    }

    /// The most recent `Δ(g_i)`.
    pub fn last_delta(&self) -> f32 {
        self.last_delta
    }

    /// The largest `Δ(g_i)` observed so far (the paper's `M`; setting `δ ≥ M` yields
    /// pure local-SGD training).
    pub fn max_delta(&self) -> f32 {
        self.max_delta
    }

    /// Number of iterations ingested.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current smoothed statistic value.
    pub fn smoothed_statistic(&self) -> Option<f32> {
        self.ewma.value()
    }

    /// The statistic being tracked.
    pub fn statistic(&self) -> GradStatistic {
        self.statistic
    }

    /// Reset all state (used when a model is re-initialised).
    pub fn reset(&mut self) {
        self.ewma.reset();
        self.previous_smoothed = None;
        self.last_delta = 0.0;
        self.max_delta = 0.0;
        self.steps = 0;
    }

    /// Capture the mutable state for a checkpoint. The statistic kind and EWMA
    /// configuration are rebuilt from `TrainConfig` on restore.
    pub fn export_state(&self) -> TrackerState {
        let (ewma_history, ewma_smoothed) = self.ewma.state();
        TrackerState {
            ewma_history,
            ewma_smoothed,
            previous_smoothed: self.previous_smoothed,
            last_delta: self.last_delta,
            max_delta: self.max_delta,
            steps: self.steps,
        }
    }

    /// Restore state captured by [`Self::export_state`] onto a same-configured tracker.
    pub fn restore_state(&mut self, state: &TrackerState) {
        self.ewma.restore(&state.ewma_history, state.ewma_smoothed);
        self.previous_smoothed = state.previous_smoothed;
        self.last_delta = state.last_delta;
        self.max_delta = state.max_delta;
        self.steps = state.steps;
    }
}

/// The checkpointable portion of a [`GradientTracker`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerState {
    /// Retained EWMA window, oldest first.
    pub ewma_history: Vec<f32>,
    /// Current EWMA smoothed value.
    pub ewma_smoothed: Option<f32>,
    /// Smoothed value at the previous step (denominator of Eqn. 2).
    pub previous_smoothed: Option<f32>,
    /// Most recent `Δ(g_i)`.
    pub last_delta: f32,
    /// Largest `Δ(g_i)` observed so far.
    pub max_delta: f32,
    /// Iterations ingested.
    pub steps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_reports_zero_delta() {
        let mut t = GradientTracker::paper_default(16);
        assert_eq!(t.update(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(t.steps(), 1);
    }

    #[test]
    fn constant_gradients_give_zero_delta() {
        let mut t = GradientTracker::paper_default(16);
        for _ in 0..50 {
            t.update(&[0.5, -0.5, 1.0]);
        }
        assert!(t.last_delta() < 1e-6);
    }

    #[test]
    fn a_jump_in_gradient_norm_produces_a_large_delta() {
        let mut t = GradientTracker::new(GradStatistic::SqNorm, 0.5, 25);
        for _ in 0..20 {
            t.update(&[0.1; 10]);
        }
        let quiet = t.last_delta();
        let spike = t.update(&[10.0; 10]);
        assert!(
            spike > 10.0 * quiet.max(1e-6),
            "spike {spike} vs quiet {quiet}"
        );
        assert!(t.max_delta() >= spike);
    }

    #[test]
    fn smoothing_reduces_sensitivity_to_single_step_noise() {
        // With a small factor, a one-step blip is damped relative to an unsmoothed tracker.
        let mut damped = GradientTracker::new(GradStatistic::SqNorm, 0.05, 25);
        let mut sharp = GradientTracker::new(GradStatistic::SqNorm, 1.0, 25);
        for _ in 0..30 {
            damped.update(&[1.0; 4]);
            sharp.update(&[1.0; 4]);
        }
        let d = damped.update(&[2.0; 4]);
        let s = sharp.update(&[2.0; 4]);
        assert!(d < s, "damped {d} vs sharp {s}");
    }

    #[test]
    fn decaying_gradients_produce_decaying_deltas() {
        let mut t = GradientTracker::new(GradStatistic::SqNorm, 0.3, 25);
        let mut deltas = Vec::new();
        for i in 0..100 {
            let scale = 1.0 / (1.0 + i as f32 * 0.1);
            deltas.push(t.update(&[scale; 8]));
        }
        // Later deltas must be smaller than the early ones (gradients saturate, §II-E).
        let early: f32 = deltas[2..10].iter().sum();
        let late: f32 = deltas[90..98].iter().sum();
        assert!(late < early, "late {late} vs early {early}");
    }

    #[test]
    fn statistics_evaluate_correctly() {
        assert_eq!(GradStatistic::SqNorm.evaluate(&[3.0, 4.0]), 25.0);
        assert_eq!(GradStatistic::Norm.evaluate(&[3.0, 4.0]), 5.0);
        assert!((GradStatistic::Variance.evaluate(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
        assert_eq!(GradStatistic::Variance.evaluate(&[]), 0.0);
    }

    #[test]
    fn zero_previous_statistic_is_not_a_division_by_zero() {
        let mut t = GradientTracker::new(GradStatistic::SqNorm, 1.0, 5);
        t.update(&[0.0; 4]);
        let d = t.update(&[1.0; 4]);
        assert_eq!(d, 0.0); // previous smoothed value was exactly zero
    }

    #[test]
    fn export_restore_round_trips_and_continues_bit_identically() {
        let mut a = GradientTracker::new(GradStatistic::SqNorm, 0.3, 4);
        for i in 0..9 {
            a.update(&[0.5 + i as f32 * 0.25; 6]);
        }
        let state = a.export_state();
        let mut b = GradientTracker::new(GradStatistic::SqNorm, 0.3, 4);
        b.restore_state(&state);
        assert_eq!(b.export_state(), state);
        assert_eq!(b.steps(), a.steps());
        for x in [0.7f32, 4.0, 0.1] {
            let da = a.update(&[x; 6]);
            let db = b.update(&[x; 6]);
            assert_eq!(da.to_bits(), db.to_bits());
        }
        assert_eq!(a.max_delta().to_bits(), b.max_delta().to_bits());
    }

    #[test]
    fn reset_clears_history() {
        let mut t = GradientTracker::paper_default(4);
        t.update(&[1.0]);
        t.update(&[5.0]);
        t.reset();
        assert_eq!(t.steps(), 0);
        assert_eq!(t.max_delta(), 0.0);
        assert_eq!(t.update(&[2.0]), 0.0);
    }
}

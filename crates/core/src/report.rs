//! Per-run results and the derived quantities the paper's Table I reports.

use selsync_nn::model::ModelKind;
use serde::{Deserialize, Serialize};

/// One evaluation point along a training trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Training iteration at which the evaluation happened.
    pub iteration: usize,
    /// Simulated wall-clock seconds elapsed so far.
    pub sim_time_s: f64,
    /// Training loss of the most recent step.
    pub train_loss: f32,
    /// Loss on the held-out set.
    pub test_loss: f32,
    /// Task metric on the held-out set (accuracy % or perplexity).
    pub test_metric: f32,
    /// Cluster-maximum relative gradient change `Δ(g_i)` at this iteration.
    pub delta_g: f32,
    /// Learning rate in effect.
    pub lr: f32,
}

/// Result of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Algorithm label (e.g. `"SelSync(d=0.3,PA)"`).
    pub algorithm: String,
    /// The workload trained.
    pub model: ModelKind,
    /// Whether larger `final_metric` is better (accuracy) or worse (perplexity).
    pub higher_is_better: bool,
    /// Iterations executed.
    pub iterations: usize,
    /// Steps that were applied locally only.
    pub local_steps: u64,
    /// Steps that synchronized across workers.
    pub sync_steps: u64,
    /// The step indices (iterations, for drivers that account one step per iteration)
    /// at which a synchronization fired, in order — the run's synchronization
    /// *schedule*. Recorded-seed regressions and the threaded-vs-simulator parity
    /// tests pin this, for fixed, scheduled and adaptive δ policies, on crash-free
    /// schedules and (under scheduled rejoin pulls) on crash/rejoin schedules.
    pub sync_rounds: Vec<usize>,
    /// Local-to-synchronous step ratio (Eqn. 4).
    pub lssr: f64,
    /// Final held-out metric.
    pub final_metric: f32,
    /// Best held-out metric seen at any evaluation.
    pub best_metric: f32,
    /// Final held-out loss.
    pub final_loss: f32,
    /// Largest `Δ(g_i)` observed (the paper's `M`).
    pub max_delta: f32,
    /// Total simulated wall-clock time (compute + communication).
    pub sim_time_s: f64,
    /// Simulated time spent communicating.
    pub comm_time_s: f64,
    /// Simulated time spent computing.
    pub compute_time_s: f64,
    /// Bytes moved over the (simulated) network.
    pub bytes_communicated: u64,
    /// Number of δ-policy regime switches the run made (0 for fixed/scheduled
    /// policies, which never switch; the adaptive arm's explore↔exploit flips).
    pub policy_switches: u32,
    /// The iterations at which those regime switches fired, in order.
    pub switch_rounds: Vec<usize>,
    /// Evaluation history.
    pub history: Vec<EvalPoint>,
}

impl RunReport {
    /// Simulated time at which this run first reached `target` (metric ≥ target for
    /// accuracy-style metrics, ≤ target for perplexity-style ones). `None` if never.
    pub fn time_to_target(&self, target: f32) -> Option<f64> {
        self.history
            .iter()
            .find(|p| {
                if self.higher_is_better {
                    p.test_metric >= target
                } else {
                    p.test_metric <= target
                }
            })
            .map(|p| p.sim_time_s)
    }

    /// Iteration at which this run first reached `target` (same convention as
    /// [`Self::time_to_target`]).
    pub fn iterations_to_target(&self, target: f32) -> Option<usize> {
        self.history
            .iter()
            .find(|p| {
                if self.higher_is_better {
                    p.test_metric >= target
                } else {
                    p.test_metric <= target
                }
            })
            .map(|p| p.iteration)
    }

    /// The paper's "Conv. Diff." column: this run's final metric minus the baseline's
    /// (sign-adjusted so positive always means "outperformed the baseline").
    pub fn convergence_diff(&self, baseline: &RunReport) -> f32 {
        if self.higher_is_better {
            self.final_metric - baseline.final_metric
        } else {
            baseline.final_metric - self.final_metric
        }
    }

    /// Whether this run matched or beat the baseline's final metric.
    pub fn outperforms(&self, baseline: &RunReport) -> bool {
        self.convergence_diff(baseline) >= 0.0
    }

    /// The paper's "Overall speedup" column: ratio of the baseline's simulated time to
    /// reach its own final metric to this run's simulated time to reach that same
    /// metric. `None` when this run never reaches the baseline's metric.
    pub fn speedup_to_baseline_target(&self, baseline: &RunReport) -> Option<f64> {
        let target = baseline.final_metric;
        let own = self.time_to_target(target)?;
        let base = baseline
            .time_to_target(target)
            .unwrap_or(baseline.sim_time_s)
            .max(f64::EPSILON);
        Some(base / own.max(f64::EPSILON))
    }

    /// Wall-clock speedup over a baseline for the *same number of iterations* (ratio of
    /// per-run simulated time), a secondary view used in the throughput figures.
    pub fn raw_time_speedup(&self, baseline: &RunReport) -> f64 {
        if self.sim_time_s <= 0.0 {
            return 0.0;
        }
        baseline.sim_time_s / self.sim_time_s
    }

    /// Communication reduction implied by the LSSR (Eqn. 4 discussion): `1/(1-LSSR)`.
    pub fn communication_reduction(&self) -> f64 {
        if (1.0 - self.lssr).abs() < f64::EPSILON {
            f64::INFINITY
        } else {
            1.0 / (1.0 - self.lssr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(higher: bool, metrics: &[(usize, f64, f32)], final_metric: f32, time: f64) -> RunReport {
        RunReport {
            algorithm: "test".into(),
            model: ModelKind::ResNetLike,
            higher_is_better: higher,
            iterations: 100,
            local_steps: 50,
            sync_steps: 50,
            sync_rounds: Vec::new(),
            lssr: 0.5,
            final_metric,
            best_metric: final_metric,
            final_loss: 1.0,
            max_delta: 1.0,
            sim_time_s: time,
            comm_time_s: time / 2.0,
            compute_time_s: time / 2.0,
            bytes_communicated: 0,
            policy_switches: 0,
            switch_rounds: Vec::new(),
            history: metrics
                .iter()
                .map(|&(it, t, m)| EvalPoint {
                    iteration: it,
                    sim_time_s: t,
                    train_loss: 0.0,
                    test_loss: 0.0,
                    test_metric: m,
                    delta_g: 0.0,
                    lr: 0.1,
                })
                .collect(),
        }
    }

    #[test]
    fn time_to_target_respects_metric_direction() {
        let acc = mk(
            true,
            &[(10, 1.0, 50.0), (20, 2.0, 80.0), (30, 3.0, 90.0)],
            90.0,
            3.0,
        );
        assert_eq!(acc.time_to_target(75.0), Some(2.0));
        assert_eq!(acc.time_to_target(95.0), None);
        let ppl = mk(
            false,
            &[(10, 1.0, 200.0), (20, 2.0, 120.0), (30, 3.0, 90.0)],
            90.0,
            3.0,
        );
        assert_eq!(ppl.time_to_target(130.0), Some(2.0));
        assert_eq!(ppl.iterations_to_target(95.0), Some(30));
    }

    #[test]
    fn convergence_diff_sign_is_positive_when_better() {
        let bsp = mk(true, &[], 90.0, 10.0);
        let better = mk(true, &[], 91.0, 5.0);
        assert!((better.convergence_diff(&bsp) - 1.0).abs() < 1e-6);
        assert!(better.outperforms(&bsp));
        let bsp_ppl = mk(false, &[], 90.0, 10.0);
        let better_ppl = mk(false, &[], 85.0, 5.0);
        assert!(better_ppl.convergence_diff(&bsp_ppl) > 0.0);
    }

    #[test]
    fn speedup_uses_time_to_the_baselines_metric() {
        let bsp = mk(true, &[(50, 8.0, 90.0)], 90.0, 10.0);
        let fast = mk(true, &[(30, 2.0, 90.5)], 90.5, 4.0);
        let s = fast.speedup_to_baseline_target(&bsp).unwrap();
        assert!((s - 4.0).abs() < 1e-9, "{s}");
        // A run that never reaches the target has no speedup entry (the "-" cells).
        let slow = mk(true, &[(30, 2.0, 70.0)], 70.0, 4.0);
        assert!(slow.speedup_to_baseline_target(&bsp).is_none());
    }

    #[test]
    fn raw_speedup_and_comm_reduction() {
        let a = mk(true, &[], 90.0, 10.0);
        let b = mk(true, &[], 90.0, 2.0);
        assert!((b.raw_time_speedup(&a) - 5.0).abs() < 1e-9);
        assert!((a.communication_reduction() - 2.0).abs() < 1e-9);
    }
}

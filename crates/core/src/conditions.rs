//! Cluster-condition model: device heterogeneity and timed fault injection.
//!
//! The paper's argument for selective synchronization is strongest when the cluster is
//! imperfect — stragglers, slow links, heterogeneous devices, workers dropping out —
//! yet each algorithm driver used to hardcode its own notion of imperfection (SSP's
//! inline 1.4× straggler). [`ClusterConditions`] is the single source of truth: a
//! per-worker base speed profile plus a schedule of time-windowed [`FaultEvent`]s,
//! queried by the [`crate::sim::Simulator`] for per-step compute multipliers, per-round
//! network overrides and worker presence. Everything is a pure function of
//! `(worker, iteration)`, so runs stay bit-for-bit deterministic and the threaded
//! driver can evaluate the same schedule without coordination.
//!
//! Declarative scenario files (the `selsync-scenario` crate) compile down to this type.

use selsync_comm::netmodel::NetworkModel;
use serde::{Deserialize, Serialize};

/// One time-windowed cluster fault. Iteration windows are half-open: `start` is the
/// first affected iteration, `start + duration` the first unaffected one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A transient compute slowdown of one worker (a straggler phase): the worker's
    /// step time is multiplied by `factor` (> 1 = slower) during the window.
    Slowdown {
        /// Affected worker.
        worker: usize,
        /// First affected iteration.
        start: usize,
        /// Window length in iterations.
        duration: usize,
        /// Compute-time multiplier applied during the window.
        factor: f64,
    },
    /// The worker crashes at `start` and rejoins at `rejoin` (never, if `None`). While
    /// absent it neither computes nor participates in synchronization; on rejoin it
    /// pulls the current global state from the PS.
    Crash {
        /// Affected worker.
        worker: usize,
        /// First absent iteration.
        start: usize,
        /// First iteration back (absent forever when `None`).
        rejoin: Option<usize>,
    },
    /// Cluster-wide bandwidth degradation: link bandwidth is multiplied by `factor`
    /// (< 1 = degraded) during the window.
    BandwidthDegradation {
        /// First affected iteration.
        start: usize,
        /// Window length in iterations.
        duration: usize,
        /// Bandwidth multiplier applied during the window.
        factor: f64,
    },
    /// Cluster-wide latency spike: `extra_latency_s` is added to the one-way message
    /// latency during the window.
    LatencySpike {
        /// First affected iteration.
        start: usize,
        /// Window length in iterations.
        duration: usize,
        /// Additional one-way latency in seconds.
        extra_latency_s: f64,
    },
}

#[inline]
fn in_window(iter: usize, start: usize, duration: usize) -> bool {
    iter >= start && iter < start.saturating_add(duration)
}

impl FaultEvent {
    /// Human-readable one-line description (used by scenario reports).
    pub fn describe(&self) -> String {
        match self {
            FaultEvent::Slowdown {
                worker,
                start,
                duration,
                factor,
            } => {
                format!(
                    "worker {worker} slows {factor}x during [{start}, {})",
                    start + duration
                )
            }
            FaultEvent::Crash {
                worker,
                start,
                rejoin,
            } => match rejoin {
                Some(r) => format!("worker {worker} crashes at {start}, rejoins at {r}"),
                None => format!("worker {worker} crashes at {start} and never rejoins"),
            },
            FaultEvent::BandwidthDegradation {
                start,
                duration,
                factor,
            } => {
                format!("bandwidth x{factor} during [{start}, {})", start + duration)
            }
            FaultEvent::LatencySpike {
                start,
                duration,
                extra_latency_s,
            } => {
                format!(
                    "latency +{extra_latency_s}s during [{start}, {})",
                    start + duration
                )
            }
        }
    }
}

/// Deterministic description of how the cluster deviates from a perfectly homogeneous,
/// fault-free fleet.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterConditions {
    /// Per-worker base compute-time multipliers indexed by worker id (1.0 = nominal
    /// speed, larger = slower). Workers beyond the vector's length run at 1.0; an empty
    /// vector means a homogeneous fleet.
    pub base_speed: Vec<f64>,
    /// Scheduled faults, applied on top of the base profile.
    pub faults: Vec<FaultEvent>,
}

impl ClusterConditions {
    /// A homogeneous, fault-free cluster (the default).
    pub fn uniform() -> Self {
        ClusterConditions::default()
    }

    /// A heterogeneity profile from explicit per-worker speed multipliers.
    pub fn with_speeds(base_speed: Vec<f64>) -> Self {
        ClusterConditions {
            base_speed,
            faults: Vec::new(),
        }
    }

    /// The mild heterogeneity the paper's SSP discussion assumes: the last worker is a
    /// 1.4× straggler, the others cycle through {1.0, 1.05, 1.1}. Previously hardcoded
    /// inside the SSP driver.
    pub fn paper_straggler(workers: usize) -> Self {
        let base_speed = (0..workers)
            .map(|w| {
                if w + 1 == workers {
                    1.4
                } else {
                    1.0 + 0.05 * (w % 3) as f64
                }
            })
            .collect();
        ClusterConditions::with_speeds(base_speed)
    }

    /// Add a fault to the schedule (builder style).
    pub fn with_fault(mut self, fault: FaultEvent) -> Self {
        self.faults.push(fault);
        self
    }

    /// Whether this is a homogeneous, fault-free cluster.
    pub fn is_uniform(&self) -> bool {
        self.faults.is_empty() && self.base_speed.iter().all(|&s| s == 1.0)
    }

    /// Whether any per-worker base speeds are configured.
    pub fn has_heterogeneity(&self) -> bool {
        self.base_speed.iter().any(|&s| s != 1.0)
    }

    /// Compute-time multiplier for `worker` at `iter` (base profile × active slowdowns).
    pub fn compute_multiplier(&self, worker: usize, iter: usize) -> f64 {
        let mut m = self.base_speed.get(worker).copied().unwrap_or(1.0);
        for fault in &self.faults {
            if let FaultEvent::Slowdown {
                worker: w,
                start,
                duration,
                factor,
            } = fault
            {
                if *w == worker && in_window(iter, *start, *duration) {
                    m *= factor;
                }
            }
        }
        m
    }

    /// Whether `worker` is alive at `iter`.
    pub fn is_present(&self, worker: usize, iter: usize) -> bool {
        for fault in &self.faults {
            if let FaultEvent::Crash {
                worker: w,
                start,
                rejoin,
            } = fault
            {
                if *w == worker && iter >= *start && rejoin.is_none_or(|r| iter < r) {
                    return false;
                }
            }
        }
        true
    }

    /// The alive subset of a `workers`-sized cluster at `iter`, in worker order.
    pub fn present_workers(&self, workers: usize, iter: usize) -> Vec<usize> {
        (0..workers).filter(|&w| self.is_present(w, iter)).collect()
    }

    /// The first iteration in `from..limit` at which *any* worker of a
    /// `workers`-sized cluster is present (`limit` when none is) — i.e. the next round
    /// that actually trains and therefore produces a δ-policy observation. The
    /// threaded driver's shared policy board uses this to know which round's signals
    /// it must wait for next.
    pub fn next_active_iteration(&self, workers: usize, from: usize, limit: usize) -> usize {
        (from..limit)
            .find(|&it| (0..workers).any(|w| self.is_present(w, it)))
            .unwrap_or(limit)
    }

    /// The network model in effect at `iter` (base model with active degradations and
    /// latency spikes applied).
    pub fn network_at(&self, iter: usize, base: &NetworkModel) -> NetworkModel {
        let mut net = *base;
        for fault in &self.faults {
            match fault {
                FaultEvent::BandwidthDegradation {
                    start,
                    duration,
                    factor,
                } if in_window(iter, *start, *duration) => {
                    net.bandwidth_bps *= factor;
                }
                FaultEvent::LatencySpike {
                    start,
                    duration,
                    extra_latency_s,
                } if in_window(iter, *start, *duration) => {
                    net.latency_s += extra_latency_s;
                }
                _ => {}
            }
        }
        net
    }

    /// Largest compute multiplier among the present workers at `iter` — the factor by
    /// which the slowest live device stretches a synchronous round (1.0 if nobody is
    /// present).
    pub fn slowest_present_multiplier(&self, workers: usize, iter: usize) -> f64 {
        (0..workers)
            .filter(|&w| self.is_present(w, iter))
            .map(|w| self.compute_multiplier(w, iter))
            .fold(1.0f64, f64::max)
    }

    /// Validate the schedule against a cluster of `workers` workers and a run of
    /// `iterations` iterations: worker ids in range, factors/durations positive, and at
    /// least one worker alive at every iteration.
    pub fn validate(&self, workers: usize, iterations: usize) -> Result<(), String> {
        if self.base_speed.len() > workers {
            return Err(format!(
                "heterogeneity profile describes {} workers but the cluster has {workers}",
                self.base_speed.len()
            ));
        }
        if let Some(s) = self
            .base_speed
            .iter()
            .find(|&&s| s <= 0.0 || !s.is_finite())
        {
            return Err(format!(
                "base speed multipliers must be positive and finite, got {s}"
            ));
        }
        for fault in &self.faults {
            match fault {
                FaultEvent::Slowdown {
                    worker,
                    duration,
                    factor,
                    ..
                } => {
                    if *worker >= workers {
                        return Err(format!("slowdown names worker {worker} of {workers}"));
                    }
                    if *duration == 0 || *factor <= 0.0 || !factor.is_finite() {
                        return Err("slowdown needs duration > 0 and a positive factor".into());
                    }
                }
                FaultEvent::Crash {
                    worker,
                    start,
                    rejoin,
                } => {
                    if *worker >= workers {
                        return Err(format!("crash names worker {worker} of {workers}"));
                    }
                    if let Some(r) = rejoin {
                        if r <= start {
                            return Err(format!("crash rejoin {r} must be after start {start}"));
                        }
                    }
                }
                FaultEvent::BandwidthDegradation {
                    duration, factor, ..
                } => {
                    if *duration == 0 || *factor <= 0.0 || !factor.is_finite() {
                        return Err("bandwidth degradation needs duration > 0, factor > 0".into());
                    }
                }
                FaultEvent::LatencySpike {
                    duration,
                    extra_latency_s,
                    ..
                } => {
                    if *duration == 0 || *extra_latency_s < 0.0 || !extra_latency_s.is_finite() {
                        return Err("latency spike needs duration > 0, extra latency >= 0".into());
                    }
                }
            }
        }
        for iter in 0..iterations {
            if (0..workers).all(|w| !self.is_present(w, iter)) {
                return Err(format!("no worker is present at iteration {iter}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_conditions_are_transparent() {
        let c = ClusterConditions::uniform();
        assert!(c.is_uniform());
        assert_eq!(c.compute_multiplier(3, 100), 1.0);
        assert!(c.is_present(3, 100));
        assert_eq!(c.present_workers(4, 0), vec![0, 1, 2, 3]);
        let net = NetworkModel::paper_5gbps();
        assert_eq!(c.network_at(50, &net), net);
        assert!(c.validate(4, 1000).is_ok());
    }

    #[test]
    fn paper_straggler_matches_the_old_ssp_speeds() {
        let c = ClusterConditions::paper_straggler(4);
        assert_eq!(c.base_speed, vec![1.0, 1.05, 1.1, 1.4]);
        assert!(c.has_heterogeneity());
        assert!(!c.is_uniform());
    }

    #[test]
    fn slowdown_applies_only_inside_its_window() {
        let c = ClusterConditions::uniform().with_fault(FaultEvent::Slowdown {
            worker: 1,
            start: 10,
            duration: 5,
            factor: 3.0,
        });
        assert_eq!(c.compute_multiplier(1, 9), 1.0);
        assert_eq!(c.compute_multiplier(1, 10), 3.0);
        assert_eq!(c.compute_multiplier(1, 14), 3.0);
        assert_eq!(c.compute_multiplier(1, 15), 1.0);
        assert_eq!(c.compute_multiplier(0, 12), 1.0, "other workers unaffected");
        assert_eq!(c.slowest_present_multiplier(3, 12), 3.0);
    }

    #[test]
    fn slowdowns_compose_with_base_speed() {
        let c = ClusterConditions::with_speeds(vec![1.0, 1.4]).with_fault(FaultEvent::Slowdown {
            worker: 1,
            start: 0,
            duration: 10,
            factor: 2.0,
        });
        assert!((c.compute_multiplier(1, 5) - 2.8).abs() < 1e-12);
    }

    #[test]
    fn crash_and_rejoin_windows() {
        let c = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: 2,
            start: 20,
            rejoin: Some(30),
        });
        assert!(c.is_present(2, 19));
        assert!(!c.is_present(2, 20));
        assert!(!c.is_present(2, 29));
        assert!(c.is_present(2, 30));
        assert_eq!(c.present_workers(4, 25), vec![0, 1, 3]);

        let forever = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: 0,
            start: 5,
            rejoin: None,
        });
        assert!(!forever.is_present(0, 1_000_000));
    }

    #[test]
    fn network_overrides_stack_inside_windows() {
        let base = NetworkModel::paper_5gbps();
        let c = ClusterConditions::uniform()
            .with_fault(FaultEvent::BandwidthDegradation {
                start: 0,
                duration: 10,
                factor: 0.5,
            })
            .with_fault(FaultEvent::LatencySpike {
                start: 5,
                duration: 10,
                extra_latency_s: 0.01,
            });
        let at3 = c.network_at(3, &base);
        assert_eq!(at3.bandwidth_bps, base.bandwidth_bps * 0.5);
        assert_eq!(at3.latency_s, base.latency_s);
        let at7 = c.network_at(7, &base);
        assert_eq!(at7.bandwidth_bps, base.bandwidth_bps * 0.5);
        assert!((at7.latency_s - (base.latency_s + 0.01)).abs() < 1e-12);
        let at12 = c.network_at(12, &base);
        assert_eq!(at12.bandwidth_bps, base.bandwidth_bps);
        // Degraded network makes every synchronization slower.
        assert!(at3.ps_sync_time(1 << 20, 4) > base.ps_sync_time(1 << 20, 4));
    }

    #[test]
    fn validation_catches_bad_schedules() {
        assert!(ClusterConditions::with_speeds(vec![1.0; 8])
            .validate(4, 10)
            .is_err());
        assert!(ClusterConditions::with_speeds(vec![-1.0])
            .validate(4, 10)
            .is_err());
        let bad_worker = ClusterConditions::uniform().with_fault(FaultEvent::Slowdown {
            worker: 9,
            start: 0,
            duration: 1,
            factor: 2.0,
        });
        assert!(bad_worker.validate(4, 10).is_err());
        let bad_rejoin = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: 0,
            start: 5,
            rejoin: Some(5),
        });
        assert!(bad_rejoin.validate(4, 10).is_err());
        // All workers dead at once is rejected.
        let all_dead = ClusterConditions::uniform()
            .with_fault(FaultEvent::Crash {
                worker: 0,
                start: 3,
                rejoin: Some(6),
            })
            .with_fault(FaultEvent::Crash {
                worker: 1,
                start: 4,
                rejoin: Some(7),
            });
        assert!(all_dead.validate(2, 10).is_err());
        assert!(all_dead.validate(3, 10).is_ok());
    }

    #[test]
    fn next_active_iteration_skips_fully_crashed_windows() {
        // Both workers of a 2-cluster are absent during [3, 6): the next active
        // iteration seen from anywhere inside the window is 6.
        let c = ClusterConditions::uniform()
            .with_fault(FaultEvent::Crash {
                worker: 0,
                start: 3,
                rejoin: Some(6),
            })
            .with_fault(FaultEvent::Crash {
                worker: 1,
                start: 3,
                rejoin: Some(6),
            });
        assert_eq!(c.next_active_iteration(2, 0, 10), 0);
        assert_eq!(c.next_active_iteration(2, 3, 10), 6);
        assert_eq!(c.next_active_iteration(2, 5, 10), 6);
        assert_eq!(c.next_active_iteration(2, 6, 10), 6);
        // Nothing active before the limit ⇒ the limit itself.
        assert_eq!(c.next_active_iteration(2, 4, 5), 5);
        // A wider cluster keeps worker 2 alive through the window.
        assert_eq!(c.next_active_iteration(3, 3, 10), 3);
    }

    #[test]
    fn describe_is_stable() {
        let f = FaultEvent::Slowdown {
            worker: 1,
            start: 10,
            duration: 5,
            factor: 2.5,
        };
        assert_eq!(f.describe(), "worker 1 slows 2.5x during [10, 15)");
        let c = FaultEvent::Crash {
            worker: 0,
            start: 3,
            rejoin: None,
        };
        assert_eq!(c.describe(), "worker 0 crashes at 3 and never rejoins");
    }
}

//! Distributed training algorithm drivers.
//!
//! All drivers share the [`crate::sim::Simulator`] harness, so they differ only in
//! *when* and *what* they aggregate — exactly the axis the paper studies:
//!
//! | Driver | Aggregation rule | Paper section |
//! |---|---|---|
//! | [`bsp`] | every step, all workers | §II-A |
//! | [`localsgd`] | never | §III-B (δ ≥ M limit) |
//! | [`fedavg`] | every `E·steps_per_epoch` steps, `C·N` random workers | §II-B |
//! | [`ssp`] | asynchronous push/pull with a staleness bound | §II-C |
//! | [`selsync`] | whenever any worker's `Δ(g_i) ≥ δ` | §III |
//!
//! [`run`] dispatches on [`AlgorithmSpec`] and returns a [`RunReport`].

pub mod bsp;
pub mod fedavg;
pub mod localsgd;
pub mod selsync;
pub mod ssp;

use crate::config::{AlgorithmSpec, TrainConfig};
use crate::report::RunReport;

/// Run the algorithm selected by `cfg.algorithm` and return its report.
pub fn run(cfg: &TrainConfig) -> RunReport {
    match cfg.algorithm {
        AlgorithmSpec::Bsp => bsp::run(cfg),
        AlgorithmSpec::LocalSgd => localsgd::run(cfg),
        AlgorithmSpec::FedAvg { .. } => fedavg::run(cfg),
        AlgorithmSpec::Ssp { .. } => ssp::run(cfg),
        AlgorithmSpec::SelSync { .. } => selsync::run(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_nn::model::ModelKind;

    fn tiny(algo: AlgorithmSpec) -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 2);
        cfg.iterations = 12;
        cfg.eval_every = 6;
        cfg.train_samples = 256;
        cfg.test_samples = 64;
        cfg.eval_samples = 64;
        cfg.batch_size = 8;
        cfg.algorithm = algo;
        cfg
    }

    #[test]
    fn dispatcher_selects_each_algorithm() {
        for (algo, label) in [
            (AlgorithmSpec::Bsp, "BSP"),
            (AlgorithmSpec::LocalSgd, "LocalSGD"),
            (AlgorithmSpec::FedAvg { c: 1.0, e: 0.5 }, "FedAvg"),
            (AlgorithmSpec::Ssp { staleness: 8 }, "SSP"),
            (AlgorithmSpec::selsync(0.3), "SelSync"),
        ] {
            let report = run(&tiny(algo));
            assert!(report.algorithm.starts_with(label), "{}", report.algorithm);
            assert_eq!(report.iterations, 12);
            assert!(!report.history.is_empty());
        }
    }
}

//! Bulk-synchronous parallel training (§II-A): every iteration aggregates gradients from
//! all workers through the parameter server.

use crate::aggregation;
use crate::config::TrainConfig;
use crate::report::RunReport;
use crate::sim::{Simulator, WorkerStep};

/// Run BSP for `cfg.iterations` iterations.
pub fn run(cfg: &TrainConfig) -> RunReport {
    let mut sim = Simulator::new(cfg);
    let wire = sim.nominal().wire_bytes;
    // Latest aggregated model (what the PS would hold); rejoining workers pull it.
    // Reused round to round — the averaged vector is written once per round and
    // copied into the per-replica buffers, no per-replica clone fan-out.
    let mut global = sim.workers[0].params.clone();
    let mut avg = Vec::new();
    let mut steps: Vec<WorkerStep> = Vec::new();

    for it in 0..cfg.iterations {
        let lr = sim.lr_at(it);
        let (present, rejoin_comm, rejoin_bytes) = sim.begin_round(it, &global);
        if present.is_empty() {
            sim.account_step(0.0, 0.0, 0, false);
            continue;
        }

        // Gradient phase: all present workers in parallel on the engine pool.
        sim.plan_round(&present, &mut steps);
        let round = sim.run_round(&steps);
        // Aggregate gradients on the PS and apply the averaged gradient to the present
        // workers; crashed workers keep their stale replicas. The PS global is the
        // present replicas' average — after a crash-rejoin the replicas can diverge
        // (the rejoiner's momentum was reset), so no single replica is "the" model.
        aggregation::average_into(sim.round_grads(), &mut avg);
        sim.apply_round_shared(&present, &avg, lr);
        sim.average_params_of_into(&present, &mut global);
        let compute = sim.round_compute_seconds(it);
        let comm = sim.ps_sync_seconds_at(it, present.len()) + rejoin_comm;
        let bytes = 2 * present.len() as u64 * wire + round.injected_bytes + rejoin_bytes;
        sim.account_step(compute, comm, bytes, true);

        if sim.should_eval(it) {
            // `record_eval` only reads the snapshot; move `global` through a
            // temporary to satisfy the borrow checker without cloning it.
            let snapshot = std::mem::take(&mut global);
            sim.record_eval(it, &snapshot, round.max_delta);
            global = snapshot;
        }
    }
    sim.finalize("BSP".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgorithmSpec;
    use selsync_nn::model::ModelKind;

    fn cfg() -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 2);
        cfg.iterations = 40;
        cfg.eval_every = 10;
        cfg.train_samples = 512;
        cfg.test_samples = 128;
        cfg.eval_samples = 128;
        cfg.batch_size = 16;
        cfg.algorithm = AlgorithmSpec::Bsp;
        cfg
    }

    #[test]
    fn bsp_has_zero_lssr_and_synchronizes_every_step() {
        let report = run(&cfg());
        assert_eq!(report.lssr, 0.0);
        assert_eq!(report.sync_steps, 40);
        assert_eq!(report.local_steps, 0);
        assert!(report.comm_time_s > 0.0);
    }

    #[test]
    fn bsp_improves_the_test_metric() {
        let report = run(&cfg());
        let first = report.history.first().unwrap().test_metric;
        let best = report.best_metric;
        assert!(
            best > first,
            "accuracy should improve: first {first}, best {best}"
        );
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn bsp_is_deterministic_for_a_fixed_seed() {
        let a = run(&cfg());
        let b = run(&cfg());
        assert_eq!(a.final_metric, b.final_metric);
        assert_eq!(a.sim_time_s, b.sim_time_s);
    }

    #[test]
    fn delta_g_history_decreases_over_training() {
        // Fig. 5: Δ(g_i) is volatile early and settles as convergence plateaus. On a
        // short run we only assert that the series is recorded and finite.
        let report = run(&cfg());
        assert!(report.history.iter().all(|p| p.delta_g.is_finite()));
        assert!(report.max_delta >= 0.0);
    }
}

//! SelSync (§III, Alg. 1): δ-based selective synchronization.
//!
//! Per iteration, every worker computes its gradient and its relative gradient change
//! `Δ(g_i)`; the cluster exchanges one status bit per worker (all-gather) and
//! synchronizes if **any** bit is set:
//!
//! * **Parameter aggregation** (the SelSync default): each worker first applies its
//!   local update, then parameters are pushed to the PS, averaged, and pulled back
//!   (Alg. 1 lines 9, 14–15).
//! * **Gradient aggregation** (the Fig. 9/10 comparison mode): on a synchronized step
//!   the averaged gradient is applied by every worker to its own (possibly diverged)
//!   replica; on local steps the worker applies its own gradient.
//!
//! Data-injection (non-IID) and the SelDP partitioning are handled by the simulator.

use crate::aggregation::{self, AggregationMode};
use crate::config::{AlgorithmSpec, TrainConfig};
use crate::policy::{SyncDecision, SyncPolicy};
use crate::report::RunReport;
use crate::sim::Simulator;

/// Run SelSync for `cfg.iterations` iterations. Panics if `cfg.algorithm` is not SelSync.
pub fn run(cfg: &TrainConfig) -> RunReport {
    let (delta, aggregation_mode) = match cfg.algorithm {
        AlgorithmSpec::SelSync { delta, aggregation, .. } => (delta, aggregation),
        _ => panic!("selsync::run called with a non-SelSync configuration"),
    };
    let policy = SyncPolicy::new(delta);
    let algo_name = cfg.algorithm.name();

    let mut sim = Simulator::new(cfg);
    let n = sim.num_workers();
    let wire = sim.nominal().wire_bytes;

    for it in 0..cfg.iterations {
        let lr = sim.lr_at(it);

        // Phase 1: every worker computes its gradient and Δ(g_i) on its next mini-batch.
        let mut grads = Vec::with_capacity(n);
        let mut deltas = Vec::with_capacity(n);
        let mut injected_bytes = 0u64;
        for w in 0..n {
            let (idx, inj) = sim.next_batch(w);
            injected_bytes += inj;
            let (_, g) = sim.compute_gradient(w, &idx);
            deltas.push(sim.track_delta(w, &g));
            grads.push(g);
        }
        let cluster_delta = deltas.iter().cloned().fold(0.0f32, f32::max);

        // Phase 2: 1-bit status all-gather and the cluster-level decision.
        let flags = policy.flags_from_deltas(&deltas);
        let decision = policy.decide(&flags);
        let mut comm = sim.status_allgather_seconds();
        let mut bytes = injected_bytes + n as u64; // the flag bits themselves (≈1 B/worker)
        if injected_bytes > 0 {
            comm += cfg.network.p2p_time(injected_bytes);
        }

        // Phase 3: apply updates according to the decision and aggregation mode.
        match (decision, aggregation_mode) {
            (SyncDecision::Local, _) => {
                for w in 0..n {
                    sim.apply_update(w, &grads[w], lr);
                }
            }
            (SyncDecision::Synchronize, AggregationMode::Parameter) => {
                // Alg. 1: local update first, then push parameters and pull the average.
                for w in 0..n {
                    sim.apply_update(w, &grads[w], lr);
                }
                let avg = sim.average_params();
                sim.set_all_params(&avg);
                comm += sim.ps_sync_seconds(n);
                bytes += 2 * n as u64 * wire;
            }
            (SyncDecision::Synchronize, AggregationMode::Gradient) => {
                // Gradients are averaged on the PS and applied locally by each worker.
                let avg_grad = aggregation::average(&grads);
                for w in 0..n {
                    sim.apply_update(w, &avg_grad, lr);
                }
                comm += sim.ps_sync_seconds(n);
                bytes += 2 * n as u64 * wire;
            }
        }

        let compute = sim.step_compute_seconds();
        sim.account_step(compute, comm, bytes, decision == SyncDecision::Synchronize);

        if sim.should_eval(it) {
            // The evaluated global model is the replica average (identical to any single
            // replica right after a PA synchronization).
            let global = sim.average_params();
            sim.record_eval(it, &global, cluster_delta);
        }
    }
    sim.finalize(algo_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_data::partition::PartitionScheme;
    use selsync_nn::model::ModelKind;

    fn cfg(algo: AlgorithmSpec) -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
        cfg.iterations = 40;
        cfg.eval_every = 10;
        cfg.train_samples = 512;
        cfg.test_samples = 128;
        cfg.eval_samples = 128;
        cfg.batch_size = 8;
        cfg.algorithm = algo;
        cfg
    }

    #[test]
    fn delta_zero_behaves_like_bsp() {
        // δ = 0 means every step satisfies Δ(g_i) ≥ δ, so LSSR must be 0.
        let report = run(&cfg(AlgorithmSpec::selsync(0.0)));
        assert_eq!(report.lssr, 0.0);
        assert_eq!(report.sync_steps, 40);
    }

    #[test]
    fn huge_delta_behaves_like_local_sgd() {
        let report = run(&cfg(AlgorithmSpec::selsync(1e9)));
        assert_eq!(report.local_steps, 40);
        assert!(report.lssr > 0.99);
        // Only the status all-gather is charged, which is orders of magnitude cheaper
        // than parameter exchange.
        assert!(report.comm_time_s < 1.0);
    }

    #[test]
    fn moderate_delta_mixes_local_and_sync_steps() {
        let report = run(&cfg(AlgorithmSpec::selsync(0.05)));
        assert!(report.sync_steps > 0, "some steps must synchronize");
        assert!(report.local_steps > 0, "some steps must stay local");
        assert!(report.lssr > 0.0 && report.lssr < 1.0);
    }

    #[test]
    fn higher_delta_gives_higher_lssr() {
        let low = run(&cfg(AlgorithmSpec::selsync(0.02)));
        let high = run(&cfg(AlgorithmSpec::selsync(0.3)));
        assert!(high.lssr >= low.lssr, "lssr {} vs {}", high.lssr, low.lssr);
        assert!(high.comm_time_s <= low.comm_time_s);
    }

    #[test]
    fn selsync_is_faster_than_bsp_for_same_iterations() {
        let sel = run(&cfg(AlgorithmSpec::selsync(0.1)));
        let mut bsp_cfg = cfg(AlgorithmSpec::selsync(0.1));
        bsp_cfg.algorithm = AlgorithmSpec::Bsp;
        let bsp = crate::algorithms::bsp::run(&bsp_cfg);
        assert!(sel.sim_time_s < bsp.sim_time_s);
        assert!(sel.raw_time_speedup(&bsp) > 1.0);
    }

    #[test]
    fn parameter_and_gradient_aggregation_both_run() {
        let pa = run(&cfg(AlgorithmSpec::selsync(0.05)));
        let ga = run(&cfg(AlgorithmSpec::selsync_ga(0.05)));
        assert!(pa.final_loss.is_finite());
        assert!(ga.final_loss.is_finite());
        assert!(pa.algorithm.contains("PA"));
        assert!(ga.algorithm.contains("GA"));
    }

    #[test]
    fn seldp_and_defdp_both_supported() {
        let mut c = cfg(AlgorithmSpec::selsync(0.3));
        c.partition = PartitionScheme::DefDp;
        let defdp = run(&c);
        c.partition = PartitionScheme::SelDp;
        let seldp = run(&c);
        assert!(defdp.final_loss.is_finite() && seldp.final_loss.is_finite());
    }

    #[test]
    fn non_iid_with_injection_accounts_injection_bytes() {
        let mut c = cfg(AlgorithmSpec::selsync_injected(0.5, 0.5, 0.3));
        c.workers = 10;
        c.non_iid_labels_per_worker = Some(1);
        let report = run(&c);
        assert!(report.bytes_communicated > 0);
        assert!(report.final_loss.is_finite());
    }
}

//! SelSync (§III, Alg. 1): δ-based selective synchronization.
//!
//! Per iteration, every worker computes its gradient and its relative gradient change
//! `Δ(g_i)`; the cluster exchanges one status bit per worker (all-gather) and
//! synchronizes if **any** bit is set:
//!
//! * **Parameter aggregation** (the SelSync default): each worker first applies its
//!   local update, then parameters are pushed to the PS, averaged, and pulled back
//!   (Alg. 1 lines 9, 14–15).
//! * **Gradient aggregation** (the Fig. 9/10 comparison mode): on a synchronized step
//!   the averaged gradient is applied by every worker to its own (possibly diverged)
//!   replica; on local steps the worker applies its own gradient.
//!
//! Data-injection (non-IID) and the SelDP partitioning are handled by the simulator.
//!
//! The δ threshold itself comes from a [`crate::policy::DeltaPolicy`]: the paper's
//! fixed δ by default, or — when `cfg.delta_policy` is set — a scheduled or adaptive
//! (Sync-Switch-style) policy that is consulted before each round and observes the
//! round's signals afterwards. Policies are deterministic functions of the merged
//! round signals, so the byte-identity guarantee across thread counts is preserved.

use crate::aggregation::{self, AggregationMode};
use crate::checkpoint::{self, Checkpoint, Section};
use crate::config::{AlgorithmSpec, CheckpointSpec, TrainConfig};
use crate::policy::{DeltaPolicy, PolicySpec, PolicyState, RoundSignal, SyncDecision, SyncPolicy};
use crate::report::RunReport;
use crate::sim::{Simulator, WorkerStep};
use selsync_comm::faults::CommFaultSchedule;
use selsync_comm::wire::frame_len;
use selsync_tracelog::codec;

/// The algorithm label a SelSync run reports, as a pure function of its config.
/// Shared by the simulator driver and the threaded driver (and the trace headers of
/// both), so every surface names the same run identically.
///
/// Without an explicit policy the paper's algorithm label is kept verbatim (byte
/// compatibility with every pre-policy recorded report); explicit policies name
/// themselves. A `Fixed` policy's label intentionally reproduces the same
/// `SelSync(d=…,…)` shape.
pub fn algorithm_label(cfg: &TrainConfig) -> String {
    let (aggregation_mode, injection) = match cfg.algorithm {
        AlgorithmSpec::SelSync {
            aggregation,
            injection,
            ..
        } => (aggregation, injection),
        _ => return cfg.algorithm.name(),
    };
    let Some(spec) = &cfg.delta_policy else {
        return cfg.algorithm.name();
    };
    let agg = match aggregation_mode {
        AggregationMode::Parameter => "PA",
        AggregationMode::Gradient => "GA",
    };
    // An injected Fixed arm reproduces AlgorithmSpec::name()'s exact shape
    // (`SelSync(α,β,δ,agg)`, no `d=` prefix) so label-keyed comparisons treat
    // semantically identical arms identically.
    let policy_label = match (spec, injection.is_some()) {
        (PolicySpec::Fixed { delta }, true) => format!("{delta}"),
        _ => spec.label(),
    };
    match injection {
        Some(inj) => format!("SelSync({},{},{policy_label},{agg})", inj.alpha, inj.beta),
        None => format!("SelSync({policy_label},{agg})"),
    }
}

/// Run SelSync for `cfg.iterations` iterations. Panics if `cfg.algorithm` is not SelSync.
pub fn run(cfg: &TrainConfig) -> RunReport {
    run_inner(cfg, None)
}

/// Resume a SelSync run from a durable checkpoint written by an earlier `run` of the
/// *same* configuration (same [`checkpoint::config_fingerprint`]). The restored run
/// continues from `ckpt.round + 1` and produces the byte-identical trace and report
/// of the uninterrupted run. Panics on a backend or fingerprint mismatch — resuming
/// under a different config is always a bug, never a recoverable condition.
pub fn run_resumed(cfg: &TrainConfig, ckpt: &Checkpoint) -> RunReport {
    run_inner(cfg, Some(ckpt))
}

fn run_inner(cfg: &TrainConfig, resume: Option<&Checkpoint>) -> RunReport {
    // A threaded- or process-backend image is translated into the simulator's
    // layout up front; everything below sees a native "sim" checkpoint.
    let translated;
    let resume = match resume {
        Some(ckpt) if ckpt.backend == "threaded" => {
            translated = crate::resume::threaded_to_sim(cfg, ckpt);
            Some(&translated)
        }
        Some(ckpt) if ckpt.backend == "process" => {
            translated =
                crate::resume::threaded_to_sim(cfg, &crate::resume::process_to_threaded(ckpt));
            Some(&translated)
        }
        other => other,
    };
    let (delta, aggregation_mode, _injection) = match cfg.algorithm {
        AlgorithmSpec::SelSync {
            delta,
            aggregation,
            injection,
        } => (delta, aggregation, injection),
        _ => panic!("selsync::run called with a non-SelSync configuration"),
    };
    let spec = cfg
        .delta_policy
        .clone()
        .unwrap_or(PolicySpec::Fixed { delta });
    spec.validate().expect("invalid δ-policy configuration");
    let mut policy = spec.build();
    let algo_name = algorithm_label(cfg);
    // Only signal-consuming policies receive cluster round signals in the threaded
    // driver (the exchange is elided otherwise), so only they log signal events.
    let exchange_signals = spec.consumes_round_signals();

    let mut sim = Simulator::new(cfg);
    let wire = sim.nominal().wire_bytes;
    // Comm-fault machinery: the schedule prices retries, the compiled evictions
    // (already folded into the simulator's membership) drive the evict events, and
    // every presence-derived trace fact must come from the *effective* conditions so
    // fault-driven evictions look exactly like scheduled crashes.
    let fault_schedule = cfg.comm_faults.map(CommFaultSchedule::new);
    // PS availability: a pure function of `(spec, round)`, so both backends see the
    // exact same outage windows. `None` keeps the server perfectly reliable.
    let ps_schedule = cfg.ps_fault_schedule();
    let ckpt_spec = cfg.checkpoint.clone();
    if let Some(ck) = &ckpt_spec {
        ck.validate().expect("invalid checkpoint configuration");
    }
    let evictions = cfg.comm_fault_evictions();
    // The image a resume started from stays on disk whatever the retention says.
    let protect = resume.map(|c| c.round);
    let conditions = cfg.effective_conditions();
    // Latest synchronized model; rejoining workers pull it from the PS.
    let mut global = sim.workers[0].params.clone();
    // Round-to-round buffers: the averaged vector is written once per round and
    // copied into reused per-replica buffers (no per-replica clone fan-out).
    let mut avg = Vec::new();
    let mut steps: Vec<WorkerStep> = Vec::new();

    let start = match resume {
        Some(ckpt) => {
            assert_eq!(
                ckpt.backend, "sim",
                "checkpoint was written by the {} backend, not the simulator",
                ckpt.backend
            );
            assert_eq!(
                ckpt.fingerprint,
                checkpoint::config_fingerprint(cfg),
                "checkpoint belongs to a different configuration"
            );
            sim.restore_checkpoint_sections(ckpt);
            let mut reader = ckpt.read_section("policy");
            let ints = reader.ints();
            let floats = reader.f32s();
            reader.finish();
            policy.import_state(&PolicyState { ints, floats });
            let mut reader = ckpt.read_section("global");
            let restored_global = reader.f32s();
            reader.finish();
            assert_eq!(
                restored_global.len(),
                global.len(),
                "checkpointed global model has the wrong parameter count"
            );
            global = restored_global;
            // The restored trace prefix already contains the run header, so the
            // resumed run skips `emit_header` and appends from `round + 1`.
            if cfg.trace.is_enabled() {
                let events = ckpt
                    .trace
                    .iter()
                    .map(|line| codec::decode_event(line).expect("checkpointed trace line decodes"))
                    .collect();
                cfg.trace.preload(events);
            }
            ckpt.round + 1
        }
        None => {
            crate::tracing::emit_header(&cfg.trace, cfg, &algo_name, &spec.label());
            0
        }
    };

    for it in start..cfg.iterations {
        let lr = sim.lr_at(it);
        let (present, rejoin_comm, rejoin_bytes) = sim.begin_round(it, &global);
        // Evictions fire whether or not the remaining round is runnable, so the
        // event stream matches the threaded driver's (whose evicted thread emits
        // its farewell regardless of what the survivors do this round).
        for &(worker, round) in &evictions {
            if round == it {
                cfg.trace
                    .record(selsync_tracelog::Event::CommEvict { round: it, worker });
            }
        }
        if present.is_empty() {
            sim.account_step(0.0, 0.0, 0, false);
            continue;
        }
        crate::tracing::emit_round_context(&cfg.trace, &conditions, cfg.workers, it, &present);
        let mut comm = rejoin_comm;
        let mut bytes = rejoin_bytes;

        // Phase 0: ask the δ policy for this round's threshold.
        let sync_policy = SyncPolicy::new(policy.delta(it));

        // Phase 1: every present worker computes its gradient and Δ(g_i) on its next
        // mini-batch — in parallel on the engine pool.
        sim.plan_round(&present, &mut steps);
        let round = sim.run_round(&steps);
        let cluster_delta = round.max_delta;

        // PS outage: the round degrades to forced-local. Every present worker pays
        // one probe round-trip to discover the outage, skips the status all-gather,
        // signal exchange and retry machinery (they all ride PS envelopes), applies
        // its own update, and the δ policy is fed the first present worker's local
        // signal so regime state stays coherent through the outage. `DegradedRound`
        // replaces the `Round` event.
        if ps_schedule.as_ref().is_some_and(|s| s.down(it as u64)) {
            comm += sim.network_at(it).ps_probe_time();
            bytes += present.len() as u64 * frame_len(8) as u64;
            // Worker-to-worker injection shipping is unaffected by the PS outage.
            bytes += round.injected_bytes;
            if round.injected_bytes > 0 {
                comm += sim.network_at(it).p2p_time(round.injected_bytes);
            }
            sim.apply_round_own(&steps, lr);
            let compute = sim.round_compute_seconds(it);
            sim.account_step(compute, comm, bytes, false);

            let local_delta = round.deltas[0];
            let local_loss = round.stats[0].loss;
            let round_signal = RoundSignal {
                iteration: it,
                max_delta: local_delta,
                mean_loss: local_loss,
                delta_mean: local_delta,
                delta_sq_mean: local_delta * local_delta,
                synced: false,
            };
            policy.observe(&round_signal);

            if cfg.trace.is_enabled() {
                if ps_schedule
                    .as_ref()
                    .is_some_and(|s| s.outage_starts(it as u64))
                {
                    cfg.trace
                        .record(selsync_tracelog::Event::PsDown { round: it });
                }
                cfg.trace.record(selsync_tracelog::Event::DegradedRound {
                    round: it,
                    delta: sync_policy.delta,
                    loss: local_loss,
                    delta_g: local_delta,
                });
                if let Some(sw) = policy.last_switch() {
                    cfg.trace.record(selsync_tracelog::Event::RegimeSwitch {
                        round: it,
                        exploit: sw.exploit,
                        loss_ewma: sw.loss_ewma,
                        delta_ewma: sw.delta_ewma,
                        mean_loss: round_signal.mean_loss,
                        max_delta: round_signal.max_delta,
                    });
                }
            }

            if sim.should_eval(it) {
                sim.average_params_of_into(&present, &mut avg);
                let snapshot = std::mem::take(&mut avg);
                sim.record_eval(it, &snapshot, cluster_delta);
                avg = snapshot;
            }
            if let Some(ck) = &ckpt_spec {
                if ck.due(it) || ck.halt_after == Some(it) {
                    write_sim_checkpoint(cfg, ck, &sim, policy.as_ref(), &global, it, protect);
                }
                if ck.halt_after == Some(it) {
                    break;
                }
            }
            continue;
        }
        // The first reachable round after an outage runs the catch-up sync:
        // synchronization is forced for every present worker so the accumulated
        // local-only deltas reconcile through the ordinary aggregation path.
        let catchup = ps_schedule
            .as_ref()
            .is_some_and(|s| s.outage_ends(it as u64));

        // Phase 2: 1-bit status all-gather among the present workers and the
        // cluster-level decision.
        let flags = if catchup {
            vec![true; present.len()]
        } else {
            sync_policy.flags_from_deltas(&round.deltas)
        };
        let decision = if catchup {
            SyncDecision::Synchronize
        } else {
            sync_policy.decide(&flags)
        };
        comm += sim.status_allgather_seconds_at(it, present.len());
        bytes += round.injected_bytes + present.len() as u64; // the flag bits (≈1 B/worker)
        if round.injected_bytes > 0 {
            comm += sim.network_at(it).p2p_time(round.injected_bytes);
        }
        // Price the δ-signal exchange when a signal-consuming policy runs: two
        // scalar all-reduces (loss mean, Δ max) plus the 2-element Δ-moment vector
        // feed — 16 payload bytes per present worker. Mirrors the envelopes the
        // threaded driver actually exchanges.
        if exchange_signals {
            let net = sim.network_at(it);
            comm += 2.0 * net.scalar_allreduce_time(present.len())
                + net.vec_allreduce_time(present.len(), 2);
            bytes += present.len() as u64 * 16;
        }
        // Price the fault schedule's retries: each present worker's exchanges at
        // this round share one link-weather attempt count; failed attempts cost
        // their deterministic backoff (workers retry concurrently, so the round
        // pays the worst worker's penalty) and retransmit both legs of the op
        // frame. Present workers always land within budget — exhaustion would have
        // evicted them from this round's membership.
        if let Some(schedule) = &fault_schedule {
            let mut worst_penalty_s = 0.0f64;
            for &worker in &present {
                let attempts = schedule
                    .attempts_used(worker, it as u64)
                    .expect("present workers complete within their retry budget");
                if attempts > 1 {
                    bytes += (attempts as u64 - 1) * 2 * frame_len(8) as u64;
                    worst_penalty_s =
                        worst_penalty_s.max(schedule.retry_penalty_s(worker, it as u64));
                    cfg.trace.record(selsync_tracelog::Event::CommRetry {
                        round: it,
                        worker,
                        attempts,
                    });
                }
            }
            comm += worst_penalty_s;
        }

        // Phase 3: apply updates according to the decision and aggregation mode.
        match (decision, aggregation_mode) {
            (SyncDecision::Local, _) => {
                sim.apply_round_own(&steps, lr);
            }
            (SyncDecision::Synchronize, AggregationMode::Parameter) => {
                // Alg. 1: local update first, then push parameters and pull the average.
                sim.apply_round_own(&steps, lr);
                sim.average_params_of_into(&present, &mut avg);
                sim.set_params_of(&present, &avg);
                global.copy_from_slice(&avg);
                comm += sim.ps_sync_seconds_at(it, present.len());
                bytes += 2 * present.len() as u64 * wire;
            }
            (SyncDecision::Synchronize, AggregationMode::Gradient) => {
                // Gradients are averaged on the PS and applied locally by each worker.
                // GA keeps replicas diverged by design, so the PS global is the present
                // replicas' average, not any single replica.
                aggregation::average_into(sim.round_grads(), &mut avg);
                sim.apply_round_shared(&present, &avg, lr);
                sim.average_params_of_into(&present, &mut global);
                comm += sim.ps_sync_seconds_at(it, present.len());
                bytes += 2 * present.len() as u64 * wire;
            }
        }

        let compute = sim.round_compute_seconds(it);
        let synced = decision == SyncDecision::Synchronize;
        sim.account_step(compute, comm, bytes, synced);

        // Feed the completed round's (worker-order-merged, thread-count-invariant)
        // signals back to the δ policy.
        let round_signal = round.signal(it, synced);
        policy.observe(&round_signal);

        if cfg.trace.is_enabled() {
            if catchup {
                let schedule = ps_schedule.as_ref().expect("catchup implies a schedule");
                cfg.trace
                    .record(selsync_tracelog::Event::PsUp { round: it });
                cfg.trace.record(selsync_tracelog::Event::CatchupSync {
                    round: it,
                    behind: schedule.rounds_behind(it as u64) as usize,
                });
            }
            if exchange_signals {
                sim_trace_signal(cfg, &round_signal);
            }
            cfg.trace.record(selsync_tracelog::Event::Round {
                round: it,
                delta: sync_policy.delta,
                flags: flags.clone(),
                synced,
            });
            if let Some(sw) = policy.last_switch() {
                cfg.trace.record(selsync_tracelog::Event::RegimeSwitch {
                    round: it,
                    exploit: sw.exploit,
                    loss_ewma: sw.loss_ewma,
                    delta_ewma: sw.delta_ewma,
                    mean_loss: round_signal.mean_loss,
                    max_delta: round_signal.max_delta,
                });
            }
        }

        if sim.should_eval(it) {
            // The evaluated global model is the present replicas' average (identical to
            // any single present replica right after a PA synchronization).
            sim.average_params_of_into(&present, &mut avg);
            let snapshot = std::mem::take(&mut avg);
            sim.record_eval(it, &snapshot, cluster_delta);
            avg = snapshot;
        }
        if let Some(ck) = &ckpt_spec {
            if ck.due(it) || ck.halt_after == Some(it) {
                write_sim_checkpoint(cfg, ck, &sim, policy.as_ref(), &global, it, protect);
            }
            if ck.halt_after == Some(it) {
                break;
            }
        }
    }
    let mut report = sim.finalize(algo_name);
    report.policy_switches = policy.switch_rounds().len() as u32;
    report.switch_rounds = policy.switch_rounds().to_vec();
    report
}

/// Write the simulator backend's full recovery image after round `it`: the
/// simulator sections (RNG position, counters, history, per-worker model/optimizer/
/// tracker state), the δ-policy state, the latest synchronized global model, and the
/// trace prefix recorded so far. A resumed run restores all four and continues
/// byte-identically.
fn write_sim_checkpoint(
    cfg: &TrainConfig,
    ck: &CheckpointSpec,
    sim: &Simulator,
    policy: &dyn DeltaPolicy,
    global: &[f32],
    it: usize,
    protect: Option<usize>,
) {
    let mut image = Checkpoint::new("sim", checkpoint::config_fingerprint(cfg), it);
    sim.export_checkpoint_sections(&mut image);
    let state = policy.export_state();
    let mut section = Section::new("policy");
    section.push_ints(&state.ints);
    section.push_f32s(&state.floats);
    image.add_section(section);
    let mut section = Section::new("global");
    section.push_f32s(global);
    image.add_section(section);
    if cfg.trace.is_enabled() {
        let log = cfg.trace.snapshot_log();
        image.trace = log.events.iter().map(codec::encode_event).collect();
    }
    let path = ck.path_for(it);
    image
        .write_file(&path)
        .unwrap_or_else(|err| panic!("failed to write checkpoint {}: {err}", path.display()));
    // Retention runs only after the newer image is durably on disk, and never
    // removes the image a resume started from.
    ck.prune(it, protect);
}

/// Record the cluster-aggregated round signal (split out to keep the round loop flat).
fn sim_trace_signal(cfg: &TrainConfig, signal: &crate::policy::RoundSignal) {
    cfg.trace.record(selsync_tracelog::Event::Signal {
        round: signal.iteration,
        mean_loss: signal.mean_loss,
        max_delta: signal.max_delta,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_data::partition::PartitionScheme;
    use selsync_nn::model::ModelKind;

    fn cfg(algo: AlgorithmSpec) -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
        cfg.iterations = 40;
        cfg.eval_every = 10;
        cfg.train_samples = 512;
        cfg.test_samples = 128;
        cfg.eval_samples = 128;
        cfg.batch_size = 8;
        cfg.algorithm = algo;
        cfg
    }

    #[test]
    fn delta_zero_behaves_like_bsp() {
        // δ = 0 means every step satisfies Δ(g_i) ≥ δ, so LSSR must be 0.
        let report = run(&cfg(AlgorithmSpec::selsync(0.0)));
        assert_eq!(report.lssr, 0.0);
        assert_eq!(report.sync_steps, 40);
    }

    #[test]
    fn huge_delta_behaves_like_local_sgd() {
        let report = run(&cfg(AlgorithmSpec::selsync(1e9)));
        assert_eq!(report.local_steps, 40);
        assert!(report.lssr > 0.99);
        // Only the status all-gather is charged, which is orders of magnitude cheaper
        // than parameter exchange.
        assert!(report.comm_time_s < 1.0);
    }

    #[test]
    fn moderate_delta_mixes_local_and_sync_steps() {
        // At this tiny scale the Δ(g_i) distribution is narrow, so derive a "moderate"
        // threshold from the observed range rather than hardcoding one: a δ just below
        // the maximum observed Δ(g_i) must leave some steps above it (synchronizing)
        // and some below it (local).
        let calibration = run(&cfg(AlgorithmSpec::selsync(0.0)));
        assert!(calibration.max_delta > 0.0);
        let moderate = calibration.max_delta * 0.95;
        let report = run(&cfg(AlgorithmSpec::selsync(moderate)));
        assert!(
            report.sync_steps > 0,
            "some steps must synchronize (delta {moderate})"
        );
        assert!(
            report.local_steps > 0,
            "some steps must stay local (delta {moderate})"
        );
        assert!(report.lssr > 0.0 && report.lssr < 1.0);
    }

    #[test]
    fn higher_delta_gives_higher_lssr() {
        let low = run(&cfg(AlgorithmSpec::selsync(0.02)));
        let high = run(&cfg(AlgorithmSpec::selsync(0.3)));
        assert!(high.lssr >= low.lssr, "lssr {} vs {}", high.lssr, low.lssr);
        assert!(high.comm_time_s <= low.comm_time_s);
    }

    #[test]
    fn selsync_is_faster_than_bsp_for_same_iterations() {
        let sel = run(&cfg(AlgorithmSpec::selsync(0.1)));
        let mut bsp_cfg = cfg(AlgorithmSpec::selsync(0.1));
        bsp_cfg.algorithm = AlgorithmSpec::Bsp;
        let bsp = crate::algorithms::bsp::run(&bsp_cfg);
        assert!(sel.sim_time_s < bsp.sim_time_s);
        assert!(sel.raw_time_speedup(&bsp) > 1.0);
    }

    #[test]
    fn parameter_and_gradient_aggregation_both_run() {
        let pa = run(&cfg(AlgorithmSpec::selsync(0.05)));
        let ga = run(&cfg(AlgorithmSpec::selsync_ga(0.05)));
        assert!(pa.final_loss.is_finite());
        assert!(ga.final_loss.is_finite());
        assert!(pa.algorithm.contains("PA"));
        assert!(ga.algorithm.contains("GA"));
    }

    #[test]
    fn seldp_and_defdp_both_supported() {
        let mut c = cfg(AlgorithmSpec::selsync(0.3));
        c.partition = PartitionScheme::DefDp;
        let defdp = run(&c);
        c.partition = PartitionScheme::SelDp;
        let seldp = run(&c);
        assert!(defdp.final_loss.is_finite() && seldp.final_loss.is_finite());
    }

    #[test]
    fn crash_rejoin_keeps_selsync_running_with_fewer_workers() {
        use crate::conditions::{ClusterConditions, FaultEvent};
        let mut c = cfg(AlgorithmSpec::selsync(0.0));
        c.conditions = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: 3,
            start: 10,
            rejoin: Some(30),
        });
        let faulty = run(&c);
        let clean = run(&cfg(AlgorithmSpec::selsync(0.0)));
        // δ=0 still synchronizes every step, but the crash window moves fewer bytes
        // (3-worker rounds instead of 4-worker rounds for 20 iterations).
        assert_eq!(faulty.sync_steps, 40);
        assert!(faulty.bytes_communicated < clean.bytes_communicated);
        assert!(faulty.final_loss.is_finite());
    }

    #[test]
    fn transient_straggler_stretches_simulated_time() {
        use crate::conditions::{ClusterConditions, FaultEvent};
        let mut c = cfg(AlgorithmSpec::selsync(0.0));
        c.conditions = ClusterConditions::uniform().with_fault(FaultEvent::Slowdown {
            worker: 1,
            start: 0,
            duration: 40,
            factor: 3.0,
        });
        let slow = run(&c);
        let clean = run(&cfg(AlgorithmSpec::selsync(0.0)));
        // Synchronous rounds run at the straggler's pace: 3x the compute time.
        assert!((slow.compute_time_s - 3.0 * clean.compute_time_s).abs() < 1e-9);
        // Communication is unaffected by a compute straggler.
        assert!((slow.comm_time_s - clean.comm_time_s).abs() < 1e-9);
    }

    #[test]
    fn degraded_network_inflates_only_communication_time() {
        use crate::conditions::{ClusterConditions, FaultEvent};
        let mut c = cfg(AlgorithmSpec::selsync(0.0));
        c.conditions = ClusterConditions::uniform().with_fault(FaultEvent::BandwidthDegradation {
            start: 0,
            duration: 40,
            factor: 0.25,
        });
        let degraded = run(&c);
        let clean = run(&cfg(AlgorithmSpec::selsync(0.0)));
        assert!(degraded.comm_time_s > 2.0 * clean.comm_time_s);
        assert!((degraded.compute_time_s - clean.compute_time_s).abs() < 1e-9);
    }

    #[test]
    fn ps_outage_windows_degrade_rounds_and_force_a_catchup_sync() {
        use selsync_comm::faults::PsFaultSpec;
        use selsync_tracelog::{Event, TraceGranularity, TraceSink};
        // δ = 0 would synchronize every round; the outage forces rounds 10..15 local.
        let mut c = cfg(AlgorithmSpec::selsync(0.0));
        c.ps_faults = Some(PsFaultSpec {
            seed: 7,
            windows: vec![(10, 5)],
            flaky: 0.0,
        });
        c.trace = TraceSink::capture(TraceGranularity::Full);
        let report = run(&c);
        assert_eq!(report.local_steps, 5, "rounds 10..15 degrade to local");
        assert_eq!(report.sync_steps, 35);
        let log = c.trace.take_log();
        let degraded: Vec<usize> = log
            .events
            .iter()
            .filter_map(|e| match e {
                Event::DegradedRound { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(degraded, vec![10, 11, 12, 13, 14]);
        assert!(log.events.contains(&Event::PsDown { round: 10 }));
        assert!(log.events.contains(&Event::PsUp { round: 15 }));
        assert!(log.events.contains(&Event::CatchupSync {
            round: 15,
            behind: 5
        }));
        // Degraded rounds replace their Round events; round 15 syncs normally.
        assert!(!log
            .events
            .iter()
            .any(|e| matches!(e, Event::Round { round, .. } if (10..15).contains(round))));
        assert!(log.events.iter().any(|e| matches!(
            e,
            Event::Round {
                round: 15,
                synced: true,
                ..
            }
        )));
    }

    #[test]
    fn outage_free_ps_fault_schedule_is_byte_identical_to_no_schedule() {
        use selsync_comm::faults::PsFaultSpec;
        use selsync_tracelog::{TraceGranularity, TraceSink};
        let mut base = cfg(AlgorithmSpec::selsync(0.1));
        base.trace = TraceSink::capture(TraceGranularity::Full);
        let baseline = run(&base);
        let mut c = cfg(AlgorithmSpec::selsync(0.1));
        c.ps_faults = Some(PsFaultSpec {
            seed: 99,
            windows: vec![],
            flaky: 0.0,
        });
        c.trace = TraceSink::capture(TraceGranularity::Full);
        let shadowed = run(&c);
        assert_eq!(base.trace.take_log().encode(), c.trace.take_log().encode());
        assert_eq!(format!("{baseline:?}"), format!("{shadowed:?}"));
    }

    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_trace_and_report() {
        use crate::config::CheckpointSpec;
        use selsync_comm::faults::PsFaultSpec;
        use selsync_tracelog::{TraceGranularity, TraceSink};
        let dir =
            std::env::temp_dir().join(format!("selsync-sim-resume-test-{}", std::process::id()));
        let make = || {
            let mut c = cfg(AlgorithmSpec::selsync(0.05));
            // An outage window straddling the kill round exercises degraded-state
            // recovery, not just the happy path.
            c.ps_faults = Some(PsFaultSpec {
                seed: 3,
                windows: vec![(12, 4)],
                flaky: 0.0,
            });
            c.delta_policy = Some(crate::policy::PolicySpec::adaptive_default());
            c.trace = TraceSink::capture(TraceGranularity::Full);
            c
        };

        let full_cfg = make();
        let full = run(&full_cfg);
        let full_trace = full_cfg.trace.take_log().encode();

        let mut killed_cfg = make();
        killed_cfg.checkpoint = Some(CheckpointSpec {
            every: 7,
            dir: dir.to_string_lossy().into_owned(),
            halt_after: Some(13),
            keep: None,
        });
        let _halted = run(&killed_cfg);
        let ckpt = Checkpoint::read_file(dir.join("ckpt-13")).expect("checkpoint reads back");
        assert_eq!(ckpt.round, 13);
        // The cadence checkpoint at round 6 was written too.
        assert!(dir.join("ckpt-6").exists());

        let resumed_cfg = make();
        let resumed = run_resumed(&resumed_cfg, &ckpt);
        assert_eq!(resumed_cfg.trace.take_log().encode(), full_trace);
        assert_eq!(format!("{resumed:?}"), format!("{full:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_retention_rotates_images_and_never_prunes_the_resume_source() {
        use crate::config::CheckpointSpec;
        let base =
            std::env::temp_dir().join(format!("selsync-ckpt-keep-test-{}", std::process::id()));
        let images = |dir: &std::path::Path| -> Vec<usize> {
            let mut rounds: Vec<usize> = std::fs::read_dir(dir)
                .map(|entries| {
                    entries
                        .filter_map(|e| e.ok())
                        .filter_map(|e| e.file_name().to_str()?.strip_prefix("ckpt-")?.parse().ok())
                        .collect()
                })
                .unwrap_or_default();
            rounds.sort_unstable();
            rounds
        };
        let spec = |dir: &std::path::Path, keep: Option<usize>| CheckpointSpec {
            every: 5,
            dir: dir.to_string_lossy().into_owned(),
            halt_after: None,
            keep,
        };

        // Rotation: 40 iterations at every=5 write rounds 4,9,…,39; `keep = 2`
        // leaves only the newest two on disk.
        let rotated = base.join("rotated");
        let mut c = cfg(AlgorithmSpec::selsync(0.05));
        c.checkpoint = Some(spec(&rotated, Some(2)));
        let _ = run(&c);
        assert_eq!(images(&rotated), vec![34, 39]);

        // Resume protection: a full-retention run leaves every image; resuming
        // from ckpt-9 with `keep = 1` rotates everything *except* the image the
        // resume started from, whatever its age.
        let protected = base.join("protected");
        let mut c = cfg(AlgorithmSpec::selsync(0.05));
        c.checkpoint = Some(spec(&protected, None));
        let _ = run(&c);
        assert_eq!(images(&protected), vec![4, 9, 14, 19, 24, 29, 34, 39]);
        let ckpt = Checkpoint::read_file(protected.join("ckpt-9")).expect("checkpoint reads back");
        let mut c = cfg(AlgorithmSpec::selsync(0.05));
        c.checkpoint = Some(spec(&protected, Some(1)));
        let _ = run_resumed(&c, &ckpt);
        assert_eq!(images(&protected), vec![9, 39]);

        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn non_iid_with_injection_accounts_injection_bytes() {
        let mut c = cfg(AlgorithmSpec::selsync_injected(0.5, 0.5, 0.3));
        c.workers = 10;
        c.non_iid_labels_per_worker = Some(1);
        let report = run(&c);
        assert!(report.bytes_communicated > 0);
        assert!(report.final_loss.is_finite());
    }
}

//! Pure local SGD: workers never communicate (the `δ ≥ M` limit of SelSync, Fig. 6).
//! Included as the degenerate baseline; the evaluated "global" model is the average of
//! the worker replicas at evaluation time only (the averaging is *not* fed back).

use crate::config::TrainConfig;
use crate::report::RunReport;
use crate::sim::{Simulator, WorkerStep};

/// Run local-SGD for `cfg.iterations` iterations.
pub fn run(cfg: &TrainConfig) -> RunReport {
    let mut sim = Simulator::new(cfg);
    let mut steps: Vec<WorkerStep> = Vec::new();

    for it in 0..cfg.iterations {
        let lr = sim.lr_at(it);
        // Crashed workers simply pause; with no PS there is nothing to pull on rejoin,
        // so they resume from their stale replicas.
        let present = sim.present_workers(it);
        if present.is_empty() {
            sim.account_step(0.0, 0.0, 0, false);
            continue;
        }
        sim.plan_round(&present, &mut steps);
        let round = sim.run_round(&steps);
        sim.apply_round_own(&steps, lr);
        let compute = sim.round_compute_seconds(it);
        sim.account_step(compute, 0.0, 0, false);

        if sim.should_eval(it) {
            let avg = sim.average_params_of(&present);
            sim.record_eval(it, &avg, round.max_delta);
        }
    }
    sim.finalize("LocalSGD".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgorithmSpec;
    use selsync_nn::model::ModelKind;

    fn cfg() -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 2);
        cfg.iterations = 30;
        cfg.eval_every = 10;
        cfg.train_samples = 256;
        cfg.test_samples = 64;
        cfg.eval_samples = 64;
        cfg.batch_size = 8;
        cfg.algorithm = AlgorithmSpec::LocalSgd;
        cfg
    }

    #[test]
    fn local_sgd_never_communicates() {
        let report = run(&cfg());
        assert_eq!(report.lssr, 1.0);
        assert_eq!(report.sync_steps, 0);
        assert_eq!(report.comm_time_s, 0.0);
        assert_eq!(report.bytes_communicated, 0);
    }

    #[test]
    fn local_sgd_is_faster_than_bsp_in_simulated_time() {
        let local = run(&cfg());
        let mut bsp_cfg = cfg();
        bsp_cfg.algorithm = AlgorithmSpec::Bsp;
        let bsp = crate::algorithms::bsp::run(&bsp_cfg);
        assert!(local.sim_time_s < bsp.sim_time_s);
    }
}

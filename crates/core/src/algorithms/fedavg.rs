//! Federated Averaging (§II-B): workers train locally and, `1/E` times per epoch, a
//! random fraction `C` of them average their *parameters*; the averaged model is
//! broadcast to every worker.

use crate::config::{AlgorithmSpec, TrainConfig};
use crate::report::RunReport;
use crate::sim::{Simulator, WorkerStep};
use selsync_tensor::rng;

/// Run FedAvg for `cfg.iterations` iterations. Panics if `cfg.algorithm` is not FedAvg.
pub fn run(cfg: &TrainConfig) -> RunReport {
    let (c, e) = match cfg.algorithm {
        AlgorithmSpec::FedAvg { c, e } => (c, e),
        _ => panic!("fedavg::run called with a non-FedAvg configuration"),
    };
    assert!(
        (0.0..=1.0).contains(&c) && c > 0.0,
        "participation fraction C must be in (0, 1]"
    );
    assert!(e > 0.0, "synchronization factor E must be positive");

    let mut sim = Simulator::new(cfg);
    let n = sim.num_workers();
    let wire = sim.nominal().wire_bytes;
    // Aggregation happens every E * steps_per_epoch iterations (E=0.25 => 4x per epoch).
    let sync_interval = ((cfg.steps_per_epoch() as f32 * e).round() as usize).max(1);
    let participants = ((c * n as f32).ceil() as usize).clamp(1, n);
    let algo_name = cfg.algorithm.name();
    // Latest aggregated model; rejoining workers pull it from the PS. The averaged
    // vector is written once per round into a reused buffer and copied into the
    // per-replica buffers — no per-replica clone fan-out.
    let mut global = sim.workers[0].params.clone();
    let mut avg = Vec::new();
    let mut steps: Vec<WorkerStep> = Vec::new();

    for it in 0..cfg.iterations {
        let lr = sim.lr_at(it);
        let (present, rejoin_comm, rejoin_bytes) = sim.begin_round(it, &global);
        if present.is_empty() {
            sim.account_step(0.0, 0.0, 0, false);
            continue;
        }

        sim.plan_round(&present, &mut steps);
        let round = sim.run_round(&steps);
        sim.apply_round_own(&steps, lr);
        let max_delta = round.max_delta;
        let compute = sim.round_compute_seconds(it);

        let is_sync_step = (it + 1) % sync_interval == 0;
        if is_sync_step {
            // Select C·N participants uniformly at random among the present workers
            // (the paper's client sampling).
            let k = participants.min(present.len());
            let chosen: Vec<usize> =
                rng::sample_without_replacement(&mut sim.rng, present.len(), k)
                    .into_iter()
                    .map(|i| present[i])
                    .collect();
            sim.average_params_of_into(&chosen, &mut avg);
            sim.set_params_of(&present, &avg);
            global.copy_from_slice(&avg);
            let comm = sim.ps_sync_seconds_at(it, k) + rejoin_comm;
            sim.account_step(compute, comm, 2 * k as u64 * wire + rejoin_bytes, true);
        } else {
            sim.account_step(compute, rejoin_comm, rejoin_bytes, false);
        }

        if sim.should_eval(it) {
            sim.average_params_of_into(&present, &mut avg);
            let snapshot = std::mem::take(&mut avg);
            sim.record_eval(it, &snapshot, max_delta);
            avg = snapshot;
        }
    }
    sim.finalize(algo_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_nn::model::ModelKind;

    fn cfg(c: f32, e: f32) -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
        cfg.iterations = 32;
        cfg.eval_every = 8;
        cfg.train_samples = 512;
        cfg.test_samples = 64;
        cfg.eval_samples = 64;
        cfg.batch_size = 8;
        cfg.algorithm = AlgorithmSpec::FedAvg { c, e };
        cfg
    }

    #[test]
    fn fedavg_has_high_lssr() {
        // steps_per_epoch = 512 / 32 = 16; E = 0.5 -> sync every 8 steps -> 4 syncs in 32.
        let report = run(&cfg(1.0, 0.5));
        assert_eq!(report.sync_steps, 4);
        assert_eq!(report.local_steps, 28);
        assert!(report.lssr > 0.8);
    }

    #[test]
    fn smaller_e_means_more_frequent_synchronization() {
        let frequent = run(&cfg(1.0, 0.25));
        let infrequent = run(&cfg(1.0, 0.5));
        assert!(frequent.sync_steps > infrequent.sync_steps);
        assert!(frequent.comm_time_s > infrequent.comm_time_s);
    }

    #[test]
    fn partial_participation_moves_fewer_bytes() {
        let all = run(&cfg(1.0, 0.5));
        let half = run(&cfg(0.5, 0.5));
        assert!(half.bytes_communicated < all.bytes_communicated);
    }

    #[test]
    fn fedavg_is_faster_than_bsp() {
        let fed = run(&cfg(1.0, 0.25));
        let mut bsp_cfg = cfg(1.0, 0.25);
        bsp_cfg.algorithm = AlgorithmSpec::Bsp;
        let bsp = crate::algorithms::bsp::run(&bsp_cfg);
        assert!(fed.sim_time_s < bsp.sim_time_s);
    }

    #[test]
    #[should_panic]
    fn wrong_algorithm_spec_panics() {
        let mut c = cfg(1.0, 0.5);
        c.algorithm = AlgorithmSpec::Bsp;
        let _ = run(&c);
    }
}

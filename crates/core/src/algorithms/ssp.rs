//! Stale-Synchronous Parallel training (§II-C).
//!
//! Workers push updates to the PS asynchronously and keep training on a locally cached
//! copy of the global model; the cache is only refreshed periodically, so the gradients
//! pushed to the PS are computed against *stale* parameters. A staleness threshold `s`
//! bounds how far the fastest worker may run ahead of the slowest: when exceeded, the
//! fast worker blocks (its simulated clock advances to the slowest worker's).
//!
//! Modelling notes (documented in DESIGN.md): the simulator is sequential, so "fast" and
//! "slow" workers are expressed through per-worker compute-time multipliers supplied by
//! the [`crate::conditions::ClusterConditions`] heterogeneity profile — when the run
//! configures no profile at all (`base_speed` empty), the paper's default applies
//! ([`ClusterConditions::paper_straggler`]: the last worker is a 1.4× straggler, as in
//! the heterogeneity discussion). An explicit profile — including an explicitly
//! homogeneous `[1.0, …]` one, as scenario files compile to — is honoured verbatim so
//! every algorithm arm of a scenario comparison runs on the same cluster. Cache
//! refreshes happen every `s/4` steps — the staleness a worker sees therefore grows with
//! the threshold, which reproduces the paper's observation that deep models degrade
//! under SSP while shallow ones tolerate it.

use crate::conditions::ClusterConditions;
use crate::config::{AlgorithmSpec, TrainConfig};
use crate::report::RunReport;
use crate::sim::{Simulator, WorkerStep};

/// Run SSP for `cfg.iterations` per-worker iterations. Panics if `cfg.algorithm` is not SSP.
pub fn run(cfg: &TrainConfig) -> RunReport {
    let staleness = match cfg.algorithm {
        AlgorithmSpec::Ssp { staleness } => staleness.max(1),
        _ => panic!("ssp::run called with a non-SSP configuration"),
    };
    let algo_name = cfg.algorithm.name();

    let mut sim = Simulator::new(cfg);
    let n = sim.num_workers();
    let wire = sim.nominal().wire_bytes;
    // Global model lives on the PS; workers keep cached copies in their replica slots.
    let mut global = sim.workers[0].params.clone();
    // Worker speeds come from the configured heterogeneity profile; only when none is
    // configured at all does the paper's default apply (last worker a 1.4× straggler,
    // others mildly mixed). An explicit all-1.0 profile stays homogeneous. Scheduled
    // faults from the configuration are honoured either way.
    let conditions = {
        let mut c = cfg.conditions.clone();
        if c.base_speed.is_empty() {
            c.base_speed = ClusterConditions::paper_straggler(n).base_speed;
        }
        c
    };
    let refresh_every = (staleness / 4).max(1);

    let mut worker_time = vec![0.0f64; n];
    let mut steps_since_refresh = vec![0usize; n];
    // Rejoin detection compares against the last *processed* round, exactly like
    // `Simulator::begin_round` in the other drivers — a per-worker previous-presence
    // vector would miss crashes spanning an all-absent round.
    let mut last_processed: Option<usize> = None;
    let base_compute = sim.step_compute_seconds();
    let mut max_delta = 0.0f32;

    let mut steps: Vec<WorkerStep> = Vec::new();

    for it in 0..cfg.iterations {
        let lr = sim.lr_at(it);
        let push_time = sim.ps_one_way_seconds_at(it);
        let present = conditions.present_workers(n, it);
        if present.is_empty() {
            sim.account_step(0.0, 0.0, 0, false);
            last_processed = Some(it);
            continue;
        }
        let mut rejoin_comm = 0.0f64;
        let mut rejoin_bytes = 0u64;
        // Batches for the whole round are drawn up front in worker order (rejoins do
        // not touch cursors or the cluster RNG, so the streams match the old
        // interleaved loop exactly).
        sim.plan_round(&present, &mut steps);

        // A rejoining worker pulls the global model *after* the pushes of every worker
        // before it in the round, so its compute genuinely depends on same-round
        // state. Split the round into segments at rejoiners: within a segment all
        // computes are independent and run in parallel; the pushes / local applies /
        // cache refreshes replay sequentially in worker order between segments.
        let rejoining: Vec<bool> = present
            .iter()
            .map(|&w| last_processed.is_some_and(|prev| !conditions.is_present(w, prev)))
            .collect();
        let mut seg_start = 0usize;
        while seg_start < present.len() {
            let mut seg_end = seg_start + 1;
            while seg_end < present.len() && !rejoining[seg_end] {
                seg_end += 1;
            }
            if rejoining[seg_start] {
                // Rejoin: pull the current global model (an extra one-way transfer,
                // charged both to this worker's clock and to the round's accounting).
                let w = present[seg_start];
                sim.rejoin_worker(w, &global);
                steps_since_refresh[w] = 0;
                worker_time[w] += push_time;
                rejoin_comm += push_time;
                rejoin_bytes += wire;
            }

            // Parallel gradient phase for this segment.
            let round = sim.run_round(&steps[seg_start..seg_end]);
            max_delta = max_delta.max(round.max_delta);

            // Sequential post-phase, exactly the old per-worker order.
            let grads = sim.take_round_grads();
            for (j, &w) in present[seg_start..seg_end].iter().enumerate() {
                // Staleness bound: a worker that is too far ahead waits for the
                // slowest (earlier workers of this round have already advanced their
                // progress, as in the interleaved loop).
                let min_progress = present
                    .iter()
                    .map(|&p| sim.workers[p].progress)
                    .min()
                    .unwrap_or(0);
                if sim.workers[w].progress > min_progress + staleness {
                    let slowest_time = worker_time.iter().cloned().fold(0.0f64, f64::max);
                    worker_time[w] = worker_time[w].max(slowest_time);
                }

                // Push: apply this worker's (stale) gradient directly to the global
                // model.
                for (p, &gi) in global.iter_mut().zip(grads[j].iter()) {
                    *p -= lr * gi;
                }
                // The worker also advances its own cached copy with its local gradient.
                sim.apply_update(w, &grads[j], lr);
                steps_since_refresh[w] += 1;
                let mut comm = push_time;
                if steps_since_refresh[w] >= refresh_every {
                    // Pull: refresh the cached copy from the global model.
                    sim.workers[w].params.copy_from_slice(&global);
                    sim.workers[w].optimizer.reset();
                    steps_since_refresh[w] = 0;
                    comm += push_time;
                }
                worker_time[w] += base_compute * conditions.compute_multiplier(w, it) + comm;
            }
            sim.restore_round_grads(grads);
            seg_start = seg_end;
        }
        // Account the wall-clock of this round as the slowest present worker's progress
        // and the communication as 2 one-way transfers per present worker (push +
        // amortised pull).
        let round_compute = base_compute * conditions.slowest_present_multiplier(n, it);
        let round_comm = push_time * present.len() as f64 * (1.0 + 1.0 / refresh_every as f64);
        // SSP never performs a blocking aggregation, so LSSR does not apply; we record
        // the steps as local (communication time is still charged).
        sim.account_step(
            round_compute,
            round_comm + rejoin_comm,
            (present.len() as u64) * wire + rejoin_bytes,
            false,
        );

        last_processed = Some(it);
        if sim.should_eval(it) {
            // `record_eval` only reads the snapshot; move `global` through a
            // temporary instead of cloning the full parameter vector per eval.
            let snapshot = std::mem::take(&mut global);
            sim.record_eval(it, &snapshot, max_delta);
            global = snapshot;
            max_delta = 0.0;
        }
    }
    sim.finalize(algo_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_nn::model::ModelKind;

    fn cfg(staleness: usize) -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::AlexLike, 3);
        cfg.iterations = 30;
        cfg.eval_every = 10;
        cfg.train_samples = 384;
        cfg.test_samples = 64;
        cfg.eval_samples = 64;
        cfg.batch_size = 8;
        cfg.algorithm = AlgorithmSpec::Ssp { staleness };
        cfg
    }

    #[test]
    fn ssp_runs_and_reports_progress() {
        let report = run(&cfg(16));
        assert_eq!(report.iterations, 30);
        assert!(report.final_loss.is_finite());
        assert!(report.comm_time_s > 0.0);
        assert!(report.bytes_communicated > 0);
    }

    #[test]
    fn ssp_avoids_the_full_ps_aggregation_cost() {
        let ssp = run(&cfg(16));
        let mut bsp_cfg = cfg(16);
        bsp_cfg.algorithm = AlgorithmSpec::Bsp;
        let bsp = crate::algorithms::bsp::run(&bsp_cfg);
        assert!(ssp.comm_time_s < bsp.comm_time_s);
    }

    #[test]
    fn ssp_learns_on_a_shallow_model() {
        // The paper finds SSP works well for AlexNet; the analogue should at least improve.
        let report = run(&cfg(8));
        let first = report.history.first().unwrap().test_metric;
        assert!(report.best_metric >= first);
    }

    #[test]
    fn explicit_uniform_profile_disables_the_default_straggler() {
        use crate::conditions::ClusterConditions;
        // No profile at all -> paper default (last worker 1.4x). An explicit all-1.0
        // profile (what scenario files compile to) must stay homogeneous so every
        // scenario arm runs on the same cluster.
        let default_run = run(&cfg(8));
        let mut uniform = cfg(8);
        uniform.conditions = ClusterConditions::with_speeds(vec![1.0; 3]);
        let uniform_run = run(&uniform);
        let ratio = default_run.compute_time_s / uniform_run.compute_time_s;
        assert!(
            (ratio - 1.4).abs() < 1e-9,
            "straggler stretch ratio {ratio}"
        );
    }

    #[test]
    fn rejoin_pull_is_accounted_in_comm_bytes() {
        use crate::conditions::{ClusterConditions, FaultEvent};
        let mut c = cfg(8);
        c.conditions = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: 1,
            start: 5,
            rejoin: Some(10),
        });
        let report = run(&c);
        let wire = selsync_nn::model::PaperModel::build(ModelKind::AlexLike, c.seed)
            .nominal
            .wire_bytes;
        // 25 iterations with 3 present workers, 5 with 2, plus one rejoin pull.
        assert_eq!(report.bytes_communicated, (25 * 3 + 5 * 2 + 1) * wire);
    }

    #[test]
    fn rejoin_is_detected_across_an_all_absent_round() {
        use crate::conditions::{ClusterConditions, FaultEvent};
        // Both workers of a 2-worker cluster are absent at iteration 5; worker 0 is
        // absent *only* there. Its rejoin at iteration 6 must still be detected (a
        // previous-presence vector frozen across the empty round would miss it).
        let mut c = cfg(8);
        c.workers = 2;
        c.conditions = ClusterConditions::uniform()
            .with_fault(FaultEvent::Crash {
                worker: 0,
                start: 5,
                rejoin: Some(6),
            })
            .with_fault(FaultEvent::Crash {
                worker: 1,
                start: 5,
                rejoin: Some(8),
            });
        let report = run(&c);
        let wire = selsync_nn::model::PaperModel::build(ModelKind::AlexLike, c.seed)
            .nominal
            .wire_bytes;
        // 5 two-worker rounds, 1 empty round, 2 one-worker rounds, 22 two-worker
        // rounds, plus exactly two rejoin pulls (worker 0 at 6, worker 1 at 8).
        let present_transfers = 5 * 2 + 2 + 22 * 2;
        let rejoin_pulls = 2;
        assert_eq!(
            report.bytes_communicated,
            (present_transfers + rejoin_pulls) * wire
        );
    }

    #[test]
    #[should_panic]
    fn wrong_spec_panics() {
        let mut c = cfg(8);
        c.algorithm = AlgorithmSpec::Bsp;
        let _ = run(&c);
    }
}

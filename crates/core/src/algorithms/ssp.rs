//! Stale-Synchronous Parallel training (§II-C).
//!
//! Workers push updates to the PS asynchronously and keep training on a locally cached
//! copy of the global model; the cache is only refreshed periodically, so the gradients
//! pushed to the PS are computed against *stale* parameters. A staleness threshold `s`
//! bounds how far the fastest worker may run ahead of the slowest: when exceeded, the
//! fast worker blocks (its simulated clock advances to the slowest worker's).
//!
//! Modelling notes (documented in DESIGN.md): the simulator is sequential, so "fast" and
//! "slow" workers are expressed through per-worker compute-time multipliers (the last
//! worker is a 1.4× straggler, as in the paper's heterogeneity discussion), and cache
//! refreshes happen every `s/4` steps — the staleness a worker sees therefore grows with
//! the threshold, which reproduces the paper's observation that deep models degrade
//! under SSP while shallow ones tolerate it.

use crate::config::{AlgorithmSpec, TrainConfig};
use crate::report::RunReport;
use crate::sim::Simulator;

/// Run SSP for `cfg.iterations` per-worker iterations. Panics if `cfg.algorithm` is not SSP.
pub fn run(cfg: &TrainConfig) -> RunReport {
    let staleness = match cfg.algorithm {
        AlgorithmSpec::Ssp { staleness } => staleness.max(1),
        _ => panic!("ssp::run called with a non-SSP configuration"),
    };
    let algo_name = cfg.algorithm.name();

    let mut sim = Simulator::new(cfg);
    let n = sim.num_workers();
    let wire = sim.nominal().wire_bytes;
    // Global model lives on the PS; workers keep cached copies in their replica slots.
    let mut global = sim.workers[0].params.clone();
    // The last worker is a straggler (1.4x slower), the others are mildly heterogeneous.
    let speeds: Vec<f64> =
        (0..n).map(|w| if w == n - 1 { 1.4 } else { 1.0 + 0.05 * (w % 3) as f64 }).collect();
    let refresh_every = (staleness / 4).max(1);

    let mut worker_time = vec![0.0f64; n];
    let mut steps_since_refresh = vec![0usize; n];
    let base_compute = sim.step_compute_seconds();
    let push_time = sim.ps_one_way_seconds();
    let mut max_delta = 0.0f32;

    for it in 0..cfg.iterations {
        let lr = sim.lr_at(it);
        for w in 0..n {
            // Staleness bound: a worker that is too far ahead waits for the slowest.
            let min_progress = sim.workers.iter().map(|ws| ws.progress).min().unwrap_or(0);
            if sim.workers[w].progress > min_progress + staleness {
                let slowest_time = worker_time.iter().cloned().fold(0.0f64, f64::max);
                worker_time[w] = worker_time[w].max(slowest_time);
            }

            let (idx, _) = sim.next_batch(w);
            let (_, g) = sim.compute_gradient(w, &idx);
            max_delta = max_delta.max(sim.track_delta(w, &g));
            // Push: apply this worker's (stale) gradient directly to the global model.
            for (p, &gi) in global.iter_mut().zip(g.iter()) {
                *p -= lr * gi;
            }
            // The worker also advances its own cached copy with its local gradient.
            sim.apply_update(w, &g, lr);
            steps_since_refresh[w] += 1;
            let mut comm = push_time;
            if steps_since_refresh[w] >= refresh_every {
                // Pull: refresh the cached copy from the global model.
                sim.workers[w].params.copy_from_slice(&global);
                sim.workers[w].optimizer.reset();
                steps_since_refresh[w] = 0;
                comm += push_time;
            }
            worker_time[w] += base_compute * speeds[w] + comm;
        }
        // Account the wall-clock of this round as the slowest worker's progress and the
        // communication as 2 one-way transfers per worker (push + amortised pull).
        let round_compute = base_compute * speeds.iter().cloned().fold(0.0f64, f64::max);
        let round_comm = push_time * n as f64 * (1.0 + 1.0 / refresh_every as f64);
        // SSP never performs a blocking aggregation, so LSSR does not apply; we record
        // the steps as local (communication time is still charged).
        sim.account_step(round_compute, round_comm, (n as u64) * wire, false);

        if sim.should_eval(it) {
            let snapshot = global.clone();
            sim.record_eval(it, &snapshot, max_delta);
            max_delta = 0.0;
        }
    }
    sim.finalize(algo_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_nn::model::ModelKind;

    fn cfg(staleness: usize) -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::AlexLike, 3);
        cfg.iterations = 30;
        cfg.eval_every = 10;
        cfg.train_samples = 384;
        cfg.test_samples = 64;
        cfg.eval_samples = 64;
        cfg.batch_size = 8;
        cfg.algorithm = AlgorithmSpec::Ssp { staleness };
        cfg
    }

    #[test]
    fn ssp_runs_and_reports_progress() {
        let report = run(&cfg(16));
        assert_eq!(report.iterations, 30);
        assert!(report.final_loss.is_finite());
        assert!(report.comm_time_s > 0.0);
        assert!(report.bytes_communicated > 0);
    }

    #[test]
    fn ssp_avoids_the_full_ps_aggregation_cost() {
        let ssp = run(&cfg(16));
        let mut bsp_cfg = cfg(16);
        bsp_cfg.algorithm = AlgorithmSpec::Bsp;
        let bsp = crate::algorithms::bsp::run(&bsp_cfg);
        assert!(ssp.comm_time_s < bsp.comm_time_s);
    }

    #[test]
    fn ssp_learns_on_a_shallow_model() {
        // The paper finds SSP works well for AlexNet; the analogue should at least improve.
        let report = run(&cfg(8));
        let first = report.history.first().unwrap().test_metric;
        assert!(report.best_metric >= first);
    }

    #[test]
    #[should_panic]
    fn wrong_spec_panics() {
        let mut c = cfg(8);
        c.algorithm = AlgorithmSpec::Bsp;
        let _ = run(&c);
    }
}

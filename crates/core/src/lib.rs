//! # selsync
//!
//! A Rust reproduction of **"Accelerating Distributed ML Training via Selective
//! Synchronization"** (Tyagi & Swany, IEEE CLUSTER 2023).
//!
//! SelSync is a semi-synchronous data-parallel training scheme: on every iteration each
//! worker measures how much its gradient is changing (the relative gradient change
//! `Δ(g_i)`, Eqn. 2 of the paper) and the cluster synchronizes **only** on the
//! iterations where at least one worker's change exceeds a threshold `δ`; all other
//! iterations apply purely local SGD updates. Combined with parameter (rather than
//! gradient) aggregation and the SelDP circular-queue data partitioning, this converges
//! to BSP-level accuracy while eliminating most of the communication.
//!
//! Crate layout:
//!
//! * [`tracker`] — the per-worker `Δ(g_i)` tracker (EWMA-smoothed gradient statistic).
//! * [`policy`] — the `δ` decision rule (Fig. 6): `Δ(g_i) ≥ δ` ⇒ synchronize — plus
//!   the [`policy::DeltaPolicy`] trait choosing δ itself (fixed, scheduled, or a
//!   Sync-Switch-style adaptive policy that relaxes δ once gradients settle).
//! * [`conditions`] — cluster imperfections: device heterogeneity profiles and timed
//!   fault schedules (stragglers, crashes, network degradation) shared by every driver.
//! * [`aggregation`] — parameter vs gradient aggregation (§III-C).
//! * [`config`] — experiment configuration: model, cluster, algorithm, schedules.
//! * [`report`] — per-run results (LSSR, accuracy/perplexity, simulated time, history).
//! * [`sim`] — the deterministic single-process cluster simulator that all algorithm
//!   drivers share (compute is real, communication time comes from the cost model).
//! * [`algorithms`] — training drivers: BSP, local SGD, FedAvg, SSP and SelSync.
//! * [`threaded`] — a thread-per-worker SelSync/BSP driver over the real parameter
//!   server and collectives of `selsync-comm` (used by integration tests).
//! * [`process`] — a process-per-worker SelSync/BSP driver over the socket transport:
//!   hub and worker entry points the `scenario_cluster` orchestrator spawns, with
//!   per-process trace shards that merge into the canonical event log.
//! * [`resume`] — cross-backend checkpoint translation: resume a simulator
//!   checkpoint on the threaded driver and vice versa.
//! * [`tracing`] — shared emission helpers for the deterministic run-trace layer
//!   (`selsync-tracelog`): both SelSync drivers log the same canonical event stream.
//!
//! # Quickstart
//!
//! ```
//! use selsync::config::{AlgorithmSpec, TrainConfig};
//! use selsync::algorithms::run;
//! use selsync_nn::model::ModelKind;
//!
//! // A small SelSync run: 4 workers, δ = 0.3, parameter aggregation, SelDP.
//! let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
//! cfg.algorithm = AlgorithmSpec::selsync(0.3);
//! cfg.iterations = 120;
//! let report = run(&cfg);
//! assert_eq!(report.iterations, 120);
//! ```

pub mod aggregation;
pub mod algorithms;
pub mod checkpoint;
pub mod conditions;
pub mod config;
pub mod policy;
pub mod process;
pub mod report;
pub mod resume;
pub mod sim;
pub mod threaded;
pub mod tracing;
pub mod tracker;

pub use aggregation::AggregationMode;
pub use checkpoint::Checkpoint;
pub use conditions::{ClusterConditions, FaultEvent};
pub use config::{AlgorithmSpec, CheckpointSpec, TrainConfig};
pub use policy::{
    AdaptiveDelta, DeltaPolicy, PolicySpec, PolicyState, RoundSignal, SwitchRecord, SyncDecision,
    SyncPolicy, VarianceDelta,
};
pub use report::RunReport;
pub use tracker::{GradientTracker, TrackerState};

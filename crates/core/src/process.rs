//! Process-per-worker SelSync/BSP driver over the socket transport — the third
//! backend, closing the simulator → threads → processes ladder.
//!
//! The cluster is a star of OS processes: one **hub** ([`run_process_hub`]) owns
//! the parameter server, the collectives and the shared δ-policy board; each
//! **worker** ([`run_process_worker`]) owns its model replica, data traversal,
//! optimizer and `Δ(g_i)` tracker, and reaches the hub over one
//! [`selsync_comm::socket`] connection (UDS by default, TCP by address). The
//! `scenario_cluster` bench binary is the orchestrator: it spawns the processes,
//! collects each one's trace shard and merges them with
//! [`selsync_tracelog::EventLog::merge`].
//!
//! **Parity contract.** The worker loop mirrors [`crate::threaded`]'s worker
//! closure operation for operation — the only difference is *where* the shared
//! state lives. Every shared-state touch becomes either
//!
//! * a control-plane envelope on the [`MessageLayer`] riding the
//!   [`SocketTransport`](selsync_comm::SocketTransport) (the hub echoes frames
//!   verbatim, so retry/dedupe/eviction semantics — and the
//!   [`crate::config::TrainConfig::comm_faults`] weather composed *over* the
//!   socket — are bit-identical to the in-memory transports), or
//! * a blocking RPC ([`selsync_comm::HubClient`]) into the hub's
//!   [`RpcService`], which calls the very same `ParameterServer` /
//!   `Collective` / `SignalBoard` methods the threaded driver calls in-process.
//!
//! Worker-order folds, round-keyed rendezvous and the board's round-ordered
//! observation stream are all hub-side, so the multi-process cluster's
//! parameter stream, synchronization schedule and canonical event log are
//! byte-identical to the threaded driver's — and therefore to the simulator's,
//! on every schedule the threaded parity contract covers (crash/rejoin under
//! scheduled rejoin pulls, `[comm_faults]` weather, PS brownouts). The
//! `tests/process_parity.rs` suite pins merged-trace byte-identity against the
//! simulator across worker counts.
//!
//! Each process records its own trace shard: the hub owns the header and the
//! policy's regime switches, the lowest-ranked present worker owns a round's
//! structural events, and each worker owns its own retry/eviction/rejoin
//! events — every canonical event is emitted by exactly one process, so the
//! sorted concatenation of shards is the single-process log.
//!
//! **Durable checkpoints.** `[checkpoint]` runs ride a hub-coordinated
//! quiescent-point protocol: at every due round each live worker ships its
//! recovery section and trace-shard prefix to the hub as an Rpc deposit
//! (`op::CKPT_DEPOSIT`) and parks; once every deposit is in, the hub
//! assembles the threaded driver's exact image layout (PS global + snapshot
//! ring, per-worker sections, board policy state, merged trace prefix), writes
//! it under the configured `keep` rotation, and releases the cluster. The
//! image relabels freely across backends through [`crate::resume`], so a
//! cluster run can resume a simulator or threaded checkpoint — and vice
//! versa — reproducing the uninterrupted run byte for byte.
//!
//! **Worker death.** A connection that terminates after identification —
//! clean EOF or broken pipe alike — is mapped by the hub to a deterministic
//! eviction at the dead worker's next scheduled-present round, published to
//! the survivors through the per-round `op::ROUND_BEGIN` barrier: every
//! present worker of a round folds the identical frozen eviction prefix, so
//! membership stays a pure function of the round and the surviving cluster
//! continues exactly as if the schedule had carried a no-rejoin crash at that
//! round. Out of contract: a death mid-round after the worker announced it
//! (in-flight rendezvous may hang), the death of a round's sole present
//! worker, and a death racing an in-flight checkpoint (that image is voided,
//! not written).
//!
//! Still unsupported — reported as a structured [`UnsupportedConfig`] from
//! [`ensure_supported`] so orchestrators print a one-line diagnosis instead of
//! surfacing an opaque child panic: algorithms other than SelSync/BSP, and
//! data-injection over non-IID shards (the injection draw consumes the
//! simulator's cluster RNG, which has no cross-process counterpart). Non-IID
//! label shards themselves run natively via [`sim::worker_traversal`].

use crate::checkpoint::{self, Checkpoint, Section};
use crate::conditions::{ClusterConditions, FaultEvent};
use crate::config::{AlgorithmSpec, CheckpointSpec, RejoinPull, TrainConfig};
use crate::policy::{PolicySpec, PolicyState, RoundSignal, SyncPolicy};
use crate::sim;
use crate::threaded::{worker_section, SignalBoard, ThreadedWorkerReport};
use crate::tracker::{GradStatistic, GradientTracker, TrackerState};
use parking_lot::{Condvar, Mutex};
use selsync_comm::cluster::{make_handles, ClusterHandles};
use selsync_comm::faults::CommFaultSchedule;
use selsync_comm::ps::DEFAULT_SNAPSHOT_DEPTH;
use selsync_comm::socket::{HubClient, HubServer, RpcService, SocketAddrSpec, SocketConn};
use selsync_comm::wire::MsgKind;
use selsync_comm::{MessageLayer, PsExchangeError, ScalarOp};
use selsync_metrics::lssr::LssrCounter;
use selsync_nn::model::PaperModel;
use selsync_nn::OptimizerState;
use selsync_tracelog::{codec, Event, EventLog, PullKind};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// How long a worker keeps retrying its initial connect while the hub binds.
pub const CONNECT_RETRY: Duration = Duration::from_secs(30);

/// RPC operation tags (first payload byte; arguments follow, little-endian).
mod op {
    pub const PULL: u8 = 1;
    pub const SCHED_GLOBAL_BEFORE: u8 = 2;
    pub const SCHED_ROUND_BEFORE: u8 = 3;
    pub const SYNC_ROUND: u8 = 4;
    pub const ALLGATHER_FLAGS: u8 = 5;
    pub const ALLREDUCE_SCALAR: u8 = 6;
    pub const ALLREDUCE_VEC: u8 = 7;
    pub const BOARD_WAIT_CAUGHT_UP: u8 = 8;
    pub const BOARD_DELTA_FOR: u8 = 9;
    pub const BOARD_OBSERVE: u8 = 10;
    pub const ROUND_BEGIN: u8 = 11;
    pub const CKPT_DEPOSIT: u8 = 12;
}

fn f32s_to_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    assert!(bytes.len().is_multiple_of(4), "f32 payload length");
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn scalar_op_tag(op: ScalarOp) -> u8 {
    match op {
        ScalarOp::Sum => 0,
        ScalarOp::Mean => 1,
        ScalarOp::Max => 2,
    }
}

fn scalar_op_from_tag(tag: u8) -> ScalarOp {
    match tag {
        0 => ScalarOp::Sum,
        1 => ScalarOp::Mean,
        2 => ScalarOp::Max,
        other => panic!("unknown scalar-op tag {other}"),
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

fn read_f32(bytes: &[u8], at: usize) -> f32 {
    f32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

/// The hub side of the RPC surface: dispatches worker requests to the very same
/// parameter-server / collective / signal-board methods the threaded driver
/// calls in-process. Blocking rendezvous ops block the calling connection's
/// hub thread, which is exactly the rendezvous behaviour the threaded workers
/// get from blocking in-process calls.
struct HubService {
    cfg: TrainConfig,
    handles: ClusterHandles,
    board: SignalBoard,
    /// The *base* effective membership schedule (scheduled crashes plus
    /// compiled comm-fault evictions); runtime death evictions layer on top in
    /// the ledger, never mutating this.
    conditions: ClusterConditions,
    /// The first round this (possibly resumed) run executes; death evictions
    /// are never scheduled before it.
    first_round: usize,
    ckpt: Option<CheckpointSpec>,
    /// The image this run resumed from — protected from retention pruning.
    protect: Option<usize>,
    ledger: Mutex<Ledger>,
    cv: Condvar,
}

/// The hub's runtime membership + checkpoint bookkeeping, all under one lock
/// so a death atomically updates the barrier, the eviction list and any
/// in-flight checkpoint gather.
struct Ledger {
    /// Per worker: the newest round announced through `op::ROUND_BEGIN`.
    last_begun: Vec<Option<usize>>,
    /// Per worker: whether its connection has terminated.
    dead: Vec<bool>,
    /// Death evictions in creation order: `(worker, first-absent round)`.
    evictions: Vec<(usize, usize)>,
    /// Per released round: the eviction count frozen at its barrier release —
    /// every `ROUND_BEGIN` reply for that round carries the identical prefix,
    /// keeping the folded membership a pure function of the round.
    released: HashMap<usize, usize>,
    /// The round currently gathering checkpoint deposits, if any.
    ckpt_round: Option<usize>,
    ckpt_deposits: Vec<Option<Checkpoint>>,
    /// The newest round whose checkpoint gate has released (written or voided).
    ckpt_released: Option<usize>,
}

impl Ledger {
    fn new(n: usize) -> Self {
        Ledger {
            last_begun: vec![None; n],
            dead: vec![false; n],
            evictions: Vec::new(),
            released: HashMap::new(),
            ckpt_round: None,
            ckpt_deposits: (0..n).map(|_| None).collect(),
            ckpt_released: None,
        }
    }
}

/// Reply wire shape of `op::ROUND_BEGIN`: count, then `(worker, round)` pairs.
fn encode_evictions(evictions: &[(usize, usize)]) -> Vec<u8> {
    let mut out = (evictions.len() as u32).to_le_bytes().to_vec();
    for &(worker, round) in evictions {
        out.extend((worker as u32).to_le_bytes());
        out.extend((round as u64).to_le_bytes());
    }
    out
}

impl HubService {
    /// The round-boundary membership barrier. A present worker announces round
    /// `it` before any other traffic of the round; the call blocks until every
    /// base-present worker of the round has either announced it or died, then
    /// returns the eviction prefix frozen at the barrier's release — identical
    /// for every present worker of the round.
    fn round_begin(&self, worker: usize, it: usize) -> Vec<u8> {
        let n = self.cfg.workers;
        let mut s = self.ledger.lock();
        assert!(!s.dead[worker], "dead worker {worker} announced round {it}");
        assert!(
            s.last_begun[worker].is_none_or(|r| r < it),
            "worker {worker} announced round {it} out of order"
        );
        s.last_begun[worker] = Some(it);
        self.cv.notify_all();
        loop {
            // Released rounds stay on file: a parked waiter always finds its
            // round here first, even after faster workers advanced past it.
            if let Some(&frozen) = s.released.get(&it) {
                return encode_evictions(&s.evictions[..frozen]);
            }
            let complete = self
                .conditions
                .present_workers(n, it)
                .into_iter()
                .all(|w| s.dead[w] || s.last_begun[w].is_some_and(|r| r >= it));
            if complete {
                let frozen = s.evictions.len();
                s.released.insert(it, frozen);
                self.cv.notify_all();
                return encode_evictions(&s.evictions[..frozen]);
            }
            self.cv.wait(&mut s);
        }
    }

    /// Gather one worker's checkpoint deposit for round `it` and park the
    /// calling connection until the round's image is written (or voided by a
    /// death) — the worker resumes only past the quiescent point.
    fn ckpt_deposit(&self, worker: usize, it: usize, image: &str) {
        let mini = Checkpoint::decode(image).unwrap_or_else(|e| {
            panic!("worker {worker}'s checkpoint deposit fails to decode: {e}")
        });
        assert_eq!(mini.backend, "deposit", "worker {worker}'s deposit tag");
        assert_eq!(mini.round, it, "worker {worker}'s deposit round");
        let mut s = self.ledger.lock();
        assert!(
            s.ckpt_round.is_none_or(|r| r == it),
            "checkpoint rounds interleaved: deposit for {it} while gathering {:?}",
            s.ckpt_round
        );
        s.ckpt_round = Some(it);
        assert!(
            s.ckpt_deposits[worker].is_none(),
            "worker {worker} deposited twice for round {it}"
        );
        s.ckpt_deposits[worker] = Some(mini);
        let mut s = self.finish_checkpoint_if_complete(s);
        while s.ckpt_released.is_none_or(|r| r < it) {
            self.cv.wait(&mut s);
        }
    }

    /// If every live worker has deposited for the gathering round, write the
    /// image and release the gate — the process analogue of the threaded
    /// gate's writer leg, run by whichever connection completed the set. A
    /// worker death voids the in-flight image instead (the cluster state is no
    /// longer the uninterrupted run's) but still releases the survivors.
    fn finish_checkpoint_if_complete<'a>(
        &'a self,
        mut s: parking_lot::MutexGuard<'a, Ledger>,
    ) -> parking_lot::MutexGuard<'a, Ledger> {
        let Some(it) = s.ckpt_round else {
            return s;
        };
        let n = self.cfg.workers;
        if !(0..n).all(|w| s.dead[w] || s.ckpt_deposits[w].is_some()) {
            return s;
        }
        let deposits: Vec<Option<Checkpoint>> =
            s.ckpt_deposits.iter_mut().map(|d| d.take()).collect();
        s.ckpt_round = None;
        let any_dead = s.dead.iter().any(|&d| d);
        drop(s);
        if any_dead {
            eprintln!(
                "checkpoint after round {it} voided: a worker died mid-run, so the cluster \
                 state no longer matches the uninterrupted run"
            );
        } else {
            let deposits: Vec<Checkpoint> = deposits
                .into_iter()
                .map(|d| d.expect("no worker is dead, so every slot deposited"))
                .collect();
            self.write_cluster_checkpoint(it, &deposits);
        }
        let mut s = self.ledger.lock();
        s.ckpt_released = Some(it);
        self.cv.notify_all();
        s
    }

    /// Assemble and write the full recovery image after round `it` — the exact
    /// layout the threaded driver's `write_threaded_checkpoint` produces, so
    /// the [`crate::resume`] relabel translators move images freely between
    /// the two drivers. Runs at the gate's quiescent point: every worker
    /// parked in its deposit RPC, the round's signals observed, every shard's
    /// events through `it` shipped.
    fn write_cluster_checkpoint(&self, it: usize, deposits: &[Checkpoint]) {
        let ck = self
            .ckpt
            .as_ref()
            .expect("a deposit implies a checkpoint spec");
        let fingerprint = checkpoint::config_fingerprint(&self.cfg);
        let mut image = Checkpoint::new("process", fingerprint, it);
        image.add_section(crate::resume::ps_section(&self.handles.ps.export_state()));
        let policy_state = self.board.export_policy_state();
        let mut section = Section::new("board");
        section.push_ints(&policy_state.ints);
        section.push_f32s(&policy_state.floats);
        image.add_section(section);
        for (w, mini) in deposits.iter().enumerate() {
            assert_eq!(
                mini.fingerprint, fingerprint,
                "worker {w}'s deposit belongs to a different configuration"
            );
            let section = mini
                .section(&format!("worker{w}"))
                .unwrap_or_else(|| panic!("worker {w}'s deposit is missing its section"));
            image.add_section(section.clone());
        }
        if self.cfg.trace.is_enabled() {
            // The image's trace prefix is the canonical merge of every
            // process's shard so far: the hub's (header + regime switches)
            // plus each worker's deposited events.
            let mut shards = vec![self.cfg.trace.snapshot_log()];
            for mini in deposits {
                let events = mini
                    .trace
                    .iter()
                    .map(|line| codec::decode_event(line).expect("deposited trace line decodes"))
                    .collect();
                shards.push(EventLog { events });
            }
            let merged = EventLog::merge(shards);
            image.trace = merged.events.iter().map(codec::encode_event).collect();
        }
        let path = ck.path_for(it);
        image
            .write_file(&path)
            .unwrap_or_else(|err| panic!("failed to write checkpoint {}: {err}", path.display()));
        // Retention runs only after the newer image is durably on disk, and
        // never removes the image a resume started from.
        ck.prune(it, self.protect);
    }
}

impl RpcService for HubService {
    fn handle(&self, worker: u32, round: u64, request: &[u8]) -> Vec<u8> {
        let worker = worker as usize;
        let args = &request[1..];
        match request[0] {
            op::PULL => f32s_to_bytes(&self.handles.ps.pull()),
            op::SCHED_GLOBAL_BEFORE => {
                f32s_to_bytes(&self.handles.ps.scheduled_global_before(round))
            }
            op::SCHED_ROUND_BEFORE => match self.handles.ps.scheduled_round_before(round) {
                Some(r) => {
                    let mut out = vec![1u8];
                    out.extend_from_slice(&r.to_le_bytes());
                    out
                }
                None => vec![0u8],
            },
            op::SYNC_ROUND => {
                let expected = read_u32(args, 0) as usize;
                let params = bytes_to_f32s(&args[4..]);
                f32s_to_bytes(
                    &self
                        .handles
                        .ps
                        .sync_round_elastic(round, worker, &params, expected),
                )
            }
            op::ALLGATHER_FLAGS => {
                let flag = args[0] != 0;
                let expected = read_u32(args, 1) as usize;
                self.handles
                    .collective
                    .allgather_flags_among(round, worker, flag, expected)
                    .into_iter()
                    .map(u8::from)
                    .collect()
            }
            op::ALLREDUCE_SCALAR => {
                let op = scalar_op_from_tag(args[0]);
                let expected = read_u32(args, 1) as usize;
                let value = read_f32(args, 5);
                self.handles
                    .collective
                    .allreduce_scalar_among(round, worker, value, expected, op)
                    .to_le_bytes()
                    .to_vec()
            }
            op::ALLREDUCE_VEC => {
                let op = scalar_op_from_tag(args[0]);
                let expected = read_u32(args, 1) as usize;
                let values = bytes_to_f32s(&args[5..]);
                f32s_to_bytes(
                    &self
                        .handles
                        .collective
                        .allreduce_vec_among(round, worker, values, expected, op),
                )
            }
            op::BOARD_WAIT_CAUGHT_UP => {
                self.board.wait_caught_up(read_u64(args, 0) as usize);
                Vec::new()
            }
            op::BOARD_DELTA_FOR => self
                .board
                .delta_for(read_u64(args, 0) as usize)
                .to_le_bytes()
                .to_vec(),
            op::BOARD_OBSERVE => {
                let signal = RoundSignal {
                    iteration: read_u64(args, 0) as usize,
                    max_delta: read_f32(args, 8),
                    mean_loss: read_f32(args, 12),
                    delta_mean: read_f32(args, 16),
                    delta_sq_mean: read_f32(args, 20),
                    synced: args[24] != 0,
                };
                let next_round = read_u64(args, 25) as usize;
                self.board.observe(signal, next_round);
                Vec::new()
            }
            op::ROUND_BEGIN => self.round_begin(worker, read_u64(args, 0) as usize),
            op::CKPT_DEPOSIT => {
                let it = read_u64(args, 0) as usize;
                let image =
                    std::str::from_utf8(&args[8..]).expect("checkpoint deposit payload is UTF-8");
                self.ckpt_deposit(worker, it, image);
                Vec::new()
            }
            other => panic!("unknown rpc op {other} from worker {worker}"),
        }
    }

    /// A worker's connection terminated — cleanly or not. Record the death and
    /// schedule a deterministic eviction at the first round boundary the base
    /// schedule still expects it, so the surviving cluster folds the loss
    /// exactly like a scheduled no-rejoin crash. A clean run reaches this
    /// after the worker's last round, where the search finds no remaining
    /// present round and schedules nothing.
    fn connection_closed(&self, worker: u32) {
        let worker = worker as usize;
        let mut s = self.ledger.lock();
        if s.dead[worker] {
            return;
        }
        s.dead[worker] = true;
        let from = s.last_begun[worker].map_or(self.first_round, |r| r + 1);
        if let Some(round) =
            (from..self.cfg.iterations).find(|&r| self.conditions.is_present(worker, r))
        {
            s.evictions.push((worker, round));
        }
        self.cv.notify_all();
        let _s = self.finish_checkpoint_if_complete(s);
    }
}

/// Worker-side view of the hub's shared state: each method is one blocking RPC
/// whose name and argument shape matches the in-process call it stands in for.
struct RemoteCluster {
    client: HubClient,
}

impl RemoteCluster {
    fn request(&self, round: u64, op: u8, args: &[u8]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(1 + args.len());
        payload.push(op);
        payload.extend_from_slice(args);
        self.client.rpc(round, payload)
    }

    fn pull(&self) -> Vec<f32> {
        bytes_to_f32s(&self.request(u64::MAX, op::PULL, &[]))
    }

    fn scheduled_global_before(&self, round: u64) -> Vec<f32> {
        bytes_to_f32s(&self.request(round, op::SCHED_GLOBAL_BEFORE, &[]))
    }

    fn scheduled_round_before(&self, round: u64) -> Option<u64> {
        let reply = self.request(round, op::SCHED_ROUND_BEFORE, &[]);
        (reply[0] != 0).then(|| read_u64(&reply, 1))
    }

    fn sync_round_elastic(&self, round: u64, params: &[f32], expected: usize) -> Vec<f32> {
        let mut args = (expected as u32).to_le_bytes().to_vec();
        args.extend(f32s_to_bytes(params));
        bytes_to_f32s(&self.request(round, op::SYNC_ROUND, &args))
    }

    fn allgather_flags_among(&self, round: u64, flag: bool, expected: usize) -> Vec<bool> {
        let mut args = vec![flag as u8];
        args.extend((expected as u32).to_le_bytes());
        self.request(round, op::ALLGATHER_FLAGS, &args)
            .into_iter()
            .map(|b| b != 0)
            .collect()
    }

    fn allreduce_scalar_among(
        &self,
        round: u64,
        value: f32,
        expected: usize,
        op_: ScalarOp,
    ) -> f32 {
        let mut args = vec![scalar_op_tag(op_)];
        args.extend((expected as u32).to_le_bytes());
        args.extend(value.to_le_bytes());
        read_f32(&self.request(round, op::ALLREDUCE_SCALAR, &args), 0)
    }

    fn allreduce_vec_among(
        &self,
        round: u64,
        values: &[f32],
        expected: usize,
        op_: ScalarOp,
    ) -> Vec<f32> {
        let mut args = vec![scalar_op_tag(op_)];
        args.extend((expected as u32).to_le_bytes());
        args.extend(f32s_to_bytes(values));
        bytes_to_f32s(&self.request(round, op::ALLREDUCE_VEC, &args))
    }

    fn wait_caught_up(&self, iteration: usize) {
        self.request(
            iteration as u64,
            op::BOARD_WAIT_CAUGHT_UP,
            &(iteration as u64).to_le_bytes(),
        );
    }

    fn delta_for(&self, iteration: usize) -> f32 {
        read_f32(
            &self.request(
                iteration as u64,
                op::BOARD_DELTA_FOR,
                &(iteration as u64).to_le_bytes(),
            ),
            0,
        )
    }

    /// Announce round `it` at its boundary and block until the hub releases
    /// the round's barrier. Returns the full frozen eviction prefix as
    /// `(worker, first-absent round)` pairs; the caller folds the entries it
    /// has not seen yet.
    fn round_begin(&self, it: usize) -> Vec<(usize, usize)> {
        let reply = self.request(it as u64, op::ROUND_BEGIN, &(it as u64).to_le_bytes());
        let count = read_u32(&reply, 0) as usize;
        (0..count)
            .map(|i| {
                let at = 4 + i * 12;
                (
                    read_u32(&reply, at) as usize,
                    read_u64(&reply, at + 4) as usize,
                )
            })
            .collect()
    }

    /// Ship this worker's checkpoint deposit for round `it` and block until
    /// the hub has written (or voided) the round's image.
    fn ckpt_deposit(&self, it: usize, image: &str) {
        let mut args = (it as u64).to_le_bytes().to_vec();
        args.extend_from_slice(image.as_bytes());
        self.request(it as u64, op::CKPT_DEPOSIT, &args);
    }

    fn observe(&self, signal: RoundSignal, next_round: usize) {
        let mut args = (signal.iteration as u64).to_le_bytes().to_vec();
        args.extend(signal.max_delta.to_le_bytes());
        args.extend(signal.mean_loss.to_le_bytes());
        args.extend(signal.delta_mean.to_le_bytes());
        args.extend(signal.delta_sq_mean.to_le_bytes());
        args.push(signal.synced as u8);
        args.extend((next_round as u64).to_le_bytes());
        self.request(signal.iteration as u64, op::BOARD_OBSERVE, &args);
    }
}

/// A configuration the process backend cannot run, naming the offending
/// scenario key so orchestrators can print a one-line diagnosis instead of a
/// panic backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedConfig {
    /// The scenario key (or key path) that selects the unsupported feature.
    pub key: &'static str,
    /// Why the process backend rejects it.
    pub message: String,
}

impl std::fmt::Display for UnsupportedConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unsupported by the process backend ({}): {}",
            self.key, self.message
        )
    }
}

impl std::error::Error for UnsupportedConfig {}

/// The configuration envelope the process backend supports — the threaded
/// driver's. The only genuinely unsupported shapes left are non-SelSync/BSP
/// algorithms and data-injection over non-IID shards (whose injection draws
/// ride the simulator's cluster RNG).
pub fn ensure_supported(cfg: &TrainConfig) -> Result<(f32, PolicySpec), UnsupportedConfig> {
    let delta = match cfg.algorithm {
        AlgorithmSpec::SelSync { delta, .. } => delta,
        AlgorithmSpec::Bsp => 0.0,
        _ => {
            return Err(UnsupportedConfig {
                key: "scenario.algorithm",
                message: format!(
                    "the process backend runs SelSync and BSP only, not {}",
                    cfg.algorithm.name()
                ),
            })
        }
    };
    if let AlgorithmSpec::SelSync {
        injection: Some(_), ..
    } = cfg.algorithm
    {
        if cfg.non_iid_labels_per_worker.is_some() {
            return Err(UnsupportedConfig {
                key: "scenario.non_iid_labels_per_worker",
                message: "data-injection over non-IID shards draws from the simulator's \
                          cluster RNG and stays simulator-only"
                    .to_string(),
            });
        }
    }
    let spec = match cfg.algorithm {
        AlgorithmSpec::SelSync { .. } => cfg
            .delta_policy
            .clone()
            .unwrap_or(PolicySpec::Fixed { delta }),
        _ => PolicySpec::Fixed { delta },
    };
    if let Err(e) = spec.validate() {
        return Err(UnsupportedConfig {
            key: "policy",
            message: e,
        });
    }
    Ok((delta, spec))
}

fn check_supported(cfg: &TrainConfig) -> (f32, PolicySpec) {
    ensure_supported(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Run the hub process: bind `addr`, serve one connection per worker until all
/// of them hang up, and return the hub's trace shard (the run header plus the
/// shared policy's regime-switch events) in encoded form.
pub fn run_process_hub(cfg: &TrainConfig, addr: &SocketAddrSpec) -> String {
    run_process_hub_with(cfg, addr, None)
}

/// [`run_process_hub`] with an optional recovery image to resume from.
/// Accepts images from any backend — `"sim"` and `"threaded"` ones run
/// through the [`crate::resume`] translators first.
pub fn run_process_hub_with(
    cfg: &TrainConfig,
    addr: &SocketAddrSpec,
    resume: Option<&Checkpoint>,
) -> String {
    let (_delta, spec) = check_supported(cfg);
    let n = cfg.workers;
    let translated;
    let resume = match resume {
        Some(ckpt) if ckpt.backend == "sim" => {
            translated = crate::resume::sim_to_process(cfg, ckpt);
            Some(&translated)
        }
        Some(ckpt) if ckpt.backend == "threaded" => {
            translated = crate::resume::threaded_to_process(ckpt);
            Some(&translated)
        }
        other => other,
    };
    if let Some(ckpt) = resume {
        assert_eq!(ckpt.backend, "process", "resume image backend");
        assert_eq!(
            ckpt.fingerprint,
            checkpoint::config_fingerprint(cfg),
            "resume image belongs to a different configuration"
        );
    }
    let start = resume.map_or(0, |ckpt| ckpt.round + 1);
    if let Some(ckpt) = resume {
        // The hub shard carries the image's merged trace prefix; workers
        // re-emit nothing before `start`, so the merged result is exactly
        // prefix + fresh suffix.
        if cfg.trace.is_enabled() {
            let events = ckpt
                .trace
                .iter()
                .map(|line| codec::decode_event(line).expect("checkpointed trace line decodes"))
                .collect();
            cfg.trace.preload(events);
        }
    } else {
        crate::tracing::emit_header(
            &cfg.trace,
            cfg,
            &crate::algorithms::selsync::algorithm_label(cfg),
            &spec.label(),
        );
    }
    let proto = PaperModel::build(cfg.model, cfg.seed);
    let handles = make_handles(n, proto.params_flat());
    if cfg.rejoin_pull == RejoinPull::Scheduled {
        handles
            .ps
            .enable_scheduled_snapshots(DEFAULT_SNAPSHOT_DEPTH);
    }
    let mut policy = spec.build();
    if let Some(ckpt) = resume {
        handles
            .ps
            .restore_state(&crate::resume::read_ps_state(ckpt));
        let mut reader = ckpt.read_section("board");
        let ints = reader.ints();
        let floats = reader.f32s();
        reader.finish();
        policy.import_state(&PolicyState { ints, floats });
    }
    let conditions = cfg.effective_conditions();
    let board = SignalBoard::new(
        policy,
        conditions.next_active_iteration(n, start, cfg.iterations),
        cfg.trace.clone(),
    );
    let ckpt_spec = cfg.checkpoint.clone();
    if let Some(ck) = &ckpt_spec {
        ck.validate().expect("invalid checkpoint configuration");
    }
    let server = HubServer::bind(addr).unwrap_or_else(|e| panic!("hub failed to bind {addr}: {e}"));
    let service = HubService {
        cfg: cfg.clone(),
        handles,
        board,
        conditions,
        first_round: start,
        ckpt: ckpt_spec,
        protect: resume.map(|ckpt| ckpt.round),
        ledger: Mutex::new(Ledger::new(n)),
        cv: Condvar::new(),
    };
    server
        .serve(n, Arc::new(service))
        .unwrap_or_else(|e| panic!("hub serve failed: {e}"));
    cfg.trace.take_log().encode()
}

/// Per-worker knobs for [`run_process_worker_with`] beyond the shared config.
#[derive(Default)]
pub struct WorkerOptions<'a> {
    /// Recovery image to resume from (any backend; translated like the hub's).
    pub resume: Option<&'a Checkpoint>,
    /// Die abruptly at the top of this round — no announce, no farewell — to
    /// exercise the hub's worker-death eviction path deterministically.
    pub kill_at: Option<usize>,
}

/// Run one worker process: connect to the hub at `addr` and execute worker
/// `worker`'s rounds — the exact operation sequence of the threaded driver's
/// worker closure, with shared-state touches carried by the socket. Returns
/// the worker's report and its trace shard in encoded form.
pub fn run_process_worker(
    cfg: &TrainConfig,
    worker: usize,
    addr: &SocketAddrSpec,
) -> (ThreadedWorkerReport, String) {
    run_process_worker_with(cfg, worker, addr, WorkerOptions::default())
}

/// [`run_process_worker`] with resume / kill options.
pub fn run_process_worker_with(
    cfg: &TrainConfig,
    worker: usize,
    addr: &SocketAddrSpec,
    opts: WorkerOptions<'_>,
) -> (ThreadedWorkerReport, String) {
    let (_delta, spec) = check_supported(cfg);
    let n = cfg.workers;
    let exchange_signals = spec.consumes_round_signals();

    let translated;
    let resume = match opts.resume {
        Some(ckpt) if ckpt.backend == "sim" => {
            translated = crate::resume::sim_to_process(cfg, ckpt);
            Some(&translated)
        }
        Some(ckpt) if ckpt.backend == "threaded" => {
            translated = crate::resume::threaded_to_process(ckpt);
            Some(&translated)
        }
        other => other,
    };
    if let Some(ckpt) = resume {
        assert_eq!(ckpt.backend, "process", "resume image backend");
        assert_eq!(
            ckpt.fingerprint,
            checkpoint::config_fingerprint(cfg),
            "resume image belongs to a different configuration"
        );
    }
    let start = resume.map_or(0, |ckpt| ckpt.round + 1);

    let (train, _test) = sim::build_datasets(cfg);
    let proto = PaperModel::build(cfg.model, cfg.seed);
    let iid_order = sim::iid_sample_order(&train, &proto.task);
    // Folded membership: starts as the compiled schedule and accrues the
    // hub-announced death evictions, so every live worker derives the same
    // round-keyed membership the reference run computes from a scheduled
    // no-rejoin crash.
    let mut conditions = cfg.effective_conditions();
    let mut known_evictions = 0usize;
    let evictions = cfg.comm_fault_evictions();

    let conn = SocketConn::connect(addr, CONNECT_RETRY)
        .unwrap_or_else(|e| panic!("worker {worker} failed to connect to {addr}: {e}"));
    // The message layer rides the real socket: the hub echoes every non-RPC
    // frame verbatim, so retries, dedupe and evictions behave exactly as over
    // the in-memory transports — including with the fault decorator composed
    // over the socket.
    let fault_schedule = cfg.comm_faults.map(CommFaultSchedule::new);
    let layer = match fault_schedule {
        Some(schedule) => MessageLayer::faulty_over(schedule, Box::new(conn.transport())),
        None => MessageLayer::over(Box::new(conn.transport()), 1),
    };
    let ps_schedule = cfg.ps_fault_schedule();
    let layer = match ps_schedule.clone() {
        Some(schedule) => layer.with_ps_outages(schedule),
        None => layer,
    };
    let hub = RemoteCluster {
        client: conn.client(worker as u32),
    };

    let mut model = PaperModel::build(cfg.model, cfg.seed);
    // Every worker starts from the global state on the PS (pullFromPS, Alg. 1 line 3).
    let mut params = hub.pull();
    model.set_params_flat(&params);
    let traversal = sim::worker_traversal(cfg, &train, &iid_order, worker);
    let mut cursor = 0usize;
    let new_tracker = || {
        GradientTracker::new(
            GradStatistic::SqNorm,
            (n as f32 / 100.0).clamp(0.01, 1.0),
            cfg.ewma_window,
        )
    };
    let mut tracker = new_tracker();
    let mut optimizer = cfg.optimizer.build();
    let mut counter = LssrCounter::new();
    let mut sync_rounds: Vec<usize> = Vec::new();
    let mut last_loss = 0.0f32;
    let mut was_present = true;
    let mut forwards_before = 0u64;
    if let Some(ckpt) = resume {
        // Durable per-worker state comes from the checkpoint; the schedule-pure
        // cursors (data traversal, forward counter, presence edge) are recomputed
        // from the same deterministic schedule the uninterrupted run walked.
        let mut reader = ckpt.read_section(&format!("worker{worker}"));
        params = reader.f32s();
        let t = reader.int();
        let buffer_count = reader.usize();
        let buffers = (0..buffer_count).map(|_| reader.f32s()).collect();
        optimizer.load_state(&OptimizerState { t, buffers });
        let tracker_state = TrackerState {
            ewma_history: reader.f32s(),
            ewma_smoothed: reader.opt_f32(),
            previous_smoothed: reader.opt_f32(),
            last_delta: reader.f32(),
            max_delta: reader.f32(),
            steps: reader.int(),
        };
        tracker.restore_state(&tracker_state);
        counter.sync_steps = reader.int();
        counter.local_steps = reader.int();
        sync_rounds = reader.ints().iter().map(|&r| r as usize).collect();
        last_loss = reader.f32();
        reader.finish();
        let done_rounds = (0..start)
            .filter(|&r| conditions.is_present(worker, r))
            .count();
        cursor = (done_rounds * cfg.batch_size) % traversal.len();
        forwards_before = (0..start)
            .map(|r| conditions.present_workers(n, r).len() as u64)
            .sum();
        was_present = conditions.is_present(worker, start - 1);
    }
    let mut indices = Vec::with_capacity(cfg.batch_size);
    let exchange = |round: usize, kind: MsgKind, payload: &[u8]| -> u32 {
        layer
            .exchange(worker, round as u64, kind, payload)
            .unwrap_or_else(|e| {
                panic!("present worker {worker} failed a comm op at round {round}: {e}")
            })
            .attempts
    };

    let fingerprint = checkpoint::config_fingerprint(cfg);
    let ckpt_spec = cfg.checkpoint.clone();
    if let Some(ck) = &ckpt_spec {
        ck.validate().expect("invalid checkpoint configuration");
    }
    // Checkpoint-gate participation at the end of round `it`: every worker —
    // present or absent — ships its recovery section (and its trace shard so
    // far) as a deposit RPC when a checkpoint is due, and parks inside that
    // RPC until the hub has written the image. Returns whether the run halts
    // after this round (the simulated kill switch).
    let end_of_round = |it: usize,
                        present: &[usize],
                        params: &[f32],
                        optimizer: &dyn selsync_nn::Optimizer,
                        tracker: &GradientTracker,
                        counter: &LssrCounter,
                        sync_rounds: &[usize],
                        last_loss: f32|
     -> bool {
        let Some(ck) = &ckpt_spec else {
            return false;
        };
        // The simulator writes nothing at whole-cluster-absent rounds; neither
        // does this backend (and the kill switch cannot fire there).
        if present.is_empty() {
            return false;
        }
        if ck.due(it) || ck.halt_after == Some(it) {
            let mut deposit = Checkpoint::new("deposit", fingerprint, it);
            deposit.add_section(worker_section(
                worker,
                params,
                optimizer,
                tracker,
                counter,
                sync_rounds,
                last_loss,
            ));
            if cfg.trace.is_enabled() {
                let log = cfg.trace.snapshot_log();
                deposit.trace = log.events.iter().map(codec::encode_event).collect();
            }
            hub.ckpt_deposit(it, &deposit.encode());
        }
        ck.halt_after == Some(it)
    };

    let mut killed = false;
    for it in start..cfg.iterations {
        if opts.kill_at == Some(it) {
            // Abrupt death: no announce, no farewell — the connection drops at
            // a frame boundary and the hub maps it to an eviction.
            killed = true;
            break;
        }
        if conditions.is_present(worker, it) {
            // Round-boundary barrier: announce the round, learn the frozen
            // eviction prefix, and fold any entry not seen yet. The recompute
            // keeps the forward counter a pure function of the (now extended)
            // fault schedule — evictions can land at rounds this worker sat
            // out, where it never saw a barrier.
            let evs = hub.round_begin(it);
            if evs.len() > known_evictions {
                for &(w, r) in &evs[known_evictions..] {
                    conditions = conditions.with_fault(FaultEvent::Crash {
                        worker: w,
                        start: r,
                        rejoin: None,
                    });
                }
                known_evictions = evs.len();
                forwards_before = (0..it)
                    .map(|r| conditions.present_workers(n, r).len() as u64)
                    .sum();
            }
        }
        let present = conditions.present_workers(n, it);
        let Some(rank) = present.iter().position(|&p| p == worker) else {
            if evictions.contains(&(worker, it)) {
                let farewell = layer.exchange(worker, it as u64, MsgKind::Flags, &[0]);
                assert!(
                    farewell.is_err(),
                    "worker {worker} was precomputed as evicted at round {it} but its \
                     exchange succeeded"
                );
                cfg.trace.record(Event::CommEvict { round: it, worker });
            }
            was_present = false;
            forwards_before += present.len() as u64;
            if end_of_round(
                it,
                &present,
                &params,
                optimizer.as_ref(),
                &tracker,
                &counter,
                &sync_rounds,
                last_loss,
            ) {
                break;
            }
            continue;
        };
        let active = present.len();
        let forward_index = forwards_before + rank as u64;
        forwards_before += active as u64;
        if !was_present {
            if !layer.ps_down(it as u64) {
                exchange(it, MsgKind::Pull, &(it as u64).to_le_bytes());
            }
            params = match cfg.rejoin_pull {
                RejoinPull::WallClock => hub.pull(),
                RejoinPull::Scheduled => {
                    hub.wait_caught_up(it);
                    hub.scheduled_global_before(it as u64)
                }
            };
            if cfg.trace.is_enabled() {
                let (pull, from) = match cfg.rejoin_pull {
                    RejoinPull::Scheduled => (
                        PullKind::Scheduled,
                        hub.scheduled_round_before(it as u64).map(|r| r as usize),
                    ),
                    RejoinPull::WallClock => (PullKind::WallClock, None),
                };
                cfg.trace.record(Event::RejoinPull {
                    round: it,
                    worker,
                    pull,
                    from,
                });
            }
            tracker = new_tracker();
            optimizer = cfg.optimizer.build();
            was_present = true;
        }

        indices.clear();
        for _ in 0..cfg.batch_size {
            indices.push(traversal[cursor % traversal.len()]);
            cursor += 1;
        }
        cursor %= traversal.len();
        let (x, y) = train.batch(&indices);
        model.set_params_flat(&params);
        model.seek_dropout(forward_index);
        let stats = model.forward_backward(&x, &y);
        last_loss = stats.loss;
        let grads = model.grads_flat();
        let delta_g = tracker.update(&grads);

        let lr = cfg.lr.lr_at(cfg.epoch_of(it), it);
        optimizer.step(&mut params, &grads, lr);

        if layer.ps_down(it as u64) {
            let probe =
                layer.ps_exchange(worker, it as u64, MsgKind::Pull, &(it as u64).to_le_bytes());
            assert!(
                matches!(probe, Err(PsExchangeError::Down { .. })),
                "the PS availability schedule and the layer's gate disagree at round {it}"
            );
            let sync_policy = SyncPolicy::new(hub.delta_for(it));
            hub.allgather_flags_among(it as u64, false, active);
            counter.record_local();
            if rank == 0 {
                if cfg.trace.is_enabled() {
                    crate::tracing::emit_round_context(&cfg.trace, &conditions, n, it, &present);
                    if ps_schedule
                        .as_ref()
                        .is_some_and(|s| s.outage_starts(it as u64))
                    {
                        cfg.trace.record(Event::PsDown { round: it });
                    }
                    cfg.trace.record(Event::DegradedRound {
                        round: it,
                        delta: sync_policy.delta,
                        loss: stats.loss,
                        delta_g,
                    });
                }
                hub.observe(
                    RoundSignal {
                        iteration: it,
                        max_delta: delta_g,
                        mean_loss: stats.loss,
                        delta_mean: delta_g,
                        delta_sq_mean: delta_g * delta_g,
                        synced: false,
                    },
                    conditions.next_active_iteration(n, it + 1, cfg.iterations),
                );
            }
            if end_of_round(
                it,
                &present,
                &params,
                optimizer.as_ref(),
                &tracker,
                &counter,
                &sync_rounds,
                last_loss,
            ) {
                break;
            }
            continue;
        }
        let catchup = ps_schedule
            .as_ref()
            .is_some_and(|s| s.outage_ends(it as u64));

        let (mean_loss, cluster_delta, moments) = if exchange_signals {
            let mut scalar_payload = [0u8; 8];
            scalar_payload[..4].copy_from_slice(&stats.loss.to_le_bytes());
            scalar_payload[4..].copy_from_slice(&delta_g.to_le_bytes());
            exchange(it, MsgKind::ScalarReduce, &scalar_payload);
            let mut vec_payload = [0u8; 8];
            vec_payload[..4].copy_from_slice(&delta_g.to_le_bytes());
            vec_payload[4..].copy_from_slice(&(delta_g * delta_g).to_le_bytes());
            exchange(it, MsgKind::VecReduce, &vec_payload);
            (
                hub.allreduce_scalar_among(it as u64, stats.loss, active, ScalarOp::Mean),
                hub.allreduce_scalar_among(it as u64, delta_g, active, ScalarOp::Max),
                hub.allreduce_vec_among(
                    it as u64,
                    &[delta_g, delta_g * delta_g],
                    active,
                    ScalarOp::Mean,
                ),
            )
        } else {
            (stats.loss, delta_g, vec![delta_g, delta_g * delta_g])
        };

        let sync_policy = SyncPolicy::new(hub.delta_for(it));

        let wants_sync = catchup || sync_policy.worker_wants_sync(delta_g);
        let attempts = exchange(it, MsgKind::Flags, &[wants_sync as u8]);
        if attempts > 1 {
            cfg.trace.record(Event::CommRetry {
                round: it,
                worker,
                attempts,
            });
        }
        let flags = hub.allgather_flags_among(it as u64, wants_sync, active);
        let synced = flags.iter().any(|&f| f);
        if synced {
            exchange(
                it,
                MsgKind::SyncRound,
                &((params.len() * 4) as u64).to_le_bytes(),
            );
            params = hub.sync_round_elastic(it as u64, &params, active);
            counter.record_sync();
            sync_rounds.push(it);
        } else {
            counter.record_local();
        }
        if rank == 0 {
            if cfg.trace.is_enabled() {
                crate::tracing::emit_round_context(&cfg.trace, &conditions, n, it, &present);
                if catchup {
                    let schedule = ps_schedule.as_ref().expect("catchup implies a schedule");
                    cfg.trace.record(Event::PsUp { round: it });
                    cfg.trace.record(Event::CatchupSync {
                        round: it,
                        behind: schedule.rounds_behind(it as u64) as usize,
                    });
                }
                if exchange_signals {
                    cfg.trace.record(Event::Signal {
                        round: it,
                        mean_loss,
                        max_delta: cluster_delta,
                    });
                }
                cfg.trace.record(Event::Round {
                    round: it,
                    delta: sync_policy.delta,
                    flags: present.iter().map(|&w| flags[w]).collect(),
                    synced,
                });
            }
            hub.observe(
                RoundSignal {
                    iteration: it,
                    max_delta: cluster_delta,
                    mean_loss,
                    delta_mean: moments[0],
                    delta_sq_mean: moments[1],
                    synced,
                },
                conditions.next_active_iteration(n, it + 1, cfg.iterations),
            );
        }
        if end_of_round(
            it,
            &present,
            &params,
            optimizer.as_ref(),
            &tracker,
            &counter,
            &sync_rounds,
            last_loss,
        ) {
            break;
        }
    }

    // A killed worker dies right here — no final pull, no farewell. Its report
    // never reaches the orchestrator (the process is gone); the in-process
    // tests that drive the kill through `WorkerOptions` just discard it.
    let distance: f32 = if killed {
        f32::NAN
    } else {
        let global = hub.pull();
        params
            .iter()
            .zip(global.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt()
    };
    let report = ThreadedWorkerReport {
        worker,
        sync_steps: counter.sync_steps,
        local_steps: counter.local_steps,
        sync_rounds,
        final_loss: last_loss,
        distance_to_global: distance,
    };
    (report, cfg.trace.take_log().encode())
}

/// Serialize a worker report to one deterministic text line (floats as raw bit
/// patterns, so the round trip is exact). The orchestrator reads these back
/// from each worker process's output file.
pub fn encode_worker_report(report: &ThreadedWorkerReport) -> String {
    let rounds = if report.sync_rounds.is_empty() {
        "-".to_string()
    } else {
        report
            .sync_rounds
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "worker {} sync_steps {} local_steps {} sync_rounds {} final_loss {:08x} distance {:08x}",
        report.worker,
        report.sync_steps,
        report.local_steps,
        rounds,
        report.final_loss.to_bits(),
        report.distance_to_global.to_bits(),
    )
}

/// Inverse of [`encode_worker_report`].
pub fn decode_worker_report(line: &str) -> Result<ThreadedWorkerReport, String> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    let expect = |at: usize, key: &str| -> Result<&str, String> {
        if fields.get(at) != Some(&key) {
            return Err(format!("report line field {at} is not {key:?}: {line:?}"));
        }
        fields
            .get(at + 1)
            .copied()
            .ok_or_else(|| format!("report line missing a value for {key}: {line:?}"))
    };
    let parse_u64 = |s: &str, key: &str| -> Result<u64, String> {
        s.parse().map_err(|_| format!("bad {key}: {s:?}"))
    };
    let worker = parse_u64(expect(0, "worker")?, "worker")? as usize;
    let sync_steps = parse_u64(expect(2, "sync_steps")?, "sync_steps")?;
    let local_steps = parse_u64(expect(4, "local_steps")?, "local_steps")?;
    let rounds_text = expect(6, "sync_rounds")?;
    let sync_rounds = if rounds_text == "-" {
        Vec::new()
    } else {
        rounds_text
            .split(',')
            .map(|r| r.parse().map_err(|_| format!("bad sync round {r:?}")))
            .collect::<Result<Vec<usize>, String>>()?
    };
    let final_loss = f32::from_bits(
        u32::from_str_radix(expect(8, "final_loss")?, 16)
            .map_err(|_| format!("bad final_loss bits: {line:?}"))?,
    );
    let distance_to_global = f32::from_bits(
        u32::from_str_radix(expect(10, "distance")?, 16)
            .map_err(|_| format!("bad distance bits: {line:?}"))?,
    );
    Ok(ThreadedWorkerReport {
        worker,
        sync_steps,
        local_steps,
        sync_rounds,
        final_loss,
        distance_to_global,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::run_threaded_selsync;
    use selsync_nn::model::ModelKind;
    use selsync_tracelog::{EventLog, TraceGranularity, TraceSink};

    fn cfg(delta: f32, workers: usize) -> TrainConfig {
        let mut c = TrainConfig::small(ModelKind::ResNetLike, workers);
        c.iterations = 20;
        c.batch_size = 8;
        c.train_samples = 256;
        c.test_samples = 64;
        c.algorithm = AlgorithmSpec::selsync(delta);
        c
    }

    fn run_in_process_cluster(c: &TrainConfig, tag: &str) -> (Vec<ThreadedWorkerReport>, String) {
        run_in_process_cluster_with(c, tag, None, None)
    }

    fn run_in_process_cluster_with(
        c: &TrainConfig,
        tag: &str,
        resume: Option<&Checkpoint>,
        kill: Option<(usize, usize)>,
    ) -> (Vec<ThreadedWorkerReport>, String) {
        // In-process harness for the process drivers: the hub on one thread,
        // each worker on its own, all over a real UDS. The scenario_cluster
        // binary runs the same entry points in separate OS processes.
        let addr = SocketAddrSpec::Unix(
            std::env::temp_dir().join(format!("selsync-process-test-{tag}-{}", std::process::id())),
        );
        let mut shards = Vec::new();
        let mut reports = Vec::new();
        std::thread::scope(|scope| {
            let hub_cfg = {
                let mut h = c.clone();
                h.trace = TraceSink::capture(TraceGranularity::Full);
                h
            };
            let hub_addr = addr.clone();
            let hub_resume = resume.cloned();
            let hub =
                scope.spawn(move || run_process_hub_with(&hub_cfg, &hub_addr, hub_resume.as_ref()));
            let workers: Vec<_> = (0..c.workers)
                .map(|w| {
                    let worker_cfg = {
                        let mut wc = c.clone();
                        wc.trace = TraceSink::capture(TraceGranularity::Full);
                        wc
                    };
                    let worker_addr = addr.clone();
                    let worker_resume = resume.cloned();
                    scope.spawn(move || {
                        let opts = WorkerOptions {
                            resume: worker_resume.as_ref(),
                            kill_at: kill.and_then(|(kw, r)| (kw == w).then_some(r)),
                        };
                        run_process_worker_with(&worker_cfg, w, &worker_addr, opts)
                    })
                })
                .collect();
            for handle in workers {
                let (report, shard) = handle.join().expect("worker thread");
                reports.push(report);
                shards.push(shard);
            }
            shards.push(hub.join().expect("hub thread"));
        });
        if let SocketAddrSpec::Unix(path) = &addr {
            let _ = std::fs::remove_file(path);
        }
        reports.sort_by_key(|r| r.worker);
        let merged = EventLog::merge(
            shards
                .iter()
                .map(|s| EventLog::decode(s).expect("shard decodes")),
        );
        (reports, merged.encode())
    }

    #[test]
    fn process_cluster_matches_the_threaded_driver_and_simulator_trace() {
        let mut c = cfg(0.05, 3);
        c.trace = TraceSink::capture(TraceGranularity::Full);
        let sim_report = crate::algorithms::run(&c);
        let sim_trace = c.trace.take_log().encode();
        c.trace = TraceSink::disabled();
        let threaded = run_threaded_selsync(&c);

        let (reports, merged) = run_in_process_cluster(&c, "basic");
        assert_eq!(
            merged, sim_trace,
            "merged shard log diverged from the simulator"
        );
        for (p, t) in reports.iter().zip(threaded.iter()) {
            assert_eq!(p.sync_rounds, t.sync_rounds, "worker {}", p.worker);
            assert_eq!(p.sync_steps, t.sync_steps);
            assert_eq!(p.local_steps, t.local_steps);
            assert_eq!(p.final_loss.to_bits(), t.final_loss.to_bits());
        }
        assert_eq!(reports[0].sync_rounds, sim_report.sync_rounds);
    }

    #[test]
    fn process_cluster_composes_comm_faults_over_the_socket() {
        use selsync_comm::faults::CommFaultSpec;
        let mut c = cfg(0.05, 3);
        c.comm_faults = Some(CommFaultSpec {
            seed: 9,
            drop: 0.0,
            duplicate: 0.4,
            corrupt: 0.0,
            delay: 0.3,
            delay_rounds: 0,
            retry_budget: 3,
            timeout_s: 1e-3,
        });
        let threaded = run_threaded_selsync(&c);
        let (reports, _merged) = run_in_process_cluster(&c, "weather");
        for (p, t) in reports.iter().zip(threaded.iter()) {
            assert_eq!(format!("{p:?}"), format!("{t:?}"), "worker {}", p.worker);
        }
    }

    #[test]
    fn process_cluster_runs_non_iid_shards_byte_identical_to_the_simulator() {
        let mut c = cfg(0.05, 3);
        c.non_iid_labels_per_worker = Some(4);
        c.trace = TraceSink::capture(TraceGranularity::Full);
        let _sim_report = crate::algorithms::run(&c);
        let sim_trace = c.trace.take_log().encode();
        c.trace = TraceSink::disabled();
        let threaded = run_threaded_selsync(&c);

        let (reports, merged) = run_in_process_cluster(&c, "noniid");
        assert_eq!(
            merged, sim_trace,
            "non-IID merged shard log diverged from the simulator"
        );
        for (p, t) in reports.iter().zip(threaded.iter()) {
            assert_eq!(format!("{p:?}"), format!("{t:?}"), "worker {}", p.worker);
        }
    }

    #[test]
    fn worker_death_is_trace_identical_to_the_equivalent_scheduled_crash() {
        use crate::conditions::ClusterConditions;
        let killed_worker = 2;
        let kill_round = 10;
        // Reference: the same cluster where the death is a *scheduled* no-rejoin
        // crash at the kill round. The hub must map the abrupt connection drop
        // to exactly this membership schedule.
        let mut reference = cfg(0.05, 3);
        reference.conditions = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: killed_worker,
            start: kill_round,
            rejoin: None,
        });
        reference.trace = TraceSink::capture(TraceGranularity::Full);
        let _ = crate::algorithms::run(&reference);
        let sim_trace = reference.trace.take_log().encode();
        reference.trace = TraceSink::disabled();
        let threaded = run_threaded_selsync(&reference);

        let c = cfg(0.05, 3);
        let (reports, merged) =
            run_in_process_cluster_with(&c, "kill", None, Some((killed_worker, kill_round)));
        assert_eq!(
            merged, sim_trace,
            "worker-death eviction diverged from the scheduled-crash reference"
        );
        for (p, t) in reports.iter().zip(threaded.iter()) {
            assert_eq!(p.sync_rounds, t.sync_rounds, "worker {}", p.worker);
            assert_eq!(p.sync_steps, t.sync_steps);
            assert_eq!(p.local_steps, t.local_steps);
            assert_eq!(p.final_loss.to_bits(), t.final_loss.to_bits());
            if p.worker != killed_worker {
                // The killed worker dies before its final pull, so its distance
                // is the one report field with no reference counterpart.
                assert_eq!(
                    p.distance_to_global.to_bits(),
                    t.distance_to_global.to_bits()
                );
            }
        }
    }

    #[test]
    fn process_checkpoint_and_resume_reproduce_the_uninterrupted_run() {
        use crate::config::CheckpointSpec;
        use selsync_comm::faults::PsFaultSpec;
        let dir = std::env::temp_dir().join(format!(
            "selsync-process-resume-test-{}",
            std::process::id()
        ));
        let make = || {
            let mut c = cfg(0.05, 3);
            // The outage window straddles the halt round, and the adaptive policy
            // carries cross-round state through it.
            c.ps_faults = Some(PsFaultSpec {
                seed: 11,
                windows: vec![(9, 3)],
                flaky: 0.0,
            });
            c.delta_policy = Some(PolicySpec::adaptive_default());
            c
        };
        let full_cfg = make();
        let (full_reports, full_trace) = run_in_process_cluster(&full_cfg, "resume-full");

        let mut halted_cfg = make();
        halted_cfg.checkpoint = Some(CheckpointSpec {
            every: 5,
            dir: dir.to_string_lossy().into_owned(),
            halt_after: Some(10),
            keep: Some(1),
        });
        let _halted = run_in_process_cluster_with(&halted_cfg, "resume-halt", None, None);
        let ckpt = Checkpoint::read_file(dir.join("ckpt-10")).expect("halt image reads back");
        assert_eq!(ckpt.backend, "process");
        assert!(
            !dir.join("ckpt-4").exists() && !dir.join("ckpt-9").exists(),
            "keep = 1 prunes the cadence images once the halt image is durable"
        );

        let resumed_cfg = make();
        let (resumed_reports, resumed_trace) =
            run_in_process_cluster_with(&resumed_cfg, "resume-rest", Some(&ckpt), None);
        assert_eq!(
            resumed_trace, full_trace,
            "resumed merged trace diverged from the uninterrupted run"
        );
        for (a, b) in full_reports.iter().zip(resumed_reports.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ensure_supported_names_the_offending_scenario_key() {
        let mut c = cfg(0.05, 3);
        c.algorithm = AlgorithmSpec::selsync_injected(0.5, 0.5, 0.3);
        c.non_iid_labels_per_worker = Some(4);
        let err = ensure_supported(&c).expect_err("injection over non-IID is simulator-only");
        assert_eq!(err.key, "scenario.non_iid_labels_per_worker");
        assert!(err
            .to_string()
            .starts_with("unsupported by the process backend"));

        // Plain non-IID, checkpoints and BSP all run natively now.
        let mut c = cfg(0.05, 3);
        c.non_iid_labels_per_worker = Some(4);
        assert!(ensure_supported(&c).is_ok());
        let mut c = cfg(0.05, 3);
        c.algorithm = AlgorithmSpec::Bsp;
        assert!(ensure_supported(&c).is_ok());
    }

    #[test]
    fn worker_report_text_codec_round_trips() {
        let report = ThreadedWorkerReport {
            worker: 3,
            sync_steps: 7,
            local_steps: 13,
            sync_rounds: vec![0, 4, 9],
            final_loss: 1.25e-3,
            distance_to_global: 0.0,
        };
        let line = encode_worker_report(&report);
        let back = decode_worker_report(&line).expect("decodes");
        assert_eq!(format!("{back:?}"), format!("{report:?}"));
        let empty = ThreadedWorkerReport {
            sync_rounds: vec![],
            ..report
        };
        let back = decode_worker_report(&encode_worker_report(&empty)).expect("decodes");
        assert!(back.sync_rounds.is_empty());
    }
}

//! Process-per-worker SelSync/BSP driver over the socket transport — the third
//! backend, closing the simulator → threads → processes ladder.
//!
//! The cluster is a star of OS processes: one **hub** ([`run_process_hub`]) owns
//! the parameter server, the collectives and the shared δ-policy board; each
//! **worker** ([`run_process_worker`]) owns its model replica, data traversal,
//! optimizer and `Δ(g_i)` tracker, and reaches the hub over one
//! [`selsync_comm::socket`] connection (UDS by default, TCP by address). The
//! `scenario_cluster` bench binary is the orchestrator: it spawns the processes,
//! collects each one's trace shard and merges them with
//! [`selsync_tracelog::EventLog::merge`].
//!
//! **Parity contract.** The worker loop mirrors [`crate::threaded`]'s worker
//! closure operation for operation — the only difference is *where* the shared
//! state lives. Every shared-state touch becomes either
//!
//! * a control-plane envelope on the [`MessageLayer`] riding the
//!   [`SocketTransport`](selsync_comm::SocketTransport) (the hub echoes frames
//!   verbatim, so retry/dedupe/eviction semantics — and the
//!   [`crate::config::TrainConfig::comm_faults`] weather composed *over* the
//!   socket — are bit-identical to the in-memory transports), or
//! * a blocking RPC ([`selsync_comm::HubClient`]) into the hub's
//!   [`RpcService`], which calls the very same `ParameterServer` /
//!   `Collective` / `SignalBoard` methods the threaded driver calls in-process.
//!
//! Worker-order folds, round-keyed rendezvous and the board's round-ordered
//! observation stream are all hub-side, so the multi-process cluster's
//! parameter stream, synchronization schedule and canonical event log are
//! byte-identical to the threaded driver's — and therefore to the simulator's,
//! on every schedule the threaded parity contract covers (crash/rejoin under
//! scheduled rejoin pulls, `[comm_faults]` weather, PS brownouts). The
//! `tests/process_parity.rs` suite pins merged-trace byte-identity against the
//! simulator across worker counts.
//!
//! Each process records its own trace shard: the hub owns the header and the
//! policy's regime switches, the lowest-ranked present worker owns a round's
//! structural events, and each worker owns its own retry/eviction/rejoin
//! events — every canonical event is emitted by exactly one process, so the
//! sorted concatenation of shards is the single-process log.
//!
//! Not supported here (assert early): checkpoint/resume (the durable-image
//! contract stays with the simulator and threaded backends for now), non-IID
//! sharding, and algorithms other than SelSync/BSP — the same envelope the
//! threaded driver enforces.

use crate::config::{AlgorithmSpec, RejoinPull, TrainConfig};
use crate::policy::{PolicySpec, RoundSignal, SyncPolicy};
use crate::sim;
use crate::threaded::{SignalBoard, ThreadedWorkerReport};
use crate::tracker::{GradStatistic, GradientTracker};
use selsync_comm::cluster::{make_handles, ClusterHandles};
use selsync_comm::faults::CommFaultSchedule;
use selsync_comm::ps::DEFAULT_SNAPSHOT_DEPTH;
use selsync_comm::socket::{HubClient, HubServer, RpcService, SocketAddrSpec, SocketConn};
use selsync_comm::wire::MsgKind;
use selsync_comm::{MessageLayer, PsExchangeError, ScalarOp};
use selsync_metrics::lssr::LssrCounter;
use selsync_nn::model::PaperModel;
use selsync_tracelog::{Event, PullKind};
use std::sync::Arc;
use std::time::Duration;

/// How long a worker keeps retrying its initial connect while the hub binds.
pub const CONNECT_RETRY: Duration = Duration::from_secs(30);

/// RPC operation tags (first payload byte; arguments follow, little-endian).
mod op {
    pub const PULL: u8 = 1;
    pub const SCHED_GLOBAL_BEFORE: u8 = 2;
    pub const SCHED_ROUND_BEFORE: u8 = 3;
    pub const SYNC_ROUND: u8 = 4;
    pub const ALLGATHER_FLAGS: u8 = 5;
    pub const ALLREDUCE_SCALAR: u8 = 6;
    pub const ALLREDUCE_VEC: u8 = 7;
    pub const BOARD_WAIT_CAUGHT_UP: u8 = 8;
    pub const BOARD_DELTA_FOR: u8 = 9;
    pub const BOARD_OBSERVE: u8 = 10;
}

fn f32s_to_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    assert!(bytes.len().is_multiple_of(4), "f32 payload length");
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn scalar_op_tag(op: ScalarOp) -> u8 {
    match op {
        ScalarOp::Sum => 0,
        ScalarOp::Mean => 1,
        ScalarOp::Max => 2,
    }
}

fn scalar_op_from_tag(tag: u8) -> ScalarOp {
    match tag {
        0 => ScalarOp::Sum,
        1 => ScalarOp::Mean,
        2 => ScalarOp::Max,
        other => panic!("unknown scalar-op tag {other}"),
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

fn read_f32(bytes: &[u8], at: usize) -> f32 {
    f32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

/// The hub side of the RPC surface: dispatches worker requests to the very same
/// parameter-server / collective / signal-board methods the threaded driver
/// calls in-process. Blocking rendezvous ops block the calling connection's
/// hub thread, which is exactly the rendezvous behaviour the threaded workers
/// get from blocking in-process calls.
struct HubService {
    handles: ClusterHandles,
    board: SignalBoard,
}

impl RpcService for HubService {
    fn handle(&self, worker: u32, round: u64, request: &[u8]) -> Vec<u8> {
        let worker = worker as usize;
        let args = &request[1..];
        match request[0] {
            op::PULL => f32s_to_bytes(&self.handles.ps.pull()),
            op::SCHED_GLOBAL_BEFORE => {
                f32s_to_bytes(&self.handles.ps.scheduled_global_before(round))
            }
            op::SCHED_ROUND_BEFORE => match self.handles.ps.scheduled_round_before(round) {
                Some(r) => {
                    let mut out = vec![1u8];
                    out.extend_from_slice(&r.to_le_bytes());
                    out
                }
                None => vec![0u8],
            },
            op::SYNC_ROUND => {
                let expected = read_u32(args, 0) as usize;
                let params = bytes_to_f32s(&args[4..]);
                f32s_to_bytes(
                    &self
                        .handles
                        .ps
                        .sync_round_elastic(round, worker, &params, expected),
                )
            }
            op::ALLGATHER_FLAGS => {
                let flag = args[0] != 0;
                let expected = read_u32(args, 1) as usize;
                self.handles
                    .collective
                    .allgather_flags_among(round, worker, flag, expected)
                    .into_iter()
                    .map(u8::from)
                    .collect()
            }
            op::ALLREDUCE_SCALAR => {
                let op = scalar_op_from_tag(args[0]);
                let expected = read_u32(args, 1) as usize;
                let value = read_f32(args, 5);
                self.handles
                    .collective
                    .allreduce_scalar_among(round, worker, value, expected, op)
                    .to_le_bytes()
                    .to_vec()
            }
            op::ALLREDUCE_VEC => {
                let op = scalar_op_from_tag(args[0]);
                let expected = read_u32(args, 1) as usize;
                let values = bytes_to_f32s(&args[5..]);
                f32s_to_bytes(
                    &self
                        .handles
                        .collective
                        .allreduce_vec_among(round, worker, values, expected, op),
                )
            }
            op::BOARD_WAIT_CAUGHT_UP => {
                self.board.wait_caught_up(read_u64(args, 0) as usize);
                Vec::new()
            }
            op::BOARD_DELTA_FOR => self
                .board
                .delta_for(read_u64(args, 0) as usize)
                .to_le_bytes()
                .to_vec(),
            op::BOARD_OBSERVE => {
                let signal = RoundSignal {
                    iteration: read_u64(args, 0) as usize,
                    max_delta: read_f32(args, 8),
                    mean_loss: read_f32(args, 12),
                    delta_mean: read_f32(args, 16),
                    delta_sq_mean: read_f32(args, 20),
                    synced: args[24] != 0,
                };
                let next_round = read_u64(args, 25) as usize;
                self.board.observe(signal, next_round);
                Vec::new()
            }
            other => panic!("unknown rpc op {other} from worker {worker}"),
        }
    }
}

/// Worker-side view of the hub's shared state: each method is one blocking RPC
/// whose name and argument shape matches the in-process call it stands in for.
struct RemoteCluster {
    client: HubClient,
}

impl RemoteCluster {
    fn request(&self, round: u64, op: u8, args: &[u8]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(1 + args.len());
        payload.push(op);
        payload.extend_from_slice(args);
        self.client.rpc(round, payload)
    }

    fn pull(&self) -> Vec<f32> {
        bytes_to_f32s(&self.request(u64::MAX, op::PULL, &[]))
    }

    fn scheduled_global_before(&self, round: u64) -> Vec<f32> {
        bytes_to_f32s(&self.request(round, op::SCHED_GLOBAL_BEFORE, &[]))
    }

    fn scheduled_round_before(&self, round: u64) -> Option<u64> {
        let reply = self.request(round, op::SCHED_ROUND_BEFORE, &[]);
        (reply[0] != 0).then(|| read_u64(&reply, 1))
    }

    fn sync_round_elastic(&self, round: u64, params: &[f32], expected: usize) -> Vec<f32> {
        let mut args = (expected as u32).to_le_bytes().to_vec();
        args.extend(f32s_to_bytes(params));
        bytes_to_f32s(&self.request(round, op::SYNC_ROUND, &args))
    }

    fn allgather_flags_among(&self, round: u64, flag: bool, expected: usize) -> Vec<bool> {
        let mut args = vec![flag as u8];
        args.extend((expected as u32).to_le_bytes());
        self.request(round, op::ALLGATHER_FLAGS, &args)
            .into_iter()
            .map(|b| b != 0)
            .collect()
    }

    fn allreduce_scalar_among(
        &self,
        round: u64,
        value: f32,
        expected: usize,
        op_: ScalarOp,
    ) -> f32 {
        let mut args = vec![scalar_op_tag(op_)];
        args.extend((expected as u32).to_le_bytes());
        args.extend(value.to_le_bytes());
        read_f32(&self.request(round, op::ALLREDUCE_SCALAR, &args), 0)
    }

    fn allreduce_vec_among(
        &self,
        round: u64,
        values: &[f32],
        expected: usize,
        op_: ScalarOp,
    ) -> Vec<f32> {
        let mut args = vec![scalar_op_tag(op_)];
        args.extend((expected as u32).to_le_bytes());
        args.extend(f32s_to_bytes(values));
        bytes_to_f32s(&self.request(round, op::ALLREDUCE_VEC, &args))
    }

    fn wait_caught_up(&self, iteration: usize) {
        self.request(
            iteration as u64,
            op::BOARD_WAIT_CAUGHT_UP,
            &(iteration as u64).to_le_bytes(),
        );
    }

    fn delta_for(&self, iteration: usize) -> f32 {
        read_f32(
            &self.request(
                iteration as u64,
                op::BOARD_DELTA_FOR,
                &(iteration as u64).to_le_bytes(),
            ),
            0,
        )
    }

    fn observe(&self, signal: RoundSignal, next_round: usize) {
        let mut args = (signal.iteration as u64).to_le_bytes().to_vec();
        args.extend(signal.max_delta.to_le_bytes());
        args.extend(signal.mean_loss.to_le_bytes());
        args.extend(signal.delta_mean.to_le_bytes());
        args.extend(signal.delta_sq_mean.to_le_bytes());
        args.push(signal.synced as u8);
        args.extend((next_round as u64).to_le_bytes());
        self.request(signal.iteration as u64, op::BOARD_OBSERVE, &args);
    }
}

/// The configuration envelope the process backend supports — the threaded
/// driver's, minus durable checkpoints (which need a cross-process quiescence
/// gate this backend does not implement).
fn check_supported(cfg: &TrainConfig) -> (f32, PolicySpec) {
    let delta = match cfg.algorithm {
        AlgorithmSpec::SelSync { delta, .. } => delta,
        AlgorithmSpec::Bsp => 0.0,
        _ => panic!("process driver supports SelSync and BSP only"),
    };
    assert!(
        cfg.non_iid_labels_per_worker.is_none(),
        "process driver supports IID training only"
    );
    assert!(
        cfg.checkpoint.is_none(),
        "process driver does not support durable checkpoints"
    );
    let spec = match cfg.algorithm {
        AlgorithmSpec::SelSync { .. } => cfg
            .delta_policy
            .clone()
            .unwrap_or(PolicySpec::Fixed { delta }),
        _ => PolicySpec::Fixed { delta },
    };
    spec.validate().expect("invalid δ-policy configuration");
    (delta, spec)
}

/// Run the hub process: bind `addr`, serve one connection per worker until all
/// of them hang up, and return the hub's trace shard (the run header plus the
/// shared policy's regime-switch events) in encoded form.
pub fn run_process_hub(cfg: &TrainConfig, addr: &SocketAddrSpec) -> String {
    let (_delta, spec) = check_supported(cfg);
    let n = cfg.workers;
    crate::tracing::emit_header(
        &cfg.trace,
        cfg,
        &crate::algorithms::selsync::algorithm_label(cfg),
        &spec.label(),
    );
    let proto = PaperModel::build(cfg.model, cfg.seed);
    let handles = make_handles(n, proto.params_flat());
    if cfg.rejoin_pull == RejoinPull::Scheduled {
        handles
            .ps
            .enable_scheduled_snapshots(DEFAULT_SNAPSHOT_DEPTH);
    }
    let conditions = cfg.effective_conditions();
    let board = SignalBoard::new(
        spec.build(),
        conditions.next_active_iteration(n, 0, cfg.iterations),
        cfg.trace.clone(),
    );
    let server = HubServer::bind(addr).unwrap_or_else(|e| panic!("hub failed to bind {addr}: {e}"));
    server
        .serve(n, Arc::new(HubService { handles, board }))
        .unwrap_or_else(|e| panic!("hub serve failed: {e}"));
    cfg.trace.take_log().encode()
}

/// Run one worker process: connect to the hub at `addr` and execute worker
/// `worker`'s rounds — the exact operation sequence of the threaded driver's
/// worker closure, with shared-state touches carried by the socket. Returns
/// the worker's report and its trace shard in encoded form.
pub fn run_process_worker(
    cfg: &TrainConfig,
    worker: usize,
    addr: &SocketAddrSpec,
) -> (ThreadedWorkerReport, String) {
    let (_delta, spec) = check_supported(cfg);
    let n = cfg.workers;
    let exchange_signals = spec.consumes_round_signals();

    let (train, _test) = sim::build_datasets(cfg);
    let proto = PaperModel::build(cfg.model, cfg.seed);
    let iid_order = sim::iid_sample_order(&train, &proto.task);
    let conditions = cfg.effective_conditions();
    let evictions = cfg.comm_fault_evictions();

    let conn = SocketConn::connect(addr, CONNECT_RETRY)
        .unwrap_or_else(|e| panic!("worker {worker} failed to connect to {addr}: {e}"));
    // The message layer rides the real socket: the hub echoes every non-RPC
    // frame verbatim, so retries, dedupe and evictions behave exactly as over
    // the in-memory transports — including with the fault decorator composed
    // over the socket.
    let fault_schedule = cfg.comm_faults.map(CommFaultSchedule::new);
    let layer = match fault_schedule {
        Some(schedule) => MessageLayer::faulty_over(schedule, Box::new(conn.transport())),
        None => MessageLayer::over(Box::new(conn.transport()), 1),
    };
    let ps_schedule = cfg.ps_fault_schedule();
    let layer = match ps_schedule.clone() {
        Some(schedule) => layer.with_ps_outages(schedule),
        None => layer,
    };
    let hub = RemoteCluster {
        client: conn.client(worker as u32),
    };

    let mut model = PaperModel::build(cfg.model, cfg.seed);
    // Every worker starts from the global state on the PS (pullFromPS, Alg. 1 line 3).
    let mut params = hub.pull();
    model.set_params_flat(&params);
    let traversal = sim::worker_iid_traversal(cfg, &iid_order, worker);
    let mut cursor = 0usize;
    let new_tracker = || {
        GradientTracker::new(
            GradStatistic::SqNorm,
            (n as f32 / 100.0).clamp(0.01, 1.0),
            cfg.ewma_window,
        )
    };
    let mut tracker = new_tracker();
    let mut optimizer = cfg.optimizer.build();
    let mut counter = LssrCounter::new();
    let mut sync_rounds: Vec<usize> = Vec::new();
    let mut last_loss = 0.0f32;
    let mut was_present = true;
    let mut forwards_before = 0u64;
    let mut indices = Vec::with_capacity(cfg.batch_size);
    let exchange = |round: usize, kind: MsgKind, payload: &[u8]| -> u32 {
        layer
            .exchange(worker, round as u64, kind, payload)
            .unwrap_or_else(|e| {
                panic!("present worker {worker} failed a comm op at round {round}: {e}")
            })
            .attempts
    };

    for it in 0..cfg.iterations {
        let present = conditions.present_workers(n, it);
        let Some(rank) = present.iter().position(|&p| p == worker) else {
            if evictions.contains(&(worker, it)) {
                let farewell = layer.exchange(worker, it as u64, MsgKind::Flags, &[0]);
                assert!(
                    farewell.is_err(),
                    "worker {worker} was precomputed as evicted at round {it} but its \
                     exchange succeeded"
                );
                cfg.trace.record(Event::CommEvict { round: it, worker });
            }
            was_present = false;
            forwards_before += present.len() as u64;
            continue;
        };
        let active = present.len();
        let forward_index = forwards_before + rank as u64;
        forwards_before += active as u64;
        if !was_present {
            if !layer.ps_down(it as u64) {
                exchange(it, MsgKind::Pull, &(it as u64).to_le_bytes());
            }
            params = match cfg.rejoin_pull {
                RejoinPull::WallClock => hub.pull(),
                RejoinPull::Scheduled => {
                    hub.wait_caught_up(it);
                    hub.scheduled_global_before(it as u64)
                }
            };
            if cfg.trace.is_enabled() {
                let (pull, from) = match cfg.rejoin_pull {
                    RejoinPull::Scheduled => (
                        PullKind::Scheduled,
                        hub.scheduled_round_before(it as u64).map(|r| r as usize),
                    ),
                    RejoinPull::WallClock => (PullKind::WallClock, None),
                };
                cfg.trace.record(Event::RejoinPull {
                    round: it,
                    worker,
                    pull,
                    from,
                });
            }
            tracker = new_tracker();
            optimizer = cfg.optimizer.build();
            was_present = true;
        }

        indices.clear();
        for _ in 0..cfg.batch_size {
            indices.push(traversal[cursor % traversal.len()]);
            cursor += 1;
        }
        cursor %= traversal.len();
        let (x, y) = train.batch(&indices);
        model.set_params_flat(&params);
        model.seek_dropout(forward_index);
        let stats = model.forward_backward(&x, &y);
        last_loss = stats.loss;
        let grads = model.grads_flat();
        let delta_g = tracker.update(&grads);

        let lr = cfg.lr.lr_at(cfg.epoch_of(it), it);
        optimizer.step(&mut params, &grads, lr);

        if layer.ps_down(it as u64) {
            let probe =
                layer.ps_exchange(worker, it as u64, MsgKind::Pull, &(it as u64).to_le_bytes());
            assert!(
                matches!(probe, Err(PsExchangeError::Down { .. })),
                "the PS availability schedule and the layer's gate disagree at round {it}"
            );
            let sync_policy = SyncPolicy::new(hub.delta_for(it));
            hub.allgather_flags_among(it as u64, false, active);
            counter.record_local();
            if rank == 0 {
                if cfg.trace.is_enabled() {
                    crate::tracing::emit_round_context(&cfg.trace, &conditions, n, it, &present);
                    if ps_schedule
                        .as_ref()
                        .is_some_and(|s| s.outage_starts(it as u64))
                    {
                        cfg.trace.record(Event::PsDown { round: it });
                    }
                    cfg.trace.record(Event::DegradedRound {
                        round: it,
                        delta: sync_policy.delta,
                        loss: stats.loss,
                        delta_g,
                    });
                }
                hub.observe(
                    RoundSignal {
                        iteration: it,
                        max_delta: delta_g,
                        mean_loss: stats.loss,
                        delta_mean: delta_g,
                        delta_sq_mean: delta_g * delta_g,
                        synced: false,
                    },
                    conditions.next_active_iteration(n, it + 1, cfg.iterations),
                );
            }
            continue;
        }
        let catchup = ps_schedule
            .as_ref()
            .is_some_and(|s| s.outage_ends(it as u64));

        let (mean_loss, cluster_delta, moments) = if exchange_signals {
            let mut scalar_payload = [0u8; 8];
            scalar_payload[..4].copy_from_slice(&stats.loss.to_le_bytes());
            scalar_payload[4..].copy_from_slice(&delta_g.to_le_bytes());
            exchange(it, MsgKind::ScalarReduce, &scalar_payload);
            let mut vec_payload = [0u8; 8];
            vec_payload[..4].copy_from_slice(&delta_g.to_le_bytes());
            vec_payload[4..].copy_from_slice(&(delta_g * delta_g).to_le_bytes());
            exchange(it, MsgKind::VecReduce, &vec_payload);
            (
                hub.allreduce_scalar_among(it as u64, stats.loss, active, ScalarOp::Mean),
                hub.allreduce_scalar_among(it as u64, delta_g, active, ScalarOp::Max),
                hub.allreduce_vec_among(
                    it as u64,
                    &[delta_g, delta_g * delta_g],
                    active,
                    ScalarOp::Mean,
                ),
            )
        } else {
            (stats.loss, delta_g, vec![delta_g, delta_g * delta_g])
        };

        let sync_policy = SyncPolicy::new(hub.delta_for(it));

        let wants_sync = catchup || sync_policy.worker_wants_sync(delta_g);
        let attempts = exchange(it, MsgKind::Flags, &[wants_sync as u8]);
        if attempts > 1 {
            cfg.trace.record(Event::CommRetry {
                round: it,
                worker,
                attempts,
            });
        }
        let flags = hub.allgather_flags_among(it as u64, wants_sync, active);
        let synced = flags.iter().any(|&f| f);
        if synced {
            exchange(
                it,
                MsgKind::SyncRound,
                &((params.len() * 4) as u64).to_le_bytes(),
            );
            params = hub.sync_round_elastic(it as u64, &params, active);
            counter.record_sync();
            sync_rounds.push(it);
        } else {
            counter.record_local();
        }
        if rank == 0 {
            if cfg.trace.is_enabled() {
                crate::tracing::emit_round_context(&cfg.trace, &conditions, n, it, &present);
                if catchup {
                    let schedule = ps_schedule.as_ref().expect("catchup implies a schedule");
                    cfg.trace.record(Event::PsUp { round: it });
                    cfg.trace.record(Event::CatchupSync {
                        round: it,
                        behind: schedule.rounds_behind(it as u64) as usize,
                    });
                }
                if exchange_signals {
                    cfg.trace.record(Event::Signal {
                        round: it,
                        mean_loss,
                        max_delta: cluster_delta,
                    });
                }
                cfg.trace.record(Event::Round {
                    round: it,
                    delta: sync_policy.delta,
                    flags: present.iter().map(|&w| flags[w]).collect(),
                    synced,
                });
            }
            hub.observe(
                RoundSignal {
                    iteration: it,
                    max_delta: cluster_delta,
                    mean_loss,
                    delta_mean: moments[0],
                    delta_sq_mean: moments[1],
                    synced,
                },
                conditions.next_active_iteration(n, it + 1, cfg.iterations),
            );
        }
    }

    let global = hub.pull();
    let distance: f32 = params
        .iter()
        .zip(global.iter())
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f32>()
        .sqrt();
    let report = ThreadedWorkerReport {
        worker,
        sync_steps: counter.sync_steps,
        local_steps: counter.local_steps,
        sync_rounds,
        final_loss: last_loss,
        distance_to_global: distance,
    };
    (report, cfg.trace.take_log().encode())
}

/// Serialize a worker report to one deterministic text line (floats as raw bit
/// patterns, so the round trip is exact). The orchestrator reads these back
/// from each worker process's output file.
pub fn encode_worker_report(report: &ThreadedWorkerReport) -> String {
    let rounds = if report.sync_rounds.is_empty() {
        "-".to_string()
    } else {
        report
            .sync_rounds
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "worker {} sync_steps {} local_steps {} sync_rounds {} final_loss {:08x} distance {:08x}",
        report.worker,
        report.sync_steps,
        report.local_steps,
        rounds,
        report.final_loss.to_bits(),
        report.distance_to_global.to_bits(),
    )
}

/// Inverse of [`encode_worker_report`].
pub fn decode_worker_report(line: &str) -> Result<ThreadedWorkerReport, String> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    let expect = |at: usize, key: &str| -> Result<&str, String> {
        if fields.get(at) != Some(&key) {
            return Err(format!("report line field {at} is not {key:?}: {line:?}"));
        }
        fields
            .get(at + 1)
            .copied()
            .ok_or_else(|| format!("report line missing a value for {key}: {line:?}"))
    };
    let parse_u64 = |s: &str, key: &str| -> Result<u64, String> {
        s.parse().map_err(|_| format!("bad {key}: {s:?}"))
    };
    let worker = parse_u64(expect(0, "worker")?, "worker")? as usize;
    let sync_steps = parse_u64(expect(2, "sync_steps")?, "sync_steps")?;
    let local_steps = parse_u64(expect(4, "local_steps")?, "local_steps")?;
    let rounds_text = expect(6, "sync_rounds")?;
    let sync_rounds = if rounds_text == "-" {
        Vec::new()
    } else {
        rounds_text
            .split(',')
            .map(|r| r.parse().map_err(|_| format!("bad sync round {r:?}")))
            .collect::<Result<Vec<usize>, String>>()?
    };
    let final_loss = f32::from_bits(
        u32::from_str_radix(expect(8, "final_loss")?, 16)
            .map_err(|_| format!("bad final_loss bits: {line:?}"))?,
    );
    let distance_to_global = f32::from_bits(
        u32::from_str_radix(expect(10, "distance")?, 16)
            .map_err(|_| format!("bad distance bits: {line:?}"))?,
    );
    Ok(ThreadedWorkerReport {
        worker,
        sync_steps,
        local_steps,
        sync_rounds,
        final_loss,
        distance_to_global,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::run_threaded_selsync;
    use selsync_nn::model::ModelKind;
    use selsync_tracelog::{EventLog, TraceGranularity, TraceSink};

    fn cfg(delta: f32, workers: usize) -> TrainConfig {
        let mut c = TrainConfig::small(ModelKind::ResNetLike, workers);
        c.iterations = 20;
        c.batch_size = 8;
        c.train_samples = 256;
        c.test_samples = 64;
        c.algorithm = AlgorithmSpec::selsync(delta);
        c
    }

    fn run_in_process_cluster(c: &TrainConfig, tag: &str) -> (Vec<ThreadedWorkerReport>, String) {
        // In-process harness for the process drivers: the hub on one thread,
        // each worker on its own, all over a real UDS. The scenario_cluster
        // binary runs the same entry points in separate OS processes.
        let addr = SocketAddrSpec::Unix(
            std::env::temp_dir().join(format!("selsync-process-test-{tag}-{}", std::process::id())),
        );
        let mut shards = Vec::new();
        let mut reports = Vec::new();
        std::thread::scope(|scope| {
            let hub_cfg = {
                let mut h = c.clone();
                h.trace = TraceSink::capture(TraceGranularity::Full);
                h
            };
            let hub_addr = addr.clone();
            let hub = scope.spawn(move || run_process_hub(&hub_cfg, &hub_addr));
            let workers: Vec<_> = (0..c.workers)
                .map(|w| {
                    let worker_cfg = {
                        let mut wc = c.clone();
                        wc.trace = TraceSink::capture(TraceGranularity::Full);
                        wc
                    };
                    let worker_addr = addr.clone();
                    scope.spawn(move || run_process_worker(&worker_cfg, w, &worker_addr))
                })
                .collect();
            for handle in workers {
                let (report, shard) = handle.join().expect("worker thread");
                reports.push(report);
                shards.push(shard);
            }
            shards.push(hub.join().expect("hub thread"));
        });
        if let SocketAddrSpec::Unix(path) = &addr {
            let _ = std::fs::remove_file(path);
        }
        reports.sort_by_key(|r| r.worker);
        let merged = EventLog::merge(
            shards
                .iter()
                .map(|s| EventLog::decode(s).expect("shard decodes")),
        );
        (reports, merged.encode())
    }

    #[test]
    fn process_cluster_matches_the_threaded_driver_and_simulator_trace() {
        let mut c = cfg(0.05, 3);
        c.trace = TraceSink::capture(TraceGranularity::Full);
        let sim_report = crate::algorithms::run(&c);
        let sim_trace = c.trace.take_log().encode();
        c.trace = TraceSink::disabled();
        let threaded = run_threaded_selsync(&c);

        let (reports, merged) = run_in_process_cluster(&c, "basic");
        assert_eq!(
            merged, sim_trace,
            "merged shard log diverged from the simulator"
        );
        for (p, t) in reports.iter().zip(threaded.iter()) {
            assert_eq!(p.sync_rounds, t.sync_rounds, "worker {}", p.worker);
            assert_eq!(p.sync_steps, t.sync_steps);
            assert_eq!(p.local_steps, t.local_steps);
            assert_eq!(p.final_loss.to_bits(), t.final_loss.to_bits());
        }
        assert_eq!(reports[0].sync_rounds, sim_report.sync_rounds);
    }

    #[test]
    fn process_cluster_composes_comm_faults_over_the_socket() {
        use selsync_comm::faults::CommFaultSpec;
        let mut c = cfg(0.05, 3);
        c.comm_faults = Some(CommFaultSpec {
            seed: 9,
            drop: 0.0,
            duplicate: 0.4,
            corrupt: 0.0,
            delay: 0.3,
            delay_rounds: 0,
            retry_budget: 3,
            timeout_s: 1e-3,
        });
        let threaded = run_threaded_selsync(&c);
        let (reports, _merged) = run_in_process_cluster(&c, "weather");
        for (p, t) in reports.iter().zip(threaded.iter()) {
            assert_eq!(format!("{p:?}"), format!("{t:?}"), "worker {}", p.worker);
        }
    }

    #[test]
    fn worker_report_text_codec_round_trips() {
        let report = ThreadedWorkerReport {
            worker: 3,
            sync_steps: 7,
            local_steps: 13,
            sync_rounds: vec![0, 4, 9],
            final_loss: 1.25e-3,
            distance_to_global: 0.0,
        };
        let line = encode_worker_report(&report);
        let back = decode_worker_report(&line).expect("decodes");
        assert_eq!(format!("{back:?}"), format!("{report:?}"));
        let empty = ThreadedWorkerReport {
            sync_rounds: vec![],
            ..report
        };
        let back = decode_worker_report(&encode_worker_report(&empty)).expect("decodes");
        assert!(back.sync_rounds.is_empty());
    }
}

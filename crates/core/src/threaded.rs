//! Thread-per-worker SelSync/BSP driver over the real communication substrate.
//!
//! The sequential simulator in [`crate::sim`] is what the benchmark harness uses (it is
//! deterministic and lets the cost model supply timing), but the synchronization *logic*
//! of Alg. 1 — the 1-bit status all-gather, the blocking parameter-server round, the
//! "any worker can force a synchronization" rule — deserves to be exercised with real
//! concurrency. This module runs each worker on its own OS thread against the
//! [`selsync_comm`] parameter server and collectives. It is used by the integration
//! tests and the `collectives` criterion bench; it reports metrics but not simulated
//! time (wall-clock on the host is meaningless for the paper's comparisons).

use crate::config::{AlgorithmSpec, TrainConfig};
use crate::policy::SyncPolicy;
use crate::tracker::{GradStatistic, GradientTracker};
use selsync_comm::cluster::{run_cluster, ClusterHandles};
use selsync_data::partition::WorkerPartition;
use selsync_data::synthetic::{gaussian_mixture, markov_tokens, MixtureSpec, TokenSpec};
use selsync_metrics::lssr::LssrCounter;
use selsync_nn::model::{ModelKind, PaperModel, TaskKind};
use serde::{Deserialize, Serialize};

/// Result of a threaded run, per worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadedWorkerReport {
    /// Worker id.
    pub worker: usize,
    /// Steps that synchronized.
    pub sync_steps: u64,
    /// Steps that stayed local.
    pub local_steps: u64,
    /// Final training loss observed by this worker.
    pub final_loss: f32,
    /// L2 distance between this worker's final parameters and the PS global vector
    /// (0 after a final synchronization under parameter aggregation).
    pub distance_to_global: f32,
}

/// Run SelSync (or BSP via δ=0) with one OS thread per worker over the real parameter
/// server and collectives. Returns one report per worker.
pub fn run_threaded_selsync(cfg: &TrainConfig) -> Vec<ThreadedWorkerReport> {
    let delta = match cfg.algorithm {
        AlgorithmSpec::SelSync { delta, .. } => delta,
        AlgorithmSpec::Bsp => 0.0,
        _ => panic!("threaded driver supports SelSync and BSP only"),
    };
    let n = cfg.workers;
    let seed = cfg.seed;
    let model_kind = cfg.model;
    let batch = cfg.batch_size;
    let iterations = cfg.iterations;
    let partition_scheme = cfg.partition;
    let train_samples = cfg.train_samples;
    let ewma_window = cfg.ewma_window;
    let lr = cfg.lr.base_lr();

    // Shared immutable dataset built once and shared by reference across threads.
    let proto = PaperModel::build(model_kind, seed);
    let dataset = match proto.task {
        TaskKind::Classification { .. } => {
            let spec = match model_kind {
                ModelKind::ResNetLike => MixtureSpec::cifar10_like(train_samples),
                ModelKind::VggLike => MixtureSpec::cifar100_like(train_samples),
                _ => MixtureSpec::imagenet_like(train_samples),
            };
            gaussian_mixture(&spec, seed ^ 0xDA7A)
        }
        TaskKind::LanguageModel { .. } => {
            markov_tokens(&TokenSpec::wikitext_like(train_samples), seed ^ 0xDA7A)
        }
    };
    let init_params = proto.params_flat();
    let dataset = &dataset;

    run_cluster(n, init_params.clone(), move |worker, handles: ClusterHandles| {
        let mut model = PaperModel::build(model_kind, seed);
        // Every worker starts from the global state on the PS (pullFromPS, Alg. 1 line 3).
        let mut params = handles.ps.pull();
        model.set_params_flat(&params);
        let mut partition = WorkerPartition::build(partition_scheme, dataset.len(), n, worker);
        let mut tracker = GradientTracker::new(
            GradStatistic::SqNorm,
            (n as f32 / 100.0).clamp(0.01, 1.0),
            ewma_window,
        );
        let policy = SyncPolicy::new(delta);
        let mut counter = LssrCounter::new();
        let mut last_loss = 0.0f32;

        for _ in 0..iterations {
            let indices = partition.next_batch(batch);
            let (x, y) = dataset.batch(&indices);
            model.set_params_flat(&params);
            let stats = model.forward_backward(&x, &y);
            last_loss = stats.loss;
            let grads = model.grads_flat();
            let delta_g = tracker.update(&grads);

            // Local SGD update (Alg. 1 line 9).
            for (p, g) in params.iter_mut().zip(grads.iter()) {
                *p -= lr * g;
            }

            // 1-bit status all-gather followed by the cluster decision (lines 10–13).
            let wants_sync = policy.worker_wants_sync(delta_g);
            let flags = handles.collective.allgather_flags(worker, wants_sync);
            if flags.iter().any(|&f| f) {
                // Push local parameters, pull the average (lines 14–15).
                params = handles.ps.sync_round(&params, n);
                counter.record_sync();
            } else {
                counter.record_local();
            }
        }

        let global = handles.ps.pull();
        let distance: f32 = params
            .iter()
            .zip(global.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        ThreadedWorkerReport {
            worker,
            sync_steps: counter.sync_steps,
            local_steps: counter.local_steps,
            final_loss: last_loss,
            distance_to_global: distance,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(delta: f32, workers: usize) -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, workers);
        cfg.iterations = 25;
        cfg.batch_size = 8;
        cfg.train_samples = 256;
        cfg.algorithm = AlgorithmSpec::selsync(delta);
        cfg
    }

    #[test]
    fn all_workers_agree_on_the_synchronization_schedule() {
        let reports = run_threaded_selsync(&cfg(0.05, 4));
        assert_eq!(reports.len(), 4);
        let first = (reports[0].sync_steps, reports[0].local_steps);
        for r in &reports {
            assert_eq!((r.sync_steps, r.local_steps), first, "worker {} diverged", r.worker);
            assert_eq!(r.sync_steps + r.local_steps, 25);
        }
    }

    #[test]
    fn delta_zero_synchronizes_every_step_across_threads() {
        let mut c = cfg(0.0, 3);
        c.algorithm = AlgorithmSpec::Bsp;
        let reports = run_threaded_selsync(&c);
        for r in &reports {
            assert_eq!(r.sync_steps, 25);
            assert_eq!(r.local_steps, 0);
            // After a final synchronization every worker equals the PS state.
            assert!(r.distance_to_global < 1e-4, "distance {}", r.distance_to_global);
        }
    }

    #[test]
    fn huge_delta_never_synchronizes_across_threads() {
        let reports = run_threaded_selsync(&cfg(1e9, 3));
        for r in &reports {
            assert_eq!(r.sync_steps, 0);
            assert_eq!(r.local_steps, 25);
        }
    }
}

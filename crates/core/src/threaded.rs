//! Thread-per-worker SelSync/BSP driver over the real communication substrate.
//!
//! The sequential simulator in [`crate::sim`] is what the benchmark harness uses (it is
//! deterministic and lets the cost model supply timing), but the synchronization *logic*
//! of Alg. 1 — the 1-bit status all-gather, the blocking parameter-server round, the
//! "any worker can force a synchronization" rule — deserves to be exercised with real
//! concurrency. This module runs each worker on its own OS thread against the
//! [`selsync_comm`] parameter server and collectives. It is used by the integration
//! tests and the `collectives` criterion bench; it reports metrics but not simulated
//! time (wall-clock on the host is meaningless for the paper's comparisons).
//!
//! **Parity with the simulator.** The driver deliberately mirrors the simulator's
//! training semantics exactly: the same synthetic datasets ([`crate::sim::build_datasets`]),
//! the same per-worker shuffled IID traversals ([`crate::sim::worker_iid_traversal`]),
//! the same optimizer and learning-rate schedule, the same `Δ(g_i)` tracker
//! configuration, and the same dropout-stream positions (each worker seeks its model's
//! stochastic layers to the canonical global forward index, a pure function of the
//! fault schedule). Synchronization averages are combined in **worker-id order** by the
//! round-keyed elastic rendezvous ([`selsync_comm::rounds`]), bit-identical to the
//! simulator's `aggregation::average_present_into` — so on a crash-free schedule the
//! threaded cluster's parameter stream, `Δ(g_i)` stream and therefore its
//! synchronization *schedule* (`sync_rounds`) are equal to the simulator's. The
//! scenario parity tests pin this.
//!
//! Fault injection: the driver honours the crash windows of
//! [`crate::conditions::ClusterConditions`]. The schedule is a pure function of
//! `(worker, iteration)`, so every live thread derives the same membership without
//! coordination; collective and PS rounds are keyed by the iteration id
//! ([`selsync_comm::Collective::allgather_flags_among`] /
//! [`selsync_comm::ParameterServer::sync_round_elastic`]), which makes skipping rounds
//! safe. A rejoining worker pulls the current global model and restarts its tracker and
//! optimizer — in-memory state does not survive a crash. Note that the rejoin pull
//! reads whatever the PS holds *at that wall-clock moment* (the crashed thread skips
//! its absent iterations instantly while live workers are still training), exactly as
//! on a real cluster — so the pulled snapshot, unlike everything schedule-driven, is
//! not deterministic, and the simulator parity guarantee covers crash-free fault
//! schedules only.
//!
//! δ policies: each worker runs its own replica of the configured
//! [`crate::policy::DeltaPolicy`]. Fixed and scheduled policies are pure functions of
//! the iteration, so every replica agrees on every threshold (and the parity guarantee
//! extends to them); the adaptive policy watches the worker's *own* `Δ(g_i)`/loss
//! stream — no scalar all-reduce accompanies the 1-bit status exchange — so its
//! replicas may diverge, which is valid SelSync semantics (per-worker thresholds,
//! cluster-OR decision) but not schedule-identical to the simulator's cluster-level
//! policy.

use crate::config::{AlgorithmSpec, TrainConfig};
use crate::policy::{PolicySpec, RoundSignal, SyncPolicy};
use crate::sim;
use crate::tracker::{GradStatistic, GradientTracker};
use selsync_comm::cluster::{run_cluster, ClusterHandles};
use selsync_metrics::lssr::LssrCounter;
use selsync_nn::model::PaperModel;
use serde::{Deserialize, Serialize};

/// Result of a threaded run, per worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadedWorkerReport {
    /// Worker id.
    pub worker: usize,
    /// Steps that synchronized.
    pub sync_steps: u64,
    /// Steps that stayed local.
    pub local_steps: u64,
    /// The iterations at which this worker's rounds synchronized — the worker's view
    /// of the cluster synchronization schedule (equal across workers on a crash-free
    /// schedule, and equal to the simulator's [`crate::report::RunReport::sync_rounds`]
    /// under a fixed or scheduled δ policy).
    pub sync_rounds: Vec<usize>,
    /// Final training loss observed by this worker.
    pub final_loss: f32,
    /// L2 distance between this worker's final parameters and the PS global vector
    /// (0 after a final synchronization under parameter aggregation).
    pub distance_to_global: f32,
}

/// Run SelSync (or BSP via δ=0) with one OS thread per worker over the real parameter
/// server and collectives. Returns one report per worker.
pub fn run_threaded_selsync(cfg: &TrainConfig) -> Vec<ThreadedWorkerReport> {
    let delta = match cfg.algorithm {
        AlgorithmSpec::SelSync { delta, .. } => delta,
        AlgorithmSpec::Bsp => 0.0,
        _ => panic!("threaded driver supports SelSync and BSP only"),
    };
    assert!(
        cfg.non_iid_labels_per_worker.is_none(),
        "threaded driver supports IID training only"
    );
    let n = cfg.workers;
    // `delta_policy` applies to SelSync only (the simulator's BSP driver ignores it
    // too); a BSP run always uses the fixed δ = 0.
    let spec = match cfg.algorithm {
        AlgorithmSpec::SelSync { .. } => cfg
            .delta_policy
            .clone()
            .unwrap_or(PolicySpec::Fixed { delta }),
        _ => PolicySpec::Fixed { delta },
    };
    spec.validate().expect("invalid δ-policy configuration");

    // Shared immutable dataset: the *same* train split the simulator uses, built once
    // and shared by reference across threads.
    let (train, _test) = sim::build_datasets(cfg);
    let proto = PaperModel::build(cfg.model, cfg.seed);
    let iid_order = sim::iid_sample_order(&train, &proto.task);
    let init_params = proto.params_flat();

    let train = &train;
    let iid_order = &iid_order;
    let conditions = &cfg.conditions;
    let spec = &spec;

    run_cluster(n, init_params, |worker, handles: ClusterHandles| {
        let mut model = PaperModel::build(cfg.model, cfg.seed);
        // Every worker starts from the global state on the PS (pullFromPS, Alg. 1 line 3).
        let mut params = handles.ps.pull();
        model.set_params_flat(&params);
        // The simulator's shuffled circular traversal over this worker's partition.
        let traversal = sim::worker_iid_traversal(cfg, iid_order, worker);
        let mut cursor = 0usize;
        let new_tracker = || {
            GradientTracker::new(
                GradStatistic::SqNorm,
                (n as f32 / 100.0).clamp(0.01, 1.0),
                cfg.ewma_window,
            )
        };
        let mut tracker = new_tracker();
        let mut optimizer = cfg.optimizer.build();
        let mut policy = spec.build();
        let mut counter = LssrCounter::new();
        let mut sync_rounds = Vec::new();
        let mut last_loss = 0.0f32;
        let mut was_present = true;
        // The canonical global forward counter of the simulator: rounds issue their
        // forwards in worker order over the present set, so the count *before* any
        // iteration — and this worker's position within it — is a pure function of
        // the fault schedule.
        let mut forwards_before = 0u64;
        let mut indices = Vec::with_capacity(cfg.batch_size);

        for it in 0..cfg.iterations {
            // Crash windows: an absent worker skips the round entirely — no compute, no
            // collectives. Every live worker derives the same membership from the
            // deterministic schedule, so the round-keyed rendezvous stays consistent.
            let present = conditions.present_workers(n, it);
            let Some(rank) = present.iter().position(|&p| p == worker) else {
                was_present = false;
                forwards_before += present.len() as u64;
                continue;
            };
            let active = present.len();
            let forward_index = forwards_before + rank as u64;
            forwards_before += active as u64;
            if !was_present {
                // Rejoin: pull the current global model; tracker, optimizer and the
                // δ-policy replica did not survive the crash (the simulator restarts
                // per-worker state the same way).
                params = handles.ps.pull();
                tracker = new_tracker();
                optimizer = cfg.optimizer.build();
                policy = spec.build();
                was_present = true;
            }

            // This round's δ from the worker's policy replica (Phase 0 of the driver).
            let sync_policy = SyncPolicy::new(policy.delta(it));

            indices.clear();
            for _ in 0..cfg.batch_size {
                indices.push(traversal[cursor % traversal.len()]);
                cursor += 1;
            }
            cursor %= traversal.len();
            let (x, y) = train.batch(&indices);
            model.set_params_flat(&params);
            model.seek_dropout(forward_index);
            let stats = model.forward_backward(&x, &y);
            last_loss = stats.loss;
            let grads = model.grads_flat();
            let delta_g = tracker.update(&grads);

            // Local update through the configured optimizer at the scheduled learning
            // rate (Alg. 1 line 9) — identical to the simulator's apply path.
            let lr = cfg.lr.lr_at(cfg.epoch_of(it), it);
            optimizer.step(&mut params, &grads, lr);

            // 1-bit status all-gather followed by the cluster decision (lines 10–13),
            // restricted to the live workers of this iteration.
            let wants_sync = sync_policy.worker_wants_sync(delta_g);
            let flags = handles
                .collective
                .allgather_flags_among(it as u64, worker, wants_sync, active);
            let synced = flags.iter().any(|&f| f);
            if synced {
                // Push local parameters, pull the average (lines 14–15). The elastic
                // round combines contributions in worker-id order, so the pulled
                // average equals the simulator's to the last bit.
                params = handles
                    .ps
                    .sync_round_elastic(it as u64, worker, &params, active);
                counter.record_sync();
                sync_rounds.push(it);
            } else {
                counter.record_local();
            }
            policy.observe(&RoundSignal {
                iteration: it,
                max_delta: delta_g,
                mean_loss: stats.loss,
                synced,
            });
        }

        let global = handles.ps.pull();
        let distance: f32 = params
            .iter()
            .zip(global.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        ThreadedWorkerReport {
            worker,
            sync_steps: counter.sync_steps,
            local_steps: counter.local_steps,
            sync_rounds,
            final_loss: last_loss,
            distance_to_global: distance,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_nn::model::ModelKind;

    fn cfg(delta: f32, workers: usize) -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, workers);
        cfg.iterations = 25;
        cfg.batch_size = 8;
        cfg.train_samples = 256;
        cfg.test_samples = 64;
        cfg.algorithm = AlgorithmSpec::selsync(delta);
        cfg
    }

    #[test]
    fn all_workers_agree_on_the_synchronization_schedule() {
        let reports = run_threaded_selsync(&cfg(0.05, 4));
        assert_eq!(reports.len(), 4);
        let first = (
            reports[0].sync_steps,
            reports[0].local_steps,
            reports[0].sync_rounds.clone(),
        );
        for r in &reports {
            assert_eq!(
                (r.sync_steps, r.local_steps, r.sync_rounds.clone()),
                first,
                "worker {} diverged",
                r.worker
            );
            assert_eq!(r.sync_steps + r.local_steps, 25);
            assert_eq!(r.sync_rounds.len() as u64, r.sync_steps);
        }
    }

    #[test]
    fn delta_zero_synchronizes_every_step_across_threads() {
        let mut c = cfg(0.0, 3);
        c.algorithm = AlgorithmSpec::Bsp;
        let reports = run_threaded_selsync(&c);
        for r in &reports {
            assert_eq!(r.sync_steps, 25);
            assert_eq!(r.local_steps, 0);
            assert_eq!(r.sync_rounds, (0..25).collect::<Vec<_>>());
            // After a final synchronization every worker equals the PS state.
            assert!(
                r.distance_to_global < 1e-4,
                "distance {}",
                r.distance_to_global
            );
        }
    }

    #[test]
    fn huge_delta_never_synchronizes_across_threads() {
        let reports = run_threaded_selsync(&cfg(1e9, 3));
        for r in &reports {
            assert_eq!(r.sync_steps, 0);
            assert_eq!(r.local_steps, 25);
            assert!(r.sync_rounds.is_empty());
        }
    }

    #[test]
    fn scheduled_policy_is_honoured_across_threads() {
        // δ = 0 for the first 10 iterations (every step synchronizes), then δ huge
        // (never again): the schedule is a pure function of the iteration, so every
        // worker replica agrees on it.
        let mut c = cfg(0.0, 3);
        c.delta_policy = Some(PolicySpec::Schedule {
            starts: vec![0, 10],
            deltas: vec![0.0, 1e9],
        });
        let reports = run_threaded_selsync(&c);
        for r in &reports {
            assert_eq!(r.sync_rounds, (0..10).collect::<Vec<_>>());
            assert_eq!(r.sync_steps, 10);
            assert_eq!(r.local_steps, 15);
        }
    }

    #[test]
    fn crash_and_rejoin_across_threads_keeps_the_cluster_consistent() {
        use crate::conditions::{ClusterConditions, FaultEvent};
        // BSP (δ=0) with worker 2 crashed for iterations 5..15: the live workers keep
        // synchronizing among themselves, the crashed worker misses exactly 10 rounds,
        // and after its rejoin-pull everybody finishes on the PS state.
        let mut c = cfg(0.0, 3);
        c.algorithm = AlgorithmSpec::Bsp;
        c.conditions = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: 2,
            start: 5,
            rejoin: Some(15),
        });
        let reports = run_threaded_selsync(&c);
        assert_eq!(reports[0].sync_steps, 25);
        assert_eq!(reports[1].sync_steps, 25);
        assert_eq!(reports[2].sync_steps, 15, "crashed worker misses 10 rounds");
        assert!(!reports[2].sync_rounds.contains(&7));
        for r in &reports {
            assert!(
                r.distance_to_global < 1e-4,
                "worker {} should end on the PS state, distance {}",
                r.worker,
                r.distance_to_global
            );
        }
    }
}

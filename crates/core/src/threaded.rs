//! Thread-per-worker SelSync/BSP driver over the real communication substrate.
//!
//! The sequential simulator in [`crate::sim`] is what the benchmark harness uses (it is
//! deterministic and lets the cost model supply timing), but the synchronization *logic*
//! of Alg. 1 — the 1-bit status all-gather, the blocking parameter-server round, the
//! "any worker can force a synchronization" rule — deserves to be exercised with real
//! concurrency. This module runs each worker on its own OS thread against the
//! [`selsync_comm`] parameter server and collectives. It is used by the integration
//! tests and the `collectives` criterion bench; it reports metrics but not simulated
//! time (wall-clock on the host is meaningless for the paper's comparisons).
//!
//! Fault injection: the driver honours the crash windows of
//! [`crate::conditions::ClusterConditions`]. The schedule is a pure function of
//! `(worker, iteration)`, so every live thread derives the same membership without
//! coordination; collective and PS rounds are keyed by the iteration id
//! ([`selsync_comm::Collective::allgather_flags_among`] /
//! [`selsync_comm::ParameterServer::sync_round_elastic`]), which makes skipping rounds
//! safe. A rejoining worker pulls the current global model and restarts its tracker —
//! in-memory state does not survive a crash. Note that the rejoin pull reads whatever
//! the PS holds *at that wall-clock moment* (the crashed thread skips its absent
//! iterations instantly while live workers are still training), exactly as on a real
//! cluster — so the pulled snapshot, unlike everything schedule-driven, is not
//! deterministic. The simulator is the bit-reproducible backend; this driver exercises
//! the real concurrency.

use crate::config::{AlgorithmSpec, TrainConfig};
use crate::policy::SyncPolicy;
use crate::tracker::{GradStatistic, GradientTracker};
use selsync_comm::cluster::{run_cluster, ClusterHandles};
use selsync_data::partition::WorkerPartition;
use selsync_data::synthetic::{gaussian_mixture, markov_tokens, MixtureSpec, TokenSpec};
use selsync_metrics::lssr::LssrCounter;
use selsync_nn::model::{ModelKind, PaperModel, TaskKind};
use serde::{Deserialize, Serialize};

/// Result of a threaded run, per worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadedWorkerReport {
    /// Worker id.
    pub worker: usize,
    /// Steps that synchronized.
    pub sync_steps: u64,
    /// Steps that stayed local.
    pub local_steps: u64,
    /// Final training loss observed by this worker.
    pub final_loss: f32,
    /// L2 distance between this worker's final parameters and the PS global vector
    /// (0 after a final synchronization under parameter aggregation).
    pub distance_to_global: f32,
}

/// Run SelSync (or BSP via δ=0) with one OS thread per worker over the real parameter
/// server and collectives. Returns one report per worker.
pub fn run_threaded_selsync(cfg: &TrainConfig) -> Vec<ThreadedWorkerReport> {
    let delta = match cfg.algorithm {
        AlgorithmSpec::SelSync { delta, .. } => delta,
        AlgorithmSpec::Bsp => 0.0,
        _ => panic!("threaded driver supports SelSync and BSP only"),
    };
    let n = cfg.workers;
    let seed = cfg.seed;
    let model_kind = cfg.model;
    let batch = cfg.batch_size;
    let iterations = cfg.iterations;
    let partition_scheme = cfg.partition;
    let train_samples = cfg.train_samples;
    let ewma_window = cfg.ewma_window;
    let lr = cfg.lr.base_lr();
    let conditions = cfg.conditions.clone();

    // Shared immutable dataset built once and shared by reference across threads.
    let proto = PaperModel::build(model_kind, seed);
    let dataset = match proto.task {
        TaskKind::Classification { .. } => {
            let spec = match model_kind {
                ModelKind::ResNetLike => MixtureSpec::cifar10_like(train_samples),
                ModelKind::VggLike => MixtureSpec::cifar100_like(train_samples),
                _ => MixtureSpec::imagenet_like(train_samples),
            };
            gaussian_mixture(&spec, seed ^ 0xDA7A)
        }
        TaskKind::LanguageModel { .. } => {
            markov_tokens(&TokenSpec::wikitext_like(train_samples), seed ^ 0xDA7A)
        }
    };
    let init_params = proto.params_flat();
    let dataset = &dataset;

    run_cluster(
        n,
        init_params.clone(),
        move |worker, handles: ClusterHandles| {
            let mut model = PaperModel::build(model_kind, seed);
            // Every worker starts from the global state on the PS (pullFromPS, Alg. 1 line 3).
            let mut params = handles.ps.pull();
            model.set_params_flat(&params);
            let mut partition = WorkerPartition::build(partition_scheme, dataset.len(), n, worker);
            let new_tracker = || {
                GradientTracker::new(
                    GradStatistic::SqNorm,
                    (n as f32 / 100.0).clamp(0.01, 1.0),
                    ewma_window,
                )
            };
            let mut tracker = new_tracker();
            let policy = SyncPolicy::new(delta);
            let mut counter = LssrCounter::new();
            let mut last_loss = 0.0f32;
            let mut was_present = true;

            for it in 0..iterations {
                // Crash windows: an absent worker skips the round entirely — no compute, no
                // collectives. Every live worker derives the same membership from the
                // deterministic schedule, so the round-keyed rendezvous stays consistent.
                if !conditions.is_present(worker, it) {
                    was_present = false;
                    continue;
                }
                let active = conditions.present_workers(n, it).len();
                if !was_present {
                    // Rejoin: pull the current global model; tracker state did not survive.
                    params = handles.ps.pull();
                    tracker = new_tracker();
                    was_present = true;
                }

                let indices = partition.next_batch(batch);
                let (x, y) = dataset.batch(&indices);
                model.set_params_flat(&params);
                let stats = model.forward_backward(&x, &y);
                last_loss = stats.loss;
                let grads = model.grads_flat();
                let delta_g = tracker.update(&grads);

                // Local SGD update (Alg. 1 line 9).
                for (p, g) in params.iter_mut().zip(grads.iter()) {
                    *p -= lr * g;
                }

                // 1-bit status all-gather followed by the cluster decision (lines 10–13),
                // restricted to the live workers of this iteration.
                let wants_sync = policy.worker_wants_sync(delta_g);
                let flags = handles
                    .collective
                    .allgather_flags_among(it as u64, worker, wants_sync, active);
                if flags.iter().any(|&f| f) {
                    // Push local parameters, pull the average (lines 14–15).
                    params = handles.ps.sync_round_elastic(it as u64, &params, active);
                    counter.record_sync();
                } else {
                    counter.record_local();
                }
            }

            let global = handles.ps.pull();
            let distance: f32 = params
                .iter()
                .zip(global.iter())
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f32>()
                .sqrt();
            ThreadedWorkerReport {
                worker,
                sync_steps: counter.sync_steps,
                local_steps: counter.local_steps,
                final_loss: last_loss,
                distance_to_global: distance,
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(delta: f32, workers: usize) -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, workers);
        cfg.iterations = 25;
        cfg.batch_size = 8;
        cfg.train_samples = 256;
        cfg.algorithm = AlgorithmSpec::selsync(delta);
        cfg
    }

    #[test]
    fn all_workers_agree_on_the_synchronization_schedule() {
        let reports = run_threaded_selsync(&cfg(0.05, 4));
        assert_eq!(reports.len(), 4);
        let first = (reports[0].sync_steps, reports[0].local_steps);
        for r in &reports {
            assert_eq!(
                (r.sync_steps, r.local_steps),
                first,
                "worker {} diverged",
                r.worker
            );
            assert_eq!(r.sync_steps + r.local_steps, 25);
        }
    }

    #[test]
    fn delta_zero_synchronizes_every_step_across_threads() {
        let mut c = cfg(0.0, 3);
        c.algorithm = AlgorithmSpec::Bsp;
        let reports = run_threaded_selsync(&c);
        for r in &reports {
            assert_eq!(r.sync_steps, 25);
            assert_eq!(r.local_steps, 0);
            // After a final synchronization every worker equals the PS state.
            assert!(
                r.distance_to_global < 1e-4,
                "distance {}",
                r.distance_to_global
            );
        }
    }

    #[test]
    fn huge_delta_never_synchronizes_across_threads() {
        let reports = run_threaded_selsync(&cfg(1e9, 3));
        for r in &reports {
            assert_eq!(r.sync_steps, 0);
            assert_eq!(r.local_steps, 25);
        }
    }

    #[test]
    fn crash_and_rejoin_across_threads_keeps_the_cluster_consistent() {
        use crate::conditions::{ClusterConditions, FaultEvent};
        // BSP (δ=0) with worker 2 crashed for iterations 5..15: the live workers keep
        // synchronizing among themselves, the crashed worker misses exactly 10 rounds,
        // and after its rejoin-pull everybody finishes on the PS state.
        let mut c = cfg(0.0, 3);
        c.algorithm = AlgorithmSpec::Bsp;
        c.conditions = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: 2,
            start: 5,
            rejoin: Some(15),
        });
        let reports = run_threaded_selsync(&c);
        assert_eq!(reports[0].sync_steps, 25);
        assert_eq!(reports[1].sync_steps, 25);
        assert_eq!(reports[2].sync_steps, 15, "crashed worker misses 10 rounds");
        for r in &reports {
            assert!(
                r.distance_to_global < 1e-4,
                "worker {} should end on the PS state, distance {}",
                r.worker,
                r.distance_to_global
            );
        }
    }
}

//! Thread-per-worker SelSync/BSP driver over the real communication substrate.
//!
//! The sequential simulator in [`crate::sim`] is what the benchmark harness uses (it is
//! deterministic and lets the cost model supply timing), but the synchronization *logic*
//! of Alg. 1 — the 1-bit status all-gather, the blocking parameter-server round, the
//! "any worker can force a synchronization" rule — deserves to be exercised with real
//! concurrency. This module runs each worker on its own OS thread against the
//! [`selsync_comm`] parameter server and collectives. It is used by the integration
//! tests and the `collectives` criterion bench; it reports metrics but not simulated
//! time (wall-clock on the host is meaningless for the paper's comparisons).
//!
//! **Parity with the simulator.** The driver deliberately mirrors the simulator's
//! training semantics exactly: the same synthetic datasets ([`crate::sim::build_datasets`]),
//! the same per-worker shuffled IID traversals ([`crate::sim::worker_iid_traversal`]),
//! the same optimizer and learning-rate schedule, the same `Δ(g_i)` tracker
//! configuration, and the same dropout-stream positions (each worker seeks its model's
//! stochastic layers to the canonical global forward index, a pure function of the
//! fault schedule). Synchronization averages are combined in **worker-id order** by the
//! round-keyed elastic rendezvous ([`selsync_comm::rounds`]), bit-identical to the
//! simulator's `aggregation::average_present_into` — so the threaded cluster's
//! parameter stream, `Δ(g_i)` stream and therefore its synchronization *schedule*
//! (`sync_rounds`) are equal to the simulator's: on crash-free schedules always, and
//! on crash/rejoin schedules under the deterministic scheduled rejoin-pull mode
//! (below). The scenario parity tests pin this for fixed, scheduled and adaptive δ
//! policies alike.
//!
//! Fault injection: the driver honours the crash windows of
//! [`crate::conditions::ClusterConditions`]. The schedule is a pure function of
//! `(worker, iteration)`, so every live thread derives the same membership without
//! coordination; collective and PS rounds are keyed by the iteration id
//! ([`selsync_comm::Collective::allgather_flags_among`] /
//! [`selsync_comm::ParameterServer::sync_round_elastic`]), which makes skipping rounds
//! safe. A rejoining worker restarts its tracker and optimizer — in-memory state does
//! not survive a crash — and pulls parameters according to
//! [`crate::config::RejoinPull`]:
//!
//! * **wall-clock** (the default, real-cluster semantics): the rejoiner reads whatever
//!   the PS holds at that moment. The crashed thread skips its absent iterations
//!   instantly while live workers are still training, so the pulled snapshot — unlike
//!   everything schedule-driven — is not deterministic, and simulator parity covers
//!   crash-free schedules only.
//! * **scheduled** (deterministic): the rejoiner pulls the global of the last
//!   *scheduled* synchronization before its rejoin round from the PS's round-keyed
//!   snapshot ring ([`selsync_comm::ParameterServer::scheduled_global_before`]) —
//!   exactly what the simulator's rejoin pull reads — which extends the parity
//!   contract to crash/rejoin schedules.
//!
//! δ policies: the cluster runs **one** shared instance of the configured
//! [`crate::policy::DeltaPolicy`] (the signal board), exactly like the simulator — not
//! per-worker replicas. Each round, the present workers exchange their batch loss and
//! `Δ(g_i)` through the elastic scalar all-reduce
//! ([`selsync_comm::Collective::allreduce_scalar_among`], worker-order mean / max, so
//! the aggregates are bit-identical to the simulator's worker-order folds), and the
//! lowest-ranked present worker feeds the cluster-level [`RoundSignal`] to the shared
//! policy once the round's decision is known. The board orders observations by round
//! id — a worker asking for round `r`'s δ blocks until every earlier active round has
//! been observed — so the policy's signal stream, and therefore every threshold it
//! produces, is identical to the simulator's for fixed, scheduled *and* adaptive
//! policies. Crash windows don't break this: the shared policy, like the simulator's,
//! survives worker crashes (only per-worker state restarts). For signal-blind
//! (fixed/scheduled) policies the two scalar rendezvous are elided — their
//! observations are discarded anyway — so the default driver pays nothing for the
//! machinery.

use crate::checkpoint::{self, Checkpoint, Section};
use crate::config::{AlgorithmSpec, CheckpointSpec, RejoinPull, TrainConfig};
use crate::policy::{DeltaPolicy, PolicySpec, PolicyState, RoundSignal, SyncPolicy};
use crate::sim;
use crate::tracker::{GradStatistic, GradientTracker, TrackerState};
use parking_lot::{Condvar, Mutex};
use selsync_comm::cluster::{make_handles, run_cluster_with, ClusterHandles};
use selsync_comm::faults::CommFaultSchedule;
use selsync_comm::ps::DEFAULT_SNAPSHOT_DEPTH;
use selsync_comm::wire::MsgKind;
use selsync_comm::{MessageLayer, PsExchangeError, ScalarOp};
use selsync_metrics::lssr::LssrCounter;
use selsync_nn::model::PaperModel;
use selsync_nn::OptimizerState;
use selsync_tracelog::{codec, Event, PullKind, TraceSink};
use serde::{Deserialize, Serialize};

/// The cluster-level δ-policy shared by every worker thread — the threaded
/// counterpart of the single policy instance the simulator's SelSync driver owns.
///
/// Observations are strictly ordered by round id: [`Self::observe`] may only ingest
/// the signals of the oldest active round not yet observed, and [`Self::delta_for`]
/// blocks until every active round before the asked one has been observed. Combined
/// with the rendezvous structure of a round (the status all-gather cannot complete
/// until every present worker has fetched its δ, and the observation is posted only
/// after that all-gather), this makes the policy's signal stream — and every
/// threshold it produces — a pure function of the schedule, independent of thread
/// interleaving.
pub(crate) struct SignalBoard {
    state: Mutex<BoardState>,
    cv: Condvar,
    /// The run's trace sink: regime switches are policy-internal transitions, visible
    /// only at the observation point, so the board is the one place that can log them.
    trace: TraceSink,
}

struct BoardState {
    policy: Box<dyn DeltaPolicy>,
    /// The oldest active (some-worker-present) round not yet observed; the iteration
    /// count once every active round has been observed.
    next_observe: usize,
}

impl SignalBoard {
    pub(crate) fn new(
        policy: Box<dyn DeltaPolicy>,
        first_active_round: usize,
        trace: TraceSink,
    ) -> Self {
        SignalBoard {
            state: Mutex::new(BoardState {
                policy,
                next_observe: first_active_round,
            }),
            cv: Condvar::new(),
            trace,
        }
    }

    /// Block until every active round before `iteration` has been observed (i.e. the
    /// policy state is exactly what the simulator's policy held entering that round).
    pub(crate) fn wait_caught_up(&self, iteration: usize) {
        let mut s = self.state.lock();
        while s.next_observe < iteration {
            self.cv.wait(&mut s);
        }
    }

    /// The δ in effect for the round at `iteration`. Blocks until the policy has
    /// observed every earlier active round; the round's own signals cannot have been
    /// observed yet (the observation is posted only after the round's status
    /// all-gather, which this call precedes on every present worker).
    pub(crate) fn delta_for(&self, iteration: usize) -> f32 {
        let mut s = self.state.lock();
        while s.next_observe < iteration {
            self.cv.wait(&mut s);
        }
        assert_eq!(
            s.next_observe, iteration,
            "δ requested for a round whose signals were already observed"
        );
        s.policy.delta(iteration)
    }

    /// Ingest the completed round's cluster-level signals and advance the board to
    /// `next_round` (the next active round, or the iteration count). Called by exactly
    /// one worker per round — the lowest-ranked present one — strictly in round order.
    pub(crate) fn observe(&self, signal: RoundSignal, next_round: usize) {
        let mut s = self.state.lock();
        assert_eq!(
            s.next_observe, signal.iteration,
            "round signals observed out of order"
        );
        s.policy.observe(&signal);
        if self.trace.is_enabled() {
            if let Some(sw) = s.policy.last_switch() {
                // Same shape as the simulator driver's switch event: the trigger
                // state from the policy plus the observed cluster signals.
                self.trace.record(Event::RegimeSwitch {
                    round: signal.iteration,
                    exploit: sw.exploit,
                    loss_ewma: sw.loss_ewma,
                    delta_ewma: sw.delta_ewma,
                    mean_loss: signal.mean_loss,
                    max_delta: signal.max_delta,
                });
            }
        }
        s.next_observe = next_round;
        self.cv.notify_all();
    }

    /// The shared policy's durable state, captured at a checkpoint's quiescent
    /// point (every worker parked, the checkpoint round's signals observed).
    pub(crate) fn export_policy_state(&self) -> PolicyState {
        self.state.lock().policy.export_state()
    }
}

/// Full-cluster checkpoint barrier: at a checkpoint round every worker thread —
/// present or absent — deposits its per-worker recovery section and parks; once all
/// `n` have arrived the cluster is quiescent (no in-flight rounds, every event of
/// the round recorded, the round's signals observed), worker 0 writes the image,
/// and everyone is released. Round-keyed like every other rendezvous in the driver,
/// so consecutive checkpoint rounds cannot interleave.
struct CheckpointGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    deposits: Vec<Option<Section>>,
    arrived: usize,
    /// The newest round whose checkpoint has been fully written.
    written: Option<usize>,
}

impl CheckpointGate {
    fn new(n: usize) -> Self {
        CheckpointGate {
            state: Mutex::new(GateState {
                deposits: (0..n).map(|_| None).collect(),
                arrived: 0,
                written: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Deposit `section` for `worker` and block until round `round`'s checkpoint has
    /// been written. Worker 0 is the designated writer: it waits for all `n`
    /// deposits, runs `write` outside the lock, and releases the cluster.
    fn checkpoint_round(
        &self,
        worker: usize,
        n: usize,
        round: usize,
        section: Section,
        write: impl FnOnce(Vec<Section>),
    ) {
        let mut s = self.state.lock();
        assert!(
            s.deposits[worker].is_none(),
            "worker {worker} deposited twice for one checkpoint"
        );
        s.deposits[worker] = Some(section);
        s.arrived += 1;
        if worker == 0 {
            while s.arrived < n {
                self.cv.wait(&mut s);
            }
            let deposits: Vec<Section> = s
                .deposits
                .iter_mut()
                .map(|d| d.take().expect("every worker deposited"))
                .collect();
            s.arrived = 0;
            drop(s);
            write(deposits);
            let mut s = self.state.lock();
            s.written = Some(round);
            self.cv.notify_all();
        } else {
            self.cv.notify_all();
            while s.written != Some(round) {
                self.cv.wait(&mut s);
            }
        }
    }
}

/// Result of a threaded run, per worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadedWorkerReport {
    /// Worker id.
    pub worker: usize,
    /// Steps that synchronized.
    pub sync_steps: u64,
    /// Steps that stayed local.
    pub local_steps: u64,
    /// The iterations at which this worker's rounds synchronized — the worker's view
    /// of the cluster synchronization schedule. Equal to the simulator's
    /// [`crate::report::RunReport::sync_rounds`] restricted to the rounds this worker
    /// was present at (so equal across workers, and to the simulator's schedule
    /// verbatim, on crash-free schedules) — for fixed, scheduled *and* adaptive δ
    /// policies, with crash/rejoin schedules covered under
    /// [`crate::config::RejoinPull::Scheduled`].
    pub sync_rounds: Vec<usize>,
    /// Final training loss observed by this worker.
    pub final_loss: f32,
    /// L2 distance between this worker's final parameters and the PS global vector
    /// (0 after a final synchronization under parameter aggregation).
    pub distance_to_global: f32,
}

/// Run SelSync (or BSP via δ=0) with one OS thread per worker over the real parameter
/// server and collectives. Returns one report per worker.
pub fn run_threaded_selsync(cfg: &TrainConfig) -> Vec<ThreadedWorkerReport> {
    run_threaded_inner(cfg, None)
}

/// Resume a threaded run from a durable checkpoint written by an earlier
/// `run_threaded_selsync` of the *same* configuration. The PS (global + snapshot
/// ring), the shared δ policy, every worker's local state and the trace prefix are
/// restored before any thread spawns; the resumed cluster continues from
/// `ckpt.round + 1` and produces the byte-identical trace and reports of the
/// uninterrupted run.
pub fn run_threaded_selsync_resumed(
    cfg: &TrainConfig,
    ckpt: &Checkpoint,
) -> Vec<ThreadedWorkerReport> {
    run_threaded_inner(cfg, Some(ckpt))
}

fn run_threaded_inner(cfg: &TrainConfig, resume: Option<&Checkpoint>) -> Vec<ThreadedWorkerReport> {
    // A simulator image is translated into the threaded layout up front;
    // everything below sees a native "threaded" checkpoint.
    let translated;
    let resume = match resume {
        Some(ckpt) if ckpt.backend == "sim" => {
            translated = crate::resume::sim_to_threaded(cfg, ckpt);
            Some(&translated)
        }
        Some(ckpt) if ckpt.backend == "process" => {
            translated = crate::resume::process_to_threaded(ckpt);
            Some(&translated)
        }
        other => other,
    };
    let delta = match cfg.algorithm {
        AlgorithmSpec::SelSync { delta, .. } => delta,
        AlgorithmSpec::Bsp => 0.0,
        _ => panic!("threaded driver supports SelSync and BSP only"),
    };
    // Non-IID label shards are schedule-pure traversals and run natively;
    // data-injection draws cross-worker samples from the simulator's cluster
    // RNG, which has no counterpart here.
    if let AlgorithmSpec::SelSync {
        injection: Some(_), ..
    } = cfg.algorithm
    {
        assert!(
            cfg.non_iid_labels_per_worker.is_none(),
            "threaded driver does not support data-injection on non-IID shards"
        );
    }
    let n = cfg.workers;
    // `delta_policy` applies to SelSync only (the simulator's BSP driver ignores it
    // too); a BSP run always uses the fixed δ = 0.
    let spec = match cfg.algorithm {
        AlgorithmSpec::SelSync { .. } => cfg
            .delta_policy
            .clone()
            .unwrap_or(PolicySpec::Fixed { delta }),
        _ => PolicySpec::Fixed { delta },
    };
    spec.validate().expect("invalid δ-policy configuration");
    if resume.is_none() {
        // Same header both backends write: the labels are pure functions of the
        // config. A resumed run's restored trace prefix already contains it.
        crate::tracing::emit_header(
            &cfg.trace,
            cfg,
            &crate::algorithms::selsync::algorithm_label(cfg),
            &spec.label(),
        );
    }

    // Shared immutable dataset: the *same* train split the simulator uses, built once
    // and shared by reference across threads.
    let (train, _test) = sim::build_datasets(cfg);
    let proto = PaperModel::build(cfg.model, cfg.seed);
    let iid_order = sim::iid_sample_order(&train, &proto.task);
    let init_params = proto.params_flat();

    let train = &train;
    let iid_order = &iid_order;
    // Membership comes from the *effective* conditions: the scheduled ones plus one
    // no-rejoin crash per comm-fault eviction. Every thread derives the same
    // presence from this pure schedule, so fault-driven evictions need no runtime
    // coordination — exactly like scheduled crashes.
    let conditions = cfg.effective_conditions();
    let conditions = &conditions;
    // Every comm op rides the message layer: lossless (single attempt, intact
    // delivery) without `[comm_faults]`, the retry/timeout/eviction path over the
    // faulty transport with it. Eviction rounds are precomputed from the same
    // schedule the layer rolls, so a thread driven past its budget finds itself
    // already absent from the membership above — the layer's `Err(Evicted)` and the
    // schedule agree by construction (pinned by the transport tests).
    let fault_schedule = cfg.comm_faults.map(CommFaultSchedule::new);
    let layer = match fault_schedule {
        Some(schedule) => MessageLayer::faulty(schedule),
        None => MessageLayer::lossless(),
    };
    // PS availability gate: with a `[ps_faults]` schedule attached, PS-bound
    // envelopes fail fast at down rounds and the workers degrade to local-only
    // rounds — the same pure `(spec, round)` schedule the simulator driver reads.
    let ps_schedule = cfg.ps_fault_schedule();
    let layer = match ps_schedule.clone() {
        Some(schedule) => layer.with_ps_outages(schedule),
        None => layer,
    };
    let layer = &layer;
    let ps_schedule = &ps_schedule;
    let evictions = cfg.comm_fault_evictions();
    let evictions = &evictions;
    // The image a resume started from stays on disk whatever the retention says.
    let protect = resume.map(|c| c.round);
    let ckpt_spec = cfg.checkpoint.clone();
    if let Some(ck) = &ckpt_spec {
        ck.validate().expect("invalid checkpoint configuration");
    }
    let ckpt_spec = &ckpt_spec;
    let gate = CheckpointGate::new(n);
    let gate = &gate;

    // The first round the (possibly resumed) run executes.
    let start = match resume {
        Some(ckpt) => {
            assert_eq!(
                ckpt.backend, "threaded",
                "checkpoint was written by the {} backend, not the threaded driver",
                ckpt.backend
            );
            assert_eq!(
                ckpt.fingerprint,
                checkpoint::config_fingerprint(cfg),
                "checkpoint belongs to a different configuration"
            );
            if cfg.trace.is_enabled() {
                let events = ckpt
                    .trace
                    .iter()
                    .map(|line| codec::decode_event(line).expect("checkpointed trace line decodes"))
                    .collect();
                cfg.trace.preload(events);
            }
            ckpt.round + 1
        }
        None => 0,
    };

    // One cluster-level policy instance for the whole run, seeded at the first active
    // round the run executes — the exact analogue of the simulator driver's `policy`
    // local. A resumed run restores the policy's durable state first.
    let mut policy = spec.build();
    if let Some(ckpt) = resume {
        let mut reader = ckpt.read_section("board");
        let ints = reader.ints();
        let floats = reader.f32s();
        reader.finish();
        policy.import_state(&PolicyState { ints, floats });
    }
    let board = SignalBoard::new(
        policy,
        conditions.next_active_iteration(n, start, cfg.iterations),
        cfg.trace.clone(),
    );
    let board = &board;
    // Fixed and scheduled policies are pure functions of the iteration and discard
    // their observations, so the two per-round scalar rendezvous that would feed them
    // the cluster aggregates are pure overhead — skip them and let the observation
    // carry the (ignored) per-worker values instead. The board itself always runs:
    // its round-ordered advancement is also what tells a scheduled rejoin pull that
    // the snapshot ring is complete up to the rejoin round.
    let exchange_signals = spec.consumes_round_signals();

    let handles = make_handles(n, init_params);
    if cfg.rejoin_pull == RejoinPull::Scheduled {
        // Deterministic rejoin pulls read the round-keyed snapshot ring instead of
        // the wall-clock PS state; enable it before any worker starts.
        handles
            .ps
            .enable_scheduled_snapshots(DEFAULT_SNAPSHOT_DEPTH);
    }
    if let Some(ckpt) = resume {
        // Restore the PS — global vector, newest-global guard and snapshot ring —
        // before any worker pulls from it.
        handles
            .ps
            .restore_state(&crate::resume::read_ps_state(ckpt));
    }

    run_cluster_with(handles, |worker, handles: ClusterHandles| {
        let mut model = PaperModel::build(cfg.model, cfg.seed);
        // Every worker starts from the global state on the PS (pullFromPS, Alg. 1 line 3).
        let mut params = handles.ps.pull();
        model.set_params_flat(&params);
        // The simulator's circular traversal over this worker's data: its
        // shuffled IID partition, or its label shard on non-IID runs.
        let traversal = sim::worker_traversal(cfg, train, iid_order, worker);
        let mut cursor = 0usize;
        let new_tracker = || {
            GradientTracker::new(
                GradStatistic::SqNorm,
                (n as f32 / 100.0).clamp(0.01, 1.0),
                cfg.ewma_window,
            )
        };
        let mut tracker = new_tracker();
        let mut optimizer = cfg.optimizer.build();
        let mut counter = LssrCounter::new();
        let mut sync_rounds: Vec<usize> = Vec::new();
        let mut last_loss = 0.0f32;
        let mut was_present = true;
        // The canonical global forward counter of the simulator: rounds issue their
        // forwards in worker order over the present set, so the count *before* any
        // iteration — and this worker's position within it — is a pure function of
        // the fault schedule.
        let mut forwards_before = 0u64;
        if let Some(ckpt) = resume {
            // Durable per-worker state comes from the checkpoint; the schedule-pure
            // cursors (data traversal, forward counter, presence edge) are recomputed
            // from the same deterministic schedule the uninterrupted run walked.
            let mut reader = ckpt.read_section(&format!("worker{worker}"));
            params = reader.f32s();
            let t = reader.int();
            let buffer_count = reader.usize();
            let buffers = (0..buffer_count).map(|_| reader.f32s()).collect();
            optimizer.load_state(&OptimizerState { t, buffers });
            let tracker_state = TrackerState {
                ewma_history: reader.f32s(),
                ewma_smoothed: reader.opt_f32(),
                previous_smoothed: reader.opt_f32(),
                last_delta: reader.f32(),
                max_delta: reader.f32(),
                steps: reader.int(),
            };
            tracker.restore_state(&tracker_state);
            counter.sync_steps = reader.int();
            counter.local_steps = reader.int();
            sync_rounds = reader.ints().iter().map(|&r| r as usize).collect();
            last_loss = reader.f32();
            reader.finish();
            let done_rounds = (0..start)
                .filter(|&r| conditions.is_present(worker, r))
                .count();
            cursor = (done_rounds * cfg.batch_size) % traversal.len();
            forwards_before = (0..start)
                .map(|r| conditions.present_workers(n, r).len() as u64)
                .sum();
            was_present = conditions.is_present(worker, start - 1);
        }
        let mut indices = Vec::with_capacity(cfg.batch_size);
        // Control-plane exchange for one comm op: request envelope out, hub ack
        // back, bounded retry. A worker present at a round always lands within its
        // budget — exhaustion would have evicted it from this round's membership —
        // so an `Err` here is a schedule/layer disagreement, not a recoverable
        // condition. Returns the attempt count (shared by every op this worker
        // performs this round: link weather is per `(worker, round, attempt, leg)`,
        // not per message kind).
        let exchange = |round: usize, kind: MsgKind, payload: &[u8]| -> u32 {
            layer
                .exchange(worker, round as u64, kind, payload)
                .unwrap_or_else(|e| {
                    panic!("present worker {worker} failed a comm op at round {round}: {e}")
                })
                .attempts
        };

        // Checkpoint-gate participation at the end of round `it`: every worker —
        // present or absent — deposits its recovery section when a checkpoint is due
        // and parks until worker 0 has written the image. Returns whether the run
        // halts after this round (the simulated kill switch).
        let end_of_round = |it: usize,
                            present: &[usize],
                            params: &[f32],
                            optimizer: &dyn selsync_nn::Optimizer,
                            tracker: &GradientTracker,
                            counter: &LssrCounter,
                            sync_rounds: &[usize],
                            last_loss: f32|
         -> bool {
            let Some(ck) = ckpt_spec else {
                return false;
            };
            // The simulator writes nothing at whole-cluster-absent rounds; neither
            // does the threaded driver (and the kill switch cannot fire there).
            if present.is_empty() {
                return false;
            }
            if ck.due(it) || ck.halt_after == Some(it) {
                let section = worker_section(
                    worker,
                    params,
                    optimizer,
                    tracker,
                    counter,
                    sync_rounds,
                    last_loss,
                );
                gate.checkpoint_round(worker, n, it, section, |deposits| {
                    write_threaded_checkpoint(cfg, ck, board, &handles.ps, deposits, it, protect);
                });
            }
            ck.halt_after == Some(it)
        };

        for it in start..cfg.iterations {
            // Crash windows: an absent worker skips the round entirely — no compute, no
            // collectives. Every live worker derives the same membership from the
            // deterministic schedule, so the round-keyed rendezvous stays consistent.
            let present = conditions.present_workers(n, it);
            let Some(rank) = present.iter().position(|&p| p == worker) else {
                if evictions.contains(&(worker, it)) {
                    // This is the round the fault schedule drives this worker past
                    // its retry budget. Run the doomed exchange for real — the
                    // layer must agree with the precomputed membership — then log
                    // the eviction and fall out of the cluster for good.
                    let farewell = layer.exchange(worker, it as u64, MsgKind::Flags, &[0]);
                    assert!(
                        farewell.is_err(),
                        "worker {worker} was precomputed as evicted at round {it} but its \
                         exchange succeeded"
                    );
                    cfg.trace.record(Event::CommEvict { round: it, worker });
                }
                was_present = false;
                forwards_before += present.len() as u64;
                if end_of_round(
                    it,
                    &present,
                    &params,
                    optimizer.as_ref(),
                    &tracker,
                    &counter,
                    &sync_rounds,
                    last_loss,
                ) {
                    break;
                }
                continue;
            };
            let active = present.len();
            let forward_index = forwards_before + rank as u64;
            forwards_before += active as u64;
            if !was_present {
                // Rejoin: tracker and optimizer did not survive the crash (the
                // simulator restarts per-worker state the same way — its cluster-level
                // policy, like the shared board here, is untouched). The pull request
                // is an envelope on the message layer; the parameter pull itself
                // (the data plane) follows the configured semantics. At a PS-down
                // round the envelope is skipped — there is no server to ack it —
                // while the data plane (the schedule-pure snapshot lookup) and the
                // event stay, exactly like the simulator's rejoin path.
                if !layer.ps_down(it as u64) {
                    exchange(it, MsgKind::Pull, &(it as u64).to_le_bytes());
                }
                params = match cfg.rejoin_pull {
                    RejoinPull::WallClock => handles.ps.pull(),
                    RejoinPull::Scheduled => {
                        // Wait until every active round before the rejoin has fully
                        // decided (the board advances only after a round's sync, so
                        // the ring then holds every scheduled global this lookup can
                        // need), then pull the last scheduled synchronization's
                        // global — the simulator's `global` entering this round.
                        board.wait_caught_up(it);
                        handles.ps.scheduled_global_before(it as u64)
                    }
                };
                if cfg.trace.is_enabled() {
                    // Mirror the simulator's pull event: under scheduled pulls the
                    // source is the ring's answer for this round (all earlier rounds
                    // have decided, so the `< it` entries are final); wall-clock
                    // pulls have a timing-dependent source, recorded as `None` on
                    // both backends so the logs stay byte-comparable.
                    let (pull, from) = match cfg.rejoin_pull {
                        RejoinPull::Scheduled => (
                            PullKind::Scheduled,
                            handles
                                .ps
                                .scheduled_round_before(it as u64)
                                .map(|r| r as usize),
                        ),
                        RejoinPull::WallClock => (PullKind::WallClock, None),
                    };
                    cfg.trace.record(Event::RejoinPull {
                        round: it,
                        worker,
                        pull,
                        from,
                    });
                }
                tracker = new_tracker();
                optimizer = cfg.optimizer.build();
                was_present = true;
            }

            indices.clear();
            for _ in 0..cfg.batch_size {
                indices.push(traversal[cursor % traversal.len()]);
                cursor += 1;
            }
            cursor %= traversal.len();
            let (x, y) = train.batch(&indices);
            model.set_params_flat(&params);
            model.seek_dropout(forward_index);
            let stats = model.forward_backward(&x, &y);
            last_loss = stats.loss;
            let grads = model.grads_flat();
            let delta_g = tracker.update(&grads);

            // Local update through the configured optimizer at the scheduled learning
            // rate (Alg. 1 line 9) — identical to the simulator's apply path.
            let lr = cfg.lr.lr_at(cfg.epoch_of(it), it);
            optimizer.step(&mut params, &grads, lr);

            // PS outage: the round degrades to forced-local. One probe envelope
            // discovers the outage and fails fast (no retry budget consumed); the
            // status all-gather, signal exchange and sync round — all PS-bound —
            // are skipped, and the worker keeps its local update. The δ policy is
            // still consulted and fed the lowest-ranked present worker's local
            // signal, so regime state stays coherent — bit-identical to the
            // simulator's degraded branch.
            if layer.ps_down(it as u64) {
                let probe =
                    layer.ps_exchange(worker, it as u64, MsgKind::Pull, &(it as u64).to_le_bytes());
                assert!(
                    matches!(probe, Err(PsExchangeError::Down { .. })),
                    "the PS availability schedule and the layer's gate disagree at round {it}"
                );
                let sync_policy = SyncPolicy::new(board.delta_for(it));
                // Worker-to-worker rendezvous (the PS plays no part): keeps the
                // board's round-ordered observe behind every present worker's δ
                // fetch, exactly like the status all-gather does on reachable rounds.
                handles
                    .collective
                    .allgather_flags_among(it as u64, worker, false, active);
                counter.record_local();
                if rank == 0 {
                    if cfg.trace.is_enabled() {
                        crate::tracing::emit_round_context(&cfg.trace, conditions, n, it, &present);
                        if ps_schedule
                            .as_ref()
                            .is_some_and(|s| s.outage_starts(it as u64))
                        {
                            cfg.trace.record(Event::PsDown { round: it });
                        }
                        cfg.trace.record(Event::DegradedRound {
                            round: it,
                            delta: sync_policy.delta,
                            loss: stats.loss,
                            delta_g,
                        });
                    }
                    board.observe(
                        RoundSignal {
                            iteration: it,
                            max_delta: delta_g,
                            mean_loss: stats.loss,
                            delta_mean: delta_g,
                            delta_sq_mean: delta_g * delta_g,
                            synced: false,
                        },
                        conditions.next_active_iteration(n, it + 1, cfg.iterations),
                    );
                }
                if end_of_round(
                    it,
                    &present,
                    &params,
                    optimizer.as_ref(),
                    &tracker,
                    &counter,
                    &sync_rounds,
                    last_loss,
                ) {
                    break;
                }
                continue;
            }
            // The first reachable round after an outage runs the catch-up sync:
            // every present worker forces its status bit, so the accumulated
            // local-only deltas reconcile through the ordinary elastic round.
            let catchup = ps_schedule
                .as_ref()
                .is_some_and(|s| s.outage_ends(it as u64));

            // Cluster-signal exchange among the live workers: the round's mean batch
            // loss and maximum Δ(g_i), combined in worker-id order — bit-identical to
            // the simulator's `RoundOutput::mean_loss` / `max_delta` folds. Elided
            // for signal-blind (fixed/scheduled) policies, whose observations are
            // discarded anyway.
            let (mean_loss, cluster_delta, moments) = if exchange_signals {
                // Both scalars ride one envelope (the envelope id is
                // (kind, round, sender), so a second ScalarReduce from the same
                // worker in the same round would be dropped as a duplicate), and
                // the Δ-moment vector rides its own VecReduce envelope.
                let mut scalar_payload = [0u8; 8];
                scalar_payload[..4].copy_from_slice(&stats.loss.to_le_bytes());
                scalar_payload[4..].copy_from_slice(&delta_g.to_le_bytes());
                exchange(it, MsgKind::ScalarReduce, &scalar_payload);
                let mut vec_payload = [0u8; 8];
                vec_payload[..4].copy_from_slice(&delta_g.to_le_bytes());
                vec_payload[4..].copy_from_slice(&(delta_g * delta_g).to_le_bytes());
                exchange(it, MsgKind::VecReduce, &vec_payload);
                (
                    handles.collective.allreduce_scalar_among(
                        it as u64,
                        worker,
                        stats.loss,
                        active,
                        ScalarOp::Mean,
                    ),
                    handles.collective.allreduce_scalar_among(
                        it as u64,
                        worker,
                        delta_g,
                        active,
                        ScalarOp::Max,
                    ),
                    handles.collective.allreduce_vec_among(
                        it as u64,
                        worker,
                        vec![delta_g, delta_g * delta_g],
                        active,
                        ScalarOp::Mean,
                    ),
                )
            } else {
                (stats.loss, delta_g, vec![delta_g, delta_g * delta_g])
            };

            // This round's δ from the *shared* cluster policy (Phase 0 of the
            // simulator driver); blocks until all earlier rounds' signals are in.
            let sync_policy = SyncPolicy::new(board.delta_for(it));

            // 1-bit status all-gather followed by the cluster decision (lines 10–13),
            // restricted to the live workers of this iteration. A catch-up round
            // forces every status bit.
            let wants_sync = catchup || sync_policy.worker_wants_sync(delta_g);
            let attempts = exchange(it, MsgKind::Flags, &[wants_sync as u8]);
            if attempts > 1 {
                // One retry event per (worker, round): every envelope this worker
                // sent this round shares the same attempt count (link weather is
                // keyed by (worker, round, attempt, leg), not by message kind).
                cfg.trace.record(Event::CommRetry {
                    round: it,
                    worker,
                    attempts,
                });
            }
            let flags = handles
                .collective
                .allgather_flags_among(it as u64, worker, wants_sync, active);
            let synced = flags.iter().any(|&f| f);
            if synced {
                // Push local parameters, pull the average (lines 14–15). The elastic
                // round combines contributions in worker-id order, so the pulled
                // average equals the simulator's to the last bit. The control-plane
                // announcement (parameter byte count) is an envelope; the parameters
                // themselves move through the data-plane rendezvous below.
                exchange(
                    it,
                    MsgKind::SyncRound,
                    &((params.len() * 4) as u64).to_le_bytes(),
                );
                params = handles
                    .ps
                    .sync_round_elastic(it as u64, worker, &params, active);
                counter.record_sync();
                sync_rounds.push(it);
            } else {
                counter.record_local();
            }
            if rank == 0 {
                if cfg.trace.is_enabled() {
                    // One emitter per round: the lowest-ranked present worker logs the
                    // round's structural and decision events (canonical sorting in the
                    // sink erases any cross-thread interleaving with other rounds).
                    crate::tracing::emit_round_context(&cfg.trace, conditions, n, it, &present);
                    if catchup {
                        let schedule = ps_schedule.as_ref().expect("catchup implies a schedule");
                        cfg.trace.record(Event::PsUp { round: it });
                        cfg.trace.record(Event::CatchupSync {
                            round: it,
                            behind: schedule.rounds_behind(it as u64) as usize,
                        });
                    }
                    if exchange_signals {
                        cfg.trace.record(Event::Signal {
                            round: it,
                            mean_loss,
                            max_delta: cluster_delta,
                        });
                    }
                    cfg.trace.record(Event::Round {
                        round: it,
                        delta: sync_policy.delta,
                        // The collective's gather is full-width (absent slots read
                        // false); the canonical event keeps present-worker order,
                        // matching the simulator's per-present-worker flag vector.
                        flags: present.iter().map(|&w| flags[w]).collect(),
                        synced,
                    });
                }
                // The lowest-ranked present worker posts the round's cluster signal.
                // Every present worker has passed the status all-gather by now (it is
                // a rendezvous), so no one can still be waiting on this round's δ —
                // and if the round synchronized, its global is already in the
                // snapshot ring, so a scheduled rejoin pull unblocked by this
                // observation finds everything it needs.
                board.observe(
                    RoundSignal {
                        iteration: it,
                        max_delta: cluster_delta,
                        mean_loss,
                        delta_mean: moments[0],
                        delta_sq_mean: moments[1],
                        synced,
                    },
                    conditions.next_active_iteration(n, it + 1, cfg.iterations),
                );
            }
            if end_of_round(
                it,
                &present,
                &params,
                optimizer.as_ref(),
                &tracker,
                &counter,
                &sync_rounds,
                last_loss,
            ) {
                break;
            }
        }

        let global = handles.ps.pull();
        let distance: f32 = params
            .iter()
            .zip(global.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        ThreadedWorkerReport {
            worker,
            sync_steps: counter.sync_steps,
            local_steps: counter.local_steps,
            sync_rounds,
            final_loss: last_loss,
            distance_to_global: distance,
        }
    })
}

/// One worker's durable recovery section: everything that cannot be recomputed
/// from the schedule — its parameter replica, optimizer and `Δ(g_i)` tracker state,
/// LSSR counters, synchronization history and last observed loss. The packing order
/// is the contract `run_threaded_inner`'s resume path reads back (and the one the
/// multi-process workers ship to their hub as checkpoint deposits).
pub(crate) fn worker_section(
    worker: usize,
    params: &[f32],
    optimizer: &dyn selsync_nn::Optimizer,
    tracker: &GradientTracker,
    counter: &LssrCounter,
    sync_rounds: &[usize],
    last_loss: f32,
) -> Section {
    let mut section = Section::new(format!("worker{worker}"));
    section.push_f32s(params);
    let optimizer_state = optimizer.export_state();
    section.push_int(optimizer_state.t);
    section.push_usize(optimizer_state.buffers.len());
    for buffer in &optimizer_state.buffers {
        section.push_f32s(buffer);
    }
    let tracker_state = tracker.export_state();
    section.push_f32s(&tracker_state.ewma_history);
    section.push_opt_f32(tracker_state.ewma_smoothed);
    section.push_opt_f32(tracker_state.previous_smoothed);
    section.push_f32(tracker_state.last_delta);
    section.push_f32(tracker_state.max_delta);
    section.push_int(tracker_state.steps);
    section.push_int(counter.sync_steps);
    section.push_int(counter.local_steps);
    let rounds: Vec<u64> = sync_rounds.iter().map(|&r| r as u64).collect();
    section.push_ints(&rounds);
    section.push_f32(last_loss);
    section
}

/// Write the threaded backend's full recovery image after round `it`: the PS state
/// (global vector, newest-global guard, snapshot ring), the shared δ-policy state,
/// every worker's deposited section (worker order) and the trace prefix recorded so
/// far. Called by worker 0 at the checkpoint gate's quiescent point.
fn write_threaded_checkpoint(
    cfg: &TrainConfig,
    ck: &CheckpointSpec,
    board: &SignalBoard,
    ps: &selsync_comm::ParameterServer,
    deposits: Vec<Section>,
    it: usize,
    protect: Option<usize>,
) {
    let mut image = Checkpoint::new("threaded", checkpoint::config_fingerprint(cfg), it);
    image.add_section(crate::resume::ps_section(&ps.export_state()));
    let policy_state = board.export_policy_state();
    let mut section = Section::new("board");
    section.push_ints(&policy_state.ints);
    section.push_f32s(&policy_state.floats);
    image.add_section(section);
    for deposit in deposits {
        image.add_section(deposit);
    }
    if cfg.trace.is_enabled() {
        let log = cfg.trace.snapshot_log();
        image.trace = log.events.iter().map(codec::encode_event).collect();
    }
    let path = ck.path_for(it);
    image
        .write_file(&path)
        .unwrap_or_else(|err| panic!("failed to write checkpoint {}: {err}", path.display()));
    // Retention runs only after the newer image is durably on disk, and never
    // removes the image a resume started from.
    ck.prune(it, protect);
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_nn::model::ModelKind;

    fn cfg(delta: f32, workers: usize) -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, workers);
        cfg.iterations = 25;
        cfg.batch_size = 8;
        cfg.train_samples = 256;
        cfg.test_samples = 64;
        cfg.algorithm = AlgorithmSpec::selsync(delta);
        cfg
    }

    #[test]
    fn all_workers_agree_on_the_synchronization_schedule() {
        let reports = run_threaded_selsync(&cfg(0.05, 4));
        assert_eq!(reports.len(), 4);
        let first = (
            reports[0].sync_steps,
            reports[0].local_steps,
            reports[0].sync_rounds.clone(),
        );
        for r in &reports {
            assert_eq!(
                (r.sync_steps, r.local_steps, r.sync_rounds.clone()),
                first,
                "worker {} diverged",
                r.worker
            );
            assert_eq!(r.sync_steps + r.local_steps, 25);
            assert_eq!(r.sync_rounds.len() as u64, r.sync_steps);
        }
    }

    #[test]
    fn delta_zero_synchronizes_every_step_across_threads() {
        let mut c = cfg(0.0, 3);
        c.algorithm = AlgorithmSpec::Bsp;
        let reports = run_threaded_selsync(&c);
        for r in &reports {
            assert_eq!(r.sync_steps, 25);
            assert_eq!(r.local_steps, 0);
            assert_eq!(r.sync_rounds, (0..25).collect::<Vec<_>>());
            // After a final synchronization every worker equals the PS state.
            assert!(
                r.distance_to_global < 1e-4,
                "distance {}",
                r.distance_to_global
            );
        }
    }

    #[test]
    fn huge_delta_never_synchronizes_across_threads() {
        let reports = run_threaded_selsync(&cfg(1e9, 3));
        for r in &reports {
            assert_eq!(r.sync_steps, 0);
            assert_eq!(r.local_steps, 25);
            assert!(r.sync_rounds.is_empty());
        }
    }

    #[test]
    fn scheduled_policy_is_honoured_across_threads() {
        // δ = 0 for the first 10 iterations (every step synchronizes), then δ huge
        // (never again): the schedule is a pure function of the iteration, so every
        // worker replica agrees on it.
        let mut c = cfg(0.0, 3);
        c.delta_policy = Some(PolicySpec::Schedule {
            starts: vec![0, 10],
            deltas: vec![0.0, 1e9],
        });
        let reports = run_threaded_selsync(&c);
        for r in &reports {
            assert_eq!(r.sync_rounds, (0..10).collect::<Vec<_>>());
            assert_eq!(r.sync_steps, 10);
            assert_eq!(r.local_steps, 15);
        }
    }

    #[test]
    fn adaptive_policy_decisions_are_cluster_coherent_and_match_the_simulator() {
        // The shared signal board feeds the adaptive policy the same worker-order
        // cluster aggregates the simulator computes, so the threaded schedule equals
        // the simulator's even though the policy is stateful.
        let mut c = cfg(0.3, 4);
        c.iterations = 30;
        c.delta_policy = Some(PolicySpec::adaptive_default());
        let sim = crate::algorithms::run(&c);
        assert!(
            sim.sync_steps > 0 && sim.local_steps > 0,
            "the adaptive arm must produce a mixed schedule for this to be meaningful"
        );
        let reports = run_threaded_selsync(&c);
        for r in &reports {
            assert_eq!(
                r.sync_rounds, sim.sync_rounds,
                "worker {} diverged from the simulator's adaptive schedule",
                r.worker
            );
        }
    }

    #[test]
    fn scheduled_rejoin_pull_reproduces_the_simulator_on_a_crash_schedule() {
        use crate::conditions::{ClusterConditions, FaultEvent};
        use crate::config::RejoinPull;
        // δ > 0 (mixed schedule) with a crash window: under the scheduled rejoin-pull
        // mode the rejoiner reads the last scheduled global, so every worker's
        // schedule must equal the simulator's restricted to its present rounds.
        let mut c = cfg(0.05, 3);
        c.rejoin_pull = RejoinPull::Scheduled;
        c.conditions = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: 2,
            start: 5,
            rejoin: Some(15),
        });
        let sim = crate::algorithms::run(&c);
        let reports = run_threaded_selsync(&c);
        for r in &reports {
            let expected: Vec<usize> = sim
                .sync_rounds
                .iter()
                .copied()
                .filter(|&round| c.conditions.is_present(r.worker, round))
                .collect();
            assert_eq!(
                r.sync_rounds, expected,
                "worker {} diverged from the simulator under crash/rejoin",
                r.worker
            );
        }
        // Determinism of the whole run: a rerun reproduces the same reports.
        let again = run_threaded_selsync(&c);
        for (a, b) in reports.iter().zip(again.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn crash_and_rejoin_across_threads_keeps_the_cluster_consistent() {
        use crate::conditions::{ClusterConditions, FaultEvent};
        // BSP (δ=0) with worker 2 crashed for iterations 5..15: the live workers keep
        // synchronizing among themselves, the crashed worker misses exactly 10 rounds,
        // and after its rejoin-pull everybody finishes on the PS state.
        let mut c = cfg(0.0, 3);
        c.algorithm = AlgorithmSpec::Bsp;
        c.conditions = ClusterConditions::uniform().with_fault(FaultEvent::Crash {
            worker: 2,
            start: 5,
            rejoin: Some(15),
        });
        let reports = run_threaded_selsync(&c);
        assert_eq!(reports[0].sync_steps, 25);
        assert_eq!(reports[1].sync_steps, 25);
        assert_eq!(reports[2].sync_steps, 15, "crashed worker misses 10 rounds");
        assert!(!reports[2].sync_rounds.contains(&7));
        for r in &reports {
            assert!(
                r.distance_to_global < 1e-4,
                "worker {} should end on the PS state, distance {}",
                r.worker,
                r.distance_to_global
            );
        }
    }

    #[test]
    fn ps_outage_schedule_matches_the_simulator_and_degrades_rounds() {
        use selsync_comm::faults::PsFaultSpec;
        use selsync_tracelog::TraceGranularity;
        // δ = 0 with an outage window: rounds 8..12 degrade to local in both
        // backends, the catch-up sync fires at 12, and the schedules agree.
        let mut c = cfg(0.0, 3);
        c.ps_faults = Some(PsFaultSpec {
            seed: 5,
            windows: vec![(8, 4)],
            flaky: 0.0,
        });
        c.trace = TraceSink::capture(TraceGranularity::Full);
        let sim = crate::algorithms::run(&c);
        let sim_trace = c.trace.take_log();
        c.trace = TraceSink::capture(TraceGranularity::Full);
        let reports = run_threaded_selsync(&c);
        let threaded_trace = c.trace.take_log();
        for r in &reports {
            assert_eq!(r.local_steps, 4, "worker {} outage rounds", r.worker);
            assert_eq!(
                r.sync_rounds, sim.sync_rounds,
                "worker {} diverged",
                r.worker
            );
        }
        assert_eq!(sim_trace.encode(), threaded_trace.encode());
    }

    #[test]
    fn threaded_kill_and_resume_reproduces_the_uninterrupted_run() {
        use crate::config::CheckpointSpec;
        use selsync_comm::faults::PsFaultSpec;
        use selsync_tracelog::TraceGranularity;
        let dir = std::env::temp_dir().join(format!(
            "selsync-threaded-resume-test-{}",
            std::process::id()
        ));
        let make = || {
            let mut c = cfg(0.05, 3);
            // The outage window straddles the kill round, and the adaptive policy
            // carries cross-round state through it.
            c.ps_faults = Some(PsFaultSpec {
                seed: 11,
                windows: vec![(9, 3)],
                flaky: 0.0,
            });
            c.delta_policy = Some(PolicySpec::adaptive_default());
            c.trace = TraceSink::capture(TraceGranularity::Full);
            c
        };
        let full_cfg = make();
        let full = run_threaded_selsync(&full_cfg);
        let full_trace = full_cfg.trace.take_log().encode();

        let mut killed_cfg = make();
        killed_cfg.checkpoint = Some(CheckpointSpec {
            every: 5,
            dir: dir.to_string_lossy().into_owned(),
            halt_after: Some(10),
            keep: None,
        });
        let _halted = run_threaded_selsync(&killed_cfg);
        let ckpt = Checkpoint::read_file(dir.join("ckpt-10")).expect("checkpoint reads back");
        assert_eq!(ckpt.backend, "threaded");
        assert!(dir.join("ckpt-4").exists(), "cadence checkpoint at round 4");

        let resumed_cfg = make();
        let resumed = run_threaded_selsync_resumed(&resumed_cfg, &ckpt);
        assert_eq!(resumed_cfg.trace.take_log().encode(), full_trace);
        for (a, b) in full.iter().zip(resumed.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A drop/corrupt schedule whose seed (searched deterministically) evicts
    /// exactly one worker strictly inside the run, so the pre- and post-eviction
    /// regimes are both exercised.
    fn mid_run_evicting_spec(c: &TrainConfig) -> selsync_comm::faults::CommFaultSpec {
        use selsync_comm::faults::CommFaultSpec;
        let spec_for = |seed| CommFaultSpec {
            seed,
            drop: 0.05,
            duplicate: 0.0,
            corrupt: 0.01,
            delay: 0.0,
            delay_rounds: 0,
            retry_budget: 2,
            timeout_s: 1e-3,
        };
        let seed = (0..500)
            .find(|&seed| {
                let mut probe = c.clone();
                probe.comm_faults = Some(spec_for(seed));
                let evictions = probe.comm_fault_evictions();
                evictions.len() == 1 && (3..20).contains(&evictions[0].1)
            })
            .expect("some seed in 0..500 evicts exactly one worker mid-run");
        spec_for(seed)
    }

    #[test]
    fn comm_fault_eviction_is_report_identical_to_the_equivalent_scheduled_crash() {
        // An eviction compiled from the fault schedule must behave exactly like a
        // scheduled no-rejoin crash at the same round: a run with the weather and
        // a fault-free run with the pre-compiled crash produce identical reports.
        let mut c = cfg(0.05, 3);
        c.comm_faults = Some(mid_run_evicting_spec(&c));
        let faulty = run_threaded_selsync(&c);
        let mut crashed = c.clone();
        crashed.conditions = c.effective_conditions();
        crashed.comm_faults = None;
        let clean = run_threaded_selsync(&crashed);
        for (a, b) in faulty.iter().zip(clean.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn duplicate_and_delay_weather_is_report_identical_to_lossless() {
        use selsync_comm::faults::CommFaultSpec;
        // Duplicates are absorbed by envelope-id dedupe and delays only reorder
        // delivery, so a drop/corrupt-free schedule changes nothing observable.
        let mut c = cfg(0.05, 3);
        c.comm_faults = Some(CommFaultSpec {
            seed: 9,
            drop: 0.0,
            duplicate: 0.4,
            corrupt: 0.0,
            delay: 0.3,
            delay_rounds: 0,
            retry_budget: 3,
            timeout_s: 1e-3,
        });
        assert!(c.comm_fault_evictions().is_empty());
        let faulty = run_threaded_selsync(&c);
        let mut lossless = c.clone();
        lossless.comm_faults = None;
        let clean = run_threaded_selsync(&lossless);
        for (a, b) in faulty.iter().zip(clean.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn faulty_runs_match_the_simulator_restricted_to_effective_presence() {
        let mut c = cfg(0.05, 3);
        c.comm_faults = Some(mid_run_evicting_spec(&c));
        let sim = crate::algorithms::run(&c);
        let reports = run_threaded_selsync(&c);
        let effective = c.effective_conditions();
        for r in &reports {
            let expected: Vec<usize> = sim
                .sync_rounds
                .iter()
                .copied()
                .filter(|&round| effective.is_present(r.worker, round))
                .collect();
            assert_eq!(
                r.sync_rounds, expected,
                "worker {} diverged from the simulator under comm faults",
                r.worker
            );
        }
        // Reruns reproduce the same reports bit-for-bit.
        let again = run_threaded_selsync(&c);
        for (a, b) in reports.iter().zip(again.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}

//! Parameter vs gradient aggregation (§III-C of the paper).
//!
//! In BSP the two are equivalent (identical initial parameters + identical averaged
//! updates keep every replica in lockstep), but under *semi-synchronous* training they
//! are not:
//!
//! * **Gradient aggregation (GA)** averages the workers' current gradients and lets each
//!   worker apply the averaged gradient to its *own* (possibly diverged) parameters, so
//!   replicas can keep drifting apart between synchronizations.
//! * **Parameter aggregation (PA)** averages the workers' parameters themselves, which
//!   collapses the replicas back onto a single consistent global state and bounds the
//!   divergence — the paper shows PA matches or beats GA (Fig. 10, 11).

use selsync_tensor::par;
use serde::{Deserialize, Serialize};

/// What gets averaged during a synchronization step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AggregationMode {
    /// Average model parameters (the SelSync default).
    #[default]
    Parameter,
    /// Average gradients and apply the averaged gradient locally.
    Gradient,
}

impl AggregationMode {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationMode::Parameter => "parameter_aggregation",
            AggregationMode::Gradient => "gradient_aggregation",
        }
    }
}

/// Element-wise mean of several equal-length vectors (the PS-side reduce).
///
/// Accepts anything slice-like (`Vec<f32>`, `&[f32]`), so callers can average borrowed
/// replica views without cloning each one first.
pub fn average<V: AsRef<[f32]> + Sync>(vectors: &[V]) -> Vec<f32> {
    let mut out = Vec::new();
    average_into(vectors, &mut out);
    out
}

/// Element-wise mean into a caller-owned buffer (resized as needed), parallel over
/// fixed element chunks. Per element the sum runs over vectors in order, exactly like
/// the serial loop, so the result is bit-identical for every thread count.
pub fn average_into<V: AsRef<[f32]> + Sync>(vectors: &[V], out: &mut Vec<f32>) {
    assert!(!vectors.is_empty(), "cannot average zero vectors");
    let dim = vectors[0].as_ref().len();
    for v in vectors {
        assert_eq!(
            v.as_ref().len(),
            dim,
            "all vectors must have the same length"
        );
    }
    out.clear();
    out.resize(dim, 0.0);
    let n = vectors.len() as f32;
    par::for_each_chunk_mut(out, par::ELEM_CHUNK, |start, chunk| {
        for v in vectors {
            let src = &v.as_ref()[start..start + chunk.len()];
            for (o, &x) in chunk.iter_mut().zip(src.iter()) {
                *o += x;
            }
        }
        for o in chunk.iter_mut() {
            *o /= n;
        }
    });
}

/// Element-wise mean over the `present` subset of `vectors` (elastic membership: only
/// the workers alive at a synchronization step contribute to the PS-side reduce).
pub fn average_present<V: AsRef<[f32]> + Sync>(vectors: &[V], present: &[usize]) -> Vec<f32> {
    let mut out = Vec::new();
    average_present_into(vectors, present, &mut out);
    out
}

/// [`average_present`] into a caller-owned buffer — the zero-alloc broadcast path: the
/// averaged vector is written once and copied into reused per-replica buffers.
pub fn average_present_into<V: AsRef<[f32]> + Sync>(
    vectors: &[V],
    present: &[usize],
    out: &mut Vec<f32>,
) {
    assert!(!present.is_empty(), "cannot average zero present workers");
    let dim = vectors[present[0]].as_ref().len();
    for &m in present {
        assert_eq!(
            vectors[m].as_ref().len(),
            dim,
            "all vectors must have the same length"
        );
    }
    out.clear();
    out.resize(dim, 0.0);
    let n = present.len() as f32;
    par::for_each_chunk_mut(out, par::ELEM_CHUNK, |start, chunk| {
        for &m in present {
            let src = &vectors[m].as_ref()[start..start + chunk.len()];
            for (o, &x) in chunk.iter_mut().zip(src.iter()) {
                *o += x;
            }
        }
        for o in chunk.iter_mut() {
            *o /= n;
        }
    });
}

/// Mean pairwise divergence (RMS distance) between worker replicas — the quantity PA
/// bounds and GA lets grow (used by tests and the Fig. 11 analysis).
pub fn replica_divergence<V: AsRef<[f32]> + Sync>(replicas: &[V]) -> f32 {
    if replicas.len() < 2 {
        return 0.0;
    }
    let mean = average(replicas);
    let dim = mean.len() as f32;
    let mut total = 0.0f32;
    for r in replicas {
        let sq: f32 = r
            .as_ref()
            .iter()
            .zip(mean.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        total += sq / dim;
    }
    (total / replicas.len() as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_identical_vectors_is_identity() {
        let v = vec![vec![1.0, 2.0, 3.0]; 4];
        assert_eq!(average(&v), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn average_is_elementwise_mean() {
        let v = vec![vec![0.0, 2.0], vec![4.0, 6.0]];
        assert_eq!(average(&v), vec![2.0, 4.0]);
    }

    #[test]
    fn divergence_of_identical_replicas_is_zero() {
        let v = vec![vec![0.5; 10]; 8];
        assert_eq!(replica_divergence(&v), 0.0);
        assert_eq!(replica_divergence(&v[..1]), 0.0);
    }

    #[test]
    fn divergence_grows_with_spread() {
        let tight = vec![vec![1.0, 1.0], vec![1.1, 0.9]];
        let loose = vec![vec![1.0, 1.0], vec![3.0, -1.0]];
        assert!(replica_divergence(&loose) > replica_divergence(&tight));
    }

    #[test]
    fn parameter_aggregation_collapses_divergence() {
        // After PA every replica equals the average, so divergence drops to zero.
        let replicas = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 0.0]];
        let avg = average(&replicas);
        let post: Vec<Vec<f32>> = replicas.iter().map(|_| avg.clone()).collect();
        assert!(replica_divergence(&replicas) > 0.0);
        assert_eq!(replica_divergence(&post), 0.0);
    }

    #[test]
    fn gradient_aggregation_preserves_existing_divergence() {
        // Applying the same averaged gradient to diverged replicas leaves their pairwise
        // distances unchanged — this is exactly why GA underperforms PA in the paper.
        let replicas = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let avg_grad = [0.5, -0.5];
        let post: Vec<Vec<f32>> = replicas
            .iter()
            .map(|r| {
                r.iter()
                    .zip(avg_grad.iter())
                    .map(|(p, g)| p - 0.1 * g)
                    .collect()
            })
            .collect();
        let before = replica_divergence(&replicas);
        let after = replica_divergence(&post);
        assert!((before - after).abs() < 1e-6);
    }

    #[test]
    fn average_present_ignores_crashed_workers() {
        let replicas = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![100.0, 100.0]];
        assert_eq!(average_present(&replicas, &[0, 1]), vec![2.0, 3.0]);
        assert_eq!(average_present(&replicas, &[2]), vec![100.0, 100.0]);
        // Full membership matches the plain average.
        assert_eq!(average_present(&replicas, &[0, 1, 2]), average(&replicas));
    }

    #[test]
    #[should_panic]
    fn average_present_of_nobody_panics() {
        let _ = average_present(&[vec![1.0]], &[]);
    }

    #[test]
    fn mode_names() {
        assert_eq!(AggregationMode::Parameter.name(), "parameter_aggregation");
        assert_eq!(AggregationMode::Gradient.name(), "gradient_aggregation");
    }

    #[test]
    #[should_panic]
    fn averaging_nothing_panics() {
        let _ = average::<Vec<f32>>(&[]);
    }
}
